"""Deviation prediction: which counters explain variability (§IV-B, §V-B).

Each time step of each run is one sample.  Both the counters and the
execution times are mean-centered per step index (removing the Fig. 3 /
Fig. 7 mean trends), and a GBR model predicts the *deviation*; RFE with
10-fold CV scores each counter's relevance (Fig. 9).  The paper reports
the prediction MAPE (< 5% on all datasets) on the reconstructed times.

The flattened mean-centered views come from the dataset's
:class:`~repro.features.FeatureStore`, so repeated analyses (Fig. 9, the
cheap MAPE check, benchmarks) share one construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.campaign.datasets import RunDataset
from repro.features import get_store
from repro.ml.gbr import GradientBoostedRegressor
from repro.ml.pipeline import Pipeline
from repro.ml.rfe import RelevanceResult, relevance_scores
from repro.network.counters import APP_COUNTERS
from repro.obs import span


@dataclass
class DeviationAnalysis:
    """RFE relevance of each counter for one dataset (one Fig. 9 row)."""

    key: str
    relevance: RelevanceResult

    @property
    def prediction_mape(self) -> float:
        return self.relevance.prediction_mape

    def scores_by_counter(self) -> dict[str, float]:
        return dict(zip(self.relevance.feature_names, self.relevance.scores))

    def top_counters(self, k: int = 3) -> list[str]:
        return self.relevance.top_features(k)


def default_deviation_estimator() -> Pipeline:
    # A stepless Pipeline is numerically the bare GBR; going through the
    # common Estimator surface gives the deviation fits the same
    # ml.pipeline.* spans/counters as every other model in the stack.
    return Pipeline(
        [],
        GradientBoostedRegressor(
            n_estimators=60, max_depth=3, learning_rate=0.1, random_state=0
        ),
    )


def deviation_analysis(
    ds: RunDataset,
    n_splits: int = 10,
    seed: int = 0,
    max_samples: int | None = 3000,
    estimator_factory=default_deviation_estimator,
    workers: int | None = None,
) -> DeviationAnalysis:
    """Run the §IV-B pipeline on one dataset.

    Returns per-counter relevance scores plus the CV prediction MAPE on
    reconstructed step times (paper target: < 5%).  ``workers`` fans the
    RFE CV folds out over :mod:`repro.parallel` (bit-identical results
    for any count).
    """
    if len(ds) < n_splits:
        raise ValueError(
            f"dataset {ds.key} has {len(ds)} runs; need >= {n_splits} for CV"
        )
    with span("analysis.deviation", dataset=ds.key, splits=n_splits):
        x, y, offsets = get_store(ds).flat_mean_centered()
        relevance = relevance_scores(
            x,
            y,
            APP_COUNTERS,
            estimator_factory=estimator_factory,
            n_splits=n_splits,
            seed=seed,
            mape_offset=offsets,
            max_samples=max_samples,
            workers=workers,
        )
    return DeviationAnalysis(key=ds.key, relevance=relevance)


def deviation_prediction_mape(
    ds: RunDataset, n_splits: int = 10, seed: int = 0, max_samples: int = 4000
) -> float:
    """Just the CV prediction MAPE, without the RFE sweep (cheap check)."""
    from repro.ml.metrics import mape
    from repro.ml.model_selection import KFold

    x, y, offsets = get_store(ds).flat_mean_centered()
    if len(x) > max_samples:
        pick = np.random.default_rng(seed).choice(len(x), max_samples, replace=False)
        x, y, offsets = x[pick], y[pick], offsets[pick]
    errs = []
    for train, test in KFold(n_splits=n_splits, seed=seed).split(len(x)):
        est = default_deviation_estimator()
        est.fit(x[train], y[train])
        pred = est.predict(x[test])
        errs.append(mape(y[test] + offsets[test], pred + offsets[test]))
    return float(np.mean(errs))
