"""Routing-policy ablation: does adaptive routing mitigate interference?

The paper targets dragonflies "in spite of adaptive routing" (§I) and its
related work compares routing policies on dragonflies (Faizian et al.,
SC'17; De Sensi et al., SC'19).  This ablation quantifies the substrate's
own behaviour: a probe job's slowdown under MINIMAL / VALIANT / ADAPTIVE
routing while an adversarial neighbour hammers one group pair — the
pattern minimal routing handles worst.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.engine import CongestionEngine, RoutingPolicy
from repro.network.traffic import FlowSet, router_alltoall_flows
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.placement import AllocationPolicy, allocate


@dataclass
class RoutingAblationResult:
    """Slowdowns per policy at one background intensity.

    Two perspectives matter and they can disagree:

    * ``adversary_slowdown`` — the hotspot traffic's own fabric slowdown;
      the textbook dragonfly result is that Valiant/adaptive routing
      rescues it from its saturated direct links;
    * ``probe_slowdown`` — an innocent bystander job; Valiant spreading
      *exports* the hotspot's congestion onto links the bystander uses,
      so minimal routing can contain the damage better.  This tension is
      exactly why production dragonflies still show interference despite
      adaptive routing (paper §I).
    """

    background_gbps: float
    #: policy name -> volume-weighted fabric slowdown of the probe job.
    probe_slowdown: dict[str, float]
    #: policy name -> the adversarial traffic's own fabric slowdown.
    adversary_slowdown: dict[str, float]

    def best_policy_for_probe(self) -> str:
        return min(self.probe_slowdown, key=self.probe_slowdown.get)

    def best_policy_for_adversary(self) -> str:
        return min(self.adversary_slowdown, key=self.adversary_slowdown.get)


def adversarial_background(
    topology: DragonflyTopology, total_bytes: float
) -> FlowSet:
    """Group-pair hotspot: every router of group 0 floods group 1."""
    rpg = topology.routers_per_group
    src = np.arange(rpg)
    dst = src + rpg
    vol = np.full(rpg, total_bytes / rpg)
    return FlowSet(src, dst, vol)


def routing_ablation(
    topology: DragonflyTopology,
    probe_nodes: int = 64,
    background_gbps: tuple[float, ...] = (0.0, 50.0, 200.0, 800.0),
    seed: int = 0,
) -> list[RoutingAblationResult]:
    """Sweep adversarial background intensity across routing policies.

    The probe is an all-to-all job placed randomly (so some of its flows
    share the contested group pair); its volume is fixed and modest.
    """
    rng = np.random.default_rng(seed)
    nodes = allocate(
        topology, topology.compute_nodes, probe_nodes, AllocationPolicy.RANDOM, rng
    )
    probe_flows = router_alltoall_flows(topology, nodes, total_bytes=20e9)

    out: list[RoutingAblationResult] = []
    for gbps in background_gbps:
        probe_s: dict[str, float] = {}
        adv_s: dict[str, float] = {}
        for policy in RoutingPolicy:
            engine = CongestionEngine(topology, policy=policy)
            items = [engine.route(probe_flows)]
            bg = adversarial_background(
                topology, max(gbps, 1e-3) * 1e9
            )
            items.append(engine.route(bg))
            state = engine.solve(items)
            fabric, _ = state.metrics[0].volume_weighted(probe_flows.volume)
            probe_s[policy.value] = fabric
            adv_fabric, _ = state.metrics[1].volume_weighted(bg.volume)
            adv_s[policy.value] = adv_fabric
        out.append(
            RoutingAblationResult(
                background_gbps=gbps,
                probe_slowdown=probe_s,
                adversary_slowdown=adv_s,
            )
        )
    return out


def render_ablation(results: list[RoutingAblationResult]) -> str:
    from repro.experiments.report import ascii_table

    rows = []
    for r in results:
        rows.append(
            [f"{r.background_gbps:.0f} GB/s", "probe"]
            + [f"{r.probe_slowdown[p.value]:.3f}" for p in RoutingPolicy]
            + [r.best_policy_for_probe()]
        )
        rows.append(
            ["", "adversary"]
            + [f"{r.adversary_slowdown[p.value]:.3f}" for p in RoutingPolicy]
            + [r.best_policy_for_adversary()]
        )
    return ascii_table(
        ["background", "view"] + [p.value for p in RoutingPolicy] + ["best"],
        rows,
    )
