"""System-state forecasting (the paper's closing proposal, §V-C).

*"Such models can then be used by system administrators or resource
managers to forecast future system state such as MPI traffic or I/O load
on the system."*  This module implements that proposal: instead of
predicting a job's execution time, the forecaster predicts the future
value of a *system* telemetry channel (e.g. ``IO_PT_FLIT_TOT`` — the
filesystem load, or ``SYS_RT_FLIT_TOT`` — aggregate MPI traffic) from the
recent history of all LDMS channels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.campaign.datasets import LDMS_FEATURES, RunDataset
from repro.features import get_store
from repro.ml.attention import AttentionForecaster
from repro.ml.metrics import mape, r2_score
from repro.ml.model_selection import GroupKFold


@dataclass
class SystemForecastResult:
    """Forecast quality for one system channel."""

    channel: str
    m: int
    k: int
    mape: float
    r2: float
    #: Persistence baseline (future = current level) for context.
    persistence_mape: float

    @property
    def beats_persistence(self) -> bool:
        return self.mape <= self.persistence_mape


def forecast_system_channel(
    ds: RunDataset,
    channel: str = "IO_PT_FLIT_TOT",
    m: int = 10,
    k: int = 20,
    n_splits: int = 3,
    seed: int = 0,
    model_factory=None,
) -> SystemForecastResult:
    """Predict the aggregate future value of one LDMS channel.

    Uses the probe runs' LDMS streams as the sampling of system state
    (each step contributes one observation window); grouped CV over runs.
    """
    if channel not in LDMS_FEATURES:
        raise ValueError(
            f"unknown channel {channel!r}; expected one of {LDMS_FEATURES}"
        )
    if model_factory is None:
        def model_factory(s):
            return AttentionForecaster(
                d_model=16, hidden=32, epochs=120, seed=s
            )
    ci = LDMS_FEATURES.index(channel)
    # LDMS windows with the channel's future sum as target, via the
    # dataset's FeatureStore (shared with any other channel's view).
    x, y, groups = get_store(ds).channel_windows(channel, m, k)
    # Persistence baseline: future sum ~= k x current value.
    persistence = x[:, -1, ci] * k

    gkf = GroupKFold(n_splits=n_splits, seed=seed)
    mapes, r2s, pers = [], [], []
    for fold, (train, test) in enumerate(gkf.split(groups)):
        model = model_factory(seed + fold)
        model.fit(x[train], y[train])
        pred = model.predict(x[test])
        mapes.append(mape(y[test], pred))
        r2s.append(r2_score(y[test], pred))
        pers.append(mape(y[test], persistence[test]))
    return SystemForecastResult(
        channel=channel,
        m=m,
        k=k,
        mape=float(np.mean(mapes)),
        r2=float(np.mean(r2s)),
        persistence_mape=float(np.mean(pers)),
    )
