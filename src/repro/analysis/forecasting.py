"""Forecasting execution time of future steps (§IV-C, §V-C).

The sliding-window formulation of the paper's Fig. 6: from the features of
the last ``m`` steps, predict the *sum* of the execution times of the next
``k`` steps.  Models are scored with MAPE under grouped cross-validation
(whole runs held out, since steps within a run are correlated).

Feature tiers reproduce the §V-C ablation (see
:data:`repro.features.TIERS`); every function here accepts either a tier
name or a :class:`~repro.features.FeatureSpec`, and obtains matrices,
names, and window tensors from the dataset's
:class:`~repro.features.FeatureStore` — one spec object guarantees the
features and their labels can never drift, and warm invocations reuse
the memoized tensors instead of rebuilding them per figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.campaign.datasets import RunDataset, RunRecord
from repro.features import TIERS, FeatureSpec, build_windows, get_store
from repro.ml.attention import AttentionForecaster, permutation_importance
from repro.ml.metrics import mape
from repro.ml.model_selection import GroupKFold
from repro.obs import span

__all__ = [
    "TIERS",
    "build_windows",
    "ForecastResult",
    "LongRunForecast",
    "default_forecaster",
    "forecast_mape",
    "ablation_grid",
    "forecasting_feature_importances",
    "long_run_forecast",
]


def default_forecaster(seed: int = 0) -> AttentionForecaster:
    return AttentionForecaster(
        d_model=24, hidden=48, lr=3e-3, epochs=220, batch_size=128, seed=seed
    )


@dataclass
class ForecastResult:
    """One cell of the Fig. 8 / Fig. 10 ablation grids."""

    key: str
    m: int
    k: int
    tier: str
    mape: float
    per_fold: list[float] = field(default_factory=list)


def forecast_mape(
    ds: RunDataset,
    m: int,
    k: int,
    tier: "str | FeatureSpec" = "app",
    n_splits: int = 3,
    seed: int = 0,
    model_factory=default_forecaster,
    align_m: int | None = None,
) -> ForecastResult:
    """Grouped-CV MAPE of the forecaster on one (m, k, tier) cell."""
    spec = FeatureSpec.resolve(tier)
    with span(
        "analysis.forecast", dataset=ds.key, m=m, k=k, tier=spec.name,
        splits=n_splits,
    ):
        x, y, groups = get_store(ds).windows(spec, m, k, align_m=align_m)
        gkf = GroupKFold(n_splits=n_splits, seed=seed)
        per_fold = []
        for fold, (train, test) in enumerate(gkf.split(groups)):
            with span("analysis.forecast.fold", fold=fold):
                model = model_factory(seed + fold)
                model.fit(x[train], y[train])
                per_fold.append(mape(y[test], model.predict(x[test])))
    return ForecastResult(
        key=ds.key,
        m=m,
        k=k,
        tier=spec.name,
        mape=float(np.mean(per_fold)),
        per_fold=per_fold,
    )


def ablation_grid(
    ds: RunDataset,
    ms: list[int],
    ks: list[int],
    tiers: "list[str | FeatureSpec]",
    n_splits: int = 3,
    seed: int = 0,
    model_factory=default_forecaster,
) -> list[ForecastResult]:
    """The full Fig. 8 / Fig. 10 grid for one dataset.

    Context lengths are aligned (``align_m = max(ms)``) so every cell
    predicts the same instants from the same number of samples.
    """
    out = []
    align = max(ms)
    specs = [FeatureSpec.resolve(t) for t in tiers]
    for k in ks:
        for m in ms:
            for spec in specs:
                out.append(
                    forecast_mape(
                        ds,
                        m,
                        k,
                        spec,
                        n_splits=n_splits,
                        seed=seed,
                        model_factory=model_factory,
                        align_m=align,
                    )
                )
    return out


def forecasting_feature_importances(
    ds: RunDataset,
    m: int,
    k: int,
    tier: "str | FeatureSpec",
    seed: int = 0,
    model_factory=default_forecaster,
) -> tuple[list[str], np.ndarray]:
    """Fig. 11: permutation importances of the forecasting model.

    Trained on all runs; importances are MAPE degradation when one feature
    channel is shuffled (normalised to sum to 1).
    """
    spec = FeatureSpec.resolve(tier)
    store = get_store(ds)
    names = store.feature_names(spec)
    with span(
        "analysis.importances", dataset=ds.key, m=m, k=k, tier=spec.name
    ):
        x, y, _ = store.windows(spec, m, k)
        model = model_factory(seed)
        model.fit(x, y)
        imp = permutation_importance(
            model, x, y, metric=mape, rng=np.random.default_rng(seed)
        )
    s = imp.sum()
    return names, imp / s if s > 0 else imp


@dataclass
class LongRunForecast:
    """Fig. 12: observed vs predicted segment times of a long run."""

    key: str
    segment_steps: int
    #: Step index at which each predicted segment starts.
    segment_starts: np.ndarray
    observed: np.ndarray
    predicted: np.ndarray

    @property
    def mape(self) -> float:
        return mape(self.observed, self.predicted)


def long_run_forecast(
    train_ds: RunDataset,
    long_run: RunRecord,
    m: int = 30,
    k: int = 40,
    tier: "str | FeatureSpec" = "app+placement+io+sys",
    seed: int = 0,
    model_factory=default_forecaster,
) -> LongRunForecast:
    """Train on the regular dataset, forecast an unseen long run (§V-C).

    The long run is divided into ``k``-step segments; each segment's
    aggregate time is predicted from the preceding ``m`` steps' features.
    No data from the long run enters training (paper: "no data from this
    run was included in training the model").
    """
    spec = FeatureSpec.resolve(tier)
    with span(
        "analysis.long_run_forecast", dataset=train_ds.key, m=m, k=k,
        tier=spec.name,
    ):
        x, y, _ = get_store(train_ds).windows(spec, m, k)
        model = model_factory(seed)
        model.fit(x, y)

        # Long-run features in the same tier layout (one-off view; the
        # spec guarantees the same column order as the training windows).
        holder = RunDataset(key="long", runs=[long_run])
        lf = spec.matrix(holder)[0]  # (T, H)
        ly = long_run.step_times
        t = len(ly)
        starts = np.arange(m, t - k + 1, k)
        windows = np.stack([lf[s - m : s, :] for s in starts])
        observed = np.array([ly[s : s + k].sum() for s in starts])
        predicted = model.predict(windows)
    return LongRunForecast(
        key=train_ds.key,
        segment_steps=k,
        segment_starts=starts,
        observed=observed,
        predicted=predicted,
    )
