"""Forecasting execution time of future steps (§IV-C, §V-C).

The sliding-window formulation of the paper's Fig. 6: from the features of
the last ``m`` steps, predict the *sum* of the execution times of the next
``k`` steps.  Models are scored with MAPE under grouped cross-validation
(whole runs held out, since steps within a run are correlated).

Feature tiers reproduce the §V-C ablation:

* ``app`` — the 13 AriesNCL counters of the job's own routers;
* ``+ placement`` — NUM_ROUTERS, NUM_GROUPS;
* ``+ io`` — LDMS counters of I/O routers;
* ``+ sys`` — LDMS counters of all other routers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.campaign.datasets import RunDataset, RunRecord
from repro.ml.attention import AttentionForecaster, permutation_importance
from repro.ml.metrics import mape
from repro.ml.model_selection import GroupKFold


def build_windows(
    features: np.ndarray, y: np.ndarray, m: int, k: int, align_m: int | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sliding windows over every run (paper Fig. 6).

    Parameters
    ----------
    features:
        (N, T, H) per-step features.
    y:
        (N, T) per-step times.
    m:
        Temporal context length (history steps, inclusive of the current
        step t_c).
    k:
        Forecast horizon; the target is ``sum(y[tc+1 : tc+1+k])``.
    align_m:
        When comparing several context lengths, pass the *largest* m here
        so every model sees the same prediction instants (otherwise a
        smaller m gets extra early-run training windows and the comparison
        confounds context length with sample count).

    Returns
    -------
    (x, targets, groups):
        (n, m, H) windows, (n,) aggregate targets, (n,) run indices.
    """
    features = np.asarray(features, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    n, t, h = features.shape
    if m < 1 or k < 1:
        raise ValueError("m and k must be positive")
    if align_m is not None and align_m < m:
        raise ValueError("align_m must be >= m")
    if (align_m or m) + k > t:
        raise ValueError(f"window m={align_m or m} + horizon k={k} exceeds T={t}")
    tcs = np.arange((align_m or m) - 1, t - k)
    xs = []
    ys = []
    gs = []
    for tc in tcs:
        xs.append(features[:, tc - m + 1 : tc + 1, :])
        ys.append(y[:, tc + 1 : tc + 1 + k].sum(axis=1))
        gs.append(np.arange(n))
    return (
        np.concatenate(xs, axis=0),
        np.concatenate(ys, axis=0),
        np.concatenate(gs, axis=0),
    )


def default_forecaster(seed: int = 0) -> AttentionForecaster:
    return AttentionForecaster(
        d_model=24, hidden=48, lr=3e-3, epochs=220, batch_size=128, seed=seed
    )


@dataclass
class ForecastResult:
    """One cell of the Fig. 8 / Fig. 10 ablation grids."""

    key: str
    m: int
    k: int
    tier: str
    mape: float
    per_fold: list[float] = field(default_factory=list)


#: Ablation tier name -> features() kwargs.
TIERS: dict[str, dict[str, bool]] = {
    "app": {},
    "app+placement": {"placement": True},
    "app+placement+io": {"placement": True, "io": True},
    "app+placement+io+sys": {"placement": True, "io": True, "sys": True},
}


def forecast_mape(
    ds: RunDataset,
    m: int,
    k: int,
    tier: str = "app",
    n_splits: int = 3,
    seed: int = 0,
    model_factory=default_forecaster,
    align_m: int | None = None,
) -> ForecastResult:
    """Grouped-CV MAPE of the forecaster on one (m, k, tier) cell."""
    if tier not in TIERS:
        raise ValueError(f"unknown tier {tier!r}; expected one of {list(TIERS)}")
    feats = ds.features(**TIERS[tier])
    x, y, groups = build_windows(feats, ds.Y, m, k, align_m=align_m)
    gkf = GroupKFold(n_splits=n_splits, seed=seed)
    per_fold = []
    for fold, (train, test) in enumerate(gkf.split(groups)):
        model = model_factory(seed + fold)
        model.fit(x[train], y[train])
        per_fold.append(mape(y[test], model.predict(x[test])))
    return ForecastResult(
        key=ds.key,
        m=m,
        k=k,
        tier=tier,
        mape=float(np.mean(per_fold)),
        per_fold=per_fold,
    )


def ablation_grid(
    ds: RunDataset,
    ms: list[int],
    ks: list[int],
    tiers: list[str],
    n_splits: int = 3,
    seed: int = 0,
    model_factory=default_forecaster,
) -> list[ForecastResult]:
    """The full Fig. 8 / Fig. 10 grid for one dataset.

    Context lengths are aligned (``align_m = max(ms)``) so every cell
    predicts the same instants from the same number of samples.
    """
    out = []
    align = max(ms)
    for k in ks:
        for m in ms:
            for tier in tiers:
                out.append(
                    forecast_mape(
                        ds,
                        m,
                        k,
                        tier,
                        n_splits=n_splits,
                        seed=seed,
                        model_factory=model_factory,
                        align_m=align,
                    )
                )
    return out


def forecasting_feature_importances(
    ds: RunDataset,
    m: int,
    k: int,
    tier: str,
    seed: int = 0,
    model_factory=default_forecaster,
) -> tuple[list[str], np.ndarray]:
    """Fig. 11: permutation importances of the forecasting model.

    Trained on all runs; importances are MAPE degradation when one feature
    channel is shuffled (normalised to sum to 1).
    """
    feats = ds.features(**TIERS[tier])
    names = ds.feature_names(**TIERS[tier])
    x, y, _ = build_windows(feats, ds.Y, m, k)
    model = model_factory(seed)
    model.fit(x, y)
    imp = permutation_importance(
        model, x, y, metric=mape, rng=np.random.default_rng(seed)
    )
    s = imp.sum()
    return names, imp / s if s > 0 else imp


@dataclass
class LongRunForecast:
    """Fig. 12: observed vs predicted segment times of a long run."""

    key: str
    segment_steps: int
    #: Step index at which each predicted segment starts.
    segment_starts: np.ndarray
    observed: np.ndarray
    predicted: np.ndarray

    @property
    def mape(self) -> float:
        return mape(self.observed, self.predicted)


def long_run_forecast(
    train_ds: RunDataset,
    long_run: RunRecord,
    m: int = 30,
    k: int = 40,
    tier: str = "app+placement+io+sys",
    seed: int = 0,
    model_factory=default_forecaster,
) -> LongRunForecast:
    """Train on the regular dataset, forecast an unseen long run (§V-C).

    The long run is divided into ``k``-step segments; each segment's
    aggregate time is predicted from the preceding ``m`` steps' features.
    No data from the long run enters training (paper: "no data from this
    run was included in training the model").
    """
    feats = train_ds.features(**TIERS[tier])
    x, y, _ = build_windows(feats, train_ds.Y, m, k)
    model = model_factory(seed)
    model.fit(x, y)

    # Long-run features in the same tier layout.
    holder = RunDataset(key="long", runs=[long_run])
    lf = holder.features(**TIERS[tier])[0]  # (T, H)
    ly = long_run.step_times
    t = len(ly)
    starts = np.arange(m, t - k + 1, k)
    windows = np.stack([lf[s - m : s, :] for s in starts])
    observed = np.array([ly[s : s + k].sum() for s in starts])
    predicted = model.predict(windows)
    return LongRunForecast(
        key=train_ds.key,
        segment_steps=k,
        segment_starts=starts,
        observed=observed,
        predicted=predicted,
    )
