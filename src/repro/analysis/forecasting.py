"""Forecasting execution time of future steps (§IV-C, §V-C).

The sliding-window formulation of the paper's Fig. 6: from the features of
the last ``m`` steps, predict the *sum* of the execution times of the next
``k`` steps.  Models are scored with MAPE under grouped cross-validation
(whole runs held out, since steps within a run are correlated).

Feature tiers reproduce the §V-C ablation (see
:data:`repro.features.TIERS`); every function here accepts either a tier
name or a :class:`~repro.features.FeatureSpec`, and obtains matrices,
names, and window tensors from the dataset's
:class:`~repro.features.FeatureStore` — one spec object guarantees the
features and their labels can never drift, and warm invocations reuse
the memoized tensors instead of rebuilding them per figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.campaign.datasets import RunDataset, RunRecord
from repro.features import TIERS, FeatureSpec, build_windows, get_store
from repro.ml.attention import AttentionForecaster, permutation_importance
from repro.ml.metrics import mape
from repro.ml.model_selection import GroupKFold
from repro.obs import span
from repro.parallel import effective_workers, parallel_map

__all__ = [
    "TIERS",
    "build_windows",
    "ForecastResult",
    "LongRunForecast",
    "default_forecaster",
    "forecast_mape",
    "ablation_grid",
    "fit_forecaster",
    "model_importances",
    "forecasting_feature_importances",
    "segment_forecast",
    "long_run_forecast",
]


def default_forecaster(seed: int = 0) -> AttentionForecaster:
    return AttentionForecaster(
        d_model=24, hidden=48, lr=3e-3, epochs=220, batch_size=128, seed=seed
    )


@dataclass
class ForecastResult:
    """One cell of the Fig. 8 / Fig. 10 ablation grids."""

    key: str
    m: int
    k: int
    tier: str
    mape: float
    per_fold: list[float] = field(default_factory=list)


def _score_windows(
    key: str,
    m: int,
    k: int,
    tier_name: str,
    x: np.ndarray,
    y: np.ndarray,
    groups: np.ndarray,
    n_splits: int,
    seed: int,
    model_factory,
) -> ForecastResult:
    """Score one (m, k, tier) cell's window tensors under grouped CV.

    Top-level so the ablation grid can ship cells to pool workers; the
    window tensors are built in the parent (they come from the dataset's
    memoized FeatureStore) and travel with the task, so a cell's result
    is a pure function of its arguments.
    """
    with span(
        "analysis.forecast", dataset=key, m=m, k=k, tier=tier_name,
        splits=n_splits,
    ):
        gkf = GroupKFold(n_splits=n_splits, seed=seed)
        per_fold = []
        for fold, (train, test) in enumerate(gkf.split(groups)):
            with span("analysis.forecast.fold", fold=fold):
                model = model_factory(seed + fold)
                model.fit(x[train], y[train])
                per_fold.append(mape(y[test], model.predict(x[test])))
    return ForecastResult(
        key=key,
        m=m,
        k=k,
        tier=tier_name,
        mape=float(np.mean(per_fold)),
        per_fold=per_fold,
    )


def forecast_mape(
    ds: RunDataset,
    m: int,
    k: int,
    tier: "str | FeatureSpec" = "app",
    n_splits: int = 3,
    seed: int = 0,
    model_factory=default_forecaster,
    align_m: int | None = None,
) -> ForecastResult:
    """Grouped-CV MAPE of the forecaster on one (m, k, tier) cell."""
    spec = FeatureSpec.resolve(tier)
    x, y, groups = get_store(ds).windows(spec, m, k, align_m=align_m)
    return _score_windows(
        ds.key, m, k, spec.name, x, y, groups, n_splits, seed, model_factory
    )


def ablation_grid(
    ds: RunDataset,
    ms: list[int],
    ks: list[int],
    tiers: "list[str | FeatureSpec]",
    n_splits: int = 3,
    seed: int = 0,
    model_factory=default_forecaster,
    workers: int | None = None,
) -> list[ForecastResult]:
    """The full Fig. 8 / Fig. 10 grid for one dataset.

    Context lengths are aligned (``align_m = max(ms)``) so every cell
    predicts the same instants from the same number of samples.

    The (m, k, tier) cells are independent and fan out over
    :mod:`repro.parallel` when ``workers`` (or ``REPRO_WORKERS``) asks
    for it.  Window tensors are built here in the parent — sequentially,
    against the dataset's memoized FeatureStore — and each cell seeds its
    models from the cell coordinates alone, so results are bit-identical
    for any worker count and arrive in grid order.  ``model_factory``
    must be picklable (a module-level callable) when ``workers > 1``.
    """
    align = max(ms)
    specs = [FeatureSpec.resolve(t) for t in tiers]
    store = get_store(ds)
    tasks = []
    for k in ks:
        for m in ms:
            for spec in specs:
                x, y, groups = store.windows(spec, m, k, align_m=align)
                tasks.append(
                    (ds.key, m, k, spec.name, x, y, groups, n_splits, seed,
                     model_factory)
                )
    with span(
        "analysis.ablation_grid",
        dataset=ds.key,
        cells=len(tasks),
        workers=effective_workers(workers),
    ):
        return parallel_map(_score_windows, tasks, workers=workers)


def fit_forecaster(
    ds: RunDataset,
    m: int,
    k: int,
    tier: "str | FeatureSpec",
    seed: int = 0,
    model_factory=default_forecaster,
):
    """Train one forecaster on all of a dataset's (m, k, tier) windows.

    This is the trained-model product the importance panels (Fig. 11)
    and the long-run forecast (Fig. 12) both consume — as a graph stage
    it is fitted once and shared.  The model holds plain numpy state, so
    it pickles cleanly into the artifact store.
    """
    spec = FeatureSpec.resolve(tier)
    with span(
        "analysis.fit_forecaster", dataset=ds.key, m=m, k=k, tier=spec.name
    ):
        x, y, _ = get_store(ds).windows(spec, m, k)
        model = model_factory(seed)
        model.fit(x, y)
    return model


def model_importances(
    model,
    ds: RunDataset,
    m: int,
    k: int,
    tier: "str | FeatureSpec",
    seed: int = 0,
) -> tuple[list[str], np.ndarray]:
    """Permutation importances of a trained forecaster on its windows."""
    spec = FeatureSpec.resolve(tier)
    store = get_store(ds)
    names = store.feature_names(spec)
    with span(
        "analysis.importances", dataset=ds.key, m=m, k=k, tier=spec.name
    ):
        x, y, _ = store.windows(spec, m, k)
        imp = permutation_importance(
            model, x, y, metric=mape, rng=np.random.default_rng(seed)
        )
    s = imp.sum()
    return names, imp / s if s > 0 else imp


def forecasting_feature_importances(
    ds: RunDataset,
    m: int,
    k: int,
    tier: "str | FeatureSpec",
    seed: int = 0,
    model_factory=default_forecaster,
) -> tuple[list[str], np.ndarray]:
    """Fig. 11: permutation importances of the forecasting model.

    Trained on all runs; importances are MAPE degradation when one feature
    channel is shuffled (normalised to sum to 1).
    """
    model = fit_forecaster(ds, m, k, tier, seed=seed, model_factory=model_factory)
    return model_importances(model, ds, m, k, tier, seed=seed)


@dataclass
class LongRunForecast:
    """Fig. 12: observed vs predicted segment times of a long run."""

    key: str
    segment_steps: int
    #: Step index at which each predicted segment starts.
    segment_starts: np.ndarray
    observed: np.ndarray
    predicted: np.ndarray

    @property
    def mape(self) -> float:
        return mape(self.observed, self.predicted)


def segment_forecast(
    model,
    train_key: str,
    long_run: RunRecord,
    m: int = 30,
    k: int = 40,
    tier: "str | FeatureSpec" = "app+placement+io+sys",
) -> LongRunForecast:
    """Forecast an unseen long run in ``k``-step segments with a trained
    model (the prediction half of :func:`long_run_forecast`)."""
    spec = FeatureSpec.resolve(tier)
    with span(
        "analysis.long_run_forecast", dataset=train_key, m=m, k=k,
        tier=spec.name,
    ):
        # Long-run features in the same tier layout (one-off view; the
        # spec guarantees the same column order as the training windows).
        holder = RunDataset(key="long", runs=[long_run])
        lf = spec.matrix(holder)[0]  # (T, H)
        ly = long_run.step_times
        t = len(ly)
        starts = np.arange(m, t - k + 1, k)
        windows = np.stack([lf[s - m : s, :] for s in starts])
        observed = np.array([ly[s : s + k].sum() for s in starts])
        predicted = model.predict(windows)
    return LongRunForecast(
        key=train_key,
        segment_steps=k,
        segment_starts=starts,
        observed=observed,
        predicted=predicted,
    )


def long_run_forecast(
    train_ds: RunDataset,
    long_run: RunRecord,
    m: int = 30,
    k: int = 40,
    tier: "str | FeatureSpec" = "app+placement+io+sys",
    seed: int = 0,
    model_factory=default_forecaster,
) -> LongRunForecast:
    """Train on the regular dataset, forecast an unseen long run (§V-C).

    The long run is divided into ``k``-step segments; each segment's
    aggregate time is predicted from the preceding ``m`` steps' features.
    No data from the long run enters training (paper: "no data from this
    run was included in training the model").
    """
    model = fit_forecaster(
        train_ds, m, k, tier, seed=seed, model_factory=model_factory
    )
    return segment_forecast(model, train_ds.key, long_run, m=m, k=k, tier=tier)
