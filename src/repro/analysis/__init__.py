"""The paper's three analyses (§IV), applied to campaign datasets.

* :mod:`~repro.analysis.neighborhood` — MI between concurrent users and
  run optimality (§IV-A, Table III);
* :mod:`~repro.analysis.deviation` — GBR+RFE prediction of per-step
  deviation from mean behaviour (§IV-B, Fig. 9);
* :mod:`~repro.analysis.forecasting` — attention-based forecasting of the
  next k steps from the last m (§IV-C, Figs. 8/10/11/12).

All matrices, mean-centered views, and window tensors are obtained
through :mod:`repro.features` (one :class:`~repro.features.FeatureStore`
per dataset), so analyses that share a campaign never rebuild them.
"""

from repro.analysis.baselines import BaselineComparison, compare_forecasters
from repro.analysis.deviation import DeviationAnalysis, deviation_analysis
from repro.analysis.routing_ablation import routing_ablation
from repro.analysis.system_state import forecast_system_channel
from repro.analysis.whatif import scheduling_whatif
from repro.analysis.forecasting import (
    ForecastResult,
    build_windows,
    forecast_mape,
    forecasting_feature_importances,
    long_run_forecast,
)
from repro.analysis.neighborhood import (
    NeighborhoodAnalysis,
    analyze_neighborhood,
    correlated_users_table,
)

__all__ = [
    "NeighborhoodAnalysis",
    "analyze_neighborhood",
    "correlated_users_table",
    "DeviationAnalysis",
    "deviation_analysis",
    "BaselineComparison",
    "compare_forecasters",
    "scheduling_whatif",
    "routing_ablation",
    "forecast_system_channel",
    "ForecastResult",
    "build_windows",
    "forecast_mape",
    "forecasting_feature_importances",
    "long_run_forecast",
]
