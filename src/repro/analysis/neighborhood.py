"""Neighbourhood analysis: assigning blame to concurrent users (§IV-A, §V-A).

For each dataset:

1. build the binary co-occurrence matrix M (runs x users) from the
   recorded neighbourhoods (users with >= 128-node-equivalent jobs running
   alongside each probe run);
2. label each run optimal iff its total time is below tau times the
   dataset mean (tau = 1);
3. rank users by the mutual information between their presence column and
   the optimality vector.

Table III then lists, per dataset, the high-MI users that appear in more
than one dataset's list.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.campaign.datasets import Campaign, RunDataset
from repro.ml.mi import columnwise_mi
from repro.parallel import parallel_map


@dataclass
class NeighborhoodAnalysis:
    """MI ranking of neighbourhood users for one dataset."""

    key: str
    users: list[str]
    mi: np.ndarray
    optimal_fraction: float
    #: Pearson correlation of user presence with (non-)optimality, used to
    #: orient the MI (MI is unsigned; blame needs direction).
    presence_slowdown_corr: np.ndarray = field(default=None)  # type: ignore[assignment]

    def ranked_users(self) -> list[tuple[str, float]]:
        order = np.argsort(-self.mi, kind="stable")
        return [(self.users[i], float(self.mi[i])) for i in order]

    def top_users(self, k: int, negative_only: bool = True) -> list[str]:
        """Top-k users by MI; optionally only those whose presence
        correlates with *slower* runs (the paper blames negative
        correlation with optimality)."""
        out = []
        for i in np.argsort(-self.mi, kind="stable"):
            if self.mi[i] <= 0:
                break
            if negative_only and self.presence_slowdown_corr[i] >= 0:
                continue
            out.append(self.users[i])
            if len(out) == k:
                break
        return out


def analyze_neighborhood(ds: RunDataset, tau: float = 1.0) -> NeighborhoodAnalysis:
    """Run the MI analysis on one dataset (paper §IV-A)."""
    if len(ds) == 0:
        raise ValueError(f"dataset {ds.key} is empty")
    vocab = sorted({u for r in ds.runs for u in r.neighborhood})
    index = {u: i for i, u in enumerate(vocab)}
    m = np.zeros((len(ds), len(vocab)), dtype=np.int8)
    for r, run in enumerate(ds.runs):
        for u in run.neighborhood:
            m[r, index[u]] = 1
    p = ds.optimality(tau=tau)
    if len(vocab) == 0:
        return NeighborhoodAnalysis(
            key=ds.key,
            users=[],
            mi=np.empty(0),
            optimal_fraction=float(p.mean()),
            presence_slowdown_corr=np.empty(0),
        )
    mi = columnwise_mi(m, p)
    # Orientation: corr(presence, optimality) < 0 means "user present =>
    # run slower".
    pm = p.astype(np.float64)
    corr = np.zeros(len(vocab))
    for j in range(len(vocab)):
        col = m[:, j].astype(np.float64)
        if col.std() > 0 and pm.std() > 0:
            corr[j] = float(np.corrcoef(col, pm)[0, 1])
    return NeighborhoodAnalysis(
        key=ds.key,
        users=vocab,
        mi=mi,
        optimal_fraction=float(p.mean()),
        presence_slowdown_corr=corr,
    )


def dataset_top_users(ds: RunDataset, top_k: int, tau: float) -> list[str]:
    """One dataset's high-MI user list (top-level: pool/stage task)."""
    if len(ds) < 3:
        return []
    return analyze_neighborhood(ds, tau=tau).top_users(top_k)


#: Backwards-compatible alias (pre-DAG pool task name).
_dataset_top_users = dataset_top_users


def merge_user_lists(
    per_dataset: dict[str, list[str]], min_lists: int = 2
) -> dict[str, list[str]]:
    """Cross-dataset filter: keep users on at least ``min_lists`` lists."""
    counts: dict[str, int] = {}
    for users in per_dataset.values():
        for u in users:
            counts[u] = counts.get(u, 0) + 1
    keep = {u for u, c in counts.items() if c >= min_lists}
    return {
        key: sorted(u for u in users if u in keep)
        for key, users in per_dataset.items()
    }


def correlated_users_table(
    campaign: Campaign,
    dataset_keys: list[str] | None = None,
    top_k: int = 9,
    min_lists: int = 2,
    tau: float = 1.0,
    workers: int | None = None,
) -> dict[str, list[str]]:
    """The paper's Table III: per dataset, high-MI users appearing in more
    than one dataset's list.

    Parameters
    ----------
    campaign:
        The campaign to analyse.
    dataset_keys:
        Datasets to include (default: all regular datasets).
    top_k:
        High-MI list length per dataset before cross-dataset filtering
        (the paper's lists have 3–9 entries).
    min_lists:
        Keep users appearing in at least this many datasets' lists.
    workers:
        Datasets are independent tasks fanned out over
        :mod:`repro.parallel`; results come back in key order, so the
        table is identical for any worker count.
    """
    if dataset_keys is None:
        dataset_keys = [k for k in campaign.keys() if "-long" not in k]
    tasks = [(campaign[key], top_k, tau) for key in dataset_keys]
    lists = parallel_map(dataset_top_users, tasks, workers=workers)
    per_dataset: dict[str, list[str]] = dict(zip(dataset_keys, lists))
    return merge_user_lists(per_dataset, min_lists=min_lists)


def recovery_rate(
    table: dict[str, list[str]], ground_truth: list[str]
) -> float:
    """Evaluation helper: fraction of blamed users that are ground-truth
    aggressors (the analyses never see this; it scores the reproduction)."""
    blamed = {u for users in table.values() for u in users}
    if not blamed:
        return 0.0
    truth = set(ground_truth) | {"User-8"}  # probe self-interference
    return len(blamed & truth) / len(blamed)
