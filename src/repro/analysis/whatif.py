"""Congestion-aware scheduling what-if (the paper's §V-A implication).

The paper closes its neighbourhood analysis with: *"A resource manager
can use such historical data to delay scheduling jobs that are
communication-sensitive when certain other jobs are already running on
the system."*  This module quantifies that opportunity on the campaign
data itself:

1. identify the aggressor set from the Table III analysis (no ground
   truth used);
2. partition each dataset's runs by whether an identified aggressor was
   in the neighbourhood;
3. report the counterfactual saving if aggressor-overlapped runs had run
   at the aggressor-free mean instead, net of an assumed queue-delay
   overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.neighborhood import correlated_users_table
from repro.campaign.datasets import Campaign, RunDataset


@dataclass
class WhatIfResult:
    """Scheduling what-if for one dataset.

    "Overlapped" runs had an above-median count of identified aggressors
    in their neighbourhood; "clean" runs had at-or-below-median counts.
    """

    key: str
    aggressors: list[str]
    runs_overlapped: int
    runs_clean: int
    mean_time_overlapped: float
    mean_time_clean: float
    #: Fractional saving on overlapped runs if they ran at the clean mean.
    saving_fraction: float
    #: Net machine-time saving across the dataset after charging the
    #: delay overhead against the saving.
    net_saving_fraction: float
    #: Pearson correlation of aggressor count with run total time.
    aggressor_time_correlation: float = 0.0


def scheduling_whatif(
    campaign: Campaign,
    dataset_keys: list[str] | None = None,
    delay_overhead_fraction: float = 0.05,
) -> list[WhatIfResult]:
    """Estimate the §V-A scheduling opportunity per dataset.

    Parameters
    ----------
    campaign:
        The campaign to analyse.
    dataset_keys:
        Datasets to include (default: all regular datasets with runs).
    delay_overhead_fraction:
        Assumed cost of delaying a job until the aggressors drain,
        expressed as a fraction of the run's clean execution time
        (queueing is not free: the node-hours spent waiting are idle).
    """
    aggr_table = correlated_users_table(campaign)
    aggressors = sorted({u for users in aggr_table.values() for u in users})
    if dataset_keys is None:
        dataset_keys = [k for k in campaign.keys() if "-long" not in k]
    out: list[WhatIfResult] = []
    for key in dataset_keys:
        ds = campaign[key]
        if len(ds) < 4:
            continue
        out.append(_whatif_one(ds, aggressors, delay_overhead_fraction))
    return out


def _whatif_one(
    ds: RunDataset, aggressors: list[str], delay_overhead: float
) -> WhatIfResult:
    """Partition runs by aggressor *load* (count of identified aggressors
    in the neighbourhood, above vs at-or-below the dataset median).

    On a production-utilisation machine some aggressor is almost always
    running, so a binary any-aggressor split is degenerate; what a
    delay-aware scheduler can actually choose between is heavy and light
    aggressor neighbourhoods.
    """
    agg = set(aggressors)
    totals = ds.totals
    counts = np.array(
        [len(agg & set(r.neighborhood)) for r in ds.runs], dtype=np.int64
    )
    threshold = float(np.median(counts))
    overlapped = counts > threshold
    t_over = totals[overlapped]
    t_clean = totals[~overlapped]
    corr = 0.0
    if counts.std() > 0 and totals.std() > 0:
        corr = float(np.corrcoef(counts, totals)[0, 1])
    if len(t_clean) == 0 or len(t_over) == 0:
        # Degenerate partition: no counterfactual available.
        return WhatIfResult(
            key=ds.key,
            aggressors=aggressors,
            runs_overlapped=int(overlapped.sum()),
            runs_clean=int((~overlapped).sum()),
            mean_time_overlapped=float(t_over.mean()) if len(t_over) else 0.0,
            mean_time_clean=float(t_clean.mean()) if len(t_clean) else 0.0,
            saving_fraction=0.0,
            net_saving_fraction=0.0,
            aggressor_time_correlation=corr,
        )
    mean_over = float(t_over.mean())
    mean_clean = float(t_clean.mean())
    saving = max(0.0, (mean_over - mean_clean) / mean_over)
    # Net over the whole dataset: overlapped runs save `saving` but pay the
    # delay overhead (relative to clean time); clean runs are untouched.
    total_time = float(totals.sum())
    gross = saving * float(t_over.sum())
    cost = delay_overhead * mean_clean * len(t_over)
    net = max(0.0, gross - cost) / total_time
    return WhatIfResult(
        key=ds.key,
        aggressors=aggressors,
        runs_overlapped=int(overlapped.sum()),
        runs_clean=int((~overlapped).sum()),
        mean_time_overlapped=mean_over,
        mean_time_clean=mean_clean,
        saving_fraction=saving,
        net_saving_fraction=net,
        aggressor_time_correlation=corr,
    )
