"""Placement-policy study: what does fragmentation cost?

The paper records NUM_ROUTERS / NUM_GROUPS because placement fragmentation
is a suspected variability factor (§III-C), and its related work (Yang et
al., SC'16) studies dragonfly placement directly.  This study sweeps the
allocation policy for a probe job under fixed background pressure and
reports the placement features alongside the resulting slowdowns —
quantifying how much of the variability a placement-aware scheduler
could remove.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.engine import CongestionEngine
from repro.network.traffic import router_alltoall_flows, uniform_random_flows
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.placement import AllocationPolicy, allocate, placement_features


@dataclass
class PlacementTrial:
    """One (policy, seed) probe placement and its congestion outcome."""

    policy: str
    num_routers: int
    num_groups: int
    fabric_slowdown: float
    endpoint_slowdown: float


@dataclass
class PlacementStudy:
    """All trials, with per-policy aggregates."""

    trials: list[PlacementTrial]

    def by_policy(self) -> dict[str, dict[str, float]]:
        out: dict[str, dict[str, float]] = {}
        for policy in {t.policy for t in self.trials}:
            rows = [t for t in self.trials if t.policy == policy]
            out[policy] = {
                "mean_fabric": float(np.mean([t.fabric_slowdown for t in rows])),
                "mean_endpoint": float(
                    np.mean([t.endpoint_slowdown for t in rows])
                ),
                "mean_groups": float(np.mean([t.num_groups for t in rows])),
                "mean_routers": float(np.mean([t.num_routers for t in rows])),
            }
        return out

    def fragmentation_cost(self) -> float:
        """Mean fabric slowdown, random minus contiguous placement."""
        agg = self.by_policy()
        if "random" not in agg or "contiguous" not in agg:
            return 0.0
        return agg["random"]["mean_fabric"] - agg["contiguous"]["mean_fabric"]


def placement_study(
    topology: DragonflyTopology,
    probe_nodes: int = 64,
    probe_bytes: float = 30e9,
    background_nodes: int = 256,
    background_bytes_per_node: float = 6e8,
    trials_per_policy: int = 5,
    seed: int = 0,
) -> PlacementStudy:
    """Sweep allocation policies for a probe under fixed background.

    The background is placed randomly once (a busy machine); each trial
    re-places only the probe, so differences isolate the probe's own
    placement quality.
    """
    engine = CongestionEngine(topology)
    rng = np.random.default_rng(seed)
    bg_nodes = allocate(
        topology,
        topology.compute_nodes,
        min(background_nodes, len(topology.compute_nodes) - probe_nodes),
        AllocationPolicy.RANDOM,
        rng,
    )
    bg = engine.route(
        uniform_random_flows(
            topology, bg_nodes, background_bytes_per_node, rng, fanout=3
        )
    )
    base = engine.solve([bg]).as_base()
    free = np.setdiff1d(topology.compute_nodes, bg_nodes)

    trials: list[PlacementTrial] = []
    for policy in AllocationPolicy:
        for t in range(trials_per_policy):
            trial_rng = np.random.default_rng(seed * 1000 + t)
            nodes = allocate(topology, free, probe_nodes, policy, trial_rng)
            flows = router_alltoall_flows(topology, nodes, probe_bytes)
            routed = engine.route(flows)
            state = engine.solve([routed], base=base)
            fabric, endpoint = state.metrics[0].volume_weighted(flows.volume)
            feats = placement_features(topology, nodes)
            trials.append(
                PlacementTrial(
                    policy=policy.value,
                    num_routers=feats["NUM_ROUTERS"],
                    num_groups=feats["NUM_GROUPS"],
                    fabric_slowdown=fabric,
                    endpoint_slowdown=endpoint,
                )
            )
    return PlacementStudy(trials=trials)


def render_placement_study(study: PlacementStudy) -> str:
    from repro.experiments.report import ascii_table

    agg = study.by_policy()
    rows = [
        [
            policy,
            f"{v['mean_routers']:.0f}",
            f"{v['mean_groups']:.1f}",
            f"{v['mean_fabric']:.3f}",
            f"{v['mean_endpoint']:.3f}",
        ]
        for policy, v in sorted(agg.items())
    ]
    table = ascii_table(
        ["policy", "routers", "groups", "fabric slowdown", "endpoint slowdown"],
        rows,
    )
    return (
        f"{table}\n\nfragmentation cost (random - contiguous, fabric): "
        f"{study.fragmentation_cost():+.3f}"
    )
