"""Baseline forecasters, for ablating the paper's attention model.

The paper adopts attention (§IV-C) without comparing against simpler
regressors.  This module adds the natural baselines an open-source user
would ask for — all satisfying the :class:`~repro.ml.pipeline.Estimator`
protocol, so they drop into the same grouped-CV loop:

* **GBR / ridge over flattened windows** — flat regressors behind a
  :class:`~repro.ml.pipeline.WindowFlattener` (built by
  :func:`~repro.ml.pipeline.make_forecaster`);
* **carry-forward** — predict from a duration statistic of the window
  (no learning; the floor any model must beat);
* **mean-target** — predict the training-mean target.

Window tensors come from the dataset's
:class:`~repro.features.FeatureStore`, shared with the Fig. 8/10 grids.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.campaign.datasets import RunDataset
from repro.features import TIERS, FeatureSpec, get_store  # noqa: F401 (TIERS re-export)
from repro.ml.metrics import mape
from repro.ml.model_selection import GroupKFold
from repro.ml.pipeline import make_forecaster


def GBRForecaster(
    n_estimators: int = 120,
    max_depth: int = 3,
    learning_rate: float = 0.08,
    seed: int = 0,
):
    """Gradient-boosted regression over flattened (m, H) windows.

    A :class:`~repro.ml.pipeline.Pipeline` factory kept under the old
    class name.
    """
    return make_forecaster(
        "gbr",
        seed=seed,
        n_estimators=n_estimators,
        max_depth=max_depth,
        learning_rate=learning_rate,
    )


class CarryForwardForecaster:
    """Predict k * (duration statistic of the window) — no learning.

    Requires the per-step *time* as one of the feature channels is not
    guaranteed, so it learns a single scale factor from the training
    targets instead: ``yhat = scale * stat(window)``, with ``stat`` the
    mean over a designated channel.  With ``channel=None`` it degenerates
    to predicting the training-mean target (the weakest sane baseline).
    """

    def __init__(self, channel: int | None = None, last_only: bool = False) -> None:
        self.channel = channel
        self.last_only = last_only
        self._scale: float = 1.0
        self._mean: float = 0.0

    def _stat(self, x: np.ndarray) -> np.ndarray:
        if self.channel is None:
            return np.ones(len(x))
        series = x[:, :, self.channel]
        return series[:, -1] if self.last_only else series.mean(axis=1)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "CarryForwardForecaster":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        s = self._stat(x)
        denom = float((s * s).sum())
        self._scale = float((s * y).sum() / denom) if denom > 0 else 0.0
        self._mean = float(y.mean())
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if self.channel is None:
            return np.full(len(x), self._mean)
        return self._scale * self._stat(x)


@dataclass
class BaselineComparison:
    """MAPE of every forecaster under the same grouped CV split."""

    key: str
    m: int
    k: int
    tier: str
    mapes: dict[str, float]

    def winner(self) -> str:
        return min(self.mapes, key=self.mapes.get)


def compare_forecasters(
    ds: RunDataset,
    m: int,
    k: int,
    tier: "str | FeatureSpec" = "app",
    n_splits: int = 3,
    seed: int = 0,
    attention_factory=None,
) -> BaselineComparison:
    """Attention vs GBR vs carry-forward baselines on one (m, k) cell."""
    from repro.analysis.forecasting import default_forecaster

    if attention_factory is None:
        attention_factory = default_forecaster
    spec = FeatureSpec.resolve(tier)
    x, y, groups = get_store(ds).windows(spec, m, k)

    models = {
        "attention": lambda s: attention_factory(s),
        "gbr": lambda s: make_forecaster("gbr", seed=s),
        "ridge": lambda s: make_forecaster("ridge"),
        "mean-target": lambda s: CarryForwardForecaster(channel=None),
    }
    per_model: dict[str, list[float]] = {name: [] for name in models}
    gkf = GroupKFold(n_splits=n_splits, seed=seed)
    for fold, (train, test) in enumerate(gkf.split(groups)):
        for name, factory in models.items():
            model = factory(seed + fold)
            model.fit(x[train], y[train])
            per_model[name].append(mape(y[test], model.predict(x[test])))
    return BaselineComparison(
        key=ds.key,
        m=m,
        k=k,
        tier=spec.name,
        mapes={name: float(np.mean(v)) for name, v in per_model.items()},
    )
