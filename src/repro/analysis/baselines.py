"""Baseline forecasters, for ablating the paper's attention model.

The paper adopts attention (§IV-C) without comparing against simpler
regressors.  This module adds the natural baselines an open-source user
would ask for:

* **GBR over flattened windows** — the same gradient-boosted machinery
  the deviation models use, with the (m, H) window unrolled to m*H
  features;
* **last-value carry-forward** — predict k times the most recent step's
  duration (no learning at all; the floor any model must beat);
* **window-mean carry-forward** — k times the mean of the last m steps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.campaign.datasets import RunDataset
from repro.analysis.forecasting import TIERS, build_windows
from repro.ml.gbr import GradientBoostedRegressor
from repro.ml.metrics import mape
from repro.ml.model_selection import GroupKFold


class GBRForecaster:
    """Gradient-boosted regression over flattened (m, H) windows."""

    def __init__(
        self,
        n_estimators: int = 120,
        max_depth: int = 3,
        learning_rate: float = 0.08,
        seed: int = 0,
    ) -> None:
        self._gbr = GradientBoostedRegressor(
            n_estimators=n_estimators,
            max_depth=max_depth,
            learning_rate=learning_rate,
            random_state=seed,
        )

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GBRForecaster":
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 3:
            raise ValueError("x must be (n, m, H) windows")
        self._gbr.fit(x.reshape(len(x), -1), np.asarray(y, dtype=np.float64))
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return self._gbr.predict(x.reshape(len(x), -1))


class CarryForwardForecaster:
    """Predict k * (duration statistic of the window) — no learning.

    Requires the per-step *time* as one of the feature channels is not
    guaranteed, so it learns a single scale factor from the training
    targets instead: ``yhat = scale * stat(window)``, with ``stat`` the
    mean over a designated channel.  With ``channel=None`` it degenerates
    to predicting the training-mean target (the weakest sane baseline).
    """

    def __init__(self, channel: int | None = None, last_only: bool = False) -> None:
        self.channel = channel
        self.last_only = last_only
        self._scale: float = 1.0
        self._mean: float = 0.0

    def _stat(self, x: np.ndarray) -> np.ndarray:
        if self.channel is None:
            return np.ones(len(x))
        series = x[:, :, self.channel]
        return series[:, -1] if self.last_only else series.mean(axis=1)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "CarryForwardForecaster":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        s = self._stat(x)
        denom = float((s * s).sum())
        self._scale = float((s * y).sum() / denom) if denom > 0 else 0.0
        self._mean = float(y.mean())
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if self.channel is None:
            return np.full(len(x), self._mean)
        return self._scale * self._stat(x)


@dataclass
class BaselineComparison:
    """MAPE of every forecaster under the same grouped CV split."""

    key: str
    m: int
    k: int
    tier: str
    mapes: dict[str, float]

    def winner(self) -> str:
        return min(self.mapes, key=self.mapes.get)


def compare_forecasters(
    ds: RunDataset,
    m: int,
    k: int,
    tier: str = "app",
    n_splits: int = 3,
    seed: int = 0,
    attention_factory=None,
) -> BaselineComparison:
    """Attention vs GBR vs carry-forward baselines on one (m, k) cell."""
    from repro.analysis.forecasting import default_forecaster

    if attention_factory is None:
        attention_factory = default_forecaster
    feats = ds.features(**TIERS[tier])
    x, y, groups = build_windows(feats, ds.Y, m, k)

    from repro.ml.linear import RidgeForecaster

    models = {
        "attention": lambda s: attention_factory(s),
        "gbr": lambda s: GBRForecaster(seed=s),
        "ridge": lambda s: RidgeForecaster(),
        "mean-target": lambda s: CarryForwardForecaster(channel=None),
    }
    per_model: dict[str, list[float]] = {name: [] for name in models}
    gkf = GroupKFold(n_splits=n_splits, seed=seed)
    for fold, (train, test) in enumerate(gkf.split(groups)):
        for name, factory in models.items():
            model = factory(seed + fold)
            model.fit(x[train], y[train])
            per_model[name].append(mape(y[test], model.predict(x[test])))
    return BaselineComparison(
        key=ds.key,
        m=m,
        k=k,
        tier=tier,
        mapes={name: float(np.mean(v)) for name, v in per_model.items()},
    )
