"""Process-wide metrics registry: counters, gauges, histograms.

One registry (:data:`METRICS`) serves the whole process.  Instruments are
created on first use and *persist across resets* — ``reset()`` zeroes
values in place, so modules may cache instrument references at import
time (the feature store does) and tests can still start from a clean
slate.

Values are plain Python numbers guarded by a per-instrument lock, so
concurrent threads can increment safely; worker *processes* have their
own registries (their final values travel through the trace sink, see
:mod:`repro.obs.trace`).
"""

from __future__ import annotations

import math
import threading


class Counter:
    """A monotonically increasing count (resettable to zero)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0

    def _snapshot(self) -> int:
        return self._value


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, v: float) -> None:
        with self._lock:
            self._value = float(v)

    def add(self, v: float) -> None:
        with self._lock:
            self._value += float(v)

    @property
    def value(self) -> float:
        return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def _snapshot(self) -> float:
        return self._value


class Histogram:
    """Streaming summary of observed values: count/sum/min/max/mean."""

    __slots__ = ("name", "_lock", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, v: float) -> None:
        v = float(v)
        with self._lock:
            self.count += 1
            self.total += v
            if v < self.min:
                self.min = v
            if v > self.max:
                self.max = v

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def _reset(self) -> None:
        with self._lock:
            self.count = 0
            self.total = 0.0
            self.min = math.inf
            self.max = -math.inf

    def _snapshot(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "total": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Named instruments, created on first use, reset in place."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls):
        inst = self._instruments.get(name)
        if inst is None:
            with self._lock:
                inst = self._instruments.setdefault(name, cls(name))
        if not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} is a {type(inst).__name__}, "
                f"requested as {cls.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def reset(self) -> None:
        """Zero every instrument in place (references stay valid)."""
        with self._lock:
            for inst in self._instruments.values():
                inst._reset()

    def snapshot(self) -> dict[str, object]:
        """JSON-serialisable view of every non-trivial instrument value."""
        with self._lock:
            items = list(self._instruments.items())
        out: dict[str, object] = {}
        for name, inst in items:
            v = inst._snapshot()
            if v == 0 or (isinstance(v, dict) and not v.get("count")):
                continue  # uninteresting zeros keep traces compact
            out[name] = v
        return out


#: The process-wide registry.  Worker processes get their own copy; its
#: final values are flushed into the trace file tagged with their pid.
METRICS = MetricsRegistry()
