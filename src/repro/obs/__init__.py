"""Observability: spans, metrics, run manifests, traces, and logging.

The reproduction instruments *itself* the way the paper instrumented
Cori: lightweight always-available counters plus an opt-in trace of
where the time goes.

* :func:`span` / :func:`traced` — hierarchical timing spans
  (:mod:`repro.obs.spans`); near-zero cost unless ``REPRO_TRACE=1``;
* :data:`METRICS` — the process-wide counter/gauge/histogram registry
  (:mod:`repro.obs.metrics`), always on (plain ints under a lock);
* :mod:`repro.obs.trace` — per-invocation run manifest + JSONL sink
  (``REPRO_TRACE``, ``REPRO_TRACE_DIR``), joined transparently by
  campaign worker processes;
* ``python -m repro.obs report`` — self/cumulative time table and cache
  hit rates from one trace (:mod:`repro.obs.report`);
* :func:`profiled_span` — a span that also samples CPU/RSS/GC/cache
  deltas when ``REPRO_PROFILE=1`` (:mod:`repro.obs.profile`); the
  ``export`` and ``diff`` CLI subcommands turn the resulting traces
  into viewer files and regression verdicts;
* :func:`get_logger` / :func:`configure_logging` — the package's single
  stdlib-logging setup (``REPRO_LOG_LEVEL``).

See ``docs/observability.md`` for the trace schema and workflows.
"""

from repro.obs.log import configure_logging, get_logger
from repro.obs.metrics import METRICS, Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import profile_requested, profiled_span
from repro.obs.spans import current_span_id, remote_parent, span, traced
from repro.obs.trace import (
    annotate,
    end_run,
    ensure_run,
    event,
    start_run,
    trace_dir,
    trace_requested,
)

__all__ = [
    "span",
    "traced",
    "profiled_span",
    "profile_requested",
    "current_span_id",
    "remote_parent",
    "METRICS",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "start_run",
    "ensure_run",
    "end_run",
    "event",
    "annotate",
    "trace_dir",
    "trace_requested",
    "get_logger",
    "configure_logging",
]
