"""The perf regression sentinel: compare run profiles per stage.

``python -m repro.obs diff <baseline> <current>`` compares per-stage
wall (and optionally CPU / peak RSS) between two profiles and exits
nonzero when any stage breaches its threshold — the gate the CI
``profile`` job runs against the committed
``benchmarks/baselines/PROFILE_all_fast.json``.

Accepted inputs, auto-detected per file:

* a harness baseline (``PROFILE_all_fast.json``, calibration-normalized
  walls under ``stages``),
* a run ``profile.json`` written by ``trace.end_run`` /
  ``GraphRunner`` (raw walls),
* a ``report --format json`` document (its ``profile`` key),
* a raw ``.jsonl`` trace (aggregated on the fly).

When both sides carry ``normalized_wall`` (harness profiles), the
comparison is machine-speed independent; raw-wall comparisons are only
meaningful on comparable hardware, which is why CI diffs two harness
profiles.  Stages below the ``--min-wall`` noise floor and stages
present on only one side are reported but never fail the gate (the DAG
legitimately changes shape when experiments are added).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

#: Hard-fail default: a stage 25% over its baseline wall is a
#: regression, matching the ``compare_bench`` CI tolerance.
DEFAULT_WALL_RATIO = 1.25
#: Stages cheaper than this (in the profile's wall unit) jitter too
#: much to gate; they are skipped with a note.
DEFAULT_MIN_WALL = 0.5


def load_profile_stages(
    path: "Path | str", section: str = "stages"
) -> dict[str, dict]:
    """Normalise any accepted profile input to ``{stage: record}``.

    Records carry ``wall`` (preferring ``normalized_wall`` when the
    source has one), plus ``cpu`` and ``maxrss_kb`` when available.
    ``section="spans"`` selects the per-span-name records instead of
    the graph stages — that is how ``diff --spans`` compares campaign
    internals (``campaign.task.solve``, worker batches, ...) between
    two runs that never open a graph stage.
    """
    path = Path(path)
    if path.suffix == ".jsonl":
        from repro.obs.profile import build_profile
        from repro.obs.report import load_trace

        prof = build_profile(load_trace(path))
        raw = prof[section] if prof else {}
    else:
        obj = json.loads(path.read_text(encoding="utf-8"))
        if section in obj:
            raw = obj[section]
        elif isinstance(obj.get("profile"), dict):
            raw = obj["profile"].get(section, {})
        else:
            raise ValueError(
                f"{path} holds no per-stage profile "
                f"(expected {section!r} or a report's 'profile' section)"
            )
    out: dict[str, dict] = {}
    for name, rec in raw.items():
        wall = rec.get("normalized_wall")
        if wall is None:
            wall = rec.get("wall", rec.get("wall_s", 0.0))
        cpu = rec.get("normalized_cpu")
        if cpu is None:
            cpu = rec.get("cpu_s")
        if cpu is None and ("cpu_user" in rec or "cpu_sys" in rec):
            cpu = rec.get("cpu_user", 0.0) + rec.get("cpu_sys", 0.0)
        out[name] = {
            "wall": float(wall or 0.0),
            "cpu": None if cpu is None else float(cpu),
            "maxrss_kb": rec.get("maxrss_kb"),
            "status": rec.get("status"),
        }
    return out


@dataclass
class DiffLine:
    """One compared stage: its ratios and whether it breached."""

    stage: str
    kind: str  # "ok" | "regressed" | "skipped" | "new" | "missing"
    detail: str


def compare_profiles(
    baseline: dict[str, dict],
    current: dict[str, dict],
    *,
    wall_ratio: float = DEFAULT_WALL_RATIO,
    cpu_ratio: float = 0.0,
    rss_ratio: float = 0.0,
    min_wall: float = DEFAULT_MIN_WALL,
) -> tuple[list[DiffLine], list[str]]:
    """Per-stage comparison; returns (report lines, failed stages).

    ``wall_ratio`` gates always; ``cpu_ratio`` / ``rss_ratio`` gate only
    when > 0 (CPU and RSS vary with runner shape, so they default to
    informational).
    """
    lines: list[DiffLine] = []
    failures: list[str] = []
    for stage in sorted(baseline):
        base = baseline[stage]
        cur = current.get(stage)
        if cur is None:
            lines.append(
                DiffLine(stage, "missing", "not in current profile")
            )
            continue
        if base["wall"] < min_wall:
            lines.append(
                DiffLine(
                    stage,
                    "skipped",
                    f"baseline wall {base['wall']:.3f} under the "
                    f"{min_wall} noise floor",
                )
            )
            continue
        ratio = cur["wall"] / base["wall"] if base["wall"] else float("inf")
        parts = [f"wall {base['wall']:.3f} -> {cur['wall']:.3f} ({ratio:.2f}x)"]
        breached = ratio > wall_ratio
        if base.get("cpu") and cur.get("cpu") is not None:
            c_ratio = cur["cpu"] / base["cpu"]
            parts.append(f"cpu {c_ratio:.2f}x")
            if cpu_ratio > 0 and c_ratio > cpu_ratio:
                breached = True
        if base.get("maxrss_kb") and cur.get("maxrss_kb"):
            r_ratio = cur["maxrss_kb"] / base["maxrss_kb"]
            parts.append(f"rss {r_ratio:.2f}x")
            if rss_ratio > 0 and r_ratio > rss_ratio:
                breached = True
        if breached:
            failures.append(stage)
            lines.append(DiffLine(stage, "regressed", ", ".join(parts)))
        else:
            lines.append(DiffLine(stage, "ok", ", ".join(parts)))
    for stage in sorted(set(current) - set(baseline)):
        lines.append(
            DiffLine(stage, "new", "not in baseline (informational)")
        )
    return lines, failures


_MARKS = {
    "ok": "  ok   ",
    "regressed": "  FAIL ",
    "skipped": "  skip ",
    "new": "  new  ",
    "missing": "  gone ",
}


def render_diff(
    lines: list[DiffLine], failures: list[str], *, verbose: bool = False
) -> str:
    """Human-readable diff: regressions always, the rest under -v."""
    out: list[str] = []
    for line in lines:
        if not verbose and line.kind in ("ok", "skipped"):
            continue
        out.append(f"{_MARKS[line.kind]} {line.stage}: {line.detail}")
    compared = sum(1 for line in lines if line.kind in ("ok", "regressed"))
    skipped = sum(1 for line in lines if line.kind == "skipped")
    out.append(
        f"{compared} stage(s) compared, {skipped} under the noise floor, "
        f"{len(failures)} regression(s)"
    )
    return "\n".join(out)
