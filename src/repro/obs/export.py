"""Export a JSONL trace to standard profile-viewer formats.

``python -m repro.obs export [trace] --format chrome-trace`` converts
the span records into formats external viewers open directly:

``chrome-trace``
    The Chrome Trace Event JSON format (``chrome://tracing``, Perfetto,
    and speedscope all load it): one complete ``"X"`` event per span,
    microsecond timestamps relative to the earliest span, ``pid``/
    ``tid`` from the recording process so every worker gets its own
    track, span attributes and ``prof`` resource deltas in ``args``.

``speedscope``
    The native speedscope evented format: one profile per process with
    strictly nested open/close events derived from the span intervals
    (overlap from racing clocks is clamped to the enclosing span).

Both are pure functions of the loaded trace — exporting never touches
the trace file or any experiment output.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.report import TraceData

FORMATS = ("chrome-trace", "speedscope")


def chrome_trace(data: TraceData) -> dict:
    """The trace as a Chrome Trace Event ``traceEvents`` document."""
    spans = [sp for sp in data.spans if "ts" in sp and "dur" in sp]
    t0 = min((sp["ts"] for sp in spans), default=0.0)
    events = []
    for sp in sorted(spans, key=lambda s: s["ts"]):
        args = dict(sp.get("attrs", {}))
        if "prof" in sp:
            args["prof"] = sp["prof"]
        if not sp.get("ok", True):
            args["err"] = sp.get("err", "?")
        events.append(
            {
                "name": sp["name"],
                "cat": "span",
                "ph": "X",
                "ts": round((sp["ts"] - t0) * 1e6, 1),
                "dur": round(sp["dur"] * 1e6, 1),
                "pid": sp.get("pid", 0),
                "tid": sp.get("pid", 0),
                "args": args,
            }
        )
    for ev in data.events:
        events.append(
            {
                "name": ev["name"],
                "cat": "event",
                "ph": "i",
                "s": "g",
                "ts": round((ev.get("ts", t0) - t0) * 1e6, 1),
                "pid": ev.get("pid", 0),
                "tid": ev.get("pid", 0),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def speedscope(data: TraceData) -> dict:
    """The trace as a speedscope evented-format document.

    Spans nest by construction inside one process (context managers on
    one thread), so per-pid interval sorting recovers the open/close
    event stream; a child whose clock ran past its parent's close is
    clamped rather than breaking the required strict nesting.
    """
    spans = [sp for sp in data.spans if "ts" in sp and "dur" in sp]
    t0 = min((sp["ts"] for sp in spans), default=0.0)
    frames: list[dict] = []
    frame_ids: dict[str, int] = {}

    def frame(name: str) -> int:
        if name not in frame_ids:
            frame_ids[name] = len(frames)
            frames.append({"name": name})
        return frame_ids[name]

    by_pid: dict[int, list[dict]] = {}
    for sp in spans:
        by_pid.setdefault(sp.get("pid", 0), []).append(sp)

    profiles = []
    for pid in sorted(by_pid):
        # Longest-first at equal starts puts parents before children.
        ordered = sorted(
            by_pid[pid], key=lambda s: (s["ts"] - t0, -s["dur"])
        )
        events: list[dict] = []
        stack: list[tuple[int, float]] = []  # (frame, end time)
        end_value = 0.0
        for sp in ordered:
            start = sp["ts"] - t0
            end = start + sp["dur"]
            while stack and stack[-1][1] <= start:
                f, e = stack.pop()
                events.append({"type": "C", "frame": f, "at": round(e, 6)})
            if stack and end > stack[-1][1]:
                end = stack[-1][1]  # clamp clock skew into the parent
                start = min(start, end)
            f = frame(sp["name"])
            events.append({"type": "O", "frame": f, "at": round(start, 6)})
            stack.append((f, end))
            end_value = max(end_value, end)
        while stack:
            f, e = stack.pop()
            events.append({"type": "C", "frame": f, "at": round(e, 6)})
        profiles.append(
            {
                "type": "evented",
                "name": f"pid {pid}",
                "unit": "seconds",
                "startValue": 0.0,
                "endValue": round(end_value, 6),
                "events": events,
            }
        )

    name = data.manifest.get("run_id") if data.manifest else data.path.name
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "name": name,
        "shared": {"frames": frames},
        "profiles": profiles,
        "exporter": "repro.obs",
    }


def export_trace(
    data: TraceData, fmt: str, out: "Path | str | None" = None
) -> Path:
    """Convert ``data`` and write it; returns the output path.

    Default output sits next to the trace: ``<stem>.chrome.json`` or
    ``<stem>.speedscope.json``.
    """
    if fmt == "chrome-trace":
        doc, suffix = chrome_trace(data), ".chrome.json"
    elif fmt == "speedscope":
        doc, suffix = speedscope(data), ".speedscope.json"
    else:
        raise ValueError(
            f"unknown export format {fmt!r} (choose from {FORMATS})"
        )
    if out is None:
        stem = data.path.name
        if stem.endswith(".jsonl"):
            stem = stem[: -len(".jsonl")]
        out = data.path.with_name(stem + suffix)
    out = Path(out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return out
