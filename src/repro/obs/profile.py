"""Deterministic-safe resource profiling attached to trace spans.

``REPRO_PROFILE=1`` turns profiling on (and implies tracing: a profiled
run always has a JSONL sink to land in).  The call sites that matter —
every ``graph.stage`` execution, every campaign-generation phase, every
``parallel_map`` worker batch — open their spans through
:func:`profiled_span`, which samples wall/CPU/RSS/GC/cache state on
entry and attaches the delta to the span's trace record as a ``prof``
field:

.. code-block:: json

    {"t": "span", "name": "graph.stage", "dur": 1.83,
     "prof": {"cpu_user": 1.74, "cpu_sys": 0.06, "maxrss_kb": 412304,
              "gc_collections": 3, "cache": {"features.cache.misses": 2}}}

Everything is **out-of-band**: samples flow only into the trace sink,
never into stage artifacts or experiment results, so golden-stats and
determinism tests are byte-identical with profiling on or off.  With
profiling off, ``profiled_span`` is exactly ``span`` plus one dict
lookup — the disabled path stays inside the noise floor the example
time budgets enforce.

Worker processes profile the same way their spans trace: samples are
taken in the worker, the record lands in the shared JSONL file, and the
pid-embedded span ids re-root each worker's profiled spans under the
submitting span (:func:`repro.obs.remote_parent`), so the aggregation
below sees one connected, resource-annotated span tree per run.

:func:`build_profile` aggregates a loaded trace into the run profile:
per-stage (cell-qualified) and per-span-name resource totals, artifact
hit/miss/run statuses joined from the ``graph.plan`` event, and the
root span wall that critical-path analysis attributes.
:func:`write_profile_json` persists it as ``<trace>.profile.json`` next
to the trace (called by ``trace.end_run``); ``GraphRunner`` also drops
a copy under ``<artifact store>/_profiles/`` next to the stage outputs.
"""

from __future__ import annotations

import gc
import json
import os
import sys
from pathlib import Path

from repro.obs.metrics import METRICS
from repro.obs.spans import Span, span
from repro.obs.trace import profile_requested

try:  # pragma: no cover - always present on the POSIX platforms we run on
    import resource
except ImportError:  # pragma: no cover - windows
    resource = None  # type: ignore[assignment]

__all__ = [
    "build_profile",
    "profile_requested",
    "profiled_span",
    "stage_key",
    "write_profile_json",
    "write_run_profile",
]

#: Cache counters sampled around every profiled span — the delta says
#: which caches a stage leaned on (or missed) without touching the
#: stage's own outputs.
_CACHE_COUNTER_NAMES = (
    "features.cache.hits",
    "features.cache.disk_hits",
    "features.cache.misses",
    "campaign.cache.hits",
    "campaign.cache.misses",
    "graph.stage.hit",
    "graph.stage.miss",
)

_cache_insts = None


def _cache_counters():
    global _cache_insts
    if _cache_insts is None:
        _cache_insts = tuple(METRICS.counter(n) for n in _CACHE_COUNTER_NAMES)
    return _cache_insts


def _maxrss_kb() -> int:
    if resource is None:  # pragma: no cover - windows
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    return rss // 1024 if sys.platform == "darwin" else rss


def _sample() -> tuple:
    t = os.times()
    return (
        t.user,
        t.system,
        _maxrss_kb(),
        sum(s["collections"] for s in gc.get_stats()),
        tuple(c.value for c in _cache_counters()),
    )


def _delta(before: tuple) -> dict:
    after = _sample()
    prof = {
        "cpu_user": round(after[0] - before[0], 6),
        "cpu_sys": round(after[1] - before[1], 6),
        "maxrss_kb": int(after[2]),
        "gc_collections": after[3] - before[3],
    }
    cache = {
        name: a - b
        for name, a, b in zip(_CACHE_COUNTER_NAMES, after[4], before[4])
        if a != b
    }
    if cache:
        prof["cache"] = cache
    return prof


class _ProfiledSpan:
    """Wraps a live :class:`Span`, sampling resources around its body."""

    __slots__ = ("_span", "_before")

    def __init__(self, sp: Span) -> None:
        self._span = sp
        self._before = None

    def set(self, **attrs) -> "_ProfiledSpan":
        self._span.set(**attrs)
        return self

    def __enter__(self) -> "_ProfiledSpan":
        self._span.__enter__()
        self._before = _sample()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._span.prof = _delta(self._before)
        return self._span.__exit__(exc_type, exc, tb)


def profiled_span(name: str, **attrs):
    """A :func:`repro.obs.span` that also samples resource deltas.

    With ``REPRO_PROFILE`` unset this *is* ``span(...)`` — same no-op
    fast path, same trace records — so instrumenting a call site with
    ``profiled_span`` never changes the default trace schema.
    """
    sp = span(name, **attrs)
    if isinstance(sp, Span) and profile_requested():
        return _ProfiledSpan(sp)
    return sp


# --------------------------------------------------------------------------- #
# Aggregation: trace -> run profile.
# --------------------------------------------------------------------------- #


def stage_key(stage: str, cell: "str | None") -> str:
    """Profile key for one stage: cell-qualified when a cell is set.

    Shared stage *names* deliberately do not carry the (topology,
    routing) cell — only their fingerprints differ — so the profile key
    re-attaches it to keep the cells' records separate.
    """
    return f"{stage}@{cell}" if cell else stage


def _zero_record() -> dict:
    return {
        "calls": 0,
        "wall": 0.0,
        "cpu_user": 0.0,
        "cpu_sys": 0.0,
        "maxrss_kb": 0,
        "gc_collections": 0,
        "cache": {},
    }


def _fold(rec: dict, sp: dict, prof: dict) -> None:
    rec["calls"] += 1
    rec["wall"] = round(rec["wall"] + sp.get("dur", 0.0), 6)
    rec["cpu_user"] = round(rec["cpu_user"] + prof.get("cpu_user", 0.0), 6)
    rec["cpu_sys"] = round(rec["cpu_sys"] + prof.get("cpu_sys", 0.0), 6)
    rec["maxrss_kb"] = max(rec["maxrss_kb"], int(prof.get("maxrss_kb", 0)))
    rec["gc_collections"] += int(prof.get("gc_collections", 0))
    for name, delta in prof.get("cache", {}).items():
        rec["cache"][name] = rec["cache"].get(name, 0) + delta


def build_profile(data) -> dict | None:
    """Aggregate a loaded trace (:class:`~repro.obs.report.TraceData`)
    into the run profile dict, or None when it holds no profiled spans.

    ``stages`` is the heart of it: one record per (stage, cell) with
    resource totals for executed stages and timed artifact loads for
    hits (statuses joined from the ``graph.plan`` event the runner
    emits).  ``spans`` carries the same totals per span name — campaign
    phases, worker batches — and ``cells`` rolls stages up per
    (topology, routing) cell.
    """
    stages: dict[str, dict] = {}
    names: dict[str, dict] = {}
    any_prof = False
    for sp in data.spans:
        prof = sp.get("prof")
        if prof is None:
            continue
        any_prof = True
        _fold(names.setdefault(sp["name"], _zero_record()), sp, prof)
        if sp["name"] != "graph.stage":
            continue
        attrs = sp.get("attrs", {})
        stage = attrs.get("stage")
        if not stage:
            continue
        key = stage_key(stage, attrs.get("cell"))
        rec = stages.get(key)
        if rec is None:
            rec = stages[key] = _zero_record()
            rec.update(stage=stage, cell=attrs.get("cell"), status="run")
        _fold(rec, sp, prof)
    if not any_prof:
        return None

    # Join planned statuses and timed artifact loads: hits never open a
    # graph.stage span, so they enter the profile from the plan event.
    for ev in data.events:
        if ev.get("name") != "graph.plan":
            continue
        attrs = ev.get("attrs", {})
        cell = attrs.get("cell")
        for st in attrs.get("stages", []):
            key = stage_key(st["name"], cell)
            if key in stages:
                continue
            if st.get("status") != "hit":
                continue
            rec = _zero_record()
            rec.update(
                stage=st["name"],
                cell=cell,
                status="hit",
                calls=1,
                wall=round(st.get("load_s") or 0.0, 6),
            )
            stages[key] = rec

    cells: dict[str, dict] = {}
    for rec in stages.values():
        cell = rec.get("cell") or "default"
        c = cells.setdefault(
            cell, {"stages": 0, "hits": 0, "wall": 0.0, "cpu": 0.0}
        )
        c["stages"] += 1
        c["hits"] += 1 if rec["status"] == "hit" else 0
        c["wall"] = round(c["wall"] + rec["wall"], 6)
        c["cpu"] = round(c["cpu"] + rec["cpu_user"] + rec["cpu_sys"], 6)

    ids = {sp["id"] for sp in data.spans}
    roots = [sp for sp in data.spans if sp.get("parent") not in ids]
    root = max(roots, key=lambda sp: sp.get("dur", 0.0), default=None)
    out = {
        "format": 1,
        "trace": data.path.name,
        "stages": dict(sorted(stages.items())),
        "spans": dict(sorted(names.items())),
        "cells": dict(sorted(cells.items())),
    }
    if data.manifest:
        out["run_id"] = data.manifest.get("run_id")
    if root is not None:
        out["root"] = {"name": root["name"], "wall": round(root["dur"], 6)}
    return out


def _profile_out_path(trace_path: Path) -> Path:
    stem = trace_path.name
    if stem.endswith(".jsonl"):
        stem = stem[: -len(".jsonl")]
    return trace_path.with_name(f"{stem}.profile.json")


def write_profile_json(trace_path: "Path | str") -> Path | None:
    """Aggregate one trace and write ``<trace>.profile.json`` next to it.

    Returns the output path, or None when the trace holds no profiled
    spans (nothing worth a file).
    """
    from repro.obs.report import load_trace

    trace_path = Path(trace_path)
    prof = build_profile(load_trace(trace_path))
    if prof is None:
        return None
    out = _profile_out_path(trace_path)
    out.write_text(
        json.dumps(prof, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return out


def write_run_profile(store_root: "Path | str", trace_path: "Path | str") -> Path | None:
    """Persist the run profile into the artifact store's ``_profiles/``.

    Keeps the resource story next to the stage outputs it describes (no
    artifact group is ever named with a leading underscore, so the
    directory cannot collide with stage artifacts).
    """
    from repro.obs.report import load_trace

    trace_path = Path(trace_path)
    prof = build_profile(load_trace(trace_path))
    if prof is None:
        return None
    out_dir = Path(store_root) / "_profiles"
    out_dir.mkdir(parents=True, exist_ok=True)
    stem = trace_path.name
    if stem.endswith(".jsonl"):
        stem = stem[: -len(".jsonl")]
    out = out_dir / f"{stem}.json"
    out.write_text(
        json.dumps(prof, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return out
