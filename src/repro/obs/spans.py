"""Hierarchical timing spans over ``time.perf_counter``.

Usage — context manager for dynamic attributes, decorator for static::

    with span("campaign.run", fingerprint=fp) as sp:
        ...
        sp.set(cached=True)

    @traced("ml.pipeline.fit")
    def fit(...): ...

Nesting is tracked with a :mod:`contextvars` variable, so threads (and
async tasks) each see their own ambient parent.  Span ids embed the pid
(``"<pid:x>.<n>"``), which keeps ids unique across the campaign's worker
processes; :func:`remote_parent` re-roots a worker's spans under the
submitting span so cross-process trees assemble correctly.

With tracing disabled the whole path is one module-global check plus a
shared no-op context manager — nothing is allocated (the time budgets in
``tests/test_examples.py`` hold this to the noise floor).
"""

from __future__ import annotations

import functools
import itertools
import os
import time
from contextlib import contextmanager
from contextvars import ContextVar

from repro.obs import trace

#: Ambient current-span id (a string, so remote ids re-root cleanly).
_CURRENT: ContextVar[str | None] = ContextVar("repro_obs_span", default=None)

_IDS = itertools.count(1)


def _next_id() -> str:
    return f"{os.getpid():x}.{next(_IDS)}"


def current_span_id() -> str | None:
    """The ambient span id (pass through task boundaries to keep trees)."""
    return _CURRENT.get()


@contextmanager
def remote_parent(parent_id: str | None):
    """Adopt a span id from another process as the ambient parent."""
    if parent_id is None:
        yield
        return
    token = _CURRENT.set(parent_id)
    try:
        yield
    finally:
        _CURRENT.reset(token)


class Span:
    """One live span; records itself on exit (including on exceptions)."""

    __slots__ = (
        "name", "attrs", "id", "parent", "prof", "_t0", "_wall", "_token",
    )

    def __init__(self, name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs
        self.id = _next_id()
        self.parent: str | None = None
        #: Resource-delta dict attached by :mod:`repro.obs.profile`;
        #: rides out-of-band in the trace record, never in results.
        self.prof: dict | None = None
        self._t0 = 0.0
        self._wall = 0.0
        self._token = None

    def set(self, **attrs) -> "Span":
        """Attach attributes discovered mid-span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.parent = _CURRENT.get()
        self._token = _CURRENT.set(self.id)
        self._wall = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur = time.perf_counter() - self._t0
        _CURRENT.reset(self._token)
        rec = {
            "t": "span",
            "name": self.name,
            "id": self.id,
            "parent": self.parent,
            "pid": os.getpid(),
            "ts": self._wall,
            "dur": dur,
            "ok": exc_type is None,
        }
        if self.attrs:
            rec["attrs"] = self.attrs
        if self.prof is not None:
            rec["prof"] = self.prof
        if exc_type is not None:
            rec["err"] = f"{exc_type.__name__}: {exc}"
        trace.write_record(rec)
        return False  # never swallow exceptions


class _NoopSpan:
    """Shared, reentrant do-nothing span for the disabled path."""

    __slots__ = ()

    def set(self, **attrs) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NOOP = _NoopSpan()


def span(name: str, **attrs) -> "Span | _NoopSpan":
    """A timing span context manager around a region.

    Returns the shared no-op instance when tracing is off — the fast
    path is a single module-attribute check.
    """
    if not trace.ACTIVE:
        return _NOOP
    if not trace.active() and trace.ensure_run() is None:
        return _NOOP
    return Span(name, attrs)


def traced(name: str, **attrs):
    """Decorator form of :func:`span` (gate re-checked on every call)."""

    def deco(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with span(name, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return deco
