"""CLI: ``python -m repro.obs report [<trace.jsonl> | <dir>] [--tree]``."""

from __future__ import annotations

import argparse
import sys

from repro.obs.report import latest_trace, load_trace, render_report
from repro.obs.trace import trace_dir


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs",
        description="Inspect repro observability traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    rep = sub.add_parser(
        "report",
        help="summarise one trace: self/cumulative span times and cache "
        "hit rates",
    )
    rep.add_argument(
        "trace",
        nargs="?",
        default=None,
        help="trace .jsonl file or a directory holding traces (default: "
        "newest trace under the trace dir)",
    )
    rep.add_argument(
        "--tree",
        action="store_true",
        help="also print the full span tree in start order",
    )
    args = parser.parse_args(argv)

    target = args.trace
    if target is None:
        target = trace_dir()
    from pathlib import Path

    path = Path(target)
    if path.is_dir():
        found = latest_trace(path)
        if found is None:
            print(f"no traces under {path}", file=sys.stderr)
            return 1
        path = found
    if not path.exists():
        print(f"no such trace: {path}", file=sys.stderr)
        return 1
    print(render_report(load_trace(path), tree=args.tree))
    return 0


if __name__ == "__main__":
    sys.exit(main())
