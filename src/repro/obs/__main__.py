"""CLI: trace reports, profile-viewer exports, and the perf sentinel.

::

    python -m repro.obs report [<trace.jsonl> | <dir>] [--tree]
        [--format text|json] [--critical-path]
    python -m repro.obs export [<trace.jsonl> | <dir>]
        [--format chrome-trace|speedscope] [--out FILE]
    python -m repro.obs diff <baseline> <current>
        [--wall-ratio 1.25] [--cpu-ratio N] [--rss-ratio N]
        [--min-wall 0.5] [--warn-only] [-v]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.report import (
    latest_trace,
    load_trace,
    render_critical_path,
    render_report,
    report_json,
)
from repro.obs.trace import trace_dir


def _resolve_trace(target: "str | None") -> Path | None:
    """A trace path from an explicit file, a directory, or the default
    trace dir (newest trace wins)."""
    path = Path(target) if target is not None else trace_dir()
    if path.is_dir():
        found = latest_trace(path)
        if found is None:
            print(f"no traces under {path}", file=sys.stderr)
            return None
        return found
    if not path.exists():
        print(f"no such trace: {path}", file=sys.stderr)
        return None
    return path


def _cmd_report(args) -> int:
    path = _resolve_trace(args.trace)
    if path is None:
        return 1
    data = load_trace(path)
    if args.format == "json":
        doc = report_json(data)
        if args.critical_path:
            doc = {"critical_path": doc["critical_path"]}
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    print(render_report(data, tree=args.tree))
    if args.critical_path:
        print()
        print(render_critical_path(data))
    return 0


def _cmd_export(args) -> int:
    from repro.obs.export import export_trace

    path = _resolve_trace(args.trace)
    if path is None:
        return 1
    out = export_trace(load_trace(path), args.format, args.out)
    print(f"wrote {out}")
    return 0


def _cmd_diff(args) -> int:
    from repro.obs.diff import compare_profiles, load_profile_stages, render_diff

    section = "spans" if args.spans else "stages"
    try:
        baseline = load_profile_stages(args.baseline, section=section)
        current = load_profile_stages(args.current, section=section)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"cannot load profile: {exc}", file=sys.stderr)
        return 2
    lines, failures = compare_profiles(
        baseline,
        current,
        wall_ratio=args.wall_ratio,
        cpu_ratio=args.cpu_ratio,
        rss_ratio=args.rss_ratio,
        min_wall=args.min_wall,
    )
    print(render_diff(lines, failures, verbose=args.verbose))
    if failures and args.warn_only:
        print(
            f"warning: {len(failures)} regression(s) ignored (--warn-only)",
            file=sys.stderr,
        )
        return 0
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs",
        description="Inspect repro observability traces and profiles.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rep = sub.add_parser(
        "report",
        help="summarise one trace: self/cumulative span times, cache "
        "hit rates, profiled resource usage",
    )
    rep.add_argument(
        "trace",
        nargs="?",
        default=None,
        help="trace .jsonl file or a directory holding traces (default: "
        "newest trace under the trace dir)",
    )
    rep.add_argument(
        "--tree",
        action="store_true",
        help="also print the full span tree in start order",
    )
    rep.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json is the machine-readable report)",
    )
    rep.add_argument(
        "--critical-path",
        action="store_true",
        help="attribute end-to-end wall to the dominant stage chain "
        "of each graph run",
    )
    rep.set_defaults(fn=_cmd_report)

    exp = sub.add_parser(
        "export",
        help="convert a trace for external profile viewers",
    )
    exp.add_argument("trace", nargs="?", default=None)
    exp.add_argument(
        "--format",
        choices=("chrome-trace", "speedscope"),
        default="chrome-trace",
        help="target format (chrome-trace opens in chrome://tracing, "
        "Perfetto, and speedscope)",
    )
    exp.add_argument(
        "--out", default=None, help="output path (default: next to the trace)"
    )
    exp.set_defaults(fn=_cmd_export)

    dif = sub.add_parser(
        "diff",
        help="compare two run profiles per stage; nonzero exit on "
        "regression (the CI sentinel)",
    )
    dif.add_argument("baseline", help="baseline profile (or .jsonl trace)")
    dif.add_argument("current", help="current profile (or .jsonl trace)")
    dif.add_argument(
        "--wall-ratio",
        type=float,
        default=None,
        help="fail when current/baseline stage wall exceeds this "
        "(default 1.25)",
    )
    dif.add_argument(
        "--cpu-ratio",
        type=float,
        default=0.0,
        help="also gate CPU time at this ratio (0 = informational)",
    )
    dif.add_argument(
        "--rss-ratio",
        type=float,
        default=0.0,
        help="also gate peak RSS at this ratio (0 = informational)",
    )
    dif.add_argument(
        "--min-wall",
        type=float,
        default=None,
        help="skip stages whose baseline wall is below this noise "
        "floor (default 0.5)",
    )
    dif.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but exit 0 (single-core runners)",
    )
    dif.add_argument(
        "--spans",
        action="store_true",
        help="compare per-span-name records instead of graph stages "
        "(campaign phases, worker batches)",
    )
    dif.add_argument(
        "-v", "--verbose", action="store_true",
        help="also print unregressed and skipped stages",
    )
    dif.set_defaults(fn=_cmd_diff)

    args = parser.parse_args(argv)
    if args.command == "diff":
        from repro.obs.diff import DEFAULT_MIN_WALL, DEFAULT_WALL_RATIO

        if args.wall_ratio is None:
            args.wall_ratio = DEFAULT_WALL_RATIO
        if args.min_wall is None:
            args.min_wall = DEFAULT_MIN_WALL
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
