"""Run manifests and the JSONL trace sink.

A *run* is one process invocation worth of observability data, stored as
a single JSONL file under the trace directory::

    <REPRO_TRACE_DIR or REPRO_CACHE_DIR/traces>/<stamp>-<pid>-<name>.jsonl

Record types (the ``"t"`` field):

``manifest``
    Written first, once, by the root process: run id, argv, versions,
    platform, and every ``REPRO_*`` environment knob.
``span``
    One finished span (see :mod:`repro.obs.spans`), written at exit time
    with its parent id, wall start, duration, and attributes.
``event``
    A point-in-time progress marker (e.g. campaign generation progress).
``annotation``
    Key/value provenance added mid-run (campaign fingerprints, dataset
    keys) — manifest content that is only known once work starts.
``metrics``
    Final :data:`repro.obs.metrics.METRICS` snapshot of one process,
    tagged with its pid; the root process and every worker each flush
    one on exit.
``truncated``
    Written once when the trace file crosses ``REPRO_TRACE_MAX_MB``;
    every later record from that process is dropped so a long profiled
    run degrades to a capped trace instead of filling the disk.

Enablement: ``REPRO_TRACE=1`` turns tracing on; entry points (the
experiment/campaign CLIs, :func:`repro.experiments.run_experiment`) call
:func:`ensure_run` so one invocation produces one complete trace.
Worker processes see the ``REPRO_TRACE_FILE`` variable exported by the
parent's :func:`start_run` and append to the same file (line-granular
``O_APPEND`` writes).  With tracing off, the only cost on any hot path
is the :data:`ACTIVE` module-global check in ``span()``.
"""

from __future__ import annotations

import atexit
import io
import json
import os
import platform
import sys
import threading
import time
from pathlib import Path

from repro.obs.metrics import METRICS

#: Env toggles.
TRACE_ENV = "REPRO_TRACE"
TRACE_DIR_ENV = "REPRO_TRACE_DIR"
#: Exported by ``start_run`` so subprocess workers join the same trace.
TRACE_FILE_ENV = "REPRO_TRACE_FILE"
#: Resource profiling (:mod:`repro.obs.profile`); implies tracing.
PROFILE_ENV = "REPRO_PROFILE"
#: Trace size cap in MiB (float; ``<= 0`` disables the guard).  A long
#: profiled campaign run must degrade to a truncated trace, not a full
#: disk.
TRACE_MAX_ENV = "REPRO_TRACE_MAX_MB"
DEFAULT_TRACE_MAX_MB = 512.0
#: Size checks cost an fstat, so they run once per this many records.
_SIZE_CHECK_EVERY = 64

#: Fast-path gate: ``span()`` checks only this module global.  True when
#: a sink is attached *or* tracing is requested but not yet started (the
#: first span then initialises the run).
ACTIVE = False

_LOCK = threading.RLock()
_SINK: "io.TextIOWrapper | None" = None
_RUN_PATH: Path | None = None
_IS_WORKER = False
_ATEXIT_REGISTERED = False
_TRUNCATED = False
_SINCE_SIZE_CHECK = 0


def profile_requested() -> bool:
    """``REPRO_PROFILE`` truthiness (resource profiling wanted)."""
    return os.environ.get(PROFILE_ENV, "0") not in ("0", "", "false")


def trace_requested() -> bool:
    """Tracing wanted for this invocation (``REPRO_TRACE``, or implied
    by ``REPRO_PROFILE`` — profiled records need a sink to land in)."""
    if os.environ.get(TRACE_ENV, "0") not in ("0", "", "false"):
        return True
    return profile_requested()


def trace_dir() -> Path:
    """Trace output directory (``REPRO_TRACE_DIR``, else under the cache)."""
    explicit = os.environ.get(TRACE_DIR_ENV)
    if explicit:
        return Path(explicit)
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache")) / "traces"


def active() -> bool:
    """Is a trace sink attached to this process right now?"""
    return _SINK is not None


def current_trace_path() -> Path | None:
    return _RUN_PATH


def _refresh_gate() -> None:
    global ACTIVE
    ACTIVE = _SINK is not None or trace_requested() or bool(
        os.environ.get(TRACE_FILE_ENV)
    )


def _max_trace_bytes() -> int:
    """The configured trace cap in bytes (0 = unlimited)."""
    raw = os.environ.get(TRACE_MAX_ENV)
    try:
        mb = float(raw) if raw else DEFAULT_TRACE_MAX_MB
    except ValueError:
        mb = DEFAULT_TRACE_MAX_MB
    if mb <= 0:
        return 0
    return int(mb * 1024 * 1024)


def write_record(rec: dict) -> None:
    """Append one JSONL record (no-op when no sink is attached).

    Guarded by ``REPRO_TRACE_MAX_MB``: once the shared trace file
    crosses the cap (checked every :data:`_SIZE_CHECK_EVERY` records),
    one ``truncated`` marker record is written and every later record
    from this process is dropped — the run itself never fails on trace
    volume.
    """
    global _TRUNCATED, _SINCE_SIZE_CHECK
    sink = _SINK
    if sink is None or _TRUNCATED:
        return
    line = json.dumps(rec, separators=(",", ":"), default=str) + "\n"
    with _LOCK:
        if _TRUNCATED:
            return
        try:
            sink.write(line)
            sink.flush()
        except ValueError:  # closed mid-shutdown: drop silently
            return
        _SINCE_SIZE_CHECK += 1
        if _SINCE_SIZE_CHECK < _SIZE_CHECK_EVERY:
            return
        _SINCE_SIZE_CHECK = 0
        limit = _max_trace_bytes()
        if not limit:
            return
        try:
            size = os.fstat(sink.fileno()).st_size
        except (OSError, ValueError):  # pragma: no cover - racing close
            return
        if size < limit:
            return
        marker = json.dumps(
            {
                "t": "truncated",
                "pid": os.getpid(),
                "ts": time.time(),
                "size_bytes": size,
                "limit_mb": limit / (1024 * 1024),
            },
            separators=(",", ":"),
        )
        try:
            sink.write(marker + "\n")
            sink.flush()
        except ValueError:  # pragma: no cover - racing close
            pass
        _TRUNCATED = True


def _manifest_record(name: str, run_id: str) -> dict:
    env = {
        k: v
        for k, v in sorted(os.environ.items())
        if k.startswith("REPRO_") and k != TRACE_FILE_ENV
    }
    versions = {"python": platform.python_version()}
    try:
        import numpy

        versions["numpy"] = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep in practice
        pass
    return {
        "t": "manifest",
        "run_id": run_id,
        "name": name,
        "ts": time.time(),
        "argv": sys.argv,
        "pid": os.getpid(),
        "cwd": os.getcwd(),
        "platform": platform.platform(),
        "versions": versions,
        "env": env,
    }


def start_run(name: str = "run", path: "Path | str | None" = None) -> Path:
    """Open a trace file, write the manifest, and export it to workers.

    Idempotent: a second call while a run is open returns the open path.
    """
    global _SINK, _RUN_PATH, _IS_WORKER, _ATEXIT_REGISTERED
    global _TRUNCATED, _SINCE_SIZE_CHECK
    with _LOCK:
        if _SINK is not None:
            return _RUN_PATH  # type: ignore[return-value]
        _TRUNCATED = False
        _SINCE_SIZE_CHECK = 0
        stamp = time.strftime("%Y%m%dT%H%M%S")
        run_id = f"{stamp}-{os.getpid()}-{name}"
        if path is None:
            path = trace_dir() / f"{run_id}.jsonl"
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        _SINK = open(path, "a", encoding="utf-8")
        _RUN_PATH = path
        _IS_WORKER = False
        os.environ[TRACE_FILE_ENV] = str(path)
        if not _ATEXIT_REGISTERED:
            atexit.register(end_run)
            _ATEXIT_REGISTERED = True
        _refresh_gate()
    write_record(_manifest_record(name, run_id))
    return path


def ensure_run(name: str = "run") -> Path | None:
    """Start a run iff tracing is requested and none is open.

    Called by entry points and by the first span, so ``REPRO_TRACE=1``
    yields a complete trace no matter which door the process came in
    through.  Returns the trace path, or None when tracing is off.
    """
    if _SINK is not None:
        return _RUN_PATH
    if os.environ.get(TRACE_FILE_ENV) and not _IS_WORKER:
        return _attach_worker()
    if trace_requested():
        return start_run(name)
    _refresh_gate()
    return None


def attach_worker() -> Path | None:
    """Join the parent's trace from a pool worker (call in initializers).

    Spawned workers arrive with clean module state and simply attach to
    ``REPRO_TRACE_FILE``.  *Forked* workers inherit the parent's open
    sink, its atexit registration, and its metric values — all of which
    belong to the parent: the inherited handle is replaced with this
    process's own, worker bookkeeping (exit finalizer, ``worker`` flag)
    is installed, and :data:`METRICS` is zeroed so the worker's final
    snapshot counts only its own work.  No-op when tracing is off.
    """
    global _SINK, _RUN_PATH, _IS_WORKER, _ATEXIT_REGISTERED
    if not os.environ.get(TRACE_FILE_ENV):
        _refresh_gate()
        return None
    with _LOCK:
        if _SINK is not None and not _IS_WORKER:
            inherited, _SINK = _SINK, None
            _RUN_PATH = None
            _ATEXIT_REGISTERED = False
            try:
                inherited.close()  # our dup of the fd; the parent keeps its own
            except OSError:  # pragma: no cover - close failure is ignorable
                pass
            METRICS.reset()
    return _attach_worker()


def _attach_worker() -> Path | None:
    """Join the parent's trace file from a worker process."""
    global _SINK, _RUN_PATH, _IS_WORKER, _ATEXIT_REGISTERED
    global _TRUNCATED, _SINCE_SIZE_CHECK
    with _LOCK:
        if _SINK is not None:
            return _RUN_PATH
        target = os.environ.get(TRACE_FILE_ENV)
        if not target:
            return None
        try:
            _SINK = open(target, "a", encoding="utf-8")
        except OSError:
            return None
        _TRUNCATED = False
        _SINCE_SIZE_CHECK = 0
        _RUN_PATH = Path(target)
        _IS_WORKER = True
        if not _ATEXIT_REGISTERED:
            atexit.register(end_run)
            # Pool workers exit through os._exit, which skips atexit but
            # does run multiprocessing's own finalizers — register there
            # too so each worker's final metrics reach the trace.
            try:
                from multiprocessing.util import Finalize

                Finalize(None, end_run, exitpriority=0)
            except Exception:  # pragma: no cover - stdlib always has it
                pass
            _ATEXIT_REGISTERED = True
        _refresh_gate()
        return _RUN_PATH


def end_run() -> None:
    """Flush this process's final metrics and close the sink.

    The root process of a profiled run (``REPRO_PROFILE=1``) also
    aggregates the finished trace into ``<trace>.profile.json`` — every
    worker has flushed its records by the time the root closes.
    """
    global _SINK, _RUN_PATH, _IS_WORKER, _TRUNCATED, _SINCE_SIZE_CHECK
    if _SINK is None:
        _refresh_gate()
        return
    write_record(
        {
            "t": "metrics",
            "pid": os.getpid(),
            "worker": _IS_WORKER,
            "ts": time.time(),
            "values": METRICS.snapshot(),
        }
    )
    with _LOCK:
        sink, _SINK = _SINK, None
        path, _RUN_PATH = _RUN_PATH, None
        was_worker, _IS_WORKER = _IS_WORKER, False
        _TRUNCATED = False
        _SINCE_SIZE_CHECK = 0
        try:
            sink.close()
        except OSError:  # pragma: no cover - close failure is ignorable
            pass
        if not was_worker:
            os.environ.pop(TRACE_FILE_ENV, None)
        _refresh_gate()
    if path is not None and not was_worker and profile_requested():
        try:
            from repro.obs.profile import write_profile_json

            write_profile_json(path)
        except Exception as exc:  # pragma: no cover - best-effort output
            import warnings

            warnings.warn(
                f"could not write run profile for {path}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )


def event(name: str, **attrs) -> None:
    """Record a point-in-time event (cheap no-op when tracing is off)."""
    if not ACTIVE:
        return
    if _SINK is None and ensure_run() is None:
        return
    write_record(
        {"t": "event", "name": name, "ts": time.time(), "pid": os.getpid(),
         "attrs": attrs}
    )


def annotate(**attrs) -> None:
    """Attach provenance (fingerprints, dataset keys) to the open run."""
    if not ACTIVE:
        return
    if _SINK is None and ensure_run() is None:
        return
    write_record(
        {"t": "annotation", "ts": time.time(), "pid": os.getpid(),
         "attrs": attrs}
    )


# Resolve the gate once at import: in a freshly spawned worker this sees
# the parent's exported TRACE_FILE_ENV; in an untraced process it leaves
# the single-bool fast path in place.
_refresh_gate()
