"""One stdlib-logging configurator for the whole package.

Every module logs through ``get_logger("<area>")`` (a child of the
``repro`` logger) and never attaches handlers itself.  CLIs and worker
processes call :func:`configure_logging` once; library use without
configuration stays silent below WARNING (stdlib last-resort behaviour),
so tests and imports never spam.

``REPRO_LOG_LEVEL`` picks the level (default INFO once configured).
:func:`configure_logging` exports the chosen level back into the
environment so campaign worker subprocesses inherit the setting, and
workers tag every record with ``[w<pid>]`` so interleaved progress lines
stay attributable.
"""

from __future__ import annotations

import logging
import os

LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"

#: Concise default format: one-letter level, area, message.
_FORMAT = "%(levelname).1s %(name)s: %(message)s"
_WORKER_FORMAT = "%(levelname).1s %(name)s [w%(process)d]: %(message)s"

_ROOT = "repro"
_CONFIGURED = False


def get_logger(area: str = "") -> logging.Logger:
    """The package logger for an area, e.g. ``get_logger("campaign")``."""
    return logging.getLogger(f"{_ROOT}.{area}" if area else _ROOT)


def logging_configured() -> bool:
    return _CONFIGURED


def configure_logging(
    level: "str | int | None" = None, worker: bool = False, force: bool = False
) -> logging.Logger:
    """Attach one stream handler to the ``repro`` logger.

    Parameters
    ----------
    level:
        Explicit level; default is ``REPRO_LOG_LEVEL`` (else INFO).
    worker:
        Use the worker format (``[w<pid>]`` tag) and never re-export the
        level to the environment.
    force:
        Reconfigure even if already configured (tests, CLIs overriding).
    """
    global _CONFIGURED
    logger = get_logger()
    if _CONFIGURED and not force:
        return logger
    if level is None:
        level = os.environ.get(LOG_LEVEL_ENV) or "INFO"
    if isinstance(level, str):
        level = getattr(logging, level.upper(), logging.INFO)
    for h in list(logger.handlers):
        logger.removeHandler(h)
    handler = logging.StreamHandler()
    handler.setFormatter(
        logging.Formatter(_WORKER_FORMAT if worker else _FORMAT)
    )
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    if not worker:
        # Workers inherit the effective level through the environment.
        os.environ[LOG_LEVEL_ENV] = logging.getLevelName(level)
    _CONFIGURED = True
    return logger


def configure_worker_logging() -> None:
    """Called from pool initializers: mirror the parent's configuration.

    A worker only attaches handlers when the parent exported a level
    (i.e. the parent itself configured logging); otherwise the worker
    stays silent like any unconfigured library process.
    """
    if os.environ.get(LOG_LEVEL_ENV):
        configure_logging(worker=True, force=True)
