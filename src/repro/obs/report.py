"""Parse a JSONL trace and render the self/cumulative-time report.

The report aggregates spans by name:

* **cum** — total wall time spent inside spans of that name;
* **self** — cum minus the time covered by *direct* child spans (clamped
  at zero: parallel children legitimately overlap their parent);
* **calls** — span count.

plus the run manifest header, annotations, events, and a cache hit-rate
summary computed from every process's final metrics records.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from pathlib import Path


@dataclass
class TraceData:
    """Everything one JSONL trace file contained, bucketed by type."""

    path: Path
    manifest: dict | None = None
    spans: list[dict] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)
    annotations: list[dict] = field(default_factory=list)
    metrics: list[dict] = field(default_factory=list)
    truncated: list[dict] = field(default_factory=list)

    def merged_metrics(self) -> dict[str, object]:
        """Metric values summed across all processes' final snapshots."""
        out: dict[str, object] = {}
        for rec in self.metrics:
            for name, val in rec.get("values", {}).items():
                if isinstance(val, dict):
                    agg = out.setdefault(name, {})
                    for k, v in val.items():
                        if k == "min":
                            agg[k] = min(agg.get(k, v), v)
                        elif k == "max":
                            agg[k] = max(agg.get(k, v), v)
                        elif k != "mean":
                            agg[k] = agg.get(k, 0) + v
                else:
                    out[name] = out.get(name, 0) + val
        return out


def load_trace(path: "Path | str") -> TraceData:
    """Read a trace, tolerating torn/corrupt lines (warned and skipped)."""
    path = Path(path)
    data = TraceData(path=path)
    bad = 0
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                bad += 1
                continue
            t = rec.get("t")
            if t == "manifest" and data.manifest is None:
                data.manifest = rec
            elif t == "span":
                data.spans.append(rec)
            elif t == "event":
                data.events.append(rec)
            elif t == "annotation":
                data.annotations.append(rec)
            elif t == "metrics":
                data.metrics.append(rec)
            elif t == "truncated":
                data.truncated.append(rec)
    if bad:
        warnings.warn(
            f"skipped {bad} unparseable line(s) in {path}", RuntimeWarning,
            stacklevel=2,
        )
    return data


@dataclass
class SpanAggregate:
    name: str
    calls: int
    cum: float
    self_time: float


def aggregate_spans(spans: list[dict]) -> list[SpanAggregate]:
    """Per-name call counts with cumulative and self times, self-sorted."""
    child_time: dict[str, float] = {}
    for rec in spans:
        parent = rec.get("parent")
        if parent is not None:
            child_time[parent] = child_time.get(parent, 0.0) + rec["dur"]
    agg: dict[str, SpanAggregate] = {}
    for rec in spans:
        a = agg.get(rec["name"])
        if a is None:
            a = agg[rec["name"]] = SpanAggregate(rec["name"], 0, 0.0, 0.0)
        a.calls += 1
        a.cum += rec["dur"]
        a.self_time += max(rec["dur"] - child_time.get(rec["id"], 0.0), 0.0)
    return sorted(agg.values(), key=lambda a: -a.self_time)


def span_tree(spans: list[dict]) -> list[tuple[int, dict]]:
    """(depth, span) pairs in start order — orphans surface as roots."""
    by_id = {rec["id"]: rec for rec in spans}
    children: dict[str | None, list[dict]] = {}
    for rec in sorted(spans, key=lambda r: r["ts"]):
        parent = rec.get("parent")
        if parent not in by_id:
            parent = None
        children.setdefault(parent, []).append(rec)
    out: list[tuple[int, dict]] = []

    def walk(parent, depth: int) -> None:
        for rec in children.get(parent, []):
            out.append((depth, rec))
            walk(rec["id"], depth + 1)

    walk(None, 0)
    return out


def _cache_summary(metrics: dict[str, object]) -> list[str]:
    lines = []
    hits = int(metrics.get("features.cache.hits", 0) or 0)
    disk = int(metrics.get("features.cache.disk_hits", 0) or 0)
    misses = int(metrics.get("features.cache.misses", 0) or 0)
    total = hits + disk + misses
    if total:
        lines.append(
            f"feature cache: {hits} memo hits, {disk} disk hits, "
            f"{misses} builds "
            f"({100.0 * (hits + disk) / total:.1f}% hit rate)"
        )
    ap_hits = int(metrics.get("features.append.hit", 0) or 0)
    ap_miss = int(metrics.get("features.append.miss", 0) or 0)
    if ap_hits + ap_miss:
        lines.append(
            f"feature append: {ap_hits} shard reuses, "
            f"{ap_miss} shard builds"
        )
    camp_hits = int(metrics.get("campaign.cache.hits", 0) or 0)
    camp_miss = int(metrics.get("campaign.cache.misses", 0) or 0)
    if camp_hits + camp_miss:
        lines.append(
            f"campaign cache: {camp_hits} hits, {camp_miss} generations"
        )
    st_hits = int(metrics.get("graph.stage.hit", 0) or 0)
    st_miss = int(metrics.get("graph.stage.miss", 0) or 0)
    st_runs = int(metrics.get("graph.stage.run", 0) or 0)
    if st_hits + st_miss + st_runs:
        lines.append(
            f"stage graph: {st_hits} artifact hits, {st_miss} misses, "
            f"{st_runs} stages run"
        )
    for cell in sorted(_stage_cells(metrics)):
        hits = int(metrics.get(f"graph.stage.hit[{cell}]", 0) or 0)
        miss = int(metrics.get(f"graph.stage.miss[{cell}]", 0) or 0)
        runs = int(metrics.get(f"graph.stage.run[{cell}]", 0) or 0)
        lines.append(
            f"  cell {cell}: {hits} artifact hits, {miss} misses, "
            f"{runs} stages run"
        )
    sh_hits = int(metrics.get("graph.shard.hit", 0) or 0)
    sh_miss = int(metrics.get("graph.shard.miss", 0) or 0)
    sh_runs = int(metrics.get("graph.shard.run", 0) or 0)
    if sh_hits + sh_miss + sh_runs:
        lines.append(
            f"shard stages: {sh_hits} artifact hits, {sh_miss} misses, "
            f"{sh_runs} stages run"
        )
    return lines


def _stage_cells(metrics: dict[str, object]) -> set[str]:
    """Cell labels present in ``graph.stage.<status>[<cell>]`` counters."""
    cells: set[str] = set()
    for name in metrics:
        if name.startswith("graph.stage.") and name.endswith("]"):
            _, _, label = name.partition("[")
            cells.add(label[:-1])
    return cells


def critical_paths(data: TraceData) -> list[dict]:
    """Longest wall-time chain through each run's resolved stage DAG.

    Replays the ``graph.plan`` event(s) the runner emits (one per
    ``GraphRunner.run``, topologically ordered, with hit/miss/run
    statuses and input edges), attributing to each stage:

    * its summed ``graph.stage`` span wall when it executed,
    * its timed artifact load when it was a hit (profiled runs),
    * zero otherwise (hits in unprofiled traces).

    Returns one record per plan with the dominant chain, its wall, the
    executed-vs-hit split, and the matching ``graph.run`` root wall —
    empty when the trace predates the plan event.
    """
    # Executed-stage walls, keyed by (cell, stage name).
    walls: dict[tuple[str | None, str], float] = {}
    roots: dict[str | None, float] = {}
    for sp in data.spans:
        attrs = sp.get("attrs", {})
        if sp["name"] == "graph.stage" and attrs.get("stage"):
            key = (attrs.get("cell"), attrs["stage"])
            walls[key] = walls.get(key, 0.0) + sp.get("dur", 0.0)
        elif sp["name"] == "graph.run":
            cell = attrs.get("cell")
            roots[cell] = max(roots.get(cell, 0.0), sp.get("dur", 0.0))

    out: list[dict] = []
    for ev in data.events:
        if ev.get("name") != "graph.plan":
            continue
        attrs = ev.get("attrs", {})
        cell = attrs.get("cell")
        stages = attrs.get("stages", [])
        if not stages:
            continue
        info = {st["name"]: st for st in stages}

        def stage_wall(st: dict) -> tuple[float, str]:
            executed = walls.get((cell, st["name"]))
            if executed is not None:
                return executed, "run"
            if st.get("status") == "hit":
                return st.get("load_s") or 0.0, "hit"
            return 0.0, st.get("status", "?")

        # DP over the (topologically ordered) plan: best[n] is the
        # heaviest chain ending at n.
        best: dict[str, float] = {}
        prev: dict[str, str | None] = {}
        for st in stages:
            name = st["name"]
            w, _ = stage_wall(st)
            up_best, up_name = 0.0, None
            for up in st.get("inputs", []):
                if up in best and best[up] > up_best:
                    up_best, up_name = best[up], up
            best[name] = w + up_best
            prev[name] = up_name
        end = max(best, key=lambda n: best[n])
        chain: list[dict] = []
        node: str | None = end
        while node is not None:
            w, status = stage_wall(info[node])
            chain.append(
                {"name": node, "status": status, "wall": round(w, 6)}
            )
            node = prev[node]
        chain.reverse()

        executed = sum(
            stage_wall(st)[0] for st in stages
            if stage_wall(st)[1] == "run"
        )
        hits = sum(
            stage_wall(st)[0] for st in stages
            if stage_wall(st)[1] == "hit"
        )
        out.append(
            {
                "cell": cell,
                "stages": len(stages),
                "chain": chain,
                "chain_wall": round(best[end], 6),
                "executed_wall": round(executed, 6),
                "hit_wall": round(hits, 6),
                "root_wall": round(roots.get(cell, 0.0), 6),
            }
        )
    return out


def render_critical_path(data: TraceData) -> str:
    """Text rendering of :func:`critical_paths` (``--critical-path``)."""
    paths = critical_paths(data)
    if not paths:
        return (
            "(no graph.plan events in this trace — run an experiment "
            "with REPRO_TRACE=1 to record the resolved DAG)"
        )
    lines: list[str] = []
    for p in paths:
        where = f" — cell {p['cell']}" if p["cell"] else ""
        lines.append(
            f"critical path{where}: {p['chain_wall']:.3f}s through "
            f"{len(p['chain'])} of {p['stages']} stages"
        )
        if p["root_wall"]:
            share = 100.0 * p["chain_wall"] / p["root_wall"]
            lines.append(
                f"  graph.run wall {p['root_wall']:.3f}s "
                f"({share:.0f}% on the chain); "
                f"executed stages {p['executed_wall']:.3f}s, "
                f"artifact hits {p['hit_wall']:.3f}s"
            )
        for entry in p["chain"]:
            lines.append(
                f"  [{entry['status']:<4}] {entry['wall']:>9.3f}s  "
                f"{entry['name']}"
            )
    return "\n".join(lines)


def _profile_summary(data: TraceData) -> list[str]:
    """Top resource consumers, shown when the trace holds prof records."""
    from repro.obs.profile import build_profile

    prof = build_profile(data)
    if prof is None:
        return []
    lines = ["profiled stages (top 5 by wall):"]
    ranked = sorted(
        prof["stages"].items(), key=lambda kv: -kv[1]["wall"]
    )[:5]
    for key, rec in ranked:
        cpu = rec["cpu_user"] + rec["cpu_sys"]
        lines.append(
            f"  [{rec['status']:<4}] {rec['wall']:>9.3f}s wall  "
            f"{cpu:>8.3f}s cpu  {rec['maxrss_kb']:>9} kB rss  {key}"
        )
    if not ranked:
        lines = []
    return lines


def report_json(data: TraceData) -> dict:
    """The machine-readable report (``report --format json``): manifest,
    span aggregates, merged metrics, the run profile, and critical-path
    records — the same facts the text renderer prints, reusable by the
    regression sentinel and CI."""
    from repro.obs.profile import build_profile

    man = data.manifest or {}
    aggs = aggregate_spans(data.spans)
    return {
        "format": 1,
        "trace": str(data.path),
        "run_id": man.get("run_id"),
        "argv": man.get("argv"),
        "platform": man.get("platform"),
        "versions": man.get("versions"),
        "env": man.get("env"),
        "annotations": [r.get("attrs", {}) for r in data.annotations],
        "spans": [
            {
                "name": a.name,
                "calls": a.calls,
                "cum_s": round(a.cum, 6),
                "self_s": round(a.self_time, 6),
            }
            for a in aggs
        ],
        "failed_spans": [
            {"name": r["name"], "err": r.get("err")}
            for r in data.spans
            if not r.get("ok", True)
        ],
        "metrics": data.merged_metrics(),
        "truncated": len(data.truncated),
        "profile": build_profile(data),
        "critical_path": critical_paths(data),
    }


def render_report(data: TraceData, tree: bool = False) -> str:
    """The human-readable report ``python -m repro.obs report`` prints."""
    lines: list[str] = []
    man = data.manifest
    if man is not None:
        lines.append(f"run:      {man.get('run_id', '?')}")
        lines.append(f"argv:     {' '.join(man.get('argv', []))}")
        versions = man.get("versions", {})
        vers = ", ".join(f"{k} {v}" for k, v in versions.items())
        lines.append(f"platform: {man.get('platform', '?')} ({vers})")
        env = man.get("env", {})
        if env:
            lines.append(
                "env:      "
                + " ".join(f"{k}={v}" for k, v in sorted(env.items()))
            )
    for rec in data.annotations:
        kv = " ".join(f"{k}={v}" for k, v in rec.get("attrs", {}).items())
        lines.append(f"note:     {kv}")
    lines.append("")

    aggs = aggregate_spans(data.spans)
    if aggs:
        total = sum(a.self_time for a in aggs) or 1.0
        name_w = max(len(a.name) for a in aggs)
        name_w = max(name_w, len("span"))
        lines.append(
            f"{'span':<{name_w}}  {'calls':>6}  {'cum s':>9}  "
            f"{'self s':>9}  {'self %':>6}"
        )
        lines.append("-" * (name_w + 37))
        for a in aggs:
            lines.append(
                f"{a.name:<{name_w}}  {a.calls:>6}  {a.cum:>9.3f}  "
                f"{a.self_time:>9.3f}  {100.0 * a.self_time / total:>5.1f}%"
            )
    else:
        lines.append("(no spans recorded)")
    lines.append("")

    cache = _cache_summary(data.merged_metrics())
    if cache:
        lines.extend(cache)

    prof = _profile_summary(data)
    if prof:
        lines.append("")
        lines.extend(prof)

    if data.truncated:
        first = data.truncated[0]
        lines.append("")
        lines.append(
            f"warning: trace truncated at "
            f"{first.get('limit_mb', '?')} MB "
            f"(REPRO_TRACE_MAX_MB) — later records were dropped"
        )

    failed = [rec for rec in data.spans if not rec.get("ok", True)]
    if failed:
        lines.append("")
        lines.append(f"{len(failed)} span(s) ended in an exception:")
        for rec in failed[:10]:
            lines.append(f"  {rec['name']}: {rec.get('err', '?')}")

    if tree:
        lines.append("")
        for depth, rec in span_tree(data.spans):
            lines.append(f"{'  ' * depth}{rec['name']}  {rec['dur']:.3f}s")
    return "\n".join(lines)


def latest_trace(directory: "Path | str") -> Path | None:
    """The most recently modified ``*.jsonl`` trace in a directory."""
    paths = sorted(
        Path(directory).glob("*.jsonl"), key=lambda p: p.stat().st_mtime
    )
    return paths[-1] if paths else None
