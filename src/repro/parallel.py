"""General work distribution: one process-pool layer for every hot loop.

PR 1 parallelized campaign *generation*; this module generalizes that
machinery so the analysis stack (RFE folds, forecasting ablation cells,
per-dataset figure/table work) fans out over the same kind of pool:

* :class:`WorkerPool` — a ``ProcessPoolExecutor`` wrapper whose
  ``workers <= 1`` mode runs every task in-process through the *same*
  code path, so serial and parallel output are bit-identical by
  construction;
* :func:`get_pool` / :func:`parallel_map` — a shared, lazily created
  pool reused across analysis calls in one process (spinning up workers
  per figure would dominate fast-mode runtimes), shut down atexit;
* worker bootstrap that mirrors the parent's observability: log records
  gain the ``[w<pid>]`` prefix, spans append to the parent's trace file
  (``REPRO_TRACE_FILE``), and every submission carries the submitting
  span id so worker spans graft onto the parent's span tree
  (:func:`repro.obs.remote_parent`);
* a nested-parallelism guard: workers advertise themselves via
  ``REPRO_PARALLEL_WORKER`` and :func:`effective_workers` resolves to 1
  inside one, so a driver that fans datasets out never has its workers
  fork grandchildren for the per-fold loops inside;
* :func:`task_seed` — stable per-task seeds derived through the
  :func:`repro.config.rng_for` stream policy, for tasks that need their
  own randomness without coupling it to worker count or order.

Determinism contract (same as the campaign layer): tasks are pure
functions of their arguments, results are gathered in submission order,
and any randomness flows through per-task seeded streams — so the
worker count can never perturb any result, and ``workers=N`` output is
bit-identical to ``workers=1`` output.

Worker-count precedence everywhere: ``REPRO_WORKERS`` env var, then the
``workers=`` argument, then 1 (serial).  ``0`` means "all cores".
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool

from repro.config import DEFAULT_SEED, resolve_workers, rng_for
from repro.obs import METRICS, current_span_id, remote_parent
from repro.obs.log import configure_worker_logging
from repro.obs.profile import profile_requested, profiled_span
from repro.obs.trace import attach_worker

__all__ = [
    "WORKER_ENV",
    "WorkerPool",
    "WorkerPoolError",
    "chunked",
    "effective_workers",
    "get_pool",
    "in_worker",
    "parallel_map",
    "shutdown_pool",
    "task_seed",
    "wait_any",
]

#: Set in every pool worker's environment by the bootstrap initializer;
#: :func:`in_worker` / :func:`effective_workers` read it to keep workers
#: from forking their own grandchildren.
WORKER_ENV = "REPRO_PARALLEL_WORKER"


class WorkerPoolError(RuntimeError):
    """A pool worker process died or the pool broke."""


def in_worker() -> bool:
    """Is this process a pool worker (of any repro pool)?"""
    return bool(os.environ.get(WORKER_ENV))


def effective_workers(workers: int | None = None) -> int:
    """Resolve a worker count, clamped to 1 inside a pool worker.

    Outside workers this is :func:`repro.config.resolve_workers`
    (``REPRO_WORKERS`` > ``workers`` argument > 1; ``<= 0`` = all
    cores).  Inside a worker it is always 1, so nested fan-out points
    (a per-dataset task that itself calls the per-fold API) degrade to
    the serial code path instead of oversubscribing the machine.
    """
    if in_worker():
        return 1
    return resolve_workers(workers)


def task_seed(*labels: object, seed: int = DEFAULT_SEED) -> int:
    """A stable 31-bit per-task seed from stream labels.

    Derived through the :func:`repro.config.rng_for` policy, so seeds
    for different labels are independent and adding a consumer never
    perturbs existing ones.  Use this when a task needs randomness of
    its own: seed by *task identity* (dataset key, fold index), never by
    worker id or submission order.
    """
    return int(rng_for("parallel.task", *labels, seed=seed).integers(0, 2**31 - 1))


# --------------------------------------------------------------------------- #
# Worker bootstrap and submission shims (top-level so they pickle).
# --------------------------------------------------------------------------- #


def _bootstrap_worker(initializer, initargs) -> None:
    """Pool initializer: observability first, then the caller's setup.

    Marks the process as a worker (nested-parallelism guard), mirrors
    the parent's logging configuration, and attaches the parent's trace
    sink so worker spans land in the same JSONL file.
    """
    os.environ[WORKER_ENV] = "1"
    configure_worker_logging()
    attach_worker()
    if initializer is not None:
        initializer(*initargs)


def _remote_call(parent_span_id: "str | None", fn, args):
    """Run one task with the submitting span adopted as ambient parent,
    so worker-side spans graft onto the parent process's span tree.

    Under ``REPRO_PROFILE=1`` each task also gets a resource-sampled
    ``parallel.task`` span (the per-worker profile record the run
    profile re-roots); without profiling no extra span is emitted, so
    plain traces keep their pre-profiler record volume.
    """
    with remote_parent(parent_span_id):
        if profile_requested():
            task = getattr(fn, "__name__", str(fn))
            with profiled_span("parallel.task", task=task):
                return fn(*args)
        return fn(*args)


class _DoneFuture:
    """Future-alike for the in-process serial mode."""

    __slots__ = ("_value",)

    def __init__(self, value) -> None:
        self._value = value

    def result(self):
        return self._value


def wait_any(futures: list) -> list[int]:
    """Indices of completed futures, blocking until at least one is done.

    Accepts the mixed future population :meth:`WorkerPool.submit`
    produces — already-done in-process :class:`_DoneFuture` results and
    real executor futures — so a DAG scheduler can drain completions in
    finish order regardless of pool mode.
    """

    def done_now() -> list[int]:
        return [
            i
            for i, f in enumerate(futures)
            if isinstance(f, _DoneFuture) or f.done()
        ]

    ready = done_now()
    if ready or not futures:
        return ready
    wait(futures, return_when=FIRST_COMPLETED)
    return done_now()


# --------------------------------------------------------------------------- #
# The pool.
# --------------------------------------------------------------------------- #


class WorkerPool:
    """Executes task functions on ``workers`` processes.

    ``workers <= 1`` (after :func:`effective_workers` resolution) runs
    every task in-process through the *same* task functions — both the
    fast path for small workloads and the reference the equivalence
    tests compare against.  Serial mode never runs ``initializer``;
    callers that need in-process state install it themselves (see
    :class:`repro.campaign.parallel.CampaignPool`).

    Parameters
    ----------
    workers:
        Requested worker count (env/None/0 resolution applies).
    initializer, initargs:
        Per-worker setup run in each subprocess *after* the
        observability bootstrap.  Must be picklable (top-level).
    error:
        Exception class raised when a worker dies or the pool breaks
        (must subclass :class:`WorkerPoolError`).
    name:
        Label for spans and metrics.
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        initializer=None,
        initargs: tuple = (),
        error: type = WorkerPoolError,
        name: str = "pool",
    ) -> None:
        self.workers = effective_workers(workers)
        self.parallel = self.workers > 1
        self.error = error
        self.name = name
        self.broken = False
        self._exec: ProcessPoolExecutor | None = None
        if self.parallel:
            self._exec = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_bootstrap_worker,
                initargs=(initializer, initargs),
            )

    # -- submission ----------------------------------------------------- #

    def submit(self, fn, *args):
        """Submit ``fn(*args)``; returns a future-alike.

        In serial mode the task runs immediately in-process (the
        ambient span context is already correct); in parallel mode the
        submitting span id rides along so worker spans re-root under it.
        """
        if not self.parallel:
            return _DoneFuture(fn(*args))
        try:
            return self._exec.submit(_remote_call, current_span_id(), fn, args)
        except BrokenProcessPool as exc:  # pragma: no cover - rare
            self.broken = True
            raise self.error(
                f"{self.name} worker pool broke during submission"
            ) from exc

    def result(self, future):
        """Unwrap a future, translating worker death into a clean error."""
        try:
            return future.result()
        except BrokenProcessPool as exc:
            self.broken = True
            raise self.error(
                f"a {self.name} worker process died; partial results discarded "
                "(rerun with workers=1 to rule out resource exhaustion)"
            ) from exc

    def map(self, fn, tasks) -> list:
        """``[fn(*args) for args in tasks]`` with a deterministic ordered
        gather: results come back in task order no matter which worker
        finishes first."""
        tasks = list(tasks)
        with profiled_span(
            "parallel.map", pool=self.name, tasks=len(tasks), workers=self.workers
        ):
            METRICS.counter("parallel.tasks").inc(len(tasks))
            futures = [self.submit(fn, *args) for args in tasks]
            return [self.result(f) for f in futures]

    # -- lifecycle ------------------------------------------------------ #

    def shutdown(self) -> None:
        if self._exec is not None:
            self._exec.shutdown(wait=False, cancel_futures=True)
            self._exec = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


# --------------------------------------------------------------------------- #
# The shared analysis pool.
# --------------------------------------------------------------------------- #

_SHARED: WorkerPool | None = None


def get_pool(workers: int | None = None) -> WorkerPool:
    """The shared analysis pool for the resolved worker count.

    Serial resolution returns a throwaway in-process pool (no state to
    share).  A parallel pool is created lazily, reused across calls as
    long as the resolved count is stable, replaced when it changes, and
    shut down atexit.  A pool that lost a worker is discarded so the
    next call starts clean.
    """
    global _SHARED
    n = effective_workers(workers)
    if n <= 1:
        return WorkerPool(1, name="analysis")
    if _SHARED is not None and _SHARED.workers == n and not _SHARED.broken:
        return _SHARED
    if _SHARED is not None:
        _SHARED.shutdown()
    _SHARED = WorkerPool(n, name="analysis")
    return _SHARED


def shutdown_pool() -> None:
    """Shut the shared analysis pool down (atexit, tests)."""
    global _SHARED
    if _SHARED is not None:
        _SHARED.shutdown()
        _SHARED = None


atexit.register(shutdown_pool)


def parallel_map(fn, tasks, workers: int | None = None) -> list:
    """Ordered map over the shared pool: the one-call analysis fan-out."""
    return get_pool(workers).map(fn, tasks)


def chunked(items: list, n_chunks: int) -> list[list]:
    """Split ``items`` into at most ``n_chunks`` contiguous chunks."""
    if not items:
        return []
    size = max(1, -(-len(items) // max(1, n_chunks)))
    return [items[i : i + size] for i in range(0, len(items), size)]
