"""Background job arrival process over the campaign period.

Each user submits jobs as a Poisson process at their archetype's rate,
with lognormal durations and archetype-specific sizes — the statistical
shape of a production HPC queue.  The result is a stream of
:class:`~repro.system.jobs.JobRequest` objects for the scheduler.
"""

from __future__ import annotations

import numpy as np

from repro.system.jobs import JobRequest
from repro.system.users import UserPopulation

#: Seconds per day (campaign times are seconds since epoch).
DAY = 86_400.0


class BackgroundWorkloadGenerator:
    """Samples the background job stream for a campaign window."""

    def __init__(
        self,
        population: UserPopulation,
        rng: np.random.Generator,
        max_job_nodes: int | None = None,
        rate_scale: float = 1.0,
        duration_scale: float = 1.0,
    ) -> None:
        """
        Parameters
        ----------
        population:
            The user archetypes.
        rng:
            Random source (derive one per campaign for reproducibility).
        max_job_nodes:
            Clamp job sizes (so a reduced-scale machine is never asked for
            more nodes than it has).
        rate_scale, duration_scale:
            Multipliers on submission rates and durations, used to hit a
            target machine utilisation (see :meth:`demand_node_seconds_per_day`
            and the campaign runner's normalisation).
        """
        self.population = population
        self.rng = rng
        self.max_job_nodes = max_job_nodes
        self.rate_scale = rate_scale
        self.duration_scale = duration_scale

    def demand_node_seconds_per_day(self) -> float:
        """Expected node-seconds of demand per day under current scales."""
        total = 0.0
        for arch in self.population.archetypes:
            mean_size = float(
                np.dot(arch.sizes, arch.size_probs)
            )
            if self.max_job_nodes is not None:
                mean_size = min(mean_size, self.max_job_nodes)
            total += (
                arch.jobs_per_day
                * self.rate_scale
                * arch.duration_mean
                * self.duration_scale
                * mean_size
            )
        return total

    @classmethod
    def for_target_utilisation(
        cls,
        population: UserPopulation,
        rng: np.random.Generator,
        total_nodes: int,
        target_utilisation: float,
        max_job_nodes: int | None = None,
        duration_scale: float = 4.0,
    ) -> "BackgroundWorkloadGenerator":
        """Normalise submission rates so expected demand matches a target
        machine utilisation (production systems run near-full; Cori's KNL
        partition typically sat above 90%)."""
        if not 0 < target_utilisation < 1:
            raise ValueError("target_utilisation must be in (0, 1)")
        probe = cls(
            population,
            rng,
            max_job_nodes=max_job_nodes,
            duration_scale=duration_scale,
        )
        demand = probe.demand_node_seconds_per_day()
        want = target_utilisation * total_nodes * DAY
        probe.rate_scale = want / demand if demand > 0 else 1.0
        return probe

    def generate(self, start: float, end: float) -> list[JobRequest]:
        """All background job requests submitted in [start, end)."""
        if end <= start:
            raise ValueError("end must be after start")
        requests: list[JobRequest] = []
        span_days = (end - start) / DAY
        for arch in self.population.archetypes:
            n_jobs = self.rng.poisson(arch.jobs_per_day * self.rate_scale * span_days)
            if n_jobs == 0:
                continue
            submits = np.sort(self.rng.uniform(start, end, size=n_jobs))
            for t in submits:
                size = arch.sample_size(self.rng)
                if self.max_job_nodes is not None:
                    size = min(size, self.max_job_nodes)
                requests.append(
                    JobRequest(
                        user=arch.user,
                        name=f"{arch.user.lower()}-job",
                        submit_time=float(t),
                        num_nodes=size,
                        duration=arch.sample_duration(self.rng) * self.duration_scale,
                        traffic_tag=arch.user,
                    )
                )
        requests.sort(key=lambda r: r.submit_time)
        return requests
