"""A Slurm-like batch scheduler: FCFS with opportunistic backfill.

Produces the two artefacts the paper mines from Slurm (§III-C):

* per-job placements (node lists), from which NUM_ROUTERS / NUM_GROUPS
  derive, handed out by a fragmenting allocation policy as on busy Cori;
* the job log (``sacct`` equivalent), from which the neighbourhood
  analysis derives concurrently-running users.

The simulation is event-driven: submissions and completions are the only
events, and pending jobs start as soon as they fit (jobs that fit earlier
than the queue head may jump it — opportunistic backfill without
reservations, a reasonable stand-in for Slurm's EASY backfill).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.system.jobs import JobRecord, JobRequest
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.placement import AllocationPolicy, allocate


@dataclass
class SchedulerResult:
    """All scheduled jobs plus queries the analyses need."""

    jobs: list[JobRecord]
    #: Requests that could not be scheduled inside the horizon.
    unscheduled: list[JobRequest] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.jobs.sort(key=lambda j: j.start_time)
        self._starts = np.array([j.start_time for j in self.jobs])
        self._ends = np.array([j.end_time for j in self.jobs])

    def running_at(self, t: float) -> list[JobRecord]:
        """Jobs running at instant ``t``."""
        mask = (self._starts <= t) & (self._ends > t)
        return [self.jobs[i] for i in np.flatnonzero(mask)]

    def overlapping(
        self, start: float, end: float, min_nodes: int = 0
    ) -> list[JobRecord]:
        """Jobs overlapping [start, end), optionally size-filtered."""
        mask = (self._starts < end) & (self._ends > start)
        out = [self.jobs[i] for i in np.flatnonzero(mask)]
        if min_nodes:
            out = [j for j in out if j.num_nodes >= min_nodes]
        return out

    def probes(self) -> list[JobRecord]:
        """Our instrumented probe jobs, in start order."""
        return [j for j in self.jobs if j.is_probe]

    def utilisation(self, t: float, total_nodes: int) -> float:
        """Fraction of compute nodes busy at instant ``t``."""
        busy = sum(j.num_nodes for j in self.running_at(t))
        return busy / total_nodes


class Scheduler:
    """Event-driven FCFS + backfill over one topology's compute nodes."""

    def __init__(
        self,
        topology: DragonflyTopology,
        policy: AllocationPolicy = AllocationPolicy.CLUSTERED,
        rng: np.random.Generator | None = None,
        horizon: float | None = None,
    ) -> None:
        """
        Parameters
        ----------
        topology:
            Supplies the compute-node pool.
        policy:
            Node-allocation flavour (fragmentation knob).
        rng:
            Randomness for the allocation policy.
        horizon:
            Latest time a job may *start*; pending jobs beyond it are
            reported as unscheduled.  ``None`` = unbounded.
        """
        self.topology = topology
        self.policy = policy
        self.rng = rng or np.random.default_rng(0)
        self.horizon = horizon

    @staticmethod
    def _reservation(
        head: JobRequest,
        free_mask: np.ndarray,
        completions: list[tuple[float, int]],
        jobs: list[JobRecord],
        now: float,
    ) -> tuple[float, int]:
        """EASY reservation for a blocked queue head.

        Returns ``(shadow_time, extra_nodes)``: the earliest instant the
        head can have its nodes, and how many nodes will remain free at
        that instant beyond the head's need (usable by backfill jobs of any
        duration).
        """
        free_now = int(free_mask.sum())
        need = head.num_nodes - free_now
        if need <= 0:  # pragma: no cover - head would have started
            return now, free_now - head.num_nodes
        avail = free_now
        for end_time, ji in sorted(completions):
            avail += len(jobs[ji].nodes)
            if avail >= head.num_nodes:
                return end_time, avail - head.num_nodes
        return np.inf, 0

    def schedule(self, requests: list[JobRequest]) -> SchedulerResult:
        """Run the queue simulation over all requests."""
        topo = self.topology
        total = len(topo.compute_nodes)
        free_mask = np.zeros(topo.num_nodes, dtype=bool)
        free_mask[topo.compute_nodes] = True

        pending: list[JobRequest] = []
        jobs: list[JobRecord] = []
        unscheduled: list[JobRequest] = []
        completions: list[tuple[float, int]] = []  # (end_time, job index)
        next_id = 1

        requests = sorted(requests, key=lambda r: r.submit_time)
        ri = 0
        now = requests[0].submit_time if requests else 0.0

        def try_start(req: JobRequest, at: float) -> bool:
            nonlocal next_id
            if req.num_nodes > total:
                unscheduled.append(req)
                return True  # drop: can never run
            free_nodes = np.flatnonzero(free_mask)
            if len(free_nodes) < req.num_nodes:
                return False
            nodes = allocate(topo, free_nodes, req.num_nodes, self.policy, self.rng)
            free_mask[nodes] = False
            rec = JobRecord(
                job_id=next_id,
                request=req,
                start_time=at,
                end_time=at + req.duration,
                nodes=nodes,
            )
            next_id += 1
            jobs.append(rec)
            heapq.heappush(completions, (rec.end_time, len(jobs) - 1))
            return True

        while ri < len(requests) or pending or completions:
            # Next event time: submission or completion.
            t_sub = requests[ri].submit_time if ri < len(requests) else np.inf
            t_end = completions[0][0] if completions else np.inf
            now = min(t_sub, t_end)
            if np.isinf(now):  # pending jobs that can never start
                unscheduled.extend(pending)
                break
            # Release all completions at <= now.
            while completions and completions[0][0] <= now:
                _, ji = heapq.heappop(completions)
                free_mask[jobs[ji].nodes] = True
            # Accept all submissions at <= now.
            while ri < len(requests) and requests[ri].submit_time <= now:
                pending.append(requests[ri])
                ri += 1
            # Horizon cutoff.
            if self.horizon is not None and now > self.horizon:
                unscheduled.extend(pending)
                pending = []
                if ri < len(requests):
                    unscheduled.extend(requests[ri:])
                    ri = len(requests)
                # Let running jobs finish (no more starts).
                while completions:
                    heapq.heappop(completions)
                break
            # FCFS with EASY backfill: the queue head gets a reservation at
            # the earliest time enough nodes will be free; later jobs may
            # jump it only if they finish before that time or fit into the
            # nodes left over once the head starts.
            still: list[JobRequest] = []
            head_blocked = False
            shadow_time = np.inf
            extra_nodes = 0
            for req in pending:
                if not head_blocked:
                    if try_start(req, now):
                        continue
                    head_blocked = True
                    shadow_time, extra_nodes = self._reservation(
                        req, free_mask, completions, jobs, now
                    )
                    still.append(req)
                else:
                    free_now = int(free_mask.sum())
                    fits = req.num_nodes <= free_now
                    safe = (
                        now + req.duration <= shadow_time
                        or req.num_nodes <= extra_nodes
                    )
                    if fits and safe and try_start(req, now):
                        if req.num_nodes > extra_nodes:
                            pass  # ended before shadow; reservation intact
                        else:
                            extra_nodes -= req.num_nodes
                        continue
                    still.append(req)
            pending = still

        return SchedulerResult(jobs=jobs, unscheduled=unscheduled)
