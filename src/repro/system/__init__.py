"""The shared-machine substrate: users, background jobs, scheduler.

The paper's probe jobs ran in Cori's *production* queue for four months,
sharing the network with thousands of jobs from other users (§III).  This
subpackage reproduces that environment: a user population with application
archetypes (including the ground-truth aggressors §V-A identifies — a
HipMer-like genome assembler, an E3SM-like climate code, a FastPM-like
N-body solver, material-science codes), a Poisson arrival process, and a
FCFS-with-backfill scheduler that hands out fragmented placements.
"""

from repro.system.jobs import JobRecord, JobRequest
from repro.system.scheduler import Scheduler, SchedulerResult
from repro.system.users import UserArchetype, UserPopulation
from repro.system.workload import BackgroundWorkloadGenerator

__all__ = [
    "JobRecord",
    "JobRequest",
    "Scheduler",
    "SchedulerResult",
    "UserArchetype",
    "UserPopulation",
    "BackgroundWorkloadGenerator",
]
