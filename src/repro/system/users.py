"""The user population and its application archetypes.

Paper §V-A identifies (anonymised) users whose presence correlates with
probe-job slowdowns, and de-anonymises several workloads:

* **User-2** ran HipMer, a genome assembler that is both communication-
  intensive and filesystem-heavy;
* **User-8** is the study's own account — probe jobs interfere with each
  other;
* **User-9** ran FastPM, an N-body code with frequent ``MPI_Allreduce``
  and burst-buffer I/O;
* **User-11** ran E3SM climate simulations;
* **Users 6, 10 and 14** ran material-science codes with significant MPI
  and/or filesystem traffic.

The synthetic population embeds these as *ground truth*: archetypes with
per-node communication/IO intensities, job-size and duration
distributions, and submission rates.  The neighbourhood analysis
(Table III) must recover the aggressors from the campaign data alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Duty cycle targets: aggressors are present intermittently — a user who
#: is always (or never) on the machine carries no mutual information.


@dataclass(frozen=True)
class UserArchetype:
    """Statistical description of one user's workload."""

    user: str
    #: Human-readable description of what the user runs (not visible to
    #: the analyses, which only see anonymised user ids — paper §IV-A).
    workload: str
    #: Communication bytes/s injected per node while a job runs.
    comm_intensity: float
    #: Filesystem bytes/s per node (towards LNET routers).
    io_intensity: float
    #: Traffic pattern key: "uniform" | "alltoall" | "allreduce".
    pattern: str
    #: Mean jobs submitted per day.
    jobs_per_day: float
    #: Lognormal (mean, sigma) of job duration in seconds.
    duration_mean: float
    duration_sigma: float
    #: Job size choices (nodes) and their probabilities.
    sizes: tuple[int, ...]
    size_probs: tuple[float, ...]
    #: Response-VC ratio of the user's traffic.
    response_ratio: float = 0.08

    def __post_init__(self) -> None:
        if len(self.sizes) != len(self.size_probs):
            raise ValueError("sizes and size_probs must align")
        if abs(sum(self.size_probs) - 1.0) > 1e-9:
            raise ValueError("size_probs must sum to 1")
        if self.comm_intensity < 0 or self.io_intensity < 0:
            raise ValueError("intensities must be non-negative")

    @property
    def is_aggressor(self) -> bool:
        """Ground-truth label: heavy enough to perturb neighbours."""
        return self.comm_intensity >= 4e8 or self.io_intensity >= 2e8

    def sample_duration(self, rng: np.random.Generator) -> float:
        mu = np.log(self.duration_mean) - 0.5 * self.duration_sigma**2
        return float(rng.lognormal(mu, self.duration_sigma))

    def sample_size(self, rng: np.random.Generator) -> int:
        return int(rng.choice(self.sizes, p=self.size_probs))


def _agg(user, workload, comm, io, pattern, rate, dur, sizes, probs, rr=0.08):
    return UserArchetype(
        user=user,
        workload=workload,
        comm_intensity=comm,
        io_intensity=io,
        pattern=pattern,
        jobs_per_day=rate,
        duration_mean=dur,
        duration_sigma=0.6,
        sizes=sizes,
        size_probs=probs,
        response_ratio=rr,
    )


@dataclass
class UserPopulation:
    """All background users of the machine."""

    archetypes: list[UserArchetype] = field(default_factory=list)

    @classmethod
    def cori_like(cls, node_scale: float = 1.0) -> "UserPopulation":
        """The default population with the paper's ground-truth aggressors.

        ``node_scale`` shrinks job sizes for reduced-scale systems (1.0
        sizes jobs for the ``small`` preset's 2,880 nodes).
        """

        def s(*sizes: int) -> tuple[int, ...]:
            return tuple(max(4, int(round(x * node_scale))) for x in sizes)

        users: list[UserArchetype] = [
            # ---- ground-truth aggressors (paper §V-A) ------------------- #
            _agg("User-2", "HipMer genome assembly (comm + heavy I/O)",
                 9e8, 6e8, "alltoall", 1.4, 7200, s(256, 512, 1024), (0.4, 0.4, 0.2)),
            _agg("User-11", "E3SM climate modelling (comm heavy)",
                 8e8, 1.5e8, "uniform", 1.2, 10800, s(256, 512), (0.6, 0.4)),
            _agg("User-9", "FastPM N-body (Allreduce + burst-buffer I/O)",
                 5e8, 5e8, "allreduce", 1.0, 5400, s(128, 512), (0.5, 0.5), rr=0.25),
            _agg("User-6", "material science DFT (MPI heavy)",
                 6e8, 1e8, "alltoall", 0.9, 7200, s(128, 256), (0.6, 0.4)),
            _agg("User-10", "material science MD (MPI heavy)",
                 5.5e8, 1.2e8, "uniform", 0.9, 9000, s(128, 256, 512), (0.5, 0.3, 0.2)),
            _agg("User-14", "material science (MPI + filesystem)",
                 5e8, 2.5e8, "uniform", 0.8, 7200, s(128, 256), (0.5, 0.5)),
            # ---- moderate users (appear in 1-2 Table III lists) ---------- #
            _agg("User-1", "combustion LES", 4e8, 8e7, "uniform",
                 0.8, 7200, s(128, 256), (0.7, 0.3)),
            _agg("User-3", "CFD solver", 3.5e8, 5e7, "uniform",
                 0.7, 5400, s(128, 256), (0.7, 0.3)),
            _agg("User-4", "cosmology pipeline", 3e8, 2e8, "uniform",
                 0.7, 7200, s(128,), (1.0,)),
            _agg("User-5", "seismic imaging (I/O bursts)", 2.5e8, 3e8, "uniform",
                 0.6, 5400, s(128, 256), (0.6, 0.4)),
            _agg("User-7", "fusion PIC", 4e8, 6e7, "allreduce",
                 0.6, 9000, s(256,), (1.0,), rr=0.2),
            _agg("User-12", "lattice QCD (other group)", 4.5e8, 4e7, "uniform",
                 0.6, 7200, s(128, 256), (0.5, 0.5)),
            _agg("User-13", "graph analytics", 3.5e8, 1e8, "alltoall",
                 0.5, 3600, s(128,), (1.0,)),
        ]
        # ---- benign long tail: small or quiet jobs ----------------------- #
        rng = np.random.default_rng(424242)
        for i in range(15, 33):
            users.append(
                _agg(
                    f"User-{i}",
                    "small/quiet workload",
                    float(rng.uniform(1e7, 1.2e8)),
                    float(rng.uniform(0.0, 3e7)),
                    "uniform",
                    float(rng.uniform(0.5, 3.0)),
                    float(rng.uniform(1800, 7200)),
                    s(4, 16, 64),
                    (0.5, 0.3, 0.2),
                )
            )
        return cls(archetypes=users)

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.archetypes)

    def by_name(self, user: str) -> UserArchetype:
        for a in self.archetypes:
            if a.user == user:
                return a
        raise KeyError(user)

    @property
    def aggressors(self) -> list[str]:
        return [a.user for a in self.archetypes if a.is_aggressor]
