"""Job records: what Slurm's ``sacct`` would log (paper §III-C).

Times are seconds since the campaign epoch (the paper's campaign ran
December 2018 – April 2019; :mod:`repro.campaign` maps seconds to dates
for the Fig. 1 time axis).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class JobRequest:
    """A job as submitted to the queue."""

    user: str
    name: str
    submit_time: float
    num_nodes: int
    duration: float
    #: Opaque tag the workload layer uses to rebuild the job's traffic
    #: (archetype key for background jobs, dataset key for probe jobs).
    traffic_tag: str = ""
    #: True for our instrumented probe jobs.
    is_probe: bool = False

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be positive")
        if self.duration <= 0:
            raise ValueError("duration must be positive")


@dataclass
class JobRecord:
    """A scheduled job: request plus the scheduler's decisions."""

    job_id: int
    request: JobRequest
    start_time: float
    end_time: float
    nodes: np.ndarray = field(repr=False)

    # Convenience pass-throughs -------------------------------------------------

    @property
    def user(self) -> str:
        return self.request.user

    @property
    def name(self) -> str:
        return self.request.name

    @property
    def num_nodes(self) -> int:
        return self.request.num_nodes

    @property
    def is_probe(self) -> bool:
        return self.request.is_probe

    @property
    def queue_wait(self) -> float:
        return self.start_time - self.request.submit_time

    def overlaps(self, start: float, end: float) -> bool:
        """True if the job ran at any point during [start, end)."""
        return self.start_time < end and self.end_time > start
