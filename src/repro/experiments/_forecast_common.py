"""Shared grid builder for the Fig. 8 / Fig. 10 forecasting ablations.

Each (dataset, m, k, tier) cell is one ``cell:...`` stage (the shared
:func:`repro.experiments.stages.forecast_cell` body), so the two grid
figures fan their cells out over the worker pool and memoize each cell
in the artifact store independently — changing one tier list re-runs
only the affected cells.  Window tensors are served by each dataset's
:class:`~repro.features.FeatureStore` inside the stage body, exactly as
the pre-DAG drivers built them.
"""

from __future__ import annotations

from repro.experiments import stages
from repro.experiments.report import ExperimentResult, ascii_table
from repro.graph import Graph, stage_fn
from repro.ml.attention import AttentionForecaster


def fast_forecaster(seed: int = 0) -> AttentionForecaster:
    return AttentionForecaster(
        d_model=12, hidden=24, epochs=60, batch_size=128, seed=seed
    )


def bench_forecaster(seed: int = 0) -> AttentionForecaster:
    return AttentionForecaster(
        d_model=24, hidden=48, epochs=140, batch_size=192, lr=3e-3, seed=seed
    )


@stage_fn(version=1)
def render_grid(ctx):
    p = ctx.params
    tiers = p["tiers"]
    n_splits = p["n_splits"]
    data: dict[str, list] = {}
    blocks = []
    for key, ms_ok, ks_ok in p["grid"]:
        results = [
            ctx.inputs[f"{key}:{m}:{k}:{tier}"]
            for k in ks_ok
            for m in ms_ok
            for tier in tiers
        ]
        data[key] = results
        rows = []
        for k in ks_ok:
            for m in ms_ok:
                cells = [r for r in results if r.m == m and r.k == k]
                rows.append(
                    [f"k={k}", f"m={m}"]
                    + [f"{r.mape:.2f}" for r in cells]
                )
        blocks.append(
            f"{key} (MAPE %, grouped {n_splits}-fold CV)\n"
            + ascii_table(["", ""] + tiers, rows)
        )
    return ExperimentResult(
        exp_id=p["exp_id"],
        title=p["title"],
        data={"grid": data, "summary": grid_summary(data)},
        text="\n\n".join(blocks),
    )


def build_grid(
    g: Graph,
    ctx,
    exp_id: str,
    title: str,
    keys: list[str],
    ms: list[int],
    ks: list[int],
    tiers: list[str],
) -> str:
    """Add one figure's grid-cell stages plus its render stage.

    Grids are clamped to each dataset's step count using the campaign
    manifest, mirroring the pre-DAG driver's per-dataset clamping; cells
    are seeded from their coordinates alone, so results are
    bit-identical for any worker count.  Two grouped folds keep the full
    2x2xTiers grids tractable.
    """
    man = ctx.manifest
    model = stages.model_name(ctx.fast)
    n_splits = 2
    camp_stage = stages.add_campaign_stage(g)
    grid_spec = []
    inputs = []
    for key in keys:
        t = man["num_steps"].get(key, 0)
        ms_ok = [m for m in ms if m + min(ks) < t]
        ks_ok = [k for k in ks if min(ms_ok, default=t) + k < t] if ms_ok else []
        if not ms_ok or not ks_ok:
            continue
        align = max(ms_ok)
        grid_spec.append([key, ms_ok, ks_ok])
        for k in ks_ok:
            for m in ms_ok:
                for tier in tiers:
                    name = g.add(
                        f"cell:{key}:m{m}:k{k}:a{align}:{tier}:{model}",
                        stages.forecast_cell,
                        params={
                            "m": m,
                            "k": k,
                            "tier": tier,
                            "align_m": align,
                            "n_splits": n_splits,
                            "seed": 0,
                            "model": model,
                        },
                        inputs=[("manifest", camp_stage)],
                        dataset=key,
                    )
                    inputs.append((f"{key}:{m}:{k}:{tier}", name))
    return g.add(
        f"render:{exp_id}",
        render_grid,
        params={
            "exp_id": exp_id,
            "title": title,
            "grid": grid_spec,
            "tiers": tiers,
            "n_splits": n_splits,
        },
        inputs=inputs,
        kind="render",
        local=True,
    )


def grid_summary(data: dict) -> dict:
    """Aggregate shape checks: does more context/horizon/features help?"""
    out = {}
    for key, results in data.items():
        by = {(r.m, r.k, r.tier): r.mape for r in results}
        ms = sorted({r.m for r in results})
        ks = sorted({r.k for r in results})
        tiers = [r.tier for r in results[: len(set(r.tier for r in results))]]
        out[key] = {
            "m_effect": _mean_delta(by, ms, ks, tiers, axis="m"),
            "k_effect": _mean_delta(by, ms, ks, tiers, axis="k"),
            "best_mape": min(r.mape for r in results),
        }
    return out


def _mean_delta(by, ms, ks, tiers, axis: str) -> float:
    """Mean MAPE(larger) - MAPE(smaller) along one axis (negative = helps)."""
    import numpy as np

    deltas = []
    for tier in {t for (_, _, t) in by}:
        for m in ms:
            for k in ks:
                if axis == "m" and len(ms) > 1:
                    lo, hi = (ms[0], k, tier), (ms[-1], k, tier)
                elif axis == "k" and len(ks) > 1:
                    lo, hi = (m, ks[0], tier), (m, ks[-1], tier)
                else:
                    continue
                if lo in by and hi in by:
                    deltas.append(by[hi] - by[lo])
    return float(np.mean(deltas)) if deltas else 0.0
