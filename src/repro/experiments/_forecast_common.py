"""Shared grid driver for the Fig. 8 / Fig. 10 forecasting ablations.

Window tensors are served by each dataset's
:class:`~repro.features.FeatureStore`, so the grids, the importance
panels (Fig. 11), and the long-run forecast (Fig. 12) all reuse one
construction per (tier, m, k) cell — a warm second pass rebuilds
nothing.
"""

from __future__ import annotations

from repro.analysis.forecasting import ablation_grid
from repro.campaign.datasets import Campaign
from repro.experiments.report import ascii_table
from repro.features import FeatureSpec
from repro.ml.attention import AttentionForecaster


def fast_forecaster(seed: int = 0) -> AttentionForecaster:
    return AttentionForecaster(
        d_model=12, hidden=24, epochs=60, batch_size=128, seed=seed
    )


def bench_forecaster(seed: int = 0) -> AttentionForecaster:
    return AttentionForecaster(
        d_model=24, hidden=48, epochs=140, batch_size=192, lr=3e-3, seed=seed
    )


def forecast_grid(
    camp: Campaign,
    keys: list[str],
    ms: list[int],
    ks: list[int],
    tiers: list[str],
    fast: bool,
    workers: int | None = None,
) -> tuple[dict, str]:
    """Run the per-dataset ablation grids and format the report blocks.

    Each dataset's (m, k, tier) cells fan out over :mod:`repro.parallel`
    (``workers=`` / ``REPRO_WORKERS``); window tensors are built in this
    process against the shared FeatureStore, and the grids come back in
    cell order — bit-identical for any worker count.
    """
    factory = fast_forecaster if fast else bench_forecaster
    # Two grouped folds keep the full 2x2xTiers grids tractable; the
    # within-cell fold spread is reported in each ForecastResult.
    n_splits = 2
    # Resolve tier names once; one spec object per tier serves every
    # dataset's features, names, and windows below.
    tier_specs = [FeatureSpec.resolve(t) for t in tiers]
    data: dict[str, list] = {}
    blocks = []
    for key in keys:
        ds = camp[key]
        # Clamp the grid to what the dataset's step count allows.
        t = ds.num_steps
        ms_ok = [m for m in ms if m + min(ks) < t]
        ks_ok = [k for k in ks if min(ms_ok, default=t) + k < t] if ms_ok else []
        if not ms_ok or not ks_ok:
            continue
        results = ablation_grid(
            ds,
            ms_ok,
            ks_ok,
            tier_specs,
            n_splits=n_splits,
            model_factory=factory,
            workers=workers,
        )
        data[key] = results
        rows = []
        for k in ks_ok:
            for m in ms_ok:
                cells = [r for r in results if r.m == m and r.k == k]
                rows.append(
                    [f"k={k}", f"m={m}"]
                    + [f"{r.mape:.2f}" for r in cells]
                )
        blocks.append(
            f"{key} (MAPE %, grouped {n_splits}-fold CV)\n"
            + ascii_table(["", ""] + tiers, rows)
        )
    return data, "\n\n".join(blocks)


def grid_summary(data: dict) -> dict:
    """Aggregate shape checks: does more context/horizon/features help?"""
    out = {}
    for key, results in data.items():
        by = {(r.m, r.k, r.tier): r.mape for r in results}
        ms = sorted({r.m for r in results})
        ks = sorted({r.k for r in results})
        tiers = [r.tier for r in results[: len(set(r.tier for r in results))]]
        out[key] = {
            "m_effect": _mean_delta(by, ms, ks, tiers, axis="m"),
            "k_effect": _mean_delta(by, ms, ks, tiers, axis="k"),
            "best_mape": min(r.mape for r in results),
        }
    return out


def _mean_delta(by, ms, ks, tiers, axis: str) -> float:
    """Mean MAPE(larger) - MAPE(smaller) along one axis (negative = helps)."""
    import numpy as np

    deltas = []
    for tier in {t for (_, _, t) in by}:
        for m in ms:
            for k in ks:
                if axis == "m" and len(ms) > 1:
                    lo, hi = (ms[0], k, tier), (ms[-1], k, tier)
                elif axis == "k" and len(ks) > 1:
                    lo, hi = (m, ks[0], tier), (m, ks[-1], tier)
                else:
                    continue
                if lo in by and hi in by:
                    deltas.append(by[hi] - by[lo])
    return float(np.mean(deltas)) if deltas else 0.0
