"""CLI: ``python -m repro.experiments <exp-id> [--fast]`` or ``all``.

Experiments run over a shared, memoized stage graph: a repeated
invocation reuses every stored artifact (``--force`` bypasses them) and
``--explain`` prints the resolved DAG with per-stage hit/miss status
instead of executing it.  Parameterised ids take an argument after a
colon, e.g. ``fig07:MILC-512``.  A ``topology/routing`` cell can be
appended to run over a different network: ``fig09:df+/valiant``,
``fig07:MILC-512@df+/minimal`` (see ``repro.topology.registry``).
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import (
    EXPERIMENTS,
    PAPER_EXPERIMENTS,
    explain_experiments,
    run_experiments,
)
from repro.experiments.export import ExportError, export_result
from repro.obs import configure_logging


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate a paper table/figure from the campaign data.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see DESIGN.md §5), optionally with an "
        "argument (fig07:MILC-512) and/or a topology/routing cell "
        "(fig09:df+/valiant, fig07:MILC-512@df+/minimal), or 'all'",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="use the test-scale campaign (smoke run); also honoured "
        "via REPRO_FAST=1",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print the stage DAG with per-stage cache status; run nothing",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="recompute every stage, ignoring stored artifacts",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for stage execution (default: auto)",
    )
    parser.add_argument(
        "--export",
        metavar="DIR",
        default=None,
        help="also write JSON/CSV/TXT result files into DIR",
    )
    args = parser.parse_args(argv)
    configure_logging()
    if args.experiment == "all":
        ids = sorted(PAPER_EXPERIMENTS)
    else:
        base = args.experiment.partition(":")[0]
        if base not in EXPERIMENTS:
            parser.error(
                f"unknown experiment {base!r}; expected one of "
                f"{sorted(EXPERIMENTS) + ['all']}"
            )
        try:
            from repro.experiments import split_cell

            split_cell(args.experiment)
        except ValueError as exc:
            parser.error(str(exc))
        ids = [args.experiment]
    if args.explain:
        print(explain_experiments(ids, fast=args.fast, force=args.force))
        return 0
    results = run_experiments(
        ids, fast=args.fast, workers=args.workers, force=args.force
    )
    rc = 0
    for exp_id in ids:
        result = results[exp_id]
        print(result.render())
        print()
        if args.export:
            try:
                written = export_result(result, args.export)
            except ExportError as exc:
                written = exc.written
                print(f"error: {exc}", file=sys.stderr)
                rc = 1
            for path in written:
                print(f"  wrote {path}")
    return rc


if __name__ == "__main__":
    sys.exit(main())
