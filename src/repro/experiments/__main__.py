"""CLI: ``python -m repro.experiments <exp-id> [--fast]`` or ``all``."""

from __future__ import annotations

import argparse
import sys

from repro.experiments import EXPERIMENTS, run_experiment
from repro.obs import configure_logging


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate a paper table/figure from the campaign data.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id (see DESIGN.md §5)",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="use the test-scale campaign (smoke run)",
    )
    parser.add_argument(
        "--export",
        metavar="DIR",
        default=None,
        help="also write JSON/CSV/TXT result files into DIR",
    )
    args = parser.parse_args(argv)
    configure_logging()
    if args.experiment == "all":
        from repro.experiments import PAPER_EXPERIMENTS

        ids = sorted(PAPER_EXPERIMENTS)
    else:
        ids = [args.experiment]
    for exp_id in ids:
        result = run_experiment(exp_id, fast=args.fast)
        print(result.render())
        print()
        if args.export:
            from repro.experiments.export import export_result

            for path in export_result(result, args.export):
                print(f"  wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
