"""Fig. 3: mean time-per-step behaviour of each application across runs.

Shape targets: AMG 128 faster than 512 with similar trends; MILC's first
20 warmup steps much faster than the next 60; miniVite ~6 long steps; UMT
7 steps with a mild ramp.
"""

from __future__ import annotations

import numpy as np

from repro.apps.registry import DATASET_KEYS
from repro.experiments.context import get_campaign
from repro.experiments.report import ExperimentResult, ascii_series, ascii_table


def run(campaign=None, fast: bool = False) -> ExperimentResult:
    camp = get_campaign(campaign, fast)
    trends: dict[str, np.ndarray] = {}
    rows = []
    blocks = []
    for key in DATASET_KEYS:
        ds = camp[key]
        if len(ds) == 0:
            continue
        _, ym = ds.mean_trends()
        trends[key] = ym
        rows.append(
            [
                key,
                len(ym),
                f"{ym.mean():.2f}",
                f"{ym.min():.2f}",
                f"{ym.max():.2f}",
            ]
        )
        blocks.append(
            ascii_series(np.arange(len(ym)), ym, label=f"{key} mean time/step (s)")
        )
    text = (
        ascii_table(["Dataset", "Steps", "Mean (s)", "Min (s)", "Max (s)"], rows)
        + "\n\n"
        + "\n\n".join(blocks)
    )
    return ExperimentResult(
        exp_id="fig03",
        title="Mean time-per-step behaviour (Fig. 3)",
        data={"trends": trends},
        text=text,
    )
