"""Fig. 3: mean time-per-step behaviour of each application across runs.

Shape targets: AMG 128 faster than 512 with similar trends; MILC's first
20 warmup steps much faster than the next 60; miniVite ~6 long steps; UMT
7 steps with a mild ramp.

One ``mean_trends:<key>`` stage per dataset, shared with Fig. 7's
AMG-128 panel.
"""

from __future__ import annotations

import numpy as np

from repro.apps.registry import DATASET_KEYS
from repro.experiments import stages
from repro.experiments.report import ExperimentResult, ascii_series, ascii_table
from repro.graph import Graph, stage_fn


@stage_fn(version=1)
def render(ctx):
    trends: dict[str, np.ndarray] = {}
    rows = []
    blocks = []
    for key in ctx.params["keys"]:
        ym = ctx.inputs[key]["ym"]
        trends[key] = ym
        rows.append(
            [
                key,
                len(ym),
                f"{ym.mean():.2f}",
                f"{ym.min():.2f}",
                f"{ym.max():.2f}",
            ]
        )
        blocks.append(
            ascii_series(np.arange(len(ym)), ym, label=f"{key} mean time/step (s)")
        )
    text = (
        ascii_table(["Dataset", "Steps", "Mean (s)", "Min (s)", "Max (s)"], rows)
        + "\n\n"
        + "\n\n".join(blocks)
    )
    return ExperimentResult(
        exp_id=ctx.params["exp_id"],
        title="Mean time-per-step behaviour (Fig. 3)",
        data={"trends": trends},
        text=text,
    )


def build(g: Graph, ctx, exp_id: str = "fig03") -> str:
    man = ctx.manifest
    keys = [k for k in DATASET_KEYS if man["runs"].get(k, 0) > 0]
    camp_stage = stages.add_campaign_stage(g)
    inputs = []
    for key in keys:
        name = g.add(
            f"mean_trends:{key}",
            stages.mean_trends,
            inputs=[("manifest", camp_stage)],
            dataset=key,
        )
        inputs.append((key, name))
    return g.add(
        f"render:{exp_id}",
        render,
        params={"exp_id": exp_id, "keys": keys},
        inputs=inputs,
        kind="render",
        local=True,
    )


def run(campaign=None, fast: bool = False) -> ExperimentResult:
    from repro.experiments import run_experiment

    return run_experiment("fig03", campaign=campaign, fast=fast)
