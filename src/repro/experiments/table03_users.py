"""Table III: users highly correlated with (non-)optimality per dataset.

The reproduction additionally scores itself against the campaign's
ground-truth aggressors (which the analysis never sees).  The per-dataset
MI rankings fan out over `repro.parallel` (`REPRO_WORKERS`) and reduce in
key order, so the table is identical for any worker count.
"""

from __future__ import annotations

from repro.analysis.neighborhood import correlated_users_table, recovery_rate
from repro.experiments.context import get_campaign
from repro.experiments.report import ExperimentResult, ascii_table


def run(campaign=None, fast: bool = False) -> ExperimentResult:
    camp = get_campaign(campaign, fast)
    table = correlated_users_table(camp)
    rows = []
    for key, users in table.items():
        app, nodes = key.rsplit("-", 1)
        pretty = ", ".join(u.replace("User-", "") for u in users)
        rows.append([app, nodes, f"User-[{pretty}]"])
    rate = recovery_rate(table, camp.ground_truth_aggressors)
    counts: dict[str, int] = {}
    for users in table.values():
        for u in users:
            counts[u] = counts.get(u, 0) + 1
    multi = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    text = (
        ascii_table(["Application", "No. of nodes", "Highly correlated users"], rows)
        + "\n\nUsers in most lists: "
        + ", ".join(f"{u} ({c})" for u, c in multi[:6])
        + f"\nGround-truth aggressor recovery rate: {rate:.0%}"
    )
    return ExperimentResult(
        exp_id="table03",
        title="Highly correlated users per dataset (Table III)",
        data={"table": table, "recovery_rate": rate, "list_counts": counts},
        text=text,
    )
