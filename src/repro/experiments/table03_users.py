"""Table III: users highly correlated with (non-)optimality per dataset.

The reproduction additionally scores itself against the campaign's
ground-truth aggressors (which the analysis never sees).  Stage graph:
one ``mi:<key>`` stage per dataset (the shared
:func:`repro.experiments.stages.mi_neighborhood` body) fanned out over
the worker pool, and a render stage doing the cross-dataset merge — the
table is identical for any worker count.
"""

from __future__ import annotations

from repro.analysis.neighborhood import merge_user_lists, recovery_rate
from repro.experiments import stages
from repro.experiments.report import ExperimentResult, ascii_table
from repro.graph import Graph, stage_fn


@stage_fn(version=1)
def render(ctx):
    keys = ctx.params["keys"]
    per_dataset = {key: ctx.inputs[key] for key in keys}
    table = merge_user_lists(per_dataset, min_lists=ctx.params["min_lists"])
    rows = []
    for key, users in table.items():
        app, nodes = key.rsplit("-", 1)
        pretty = ", ".join(u.replace("User-", "") for u in users)
        rows.append([app, nodes, f"User-[{pretty}]"])
    rate = recovery_rate(table, ctx.params["ground_truth"])
    counts: dict[str, int] = {}
    for users in table.values():
        for u in users:
            counts[u] = counts.get(u, 0) + 1
    multi = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    text = (
        ascii_table(["Application", "No. of nodes", "Highly correlated users"], rows)
        + "\n\nUsers in most lists: "
        + ", ".join(f"{u} ({c})" for u, c in multi[:6])
        + f"\nGround-truth aggressor recovery rate: {rate:.0%}"
    )
    return ExperimentResult(
        exp_id=ctx.params["exp_id"],
        title="Highly correlated users per dataset (Table III)",
        data={"table": table, "recovery_rate": rate, "list_counts": counts},
        text=text,
    )


def build(g: Graph, ctx, exp_id: str = "table03") -> str:
    man = ctx.manifest
    keys = [k for k in man["keys"] if "-long" not in k]
    camp_stage = stages.add_campaign_stage(g)
    inputs = []
    for key in keys:
        name = g.add(
            f"mi:{key}",
            stages.mi_neighborhood,
            params={"top_k": 9, "tau": 1.0},
            inputs=[("manifest", camp_stage)],
            dataset=key,
        )
        inputs.append((key, name))
    return g.add(
        f"render:{exp_id}",
        render,
        params={
            "exp_id": exp_id,
            "keys": keys,
            "min_lists": 2,
            "ground_truth": list(man["ground_truth_aggressors"]),
        },
        inputs=inputs,
        kind="render",
        local=True,
    )


def run(campaign=None, fast: bool = False) -> ExperimentResult:
    from repro.experiments import run_experiment

    return run_experiment("table03", campaign=campaign, fast=fast)
