"""Fig. 1: relative performance of the four 128-node apps over the campaign.

The paper plots each run's total time divided by the best observed run of
the same application, against the calendar date — up to ~3x for MILC/
miniVite/UMT.  We report the same series plus summary statistics.
"""

from __future__ import annotations

import numpy as np

from repro.campaign.datasets import seconds_to_date
from repro.experiments.context import get_campaign
from repro.experiments.report import ExperimentResult, ascii_series, ascii_table

APPS = ["AMG-128", "MILC-128", "miniVite-128", "UMT-128"]


def run(campaign=None, fast: bool = False) -> ExperimentResult:
    camp = get_campaign(campaign, fast)
    series: dict[str, dict[str, np.ndarray]] = {}
    rows = []
    blocks = []
    for key in APPS:
        ds = camp[key]
        if len(ds) < 2:
            continue
        order = np.argsort(ds.start_times)
        t = ds.start_times[order]
        rel = ds.relative_performance()[order]
        series[key] = {"time": t, "relative": rel}
        rows.append(
            [
                key,
                len(ds),
                f"{rel.max():.2f}x",
                f"{np.median(rel):.2f}x",
                seconds_to_date(t[int(np.argmax(rel))]).strftime("%b %d"),
            ]
        )
        blocks.append(ascii_series(t, rel, label=f"{key} relative performance"))
    text = (
        ascii_table(
            ["Dataset", "Runs", "Worst/best", "Median", "Worst run date"], rows
        )
        + "\n\n"
        + "\n\n".join(blocks)
    )
    return ExperimentResult(
        exp_id="fig01",
        title="Relative performance vs best run over the campaign (Fig. 1)",
        data={"series": series, "rows": rows},
        text=text,
    )
