"""Fig. 1: relative performance of the four 128-node apps over the campaign.

The paper plots each run's total time divided by the best observed run of
the same application, against the calendar date — up to ~3x for MILC/
miniVite/UMT.  We report the same series plus summary statistics.

One ``series:<key>`` stage per dataset (the shared
:func:`repro.experiments.stages.relative_series` body) plus the render.
"""

from __future__ import annotations

import numpy as np

from repro.campaign.datasets import seconds_to_date
from repro.experiments import stages
from repro.experiments.report import ExperimentResult, ascii_series, ascii_table
from repro.graph import Graph, stage_fn

APPS = ["AMG-128", "MILC-128", "miniVite-128", "UMT-128"]


@stage_fn(version=1)
def render(ctx):
    runs = ctx.params["runs"]
    series: dict[str, dict[str, np.ndarray]] = {}
    rows = []
    blocks = []
    for key in ctx.params["keys"]:
        s = ctx.inputs[key]
        t, rel = s["time"], s["relative"]
        series[key] = s
        rows.append(
            [
                key,
                runs[key],
                f"{rel.max():.2f}x",
                f"{np.median(rel):.2f}x",
                seconds_to_date(t[int(np.argmax(rel))]).strftime("%b %d"),
            ]
        )
        blocks.append(ascii_series(t, rel, label=f"{key} relative performance"))
    text = (
        ascii_table(
            ["Dataset", "Runs", "Worst/best", "Median", "Worst run date"], rows
        )
        + "\n\n"
        + "\n\n".join(blocks)
    )
    return ExperimentResult(
        exp_id=ctx.params["exp_id"],
        title="Relative performance vs best run over the campaign (Fig. 1)",
        data={"series": series, "rows": rows},
        text=text,
    )


def build(g: Graph, ctx, exp_id: str = "fig01") -> str:
    man = ctx.manifest
    keys = [k for k in APPS if man["runs"].get(k, 0) >= 2]
    camp_stage = stages.add_campaign_stage(g)
    inputs = []
    for key in keys:
        name = g.add(
            f"series:{key}",
            stages.relative_series,
            inputs=[("manifest", camp_stage)],
            dataset=key,
        )
        inputs.append((key, name))
    return g.add(
        f"render:{exp_id}",
        render,
        params={
            "exp_id": exp_id,
            "keys": keys,
            "runs": {k: man["runs"][k] for k in keys},
        },
        inputs=inputs,
        kind="render",
        local=True,
    )


def run(campaign=None, fast: bool = False) -> ExperimentResult:
    from repro.experiments import run_experiment

    return run_experiment("fig01", campaign=campaign, fast=fast)
