"""Fig. 7: mean counter trends track the mean time-per-step trend (AMG).

The paper shows AMG's mean time/step alongside the mean RT_FLIT_TOT and
RT_RB_STL trends over all runs — the motivation for modelling *deviation*
rather than absolute time (§V-B).  We report the per-counter Pearson
correlation between the mean counter trend and the mean time trend.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.context import get_campaign
from repro.experiments.report import ExperimentResult, ascii_series, ascii_table
from repro.network.counters import APP_COUNTERS


def run(campaign=None, fast: bool = False, key: str = "AMG-128") -> ExperimentResult:
    camp = get_campaign(campaign, fast)
    ds = camp[key]
    xm, ym = ds.mean_trends()
    rows = []
    corr = {}
    for i, name in enumerate(APP_COUNTERS):
        c = xm[:, i]
        if c.std() > 0 and ym.std() > 0:
            r = float(np.corrcoef(c, ym)[0, 1])
        else:
            r = 0.0
        corr[name] = r
        rows.append([name, f"{r:+.2f}", f"{c.mean():.3g}"])
    steps = np.arange(len(ym))
    blocks = [
        ascii_series(steps, ym, label=f"{key} mean time/step (s)"),
        ascii_series(
            steps,
            xm[:, APP_COUNTERS.index("RT_FLIT_TOT")],
            label="mean RT_FLIT_TOT per step",
        ),
        ascii_series(
            steps,
            xm[:, APP_COUNTERS.index("RT_RB_STL")],
            label="mean RT_RB_STL per step",
        ),
    ]
    text = (
        ascii_table(["Counter", "corr(mean trend, mean time)", "mean value"], rows)
        + "\n\n"
        + "\n\n".join(blocks)
    )
    return ExperimentResult(
        exp_id="fig07",
        title=f"Mean counter trends vs mean time trend, {key} (Fig. 7)",
        data={"correlations": corr, "time_trend": ym, "counter_trends": xm},
        text=text,
    )
