"""Fig. 7: mean counter trends track the mean time-per-step trend (AMG).

The paper shows AMG's mean time/step alongside the mean RT_FLIT_TOT and
RT_RB_STL trends over all runs — the motivation for modelling *deviation*
rather than absolute time (§V-B).  We report the per-counter Pearson
correlation between the mean counter trend and the mean time trend.

The dataset is an experiment parameter: ``fig07`` analyses AMG-128 (the
paper's panel) and ``fig07:<dataset>`` (e.g. ``fig07:MILC-512``) any
other dataset, through the registry and CLI alike.  The underlying
``mean_trends:<key>`` stage is shared with Fig. 3.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import stages
from repro.experiments.report import ExperimentResult, ascii_series, ascii_table
from repro.graph import Graph, stage_fn
from repro.network.counters import APP_COUNTERS

#: ``fig07:<value>`` parameterizes this experiment's dataset key.
PARAM = "key"


@stage_fn(version=1)
def render(ctx):
    key = ctx.params["key"]
    trends = ctx.inputs["trends"]
    xm, ym = trends["xm"], trends["ym"]
    rows = []
    corr = {}
    for i, name in enumerate(APP_COUNTERS):
        c = xm[:, i]
        if c.std() > 0 and ym.std() > 0:
            r = float(np.corrcoef(c, ym)[0, 1])
        else:
            r = 0.0
        corr[name] = r
        rows.append([name, f"{r:+.2f}", f"{c.mean():.3g}"])
    steps = np.arange(len(ym))
    blocks = [
        ascii_series(steps, ym, label=f"{key} mean time/step (s)"),
        ascii_series(
            steps,
            xm[:, APP_COUNTERS.index("RT_FLIT_TOT")],
            label="mean RT_FLIT_TOT per step",
        ),
        ascii_series(
            steps,
            xm[:, APP_COUNTERS.index("RT_RB_STL")],
            label="mean RT_RB_STL per step",
        ),
    ]
    text = (
        ascii_table(["Counter", "corr(mean trend, mean time)", "mean value"], rows)
        + "\n\n"
        + "\n\n".join(blocks)
    )
    return ExperimentResult(
        exp_id=ctx.params["exp_id"],
        title=f"Mean counter trends vs mean time trend, {key} (Fig. 7)",
        data={"correlations": corr, "time_trend": ym, "counter_trends": xm},
        text=text,
    )


def build(g: Graph, ctx, exp_id: str = "fig07", key: str = "AMG-128") -> str:
    man = ctx.manifest
    if key not in man["keys"]:
        raise KeyError(
            f"unknown dataset {key!r} for fig07; campaign has {man['keys']}"
        )
    camp_stage = stages.add_campaign_stage(g)
    tstage = g.add(
        f"mean_trends:{key}",
        stages.mean_trends,
        inputs=[("manifest", camp_stage)],
        dataset=key,
    )
    return g.add(
        f"render:{exp_id}",
        render,
        params={"exp_id": exp_id, "key": key},
        inputs=[("trends", tstage)],
        kind="render",
        local=True,
    )


def run(campaign=None, fast: bool = False, key: str = "AMG-128") -> ExperimentResult:
    from repro.experiments import run_experiment

    exp_id = "fig07" if key == "AMG-128" else f"fig07:{key}"
    return run_experiment(exp_id, campaign=campaign, fast=fast)
