"""ASCII rendering for experiment results (tables, series, heatmaps)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class ExperimentResult:
    """Output of one experiment driver."""

    exp_id: str
    title: str
    #: Structured payload, experiment-specific.
    data: dict = field(default_factory=dict)
    #: Rendered report.
    text: str = ""

    def render(self) -> str:
        header = f"== {self.exp_id}: {self.title} =="
        return f"{header}\n{self.text}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def ascii_table(headers: list[str], rows: list[list[object]]) -> str:
    """Monospace table with padded columns."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for j, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if j == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def ascii_series(
    x: np.ndarray, y: np.ndarray, width: int = 60, height: int = 12, label: str = ""
) -> str:
    """A crude line plot for terminal output."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if len(x) != len(y) or len(x) == 0:
        raise ValueError("x and y must be equal-length and non-empty")
    lo, hi = float(y.min()), float(y.max())
    span = hi - lo if hi > lo else 1.0
    cols = np.clip(
        ((x - x.min()) / max(x.max() - x.min(), 1e-12) * (width - 1)).astype(int),
        0,
        width - 1,
    )
    rows = np.clip(((y - lo) / span * (height - 1)).astype(int), 0, height - 1)
    grid = [[" "] * width for _ in range(height)]
    for c, r in zip(cols, rows):
        grid[height - 1 - r][c] = "*"
    out = [f"{label} [{lo:.3g} .. {hi:.3g}]"] if label else []
    out += ["|" + "".join(row) for row in grid]
    out.append("+" + "-" * width)
    return "\n".join(out)


def ascii_bars(
    labels: list[str], values: np.ndarray, width: int = 40, fmt: str = "{:.2f}"
) -> str:
    """Horizontal bar chart."""
    values = np.asarray(values, dtype=float)
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    vmax = float(values.max()) if len(values) and values.max() > 0 else 1.0
    wl = max(len(s) for s in labels) if labels else 0
    lines = []
    for lab, v in zip(labels, values):
        n = int(round(v / vmax * width))
        lines.append(f"{lab.ljust(wl)} |{'#' * n}{' ' * (width - n)}| {fmt.format(v)}")
    return "\n".join(lines)


def ascii_heatmap(
    row_labels: list[str], col_labels: list[str], matrix: np.ndarray
) -> str:
    """Value-grid rendering used for the Fig. 9 / Fig. 11 matrices."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.shape != (len(row_labels), len(col_labels)):
        raise ValueError("matrix shape must match labels")
    headers = ["" ] + list(col_labels)
    rows = []
    for lab, row in zip(row_labels, matrix):
        rows.append([lab] + [f"{v:.2f}" for v in row])
    return ascii_table(headers, rows)
