"""Fig. 4: compute/MPI split and MPI routine breakdown, AMG & MILC @512.

Shape targets: AMG ~82% MPI at 512 nodes dominated by Iprobe/Test/
Testall/Waitall/Allreduce; MILC ~89% MPI dominated by Allreduce/Wait/
Isend/Irecv; large best-to-worst spread in MPI time, stable compute time.
"""

from __future__ import annotations

from repro.experiments._mpi_breakdown import build_mpi
from repro.experiments.report import ExperimentResult
from repro.graph import Graph


def build(g: Graph, ctx, exp_id: str = "fig04") -> str:
    return build_mpi(
        g,
        ctx,
        exp_id,
        title="Compute/MPI split and routine breakdown, AMG & MILC @512 (Fig. 4)",
        keys=["AMG-512", "MILC-512"],
    )


def run(campaign=None, fast: bool = False) -> ExperimentResult:
    from repro.experiments import run_experiment

    return run_experiment("fig04", campaign=campaign, fast=fast)
