"""Fig. 4: compute/MPI split and MPI routine breakdown, AMG & MILC @512.

Shape targets: AMG ~82% MPI at 512 nodes dominated by Iprobe/Test/
Testall/Waitall/Allreduce; MILC ~89% MPI dominated by Allreduce/Wait/
Isend/Irecv; large best-to-worst spread in MPI time, stable compute time.
"""

from __future__ import annotations

from repro.experiments._mpi_breakdown import run_breakdowns
from repro.experiments.context import get_campaign
from repro.experiments.report import ExperimentResult


def run(campaign=None, fast: bool = False) -> ExperimentResult:
    camp = get_campaign(campaign, fast)
    data, text = run_breakdowns(camp, ["AMG-512", "MILC-512"])
    return ExperimentResult(
        exp_id="fig04",
        title="Compute/MPI split and routine breakdown, AMG & MILC @512 (Fig. 4)",
        data=data,
        text=text,
    )
