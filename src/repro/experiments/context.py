"""Shared experiment context: one campaign serving every figure.

The campaign scale follows the ``REPRO_SCALE`` / ``REPRO_FAST``
environment:

* default — the benchmark-scale 120-day campaign (generated once, cached
  on disk under ``REPRO_CACHE_DIR``);
* ``REPRO_FAST=1`` or ``fast=True`` — the test-scale campaign, for smoke
  runs of the full pipeline.

The in-process campaign cache is bounded (LRU over
:func:`campaign_cache_size` entries, default 2) and keyed by
``CampaignConfig.fingerprint()`` — the same fingerprint that roots each
dataset's :class:`~repro.features.FeatureStore` entries, so evicting a
campaign releases its derived-feature memos with it (they live on the
dataset objects).  :func:`clear_cache` drops both layers explicitly.
"""

from __future__ import annotations

import os
from collections import OrderedDict

from repro.campaign.datasets import Campaign
from repro.campaign.runner import CampaignConfig, run_campaign
from repro.obs import METRICS, span

_CACHE: "OrderedDict[str, Campaign]" = OrderedDict()


def fast_requested() -> bool:
    return os.environ.get("REPRO_FAST", "0") not in ("0", "", "false")


def resolve_fast(flag: bool | None = None) -> bool:
    """The one ``--fast`` / ``REPRO_FAST`` precedence rule.

    An explicit ``fast=True`` (CLI flag or API argument) always wins;
    otherwise the environment decides.  ``REPRO_FAST=0`` therefore does
    *not* override an explicit request — the flag is an opt-in, the env
    var a default.
    """
    return bool(flag) or fast_requested()


def campaign_cache_size() -> int:
    """Max campaigns kept in process (``REPRO_CAMPAIGN_CACHE_SIZE``)."""
    try:
        size = int(os.environ.get("REPRO_CAMPAIGN_CACHE_SIZE", "2"))
    except ValueError:
        size = 2
    return max(1, size)


def clear_cache() -> None:
    """Drop cached campaigns and every in-process feature memo."""
    from repro.features import clear_feature_caches

    _CACHE.clear()
    clear_feature_caches()


def experiment_config(
    fast: bool = False, cell: tuple[str, str] | None = None
) -> CampaignConfig:
    """The campaign config for the scale and (topology, routing) cell.

    ``cell=None`` is the default cell — its config (and fingerprint) is
    identical to the pre-axis one, so existing caches stay warm.
    """
    overrides = {}
    if cell is not None:
        overrides = {"topology": cell[0], "routing": cell[1]}
    if resolve_fast(fast):
        return CampaignConfig.tiny(**overrides)
    return CampaignConfig.small(**overrides)


def get_campaign(
    campaign: Campaign | None = None,
    fast: bool = False,
    cell: tuple[str, str] | None = None,
) -> Campaign:
    """The campaign to analyse: supplied, cached in-process, or generated."""
    if campaign is not None:
        return campaign
    cfg = experiment_config(fast, cell)
    key = cfg.fingerprint()
    if key in _CACHE:
        METRICS.counter("experiments.campaign.memo_hits").inc()
        _CACHE.move_to_end(key)
        return _CACHE[key]
    with span("experiments.get_campaign", fingerprint=key) as sp:
        camp = run_campaign(cfg)
        sp.set(datasets=len(list(camp.keys())))
    _CACHE[key] = camp
    while len(_CACHE) > campaign_cache_size():
        _CACHE.popitem(last=False)
    return camp


def long_run_key(campaign: Campaign) -> str | None:
    """The long MILC run's dataset key, if the campaign has one."""
    for key in campaign.keys():
        if key.startswith("MILC-128-long"):
            return key
    return None


class ExperimentContext:
    """Everything an experiment graph build needs, resolved once.

    * the resolved fast flag (:func:`resolve_fast`);
    * the campaign fingerprint — from the supplied campaign's stamp, or
      from the would-be :func:`experiment_config` *without* generating
      the campaign (so a warm run never materialises it);
    * the artifact store rooted under the shared cache dir (disabled
      when a supplied campaign carries no fingerprint stamp — nothing
      sound to address artifacts by);
    * the campaign **manifest** (keys, run counts, step counts, ground
      truth) that graph builders shape their stage lists with — loaded
      from the store when warm, built (and stored) otherwise;
    * :meth:`campaign`, the lazy provider handed to the
      :class:`~repro.graph.GraphRunner` — only an actually *executing*
      campaign/dataset-bound stage triggers generation.
    """

    def __init__(
        self,
        campaign: Campaign | None = None,
        fast: bool = False,
        cell: tuple[str, str] | None = None,
    ) -> None:
        from repro.graph import ArtifactStore

        self.fast = resolve_fast(fast)
        self.cell = cell
        self._campaign = campaign
        if campaign is not None:
            if cell is not None:
                raise ValueError(
                    "a supplied campaign fixes the (topology, routing) "
                    "cell; it cannot be combined with a cell-qualified id"
                )
            fp = None
            for ds in campaign.datasets.values():
                fp = getattr(ds, "campaign_fingerprint", None)
                break
            self.campaign_fingerprint = fp
            self.store = ArtifactStore(enabled=False if fp is None else None)
        else:
            self.campaign_fingerprint = experiment_config(
                self.fast, cell
            ).fingerprint()
            self.store = ArtifactStore()
        self._manifest: dict | None = None

    def campaign(self) -> Campaign:
        """Materialise the campaign (generate/load it if not supplied)."""
        if self._campaign is None:
            self._campaign = get_campaign(None, self.fast, self.cell)
        return self._campaign

    @property
    def manifest(self) -> dict:
        """Campaign shape summary (see :func:`repro.experiments.stages.build_manifest`)."""
        if self._manifest is None:
            from repro.experiments import stages

            self._manifest = stages.load_or_build_manifest(self)
        return self._manifest
