"""Shared experiment context: one campaign serving every figure.

The campaign scale follows the ``REPRO_SCALE`` / ``REPRO_FAST``
environment:

* default — the benchmark-scale 120-day campaign (generated once, cached
  on disk under ``REPRO_CACHE_DIR``);
* ``REPRO_FAST=1`` or ``fast=True`` — the test-scale campaign, for smoke
  runs of the full pipeline.
"""

from __future__ import annotations

import os

from repro.campaign.datasets import Campaign
from repro.campaign.runner import CampaignConfig, run_campaign

_CACHE: dict[str, Campaign] = {}


def fast_requested() -> bool:
    return os.environ.get("REPRO_FAST", "0") not in ("0", "", "false")


def experiment_config(fast: bool = False) -> CampaignConfig:
    if fast or fast_requested():
        return CampaignConfig.tiny()
    return CampaignConfig.small()


def get_campaign(campaign: Campaign | None = None, fast: bool = False) -> Campaign:
    """The campaign to analyse: supplied, cached in-process, or generated."""
    if campaign is not None:
        return campaign
    cfg = experiment_config(fast)
    key = cfg.fingerprint()
    if key not in _CACHE:
        _CACHE[key] = run_campaign(cfg)
    return _CACHE[key]


def long_run_key(campaign: Campaign) -> str | None:
    """The long MILC run's dataset key, if the campaign has one."""
    for key in campaign.keys():
        if key.startswith("MILC-128-long"):
            return key
    return None
