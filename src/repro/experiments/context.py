"""Shared experiment context: one campaign serving every figure.

The campaign scale follows the ``REPRO_SCALE`` / ``REPRO_FAST``
environment:

* default — the benchmark-scale 120-day campaign (generated once, cached
  on disk under ``REPRO_CACHE_DIR``);
* ``REPRO_FAST=1`` or ``fast=True`` — the test-scale campaign, for smoke
  runs of the full pipeline.

The in-process campaign cache is bounded (LRU over
:func:`campaign_cache_size` entries, default 2) and keyed by
``CampaignConfig.fingerprint()`` — the same fingerprint that roots each
dataset's :class:`~repro.features.FeatureStore` entries, so evicting a
campaign releases its derived-feature memos with it (they live on the
dataset objects).  :func:`clear_cache` drops both layers explicitly.
"""

from __future__ import annotations

import os
from collections import OrderedDict

from repro.campaign.datasets import Campaign
from repro.campaign.runner import CampaignConfig, run_campaign
from repro.obs import METRICS, span

_CACHE: "OrderedDict[str, Campaign]" = OrderedDict()


def fast_requested() -> bool:
    return os.environ.get("REPRO_FAST", "0") not in ("0", "", "false")


def campaign_cache_size() -> int:
    """Max campaigns kept in process (``REPRO_CAMPAIGN_CACHE_SIZE``)."""
    try:
        size = int(os.environ.get("REPRO_CAMPAIGN_CACHE_SIZE", "2"))
    except ValueError:
        size = 2
    return max(1, size)


def clear_cache() -> None:
    """Drop cached campaigns and every in-process feature memo."""
    from repro.features import clear_feature_caches

    _CACHE.clear()
    clear_feature_caches()


def experiment_config(fast: bool = False) -> CampaignConfig:
    if fast or fast_requested():
        return CampaignConfig.tiny()
    return CampaignConfig.small()


def get_campaign(campaign: Campaign | None = None, fast: bool = False) -> Campaign:
    """The campaign to analyse: supplied, cached in-process, or generated."""
    if campaign is not None:
        return campaign
    cfg = experiment_config(fast)
    key = cfg.fingerprint()
    if key in _CACHE:
        METRICS.counter("experiments.campaign.memo_hits").inc()
        _CACHE.move_to_end(key)
        return _CACHE[key]
    with span("experiments.get_campaign", fingerprint=key) as sp:
        camp = run_campaign(cfg)
        sp.set(datasets=len(list(camp.keys())))
    _CACHE[key] = camp
    while len(_CACHE) > campaign_cache_size():
        _CACHE.popitem(last=False)
    return camp


def long_run_key(campaign: Campaign) -> str | None:
    """The long MILC run's dataset key, if the campaign has one."""
    for key in campaign.keys():
        if key.startswith("MILC-128-long"):
            return key
    return None
