"""Fig. 9: RFE relevance scores of each counter per dataset.

Shape targets (paper §V-B):

* RT_RB_STL highly relevant for both MILC datasets and AMG-512;
* PT_RB_STL_RQ / PT_RB_2X_USG relevant for AMG (endpoint congestion);
* PT_RB_STL_RQ the most significant counter for UMT;
* flit counters (PT_FLIT_VC0, RT_FLIT_TOT) most important for miniVite;
* prediction MAPE < 5% for every dataset.

Stage graph: one ``rfe:<key>`` stage per qualifying dataset (the shared
:func:`repro.experiments.stages.rfe_ranking` body — Table III and the
importance panels reuse nothing here, but the per-dataset rankings are
memoized in the artifact store so a warm rerun loads instead of
recomputing), plus the render stage assembling the heatmap and MAPE
table.  Datasets are independent stages, so they fan out over the
shared worker pool; inside a pool worker the nested RFE fold fan-out
degrades to serial automatically, so there is exactly one level of
processes.
"""

from __future__ import annotations

import numpy as np

from repro.apps.registry import DATASET_KEYS
from repro.experiments import stages
from repro.experiments.report import ExperimentResult, ascii_heatmap, ascii_table
from repro.graph import Graph, stage_fn
from repro.network.counters import APP_COUNTERS


@stage_fn(version=1)
def render(ctx):
    keys = ctx.params["keys"]
    matrix = []
    mape_rows = []
    results = {}
    for key in keys:
        res = ctx.inputs[key]
        results[key] = res
        matrix.append(res.relevance.scores)
        mape_rows.append(
            [key, f"{res.prediction_mape:.2f}%", ", ".join(res.top_counters(3))]
        )
    matrix = np.asarray(matrix)
    text = (
        ascii_heatmap(keys, APP_COUNTERS, matrix)
        + "\n\n"
        + ascii_table(["Dataset", "Prediction MAPE", "Top counters"], mape_rows)
    )
    return ExperimentResult(
        exp_id=ctx.params["exp_id"],
        title="Counter relevance for deviation prediction (Fig. 9)",
        data={
            "keys": keys,
            "counters": APP_COUNTERS,
            "scores": matrix,
            "mape": {k: results[k].prediction_mape for k in keys},
            "top": {k: results[k].top_counters(4) for k in keys},
        },
        text=text,
    )


def build(g: Graph, ctx, exp_id: str = "fig09") -> str:
    man = ctx.manifest
    keys = [k for k in DATASET_KEYS if k in man["keys"] and man["runs"][k] >= 4]
    n_splits = 4 if ctx.fast else 10
    max_samples = 600 if ctx.fast else 2500
    camp_stage = stages.add_campaign_stage(g)
    inputs = []
    for key in keys:
        name = g.add(
            f"rfe:{key}",
            stages.rfe_ranking,
            params={
                "n_splits": min(n_splits, man["runs"][key]),
                "max_samples": max_samples,
            },
            inputs=[("manifest", camp_stage)],
            dataset=key,
        )
        inputs.append((key, name))
    return g.add(
        f"render:{exp_id}",
        render,
        params={"exp_id": exp_id, "keys": keys},
        inputs=inputs,
        kind="render",
        local=True,
    )


def run(campaign=None, fast: bool = False, workers: int | None = None) -> ExperimentResult:
    from repro.experiments import run_experiment

    return run_experiment("fig09", campaign=campaign, fast=fast, workers=workers)
