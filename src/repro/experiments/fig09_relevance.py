"""Fig. 9: RFE relevance scores of each counter per dataset.

Shape targets (paper §V-B):

* RT_RB_STL highly relevant for both MILC datasets and AMG-512;
* PT_RB_STL_RQ / PT_RB_2X_USG relevant for AMG (endpoint congestion);
* PT_RB_STL_RQ the most significant counter for UMT;
* flit counters (PT_FLIT_VC0, RT_FLIT_TOT) most important for miniVite;
* prediction MAPE < 5% for every dataset.

The flattened mean-centered sample matrices come from each dataset's
FeatureStore, so reruns and benchmarks share one construction.

Datasets are independent, so the driver fans them out over
:mod:`repro.parallel` (``REPRO_WORKERS`` / ``workers=``); inside a pool
worker the nested RFE fold fan-out degrades to serial automatically, so
there is exactly one level of processes.  Results reduce in dataset
order — output is bit-identical for any worker count.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.deviation import DeviationAnalysis, deviation_analysis
from repro.apps.registry import DATASET_KEYS
from repro.experiments.context import get_campaign
from repro.experiments.report import ExperimentResult, ascii_heatmap, ascii_table
from repro.network.counters import APP_COUNTERS
from repro.parallel import parallel_map


def _dataset_relevance(ds, n_splits: int, max_samples: int) -> DeviationAnalysis:
    """One dataset's RFE sweep (top-level: pool task)."""
    return deviation_analysis(ds, n_splits=n_splits, max_samples=max_samples)


def run(campaign=None, fast: bool = False, workers: int | None = None) -> ExperimentResult:
    camp = get_campaign(campaign, fast)
    keys = [k for k in DATASET_KEYS if k in camp.keys() and len(camp[k]) >= 4]
    n_splits = 4 if fast else 10
    max_samples = 600 if fast else 2500
    tasks = [
        (camp[key], min(n_splits, len(camp[key])), max_samples) for key in keys
    ]
    analyses = parallel_map(_dataset_relevance, tasks, workers=workers)
    matrix = []
    mape_rows = []
    results = {}
    for key, res in zip(keys, analyses):
        results[key] = res
        matrix.append(res.relevance.scores)
        mape_rows.append([key, f"{res.prediction_mape:.2f}%", ", ".join(res.top_counters(3))])
    matrix = np.asarray(matrix)
    text = (
        ascii_heatmap(keys, APP_COUNTERS, matrix)
        + "\n\n"
        + ascii_table(["Dataset", "Prediction MAPE", "Top counters"], mape_rows)
    )
    return ExperimentResult(
        exp_id="fig09",
        title="Counter relevance for deviation prediction (Fig. 9)",
        data={
            "keys": keys,
            "counters": APP_COUNTERS,
            "scores": matrix,
            "mape": {k: results[k].prediction_mape for k in keys},
            "top": {k: results[k].top_counters(4) for k in keys},
        },
        text=text,
    )
