"""Fig. 8: forecasting MAPE for AMG, m = {3, 8}, k = {5, 10}.

Feature tiers: app counters only, and app + placement (the paper skips
io/sys for AMG — they caused overfitting, §V-C).

Shape targets: longer temporal context (m=8) lowers MAPE; larger horizon
(k=10) lowers MAPE (bursts amortise); placement features add little;
512-node errors slightly above 128-node ones.

Each grid cell is one memoized stage (see
:mod:`repro.experiments._forecast_common`).
"""

from __future__ import annotations

from repro.experiments._forecast_common import build_grid
from repro.experiments.report import ExperimentResult
from repro.graph import Graph


def build(g: Graph, ctx, exp_id: str = "fig08") -> str:
    return build_grid(
        g,
        ctx,
        exp_id,
        title="Forecasting MAPE for AMG datasets (Fig. 8)",
        keys=["AMG-128", "AMG-512"],
        ms=[3, 8],
        ks=[5, 10],
        tiers=["app", "app+placement"],
    )


def run(campaign=None, fast: bool = False) -> ExperimentResult:
    from repro.experiments import run_experiment

    return run_experiment("fig08", campaign=campaign, fast=fast)
