"""Fig. 8: forecasting MAPE for AMG, m = {3, 8}, k = {5, 10}.

Feature tiers: app counters only, and app + placement (the paper skips
io/sys for AMG — they caused overfitting, §V-C).

Shape targets: longer temporal context (m=8) lowers MAPE; larger horizon
(k=10) lowers MAPE (bursts amortise); placement features add little;
512-node errors slightly above 128-node ones.

Window tensors come from each dataset's FeatureStore (via
`repro.analysis.forecasting`), shared with Fig. 11's importance panels.
Grid cells fan out over `repro.parallel` when `REPRO_WORKERS` (or the
`workers=` knob on `forecast_grid`) asks for it — results are
bit-identical for any worker count.
"""

from __future__ import annotations

from repro.experiments._forecast_common import forecast_grid, grid_summary
from repro.experiments.context import get_campaign
from repro.experiments.report import ExperimentResult


def run(campaign=None, fast: bool = False) -> ExperimentResult:
    camp = get_campaign(campaign, fast)
    data, text = forecast_grid(
        camp,
        keys=["AMG-128", "AMG-512"],
        ms=[3, 8],
        ks=[5, 10],
        tiers=["app", "app+placement"],
        fast=fast,
    )
    summary = grid_summary(data)
    return ExperimentResult(
        exp_id="fig08",
        title="Forecasting MAPE for AMG datasets (Fig. 8)",
        data={"grid": data, "summary": summary},
        text=text,
    )
