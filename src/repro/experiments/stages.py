"""Shared stages of the experiment DAG.

The stage bodies every figure/table builder composes: the campaign
manifest, per-dataset RFE rankings, forecast-grid cells, trained
forecasters, importance panels, long-run segment forecasts, MI
neighbourhood rankings, mean trends, relative-performance series, and
MPI breakdowns.  Figure-specific *render* stages live in their own
modules; everything here is shared so overlapping experiments (fig09 /
fig11 / table03, fig08 / fig10 / fig12, fig03 / fig07) deduplicate to
one stage per distinct product.

Stage bodies receive a :class:`~repro.graph.StageCtx` and call the exact
same analysis functions, with the exact same arguments and seeds, as the
pre-DAG drivers did — byte-identical results are the contract
(``tests/graph/test_golden.py``).
"""

from __future__ import annotations

from repro.graph import Graph, stage_fn

#: The canonical name of the campaign stage in every experiment graph.
CAMPAIGN_STAGE = "campaign"


def model_factory(name: str):
    """Resolve a fingerprint-friendly model name to its factory."""
    from repro.analysis.forecasting import default_forecaster
    from repro.experiments._forecast_common import bench_forecaster, fast_forecaster

    return {
        "fast": fast_forecaster,
        "bench": bench_forecaster,
        "default": default_forecaster,
    }[name]


def model_name(fast: bool) -> str:
    return "fast" if fast else "bench"


# --------------------------------------------------------------------------- #
# Campaign manifest.
# --------------------------------------------------------------------------- #


def build_manifest(camp) -> dict:
    """Shape summary of a campaign: what graph builders decide with.

    Keys, per-dataset run and step counts, and the ground-truth
    aggressors — enough to size every stage list without holding the
    datasets themselves, so a warm run (or ``--explain``) never
    materialises the campaign.
    """
    keys = list(camp.keys())
    return {
        "keys": keys,
        "runs": {k: len(camp[k]) for k in keys},
        "num_steps": {k: int(camp[k].num_steps) for k in keys},
        "ground_truth_aggressors": list(camp.ground_truth_aggressors),
    }


@stage_fn(version=1)
def campaign_manifest(ctx):
    return build_manifest(ctx.camp)


def add_campaign_stage(g: Graph) -> str:
    """The root stage: materialise the campaign, emit its manifest."""
    return g.add(CAMPAIGN_STAGE, campaign_manifest, campaign=True, local=True)


def campaign_stage_fingerprint(campaign_fingerprint: str | None) -> tuple[str, str]:
    """(store group, fingerprint) of the campaign stage — computed from a
    throwaway graph so it can never drift from the real one."""
    g = Graph()
    add_campaign_stage(g)
    return (
        g.stages[CAMPAIGN_STAGE].group(),
        g.fingerprints(campaign_fingerprint)[CAMPAIGN_STAGE],
    )


def load_or_build_manifest(ctx) -> dict:
    """The manifest for an :class:`~repro.experiments.context.ExperimentContext`:
    a pure store read when warm, built from the materialised campaign (and
    stored, so the graph's campaign stage hits) otherwise.

    The build path *is* the campaign stage executing — just early, at
    graph-build time — so it opens the same ``graph.stage`` span the
    scheduler would: cold-run campaign generation stays attributed to a
    stage, and profiled per-stage walls keep summing to the run's root
    span.
    """
    from repro.graph import MISS
    from repro.obs.profile import profiled_span

    group, fp = campaign_stage_fingerprint(ctx.campaign_fingerprint)
    value = ctx.store.load(group, fp)
    if value is not MISS:
        return value
    attrs = {"stage": CAMPAIGN_STAGE}
    if ctx.cell:
        attrs["cell"] = "/".join(ctx.cell)
    with profiled_span("graph.stage", **attrs):
        manifest = build_manifest(ctx.campaign())
    ctx.store.save(group, fp, manifest)
    return manifest


# --------------------------------------------------------------------------- #
# Shared dataset-bound stage bodies (top-level: pool workers resolve
# them by import path).
# --------------------------------------------------------------------------- #


@stage_fn(version=1)
def rfe_ranking(ctx):
    """Fig. 9 / deviation RFE sweep for one dataset."""
    from repro.analysis.deviation import deviation_analysis

    return deviation_analysis(
        ctx.ds,
        n_splits=ctx.params["n_splits"],
        max_samples=ctx.params["max_samples"],
    )


@stage_fn(version=1)
def mi_neighborhood(ctx):
    """Table III's per-dataset high-MI user list."""
    from repro.analysis.neighborhood import dataset_top_users

    return dataset_top_users(ctx.ds, ctx.params["top_k"], ctx.params["tau"])


@stage_fn(version=1)
def forecast_cell(ctx):
    """One grouped-CV cell of the Fig. 8 / Fig. 10 ablation grids."""
    from repro.analysis.forecasting import forecast_mape

    p = ctx.params
    return forecast_mape(
        ctx.ds,
        p["m"],
        p["k"],
        p["tier"],
        n_splits=p["n_splits"],
        seed=p["seed"],
        model_factory=model_factory(p["model"]),
        align_m=p["align_m"],
    )


@stage_fn(version=1)
def forecaster(ctx):
    """One trained forecaster — shared by Fig. 11 and Fig. 12."""
    from repro.analysis.forecasting import fit_forecaster

    p = ctx.params
    return fit_forecaster(
        ctx.ds,
        p["m"],
        p["k"],
        p["tier"],
        seed=p["seed"],
        model_factory=model_factory(p["model"]),
    )


@stage_fn(version=1)
def importance_panel(ctx):
    """Fig. 11 panel: permutation importances of a trained forecaster."""
    from repro.analysis.forecasting import model_importances

    p = ctx.params
    names, imp = model_importances(
        ctx.inputs["model"], ctx.ds, p["m"], p["k"], p["tier"], seed=p["seed"]
    )
    return {"names": names, "importances": imp}


@stage_fn(version=1)
def longrun_segments(ctx):
    """Fig. 12: segment forecasts of the long run (``ctx.ds``) using the
    forecaster trained on the regular dataset."""
    from repro.analysis.forecasting import segment_forecast

    p = ctx.params
    return segment_forecast(
        ctx.inputs["model"],
        p["train_key"],
        ctx.ds.runs[0],
        m=p["m"],
        k=p["k"],
        tier=p["tier"],
    )


@stage_fn(version=1)
def mean_trends(ctx):
    """Per-dataset mean counter/time trends (Fig. 3, Fig. 7)."""
    xm, ym = ctx.ds.mean_trends()
    return {"xm": xm, "ym": ym}


@stage_fn(version=1)
def relative_series(ctx):
    """Fig. 1: relative performance against calendar time."""
    import numpy as np

    ds = ctx.ds
    order = np.argsort(ds.start_times)
    return {
        "time": ds.start_times[order],
        "relative": ds.relative_performance()[order],
    }


@stage_fn(version=1)
def mpi_stats(ctx):
    """Fig. 4 / Fig. 5: compute/MPI split and routine breakdown."""
    from repro.experiments._mpi_breakdown import mpi_breakdown

    return mpi_breakdown(ctx.ds)


# --------------------------------------------------------------------------- #
# Builder helpers.
# --------------------------------------------------------------------------- #


def add_forecaster_stage(
    g: Graph, key: str, m: int, k: int, tier: str, model: str
) -> str:
    """Add (or reuse) the trained-forecaster stage for one cell."""
    camp_stage = add_campaign_stage(g)
    return g.add(
        f"forecaster:{key}:m{m}:k{k}:{tier}:{model}",
        forecaster,
        params={"m": m, "k": k, "tier": tier, "seed": 0, "model": model},
        inputs=[("manifest", camp_stage)],
        dataset=key,
    )
