"""Table II: the network hardware performance counters of the study."""

from __future__ import annotations

from repro.experiments.report import ExperimentResult, ascii_table
from repro.network.counters import COUNTER_SPECS


def run(campaign=None, fast: bool = False) -> ExperimentResult:
    rows = [
        [s.name, s.abbreviation, s.description]
        for s in COUNTER_SPECS
    ]
    text = ascii_table(["Counter name", "Abbreviation", "Description"], rows)
    return ExperimentResult(
        exp_id="table02",
        title="Network hardware performance counters (Table II)",
        data={"rows": rows},
        text=text,
    )
