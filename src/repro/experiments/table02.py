"""Table II: the network hardware performance counters of the study."""

from __future__ import annotations

from repro.experiments.report import ExperimentResult, ascii_table
from repro.graph import Graph, stage_fn
from repro.network.counters import COUNTER_SPECS


@stage_fn(version=1)
def render(ctx):
    rows = [
        [s.name, s.abbreviation, s.description]
        for s in COUNTER_SPECS
    ]
    text = ascii_table(["Counter name", "Abbreviation", "Description"], rows)
    return ExperimentResult(
        exp_id=ctx.params["exp_id"],
        title="Network hardware performance counters (Table II)",
        data={"rows": rows},
        text=text,
    )


def build(g: Graph, ctx, exp_id: str = "table02") -> str:
    return g.add(
        f"render:{exp_id}",
        render,
        params={"exp_id": exp_id},
        kind="render",
        local=True,
    )


def run(campaign=None, fast: bool = False) -> ExperimentResult:
    from repro.experiments import run_experiment

    return run_experiment("table02", campaign=campaign, fast=fast)
