"""Fig. 12: forecasting a long-running MILC job in 40-step segments.

The paper ran MILC @128 for 620 steps (~1h45m), divided it into 40-step
segments, and predicted each segment's time from the preceding 30 steps
using a model trained only on the regular (80-step) dataset.  Shape
target: predictions track the observed segment times through the run's
variability, with occasional biased segments (irreducible uncertainty).

Stage graph: the trained ``forecaster:MILC-128:...`` stage (shared with
Fig. 11's MILC panel when the paper-scale (m=30, k=40) cell applies — a
combined fig11+fig12 run fits it once) feeding the ``longrun:...``
segment-forecast stage.
"""

from __future__ import annotations

from repro.experiments import stages
from repro.experiments.report import ExperimentResult, ascii_series, ascii_table
from repro.graph import Graph, stage_fn


@stage_fn(version=1)
def render(ctx):
    p = ctx.params
    res = ctx.inputs["res"]
    lkey, t, m, k = p["lkey"], p["t"], p["m"], p["k"]
    rows = [
        [int(s), f"{o:.1f}", f"{p_:.1f}", f"{100 * abs(o - p_) / o:.1f}%"]
        for s, o, p_ in zip(res.segment_starts, res.observed, res.predicted)
    ]
    mid = res.segment_starts + k / 2
    text = (
        f"long run: {lkey} ({t} steps), segments of k={k}, context m={m}\n"
        + ascii_table(["Segment start", "Observed (s)", "Predicted (s)", "APE"], rows)
        + f"\n\nSegment MAPE: {res.mape:.2f}%\n\n"
        + ascii_series(mid, res.observed, label="observed time per segment (s)")
        + "\n"
        + ascii_series(mid, res.predicted, label="predicted time per segment (s)")
    )
    return ExperimentResult(
        exp_id=p["exp_id"],
        title="Forecasting 40-step segments of a 620-step MILC run (Fig. 12)",
        data={
            "segment_starts": res.segment_starts,
            "observed": res.observed,
            "predicted": res.predicted,
            "mape": res.mape,
            "m": m,
            "k": k,
        },
        text=text,
    )


def build(g: Graph, ctx, exp_id: str = "fig12") -> str:
    man = ctx.manifest
    lkey = next(
        (key for key in man["keys"] if key.startswith("MILC-128-long")), None
    )
    if lkey is None:
        raise RuntimeError("campaign has no long MILC run")
    t = man["num_steps"][lkey]
    train_steps = man["num_steps"]["MILC-128"]
    # The paper's m=30 / k=40; clamp for the tiny campaign's shorter run.
    k = 40 if t >= 200 else max(10, t // 8)
    m = 30 if train_steps > 30 + k else max(5, train_steps - k - 1)
    tier = "app+placement+io+sys"
    model = stages.model_name(ctx.fast)
    fstage = stages.add_forecaster_stage(g, "MILC-128", m, k, tier, model)
    lstage = g.add(
        f"longrun:{lkey}:m{m}:k{k}:{tier}:{model}",
        stages.longrun_segments,
        params={"m": m, "k": k, "tier": tier, "train_key": "MILC-128"},
        inputs=[("model", fstage)],
        dataset=lkey,
    )
    return g.add(
        f"render:{exp_id}",
        render,
        params={"exp_id": exp_id, "lkey": lkey, "t": t, "m": m, "k": k},
        inputs=[("res", lstage)],
        kind="render",
        local=True,
    )


def run(campaign=None, fast: bool = False) -> ExperimentResult:
    from repro.experiments import run_experiment

    return run_experiment("fig12", campaign=campaign, fast=fast)
