"""Fig. 12: forecasting a long-running MILC job in 40-step segments.

The paper ran MILC @128 for 620 steps (~1h45m), divided it into 40-step
segments, and predicted each segment's time from the preceding 30 steps
using a model trained only on the regular (80-step) dataset.  Shape
target: predictions track the observed segment times through the run's
variability, with occasional biased segments (irreducible uncertainty).

Training windows come from the MILC-128 dataset's FeatureStore — warm
after a Fig. 10 run at the same (tier, m, k) cell.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.forecasting import long_run_forecast
from repro.experiments._forecast_common import bench_forecaster, fast_forecaster
from repro.experiments.context import get_campaign, long_run_key
from repro.experiments.report import ExperimentResult, ascii_series, ascii_table


def run(campaign=None, fast: bool = False) -> ExperimentResult:
    camp = get_campaign(campaign, fast)
    lkey = long_run_key(camp)
    if lkey is None:
        raise RuntimeError("campaign has no long MILC run")
    long_run = camp[lkey].runs[0]
    train = camp["MILC-128"]
    t = len(long_run.step_times)
    # The paper's m=30 / k=40; clamp for the tiny campaign's shorter run.
    k = 40 if t >= 200 else max(10, t // 8)
    m = 30 if train.num_steps > 30 + k else max(5, train.num_steps - k - 1)
    tier = "app+placement+io+sys"
    factory = fast_forecaster if fast else bench_forecaster
    res = long_run_forecast(
        train, long_run, m=m, k=k, tier=tier, model_factory=factory
    )
    rows = [
        [int(s), f"{o:.1f}", f"{p:.1f}", f"{100 * abs(o - p) / o:.1f}%"]
        for s, o, p in zip(res.segment_starts, res.observed, res.predicted)
    ]
    mid = res.segment_starts + k / 2
    text = (
        f"long run: {lkey} ({t} steps), segments of k={k}, context m={m}\n"
        + ascii_table(["Segment start", "Observed (s)", "Predicted (s)", "APE"], rows)
        + f"\n\nSegment MAPE: {res.mape:.2f}%\n\n"
        + ascii_series(mid, res.observed, label="observed time per segment (s)")
        + "\n"
        + ascii_series(mid, res.predicted, label="predicted time per segment (s)")
    )
    return ExperimentResult(
        exp_id="fig12",
        title="Forecasting 40-step segments of a 620-step MILC run (Fig. 12)",
        data={
            "segment_starts": res.segment_starts,
            "observed": res.observed,
            "predicted": res.predicted,
            "mape": res.mape,
            "m": m,
            "k": k,
        },
        text=text,
    )
