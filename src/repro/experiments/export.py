"""Export experiment results to JSON/CSV for external plotting.

The ASCII reports are for the terminal; users who want to re-plot the
figures in matplotlib/gnuplot can export any experiment's structured data:

    python -m repro.experiments fig09 --export results/

writes ``results/fig09.json`` (all payload arrays, JSON-serialised) and,
for tabular payloads, ``results/fig09.csv``.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, is_dataclass
from pathlib import Path

import numpy as np

from repro.experiments.report import ExperimentResult


class ExportError(OSError):
    """One or more export files could not be written.

    ``written`` lists the paths that did land; ``errors`` the
    ``(path, exc)`` pairs that failed.
    """

    def __init__(self, exp_id: str, errors, written):
        self.exp_id = exp_id
        self.errors = list(errors)
        self.written = list(written)
        detail = "; ".join(f"{path}: {exc}" for path, exc in self.errors)
        super().__init__(f"export failed for {exp_id}: {detail}")


def _jsonable(obj):
    """Recursively convert numpy/dataclass payloads to JSON-safe values."""
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if is_dataclass(obj) and not isinstance(obj, type):
        return _jsonable(asdict(obj))
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if hasattr(obj, "isoformat"):  # datetimes
        return obj.isoformat()
    return repr(obj)


def export_result(result: ExperimentResult, out_dir: Path | str) -> list[Path]:
    """Write ``<exp_id>.json`` (+ ``.csv`` when tabular, + ``.txt`` report).

    Returns the written paths.  Raises :class:`ExportError` when any
    file fails, after attempting the remaining ones — partial output is
    recorded on the exception rather than silently dropped.
    """
    out_dir = Path(out_dir)
    try:
        out_dir.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise ExportError(result.exp_id, [(out_dir, exc)], []) from exc
    written: list[Path] = []
    errors: list[tuple[Path, OSError]] = []

    def _attempt(path: Path, write) -> None:
        try:
            write(path)
        except OSError as exc:
            errors.append((path, exc))
        else:
            written.append(path)

    def _write_json(path: Path) -> None:
        path.write_text(
            json.dumps(
                {
                    "exp_id": result.exp_id,
                    "title": result.title,
                    "data": _jsonable(result.data),
                },
                indent=1,
            )
        )

    def _write_csv(path: Path) -> None:
        with path.open("w", newline="") as fh:
            csv.writer(fh).writerows(rows)

    # Cell-qualified ids ("fig09:df+/valiant") contain a path separator;
    # flatten it so every export lands directly in out_dir.
    stem = result.exp_id.replace("/", "-")
    _attempt(out_dir / f"{stem}.json", _write_json)
    _attempt(
        out_dir / f"{stem}.txt",
        lambda path: path.write_text(result.render() + "\n"),
    )

    rows = result.data.get("rows")
    if isinstance(rows, list) and rows and isinstance(rows[0], (list, tuple)):
        _attempt(out_dir / f"{stem}.csv", _write_csv)

    if errors:
        raise ExportError(result.exp_id, errors, written)
    return written
