"""Export experiment results to JSON/CSV for external plotting.

The ASCII reports are for the terminal; users who want to re-plot the
figures in matplotlib/gnuplot can export any experiment's structured data:

    python -m repro.experiments fig09 --export results/

writes ``results/fig09.json`` (all payload arrays, JSON-serialised) and,
for tabular payloads, ``results/fig09.csv``.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, is_dataclass
from pathlib import Path

import numpy as np

from repro.experiments.report import ExperimentResult


def _jsonable(obj):
    """Recursively convert numpy/dataclass payloads to JSON-safe values."""
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if is_dataclass(obj) and not isinstance(obj, type):
        return _jsonable(asdict(obj))
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if hasattr(obj, "isoformat"):  # datetimes
        return obj.isoformat()
    return repr(obj)


def export_result(result: ExperimentResult, out_dir: Path | str) -> list[Path]:
    """Write ``<exp_id>.json`` (+ ``.csv`` when tabular, + ``.txt`` report).

    Returns the written paths.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    jpath = out_dir / f"{result.exp_id}.json"
    jpath.write_text(
        json.dumps(
            {
                "exp_id": result.exp_id,
                "title": result.title,
                "data": _jsonable(result.data),
            },
            indent=1,
        )
    )
    written.append(jpath)

    tpath = out_dir / f"{result.exp_id}.txt"
    tpath.write_text(result.render() + "\n")
    written.append(tpath)

    rows = result.data.get("rows")
    if isinstance(rows, list) and rows and isinstance(rows[0], (list, tuple)):
        cpath = out_dir / f"{result.exp_id}.csv"
        with cpath.open("w", newline="") as fh:
            csv.writer(fh).writerows(rows)
        written.append(cpath)
    return written
