"""Shared driver for the Fig. 4 / Fig. 5 MPI breakdowns."""

from __future__ import annotations

import numpy as np

from repro.campaign.datasets import Campaign, RunDataset
from repro.experiments.report import ascii_table
from repro.graph import stage_fn


def mpi_breakdown(ds: RunDataset) -> dict:
    """Compute/MPI split and per-routine best/average/worst over runs.

    The paper's error bars span the fastest and slowest run of each code;
    here "best"/"worst" are the runs with the smallest/largest total MPI
    time.
    """
    if len(ds) == 0:
        raise ValueError(f"dataset {ds.key} is empty")
    mpi_totals = np.array([r.mpi_times.sum() for r in ds.runs])
    comp_totals = np.array([r.compute_times.sum() for r in ds.runs])
    best = int(np.argmin(mpi_totals))
    worst = int(np.argmax(mpi_totals))
    routines = sorted(ds.runs[0].routine_times)
    per_routine = {
        name: np.array([r.routine_times[name] for r in ds.runs])
        for name in routines
    }
    return {
        "key": ds.key,
        "compute": {
            "best": float(comp_totals[best]),
            "average": float(comp_totals.mean()),
            "worst": float(comp_totals[worst]),
        },
        "mpi": {
            "best": float(mpi_totals[best]),
            "average": float(mpi_totals.mean()),
            "worst": float(mpi_totals[worst]),
        },
        "mpi_fraction": float(mpi_totals.mean() / (mpi_totals + comp_totals).mean()),
        "routines": {
            name: {
                "best": float(v[best]),
                "average": float(v.mean()),
                "worst": float(v[worst]),
            }
            for name, v in per_routine.items()
        },
    }


def render_breakdown(stats: dict) -> str:
    rows = [
        [
            "Compute",
            f"{stats['compute']['best']:.1f}",
            f"{stats['compute']['average']:.1f}",
            f"{stats['compute']['worst']:.1f}",
        ],
        [
            "MPI",
            f"{stats['mpi']['best']:.1f}",
            f"{stats['mpi']['average']:.1f}",
            f"{stats['mpi']['worst']:.1f}",
        ],
    ]
    for name, v in sorted(
        stats["routines"].items(), key=lambda kv: -kv[1]["average"]
    ):
        rows.append(
            [
                f"  {name}",
                f"{v['best']:.1f}",
                f"{v['average']:.1f}",
                f"{v['worst']:.1f}",
            ]
        )
    table = ascii_table(["(seconds)", "Best", "Average", "Worst"], rows)
    return (
        f"{stats['key']}  (mean MPI fraction: {stats['mpi_fraction']:.0%})\n{table}"
    )


def run_breakdowns(camp: Campaign, keys: list[str]) -> tuple[dict, str]:
    data = {}
    blocks = []
    for key in keys:
        stats = mpi_breakdown(camp[key])
        data[key] = stats
        blocks.append(render_breakdown(stats))
    return data, "\n\n".join(blocks)


@stage_fn(version=1)
def render_mpi(ctx):
    from repro.experiments.report import ExperimentResult

    data = {}
    blocks = []
    for key in ctx.params["keys"]:
        stats = ctx.inputs[key]
        data[key] = stats
        blocks.append(render_breakdown(stats))
    return ExperimentResult(
        exp_id=ctx.params["exp_id"],
        title=ctx.params["title"],
        data=data,
        text="\n\n".join(blocks),
    )


def build_mpi(g, ctx, exp_id: str, title: str, keys: list[str]) -> str:
    """One ``mpi:<key>`` stage per dataset plus the figure's render."""
    from repro.experiments import stages

    camp_stage = stages.add_campaign_stage(g)
    inputs = []
    for key in keys:
        name = g.add(
            f"mpi:{key}",
            stages.mpi_stats,
            inputs=[("manifest", camp_stage)],
            dataset=key,
        )
        inputs.append((key, name))
    return g.add(
        f"render:{exp_id}",
        render_mpi,
        params={"exp_id": exp_id, "title": title, "keys": keys},
        inputs=inputs,
        kind="render",
        local=True,
    )
