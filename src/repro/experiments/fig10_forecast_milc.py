"""Fig. 10: forecasting MAPE for MILC, m = {10, 30}, k = {20, 40}.

All four feature tiers.  Shape targets: larger m and k lower MAPE; adding
io and then sys features successively improves MILC's forecasts
(bandwidth-bound code, sensitive to system-wide I/O traffic, §V-C).

Each grid cell is one memoized stage (see
:mod:`repro.experiments._forecast_common`); the (m=30, k=40,
all-features) windows are the same tensors Fig. 11 and Fig. 12 consume.
"""

from __future__ import annotations

from repro.experiments._forecast_common import build_grid
from repro.experiments.report import ExperimentResult
from repro.graph import Graph


def build(g: Graph, ctx, exp_id: str = "fig10") -> str:
    return build_grid(
        g,
        ctx,
        exp_id,
        title="Forecasting MAPE for MILC datasets (Fig. 10)",
        keys=["MILC-128", "MILC-512"],
        ms=[10, 30],
        ks=[20, 40],
        tiers=[
            "app",
            "app+placement",
            "app+placement+io",
            "app+placement+io+sys",
        ],
    )


def run(campaign=None, fast: bool = False) -> ExperimentResult:
    from repro.experiments import run_experiment

    return run_experiment("fig10", campaign=campaign, fast=fast)
