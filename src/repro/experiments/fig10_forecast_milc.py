"""Fig. 10: forecasting MAPE for MILC, m = {10, 30}, k = {20, 40}.

All four feature tiers.  Shape targets: larger m and k lower MAPE; adding
io and then sys features successively improves MILC's forecasts
(bandwidth-bound code, sensitive to system-wide I/O traffic, §V-C).

Window tensors come from each dataset's FeatureStore; the
(m=30, k=40, all-features) cell is the same tensor Fig. 11 and Fig. 12
consume, so a combined fig10-fig12 run builds it once.  Grid cells fan
out over `repro.parallel` when `REPRO_WORKERS` (or the `workers=` knob
on `forecast_grid`) asks for it — results are bit-identical for any
worker count.
"""

from __future__ import annotations

from repro.experiments._forecast_common import forecast_grid, grid_summary
from repro.experiments.context import get_campaign
from repro.experiments.report import ExperimentResult


def run(campaign=None, fast: bool = False) -> ExperimentResult:
    camp = get_campaign(campaign, fast)
    data, text = forecast_grid(
        camp,
        keys=["MILC-128", "MILC-512"],
        ms=[10, 30],
        ks=[20, 40],
        tiers=[
            "app",
            "app+placement",
            "app+placement+io",
            "app+placement+io+sys",
        ],
        fast=fast,
    )
    summary = grid_summary(data)
    return ExperimentResult(
        exp_id="fig10",
        title="Forecasting MAPE for MILC datasets (Fig. 10)",
        data={"grid": data, "summary": summary},
        text=text,
    )
