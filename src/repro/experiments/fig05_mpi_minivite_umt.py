"""Fig. 5: compute/MPI split and routine breakdown, miniVite & UMT @128.

Shape targets: miniVite >98% MPI, almost all in Waitall; UMT ~30% MPI
concentrated in Wait/Barrier/Allreduce with high worst/best spread.
"""

from __future__ import annotations

from repro.experiments._mpi_breakdown import build_mpi
from repro.experiments.report import ExperimentResult
from repro.graph import Graph


def build(g: Graph, ctx, exp_id: str = "fig05") -> str:
    return build_mpi(
        g,
        ctx,
        exp_id,
        title="Compute/MPI split and routine breakdown, miniVite & UMT @128 (Fig. 5)",
        keys=["miniVite-128", "UMT-128"],
    )


def run(campaign=None, fast: bool = False) -> ExperimentResult:
    from repro.experiments import run_experiment

    return run_experiment("fig05", campaign=campaign, fast=fast)
