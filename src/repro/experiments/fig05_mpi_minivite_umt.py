"""Fig. 5: compute/MPI split and routine breakdown, miniVite & UMT @128.

Shape targets: miniVite >98% MPI, almost all in Waitall; UMT ~30% MPI
concentrated in Wait/Barrier/Allreduce with high worst/best spread.
"""

from __future__ import annotations

from repro.experiments._mpi_breakdown import run_breakdowns
from repro.experiments.context import get_campaign
from repro.experiments.report import ExperimentResult


def run(campaign=None, fast: bool = False) -> ExperimentResult:
    camp = get_campaign(campaign, fast)
    data, text = run_breakdowns(camp, ["miniVite-128", "UMT-128"])
    return ExperimentResult(
        exp_id="fig05",
        title="Compute/MPI split and routine breakdown, miniVite & UMT @128 (Fig. 5)",
        data=data,
        text=text,
    )
