"""Experiment drivers: one module per paper table/figure.

Every module exposes ``build(g, ctx, exp_id=...) -> str`` which adds its
stages to a shared :class:`repro.graph.Graph` and returns the name of the
render stage producing the module's :class:`ExperimentResult`.  Stage
outputs are memoized in an artifact store keyed by code version, config
fingerprint, and upstream digests, so a second run is a near-pure cache
read and experiments sharing work (trained forecasters, RFE rankings,
MI neighborhoods) compute it once.  ``python -m repro.experiments
<exp-id>`` runs one from the command line; ``--explain`` prints the DAG
with per-stage hit/miss status.

Experiment ids: table01, table02, table03, fig01, fig03, fig04, fig05,
fig07, fig08, fig09, fig10, fig11, fig12 — see DESIGN.md §5 for the
mapping to paper artefacts.  Parameterised experiments accept an
argument after a colon, e.g. ``fig07:MILC-512``.
"""

from repro.experiments.report import ExperimentResult

__all__ = [
    "ExperimentResult",
    "EXPERIMENTS",
    "PAPER_EXPERIMENTS",
    "build_experiment",
    "explain_experiments",
    "run_experiment",
    "run_experiments",
]

#: Experiment id -> "module" or "module:suffix" (imported lazily; the
#: builder is ``module.build`` or ``module.build_<suffix>``).
EXPERIMENTS: dict[str, str] = {
    "table01": "repro.experiments.table01",
    "table02": "repro.experiments.table02",
    "table03": "repro.experiments.table03_users",
    "fig01": "repro.experiments.fig01_relative",
    "fig03": "repro.experiments.fig03_meanstep",
    "fig04": "repro.experiments.fig04_mpi_amg_milc",
    "fig05": "repro.experiments.fig05_mpi_minivite_umt",
    "fig07": "repro.experiments.fig07_counter_trends",
    "fig08": "repro.experiments.fig08_forecast_amg",
    "fig09": "repro.experiments.fig09_relevance",
    "fig10": "repro.experiments.fig10_forecast_milc",
    "fig11": "repro.experiments.fig11_importances",
    "fig12": "repro.experiments.fig12_longrun",
    # Extensions beyond the paper (DESIGN.md §7).
    "extra-comm": "repro.experiments.extras:comm",
    "extra-routing": "repro.experiments.extras:routing",
    "extra-whatif": "repro.experiments.extras:whatif",
    "extra-sysforecast": "repro.experiments.extras:sysforecast",
    "extra-placement": "repro.experiments.extras:placement",
    "extra-contention": "repro.experiments.extras:contention",
}

#: The paper's own artefacts (excludes extensions) — what `all` runs.
PAPER_EXPERIMENTS: list[str] = [k for k in EXPERIMENTS if not k.startswith("extra-")]


def _resolve(exp_id: str):
    """Split ``base[:arg]``, import the module, return (builder, kwargs)."""
    import importlib

    base, _, arg = exp_id.partition(":")
    if base not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {base!r}; expected one of {sorted(EXPERIMENTS)}"
        )
    target = EXPERIMENTS[base]
    module_name, _, suffix = target.partition(":")
    module = importlib.import_module(module_name)
    builder = getattr(module, f"build_{suffix}") if suffix else module.build
    kwargs = {}
    if arg:
        param = getattr(module, "PARAM", None)
        if param is None:
            raise KeyError(f"experiment {base!r} does not take an argument")
        kwargs[param] = arg
    return builder, kwargs


def build_experiment(g, ctx, exp_id: str) -> str:
    """Add ``exp_id``'s stages to ``g``; return its render-stage name."""
    builder, kwargs = _resolve(exp_id)
    return builder(g, ctx, exp_id=exp_id, **kwargs)


def _make_runner(ids, ctx, workers, force):
    from repro.graph import Graph, GraphRunner

    g = Graph()
    targets = {exp_id: build_experiment(g, ctx, exp_id) for exp_id in ids}
    runner = GraphRunner(
        g,
        store=ctx.store,
        campaign_fingerprint=ctx.campaign_fingerprint,
        campaign=ctx.campaign,
        workers=workers,
        force=force,
    )
    return runner, targets


def run_experiments(
    ids,
    campaign=None,
    fast: bool = False,
    workers: int | None = None,
    force: bool = False,
) -> dict[str, ExperimentResult]:
    """Run several experiments over one shared stage graph.

    Stages common to multiple experiments (trained forecasters, RFE
    rankings, campaign generation) are scheduled once.  Returns
    ``{exp_id: ExperimentResult}`` in input order.
    """
    from repro.experiments.context import ExperimentContext
    from repro.obs import ensure_run, span

    ids = list(ids)
    ensure_run()
    ctx = ExperimentContext(campaign=campaign, fast=fast)
    span_name = (
        f"experiment.{ids[0]}" if len(ids) == 1 else "experiments.run"
    )
    with span(span_name, fast=ctx.fast):
        runner, targets = _make_runner(ids, ctx, workers, force)
        values = runner.run(list(targets.values()))
    return {exp_id: values[name] for exp_id, name in targets.items()}


def run_experiment(
    exp_id: str,
    campaign=None,
    fast: bool = False,
    workers: int | None = None,
    force: bool = False,
) -> ExperimentResult:
    """Run one experiment by id (``base`` or ``base:arg``)."""
    return run_experiments(
        [exp_id], campaign=campaign, fast=fast, workers=workers, force=force
    )[exp_id]


def explain_experiments(
    ids,
    campaign=None,
    fast: bool = False,
    force: bool = False,
) -> str:
    """Render the stage DAG for ``ids`` with per-stage hit/miss status.

    Never executes a stage; cached upstream state is probed read-only.
    """
    from repro.experiments.context import ExperimentContext
    from repro.graph import render_plan

    ctx = ExperimentContext(campaign=campaign, fast=fast)
    runner, _ = _make_runner(list(ids), ctx, None, force)
    return render_plan(runner.plan())
