"""Experiment drivers: one module per paper table/figure.

Every module exposes ``run(campaign=None, fast=False) -> ExperimentResult``.
The result carries structured data plus an ASCII rendering of the same
rows/series the paper's artefact reports.  ``python -m repro.experiments
<exp-id>`` runs one from the command line.

Experiment ids: table01, table02, table03, fig01, fig03, fig04, fig05,
fig07, fig08, fig09, fig10, fig11, fig12 — see DESIGN.md §5 for the
mapping to paper artefacts.
"""

from repro.experiments.report import ExperimentResult

__all__ = ["ExperimentResult", "EXPERIMENTS", "run_experiment"]

#: Experiment id -> "module" or "module:function" (imported lazily).
EXPERIMENTS: dict[str, str] = {
    "table01": "repro.experiments.table01",
    "table02": "repro.experiments.table02",
    "table03": "repro.experiments.table03_users",
    "fig01": "repro.experiments.fig01_relative",
    "fig03": "repro.experiments.fig03_meanstep",
    "fig04": "repro.experiments.fig04_mpi_amg_milc",
    "fig05": "repro.experiments.fig05_mpi_minivite_umt",
    "fig07": "repro.experiments.fig07_counter_trends",
    "fig08": "repro.experiments.fig08_forecast_amg",
    "fig09": "repro.experiments.fig09_relevance",
    "fig10": "repro.experiments.fig10_forecast_milc",
    "fig11": "repro.experiments.fig11_importances",
    "fig12": "repro.experiments.fig12_longrun",
    # Extensions beyond the paper (DESIGN.md §7).
    "extra-comm": "repro.experiments.extras:run_comm",
    "extra-routing": "repro.experiments.extras:run_routing",
    "extra-whatif": "repro.experiments.extras:run_whatif",
    "extra-sysforecast": "repro.experiments.extras:run_sysforecast",
    "extra-placement": "repro.experiments.extras:run_placement",
    "extra-contention": "repro.experiments.extras:run_contention",
}

#: The paper's own artefacts (excludes extensions) — what `all` runs.
PAPER_EXPERIMENTS: list[str] = [k for k in EXPERIMENTS if not k.startswith("extra-")]


def run_experiment(exp_id: str, campaign=None, fast: bool = False) -> ExperimentResult:
    """Run one experiment by id."""
    import importlib

    from repro.obs import ensure_run, span

    if exp_id not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {exp_id!r}; expected one of {sorted(EXPERIMENTS)}")
    ensure_run()
    target = EXPERIMENTS[exp_id]
    module_name, _, attr = target.partition(":")
    module = importlib.import_module(module_name)
    fn = getattr(module, attr) if attr else module.run
    with span(f"experiment.{exp_id}", fast=fast):
        return fn(campaign=campaign, fast=fast)
