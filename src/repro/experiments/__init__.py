"""Experiment drivers: one module per paper table/figure.

Every module exposes ``build(g, ctx, exp_id=...) -> str`` which adds its
stages to a shared :class:`repro.graph.Graph` and returns the name of the
render stage producing the module's :class:`ExperimentResult`.  Stage
outputs are memoized in an artifact store keyed by code version, config
fingerprint, and upstream digests, so a second run is a near-pure cache
read and experiments sharing work (trained forecasters, RFE rankings,
MI neighborhoods) compute it once.  ``python -m repro.experiments
<exp-id>`` runs one from the command line; ``--explain`` prints the DAG
with per-stage hit/miss status.

Experiment ids: table01, table02, table03, fig01, fig03, fig04, fig05,
fig07, fig08, fig09, fig10, fig11, fig12 — see DESIGN.md §5 for the
mapping to paper artefacts.  Parameterised experiments accept an
argument after a colon, e.g. ``fig07:MILC-512``.

Any id can additionally pin a ``(topology, routing)`` cell from
:mod:`repro.topology.registry`: ``fig09:df+/valiant`` runs fig09 over a
campaign generated on a Dragonfly+ with pure Valiant routing, and
``fig07:MILC-512@df+/minimal`` combines a module argument with a cell.
Cells fingerprint separately, so each one caches its own campaign and
stage artifacts; the default cell (``dragonfly/ugal``) is byte-identical
to the unqualified ids.
"""

from repro.experiments.report import ExperimentResult

__all__ = [
    "ExperimentResult",
    "EXPERIMENTS",
    "PAPER_EXPERIMENTS",
    "build_experiment",
    "explain_experiments",
    "run_experiment",
    "run_experiments",
    "split_cell",
]

#: Experiment id -> "module" or "module:suffix" (imported lazily; the
#: builder is ``module.build`` or ``module.build_<suffix>``).
EXPERIMENTS: dict[str, str] = {
    "table01": "repro.experiments.table01",
    "table02": "repro.experiments.table02",
    "table03": "repro.experiments.table03_users",
    "fig01": "repro.experiments.fig01_relative",
    "fig03": "repro.experiments.fig03_meanstep",
    "fig04": "repro.experiments.fig04_mpi_amg_milc",
    "fig05": "repro.experiments.fig05_mpi_minivite_umt",
    "fig07": "repro.experiments.fig07_counter_trends",
    "fig08": "repro.experiments.fig08_forecast_amg",
    "fig09": "repro.experiments.fig09_relevance",
    "fig10": "repro.experiments.fig10_forecast_milc",
    "fig11": "repro.experiments.fig11_importances",
    "fig12": "repro.experiments.fig12_longrun",
    # Extensions beyond the paper (DESIGN.md §7).
    "extra-comm": "repro.experiments.extras:comm",
    "extra-routing": "repro.experiments.extras:routing",
    "extra-whatif": "repro.experiments.extras:whatif",
    "extra-sysforecast": "repro.experiments.extras:sysforecast",
    "extra-placement": "repro.experiments.extras:placement",
    "extra-contention": "repro.experiments.extras:contention",
}

#: The paper's own artefacts (excludes extensions) — what `all` runs.
PAPER_EXPERIMENTS: list[str] = [k for k in EXPERIMENTS if not k.startswith("extra-")]


def split_cell(exp_id: str) -> tuple[str, tuple[str, str] | None]:
    """Split a cell-qualified id into ``(plain id, cell or None)``.

    Accepted forms: ``base``, ``base:arg``, ``base:topo/routing`` and
    ``base:arg@topo/routing``.  The cell is canonicalised through the
    registry (aliases resolve), and the default cell normalises to
    ``None`` so ``fig09:dragonfly/ugal`` shares every artifact with
    ``fig09``.
    """
    from repro.topology.registry import DEFAULT_CELL, parse_cell

    base, _, arg = exp_id.partition(":")
    if not arg:
        return exp_id, None
    if "@" in arg:
        param, _, cell_text = arg.rpartition("@")
        cell = parse_cell(cell_text)
        plain = f"{base}:{param}" if param else base
    elif "/" in arg:
        cell = parse_cell(arg)
        plain = base
    else:
        return exp_id, None
    return plain, None if cell == DEFAULT_CELL else cell


def canonical_exp_id(exp_id: str) -> str:
    """The id with its cell suffix canonicalised (stage/export naming)."""
    plain, cell = split_cell(exp_id)
    if cell is None:
        return plain
    suffix = f"{cell[0]}/{cell[1]}"
    return f"{plain}@{suffix}" if ":" in plain else f"{plain}:{suffix}"


def _resolve(exp_id: str):
    """Split ``base[:arg][@cell]``, import the module, return (builder, kwargs)."""
    import importlib

    plain, _cell = split_cell(exp_id)
    base, _, arg = plain.partition(":")
    if base not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {base!r}; expected one of {sorted(EXPERIMENTS)}"
        )
    target = EXPERIMENTS[base]
    module_name, _, suffix = target.partition(":")
    module = importlib.import_module(module_name)
    builder = getattr(module, f"build_{suffix}") if suffix else module.build
    kwargs = {}
    if arg:
        param = getattr(module, "PARAM", None)
        if param is None:
            raise KeyError(f"experiment {base!r} does not take an argument")
        kwargs[param] = arg
    return builder, kwargs


def build_experiment(g, ctx, exp_id: str) -> str:
    """Add ``exp_id``'s stages to ``g``; return its render-stage name.

    The (canonicalised) id — cell suffix included — names the stages, so
    the same figure on two cells produces distinct artifacts.
    """
    builder, kwargs = _resolve(exp_id)
    return builder(g, ctx, exp_id=canonical_exp_id(exp_id), **kwargs)


def _make_runner(ids, ctx, workers, force):
    from repro.graph import Graph, GraphRunner

    g = Graph()
    targets = {exp_id: build_experiment(g, ctx, exp_id) for exp_id in ids}
    runner = GraphRunner(
        g,
        store=ctx.store,
        campaign_fingerprint=ctx.campaign_fingerprint,
        campaign=ctx.campaign,
        workers=workers,
        force=force,
        # Stage names are cell-agnostic; the runner stamps the cell onto
        # spans, counters, and the graph.plan event so profiles and
        # reports stay attributable per (topology, routing) cell.
        cell="/".join(ctx.cell) if ctx.cell else None,
    )
    return runner, targets


def _group_by_cell(ids) -> list[tuple[tuple[str, str] | None, list[str]]]:
    """Group ids by their (topology, routing) cell, input order kept."""
    groups: dict[tuple[str, str] | None, list[str]] = {}
    for exp_id in ids:
        _, cell = split_cell(exp_id)
        groups.setdefault(cell, []).append(exp_id)
    return list(groups.items())


def run_experiments(
    ids,
    campaign=None,
    fast: bool = False,
    workers: int | None = None,
    force: bool = False,
) -> dict[str, ExperimentResult]:
    """Run several experiments over shared stage graphs.

    Stages common to multiple experiments (trained forecasters, RFE
    rankings, campaign generation) are scheduled once.  Ids pinned to
    different (topology, routing) cells run over separate graphs — one
    campaign and context per cell.  Returns ``{exp_id:
    ExperimentResult}`` keyed by the input ids.
    """
    from repro.experiments.context import ExperimentContext
    from repro.obs import ensure_run, span

    ids = list(ids)
    ensure_run()
    results: dict[str, ExperimentResult] = {}
    for cell, cell_ids in _group_by_cell(ids):
        if cell is not None and campaign is not None:
            raise ValueError(
                "a supplied campaign fixes the (topology, routing) cell; "
                f"drop the campaign argument to run {cell_ids[0]!r}"
            )
        ctx = ExperimentContext(campaign=campaign, fast=fast, cell=cell)
        span_name = (
            f"experiment.{cell_ids[0]}" if len(cell_ids) == 1 else "experiments.run"
        )
        with span(span_name, fast=ctx.fast):
            runner, targets = _make_runner(cell_ids, ctx, workers, force)
            values = runner.run(list(targets.values()))
        results.update(
            {exp_id: values[name] for exp_id, name in targets.items()}
        )
    return {exp_id: results[exp_id] for exp_id in ids}


def run_experiment(
    exp_id: str,
    campaign=None,
    fast: bool = False,
    workers: int | None = None,
    force: bool = False,
) -> ExperimentResult:
    """Run one experiment by id (``base`` or ``base:arg``)."""
    return run_experiments(
        [exp_id], campaign=campaign, fast=fast, workers=workers, force=force
    )[exp_id]


def explain_experiments(
    ids,
    campaign=None,
    fast: bool = False,
    force: bool = False,
) -> str:
    """Render the stage DAG for ``ids`` with per-stage hit/miss status.

    Never executes a stage; cached upstream state is probed read-only.
    Ids on non-default cells render under a ``cell topology/routing``
    header; default-cell output is unchanged.
    """
    from repro.experiments.context import ExperimentContext
    from repro.graph import render_plan

    parts: list[str] = []
    for cell, cell_ids in _group_by_cell(list(ids)):
        ctx = ExperimentContext(campaign=campaign, fast=fast, cell=cell)
        runner, _ = _make_runner(cell_ids, ctx, None, force)
        plan = render_plan(runner.plan())
        if cell is not None:
            plan = f"cell {cell[0]}/{cell[1]}\n{plan}"
        parts.append(plan)
    return "\n\n".join(parts)
