"""Fig. 11: feature importances of the forecasting models.

Left: AMG 128/512 at (m=8, k=10) with app + placement features — stall
counters remain important, flit counters gain weight vs the deviation
analysis, PT_RB_STL_RS rises for AMG-512.

Right: MILC 128/512 at (m=30, k=40) with all 23 features — IO_PT_FLIT_TOT
(system-wide filesystem traffic towards I/O routers) carries the highest
relevance, dwarfing the job-local counters.

Feature names and window tensors both come from one FeatureSpec per
panel (via the dataset's FeatureStore), so labels cannot drift from the
matrix columns.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.forecasting import forecasting_feature_importances
from repro.experiments._forecast_common import bench_forecaster, fast_forecaster
from repro.experiments.context import get_campaign
from repro.experiments.report import ExperimentResult, ascii_bars

#: (dataset, m, k, tier) per panel.
PANELS = [
    ("AMG-128", 8, 10, "app+placement"),
    ("AMG-512", 8, 10, "app+placement"),
    ("MILC-128", 30, 40, "app+placement+io+sys"),
    ("MILC-512", 30, 40, "app+placement+io+sys"),
]


def run(campaign=None, fast: bool = False) -> ExperimentResult:
    camp = get_campaign(campaign, fast)
    factory = fast_forecaster if fast else bench_forecaster
    data = {}
    blocks = []
    for key, m, k, tier in PANELS:
        ds = camp[key]
        if ds.num_steps <= m + k:
            continue
        names, imp = forecasting_feature_importances(
            ds, m=m, k=k, tier=tier, model_factory=factory
        )
        data[key] = {"names": names, "importances": imp, "m": m, "k": k}
        top = names[int(np.argmax(imp))]
        blocks.append(
            f"{key} (m={m}, k={k}, {tier}; top: {top})\n"
            + ascii_bars(names, imp, fmt="{:.3f}")
        )
    return ExperimentResult(
        exp_id="fig11",
        title="Forecasting-model feature importances (Fig. 11)",
        data=data,
        text="\n\n".join(blocks),
    )
