"""Fig. 11: feature importances of the forecasting models.

Left: AMG 128/512 at (m=8, k=10) with app + placement features — stall
counters remain important, flit counters gain weight vs the deviation
analysis, PT_RB_STL_RS rises for AMG-512.

Right: MILC 128/512 at (m=30, k=40) with all 23 features — IO_PT_FLIT_TOT
(system-wide filesystem traffic towards I/O routers) carries the highest
relevance, dwarfing the job-local counters.

Stage graph: one trained ``forecaster:...`` stage per panel (shared with
Fig. 12 when the MILC cell coincides — one fit serves both figures) and
one ``importances:...`` stage consuming it.  Feature names and window
tensors both come from one FeatureSpec per panel inside the stage
bodies, so labels cannot drift from the matrix columns.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import stages
from repro.experiments.report import ExperimentResult, ascii_bars
from repro.graph import Graph, stage_fn

#: (dataset, m, k, tier) per panel.
PANELS = [
    ("AMG-128", 8, 10, "app+placement"),
    ("AMG-512", 8, 10, "app+placement"),
    ("MILC-128", 30, 40, "app+placement+io+sys"),
    ("MILC-512", 30, 40, "app+placement+io+sys"),
]


@stage_fn(version=1)
def render(ctx):
    data = {}
    blocks = []
    for key, m, k, tier in ctx.params["panels"]:
        panel = ctx.inputs[key]
        names, imp = panel["names"], panel["importances"]
        data[key] = {"names": names, "importances": imp, "m": m, "k": k}
        top = names[int(np.argmax(imp))]
        blocks.append(
            f"{key} (m={m}, k={k}, {tier}; top: {top})\n"
            + ascii_bars(names, imp, fmt="{:.3f}")
        )
    return ExperimentResult(
        exp_id=ctx.params["exp_id"],
        title="Forecasting-model feature importances (Fig. 11)",
        data=data,
        text="\n\n".join(blocks),
    )


def build(g: Graph, ctx, exp_id: str = "fig11") -> str:
    man = ctx.manifest
    model = stages.model_name(ctx.fast)
    panels = []
    inputs = []
    for key, m, k, tier in PANELS:
        if man["num_steps"].get(key, 0) <= m + k:
            continue
        fstage = stages.add_forecaster_stage(g, key, m, k, tier, model)
        pstage = g.add(
            f"importances:{key}:m{m}:k{k}:{tier}:{model}",
            stages.importance_panel,
            params={"m": m, "k": k, "tier": tier, "seed": 0},
            inputs=[("model", fstage)],
            dataset=key,
        )
        panels.append([key, m, k, tier])
        inputs.append((key, pstage))
    return g.add(
        f"render:{exp_id}",
        render,
        params={"exp_id": exp_id, "panels": panels},
        inputs=inputs,
        kind="render",
        local=True,
    )


def run(campaign=None, fast: bool = False) -> ExperimentResult:
    from repro.experiments import run_experiment

    return run_experiment("fig11", campaign=campaign, fast=fast)
