"""Rolling-retrain drift experiment over a streamed campaign.

The memoized, shard-addressed twin of :func:`repro.ml.drift.rolling_drift`:
for every dataset key present in all windows, one forecaster is trained
per (window, seed) shard, every window ``w >= 1`` is scored against the
model retrained on window ``w - 1`` (**fresh**) and the model trained
once on window 0 (**stale**), and the per-window MAPE trajectories are
reduced into :class:`~repro.ml.drift.DriftReport` tables.

Stage addressing is the whole point:

* ``sd-train`` / ``sd-eval`` stages are **shard-scoped** — their
  fingerprints carry the shard's content fingerprint instead of the
  stream fingerprint (see :class:`repro.graph.Stage`), so appending a
  window re-keys *nothing* in the existing windows;
* a forecaster is trained on **every** window, including the newest —
  that is what window ``N``'s fresh evaluation finds already stored when
  window ``N + 1`` arrives;
* the ``sd-drift`` / ``sd-render`` reduces are pure functions of their
  inputs, and the ``sd-manifest`` root is stream-keyed bookkeeping —
  the only stages an append legitimately re-runs besides the fresh
  window's own cone.  :func:`incremental_violations` checks exactly
  that contract against a resolved plan (the CI ``stream-append`` job
  and ``--check-incremental`` both call it).
"""

from __future__ import annotations

from repro.experiments import stages
from repro.experiments.report import ExperimentResult, ascii_table
from repro.graph import Graph, GraphRunner, StagePlan, stage_fn
from repro.obs import ensure_run, span

#: Drift-grid coordinates per scale: (m, k, tier, seeds, model).
_FAST = {"m": 3, "k": 2, "tier": "app", "seeds": (0, 1), "model": "fast"}
_FULL = {"m": 8, "k": 5, "tier": "app", "seeds": (0, 1, 2), "model": "bench"}


def drift_params(fast: bool) -> dict:
    return dict(_FAST if fast else _FULL)


# --------------------------------------------------------------------------- #
# Stage bodies (top-level: pool workers resolve them by import path).
# --------------------------------------------------------------------------- #


@stage_fn(version=1)
def stream_shard_manifest(ctx):
    """Stream-keyed root: the shard map, persisted as an artifact.

    Re-keyed by every append (the stream fingerprint changes), which is
    correct — it *describes* the stream — and cheap: the manifest is
    bookkeeping the campaign already computed.
    """
    man = ctx.camp.stream
    return {
        "stream": man.fingerprint,
        "window_days": man.window_days,
        "windows": man.windows,
    }


@stage_fn(version=1)
def shard_forecaster(ctx):
    """One forecaster trained on one (window, seed) shard."""
    from repro.analysis.forecasting import fit_forecaster
    from repro.campaign.streaming import shard_view

    p = ctx.params
    return fit_forecaster(
        shard_view(ctx.ds, p["window"]),
        p["m"],
        p["k"],
        p["tier"],
        seed=p["seed"],
        model_factory=stages.model_factory(p["model"]),
    )


@stage_fn(version=1)
def shard_drift_eval(ctx):
    """Fresh-vs-stale MAPEs of one evaluation window, per seed."""
    from repro.campaign.streaming import shard_view
    from repro.ml.drift import score_on_shard

    p = ctx.params
    shard = shard_view(ctx.ds, p["window"])
    m, k, tier = p["m"], p["k"], p["tier"]
    return {
        "window": p["window"],
        "runs": len(shard),
        "fresh": [
            score_on_shard(ctx.inputs[f"fresh{s}"], shard, m, k, tier)
            for s in p["seeds"]
        ],
        "stale": [
            score_on_shard(ctx.inputs[f"stale{s}"], shard, m, k, tier)
            for s in p["seeds"]
        ],
    }


@stage_fn(version=1)
def drift_reduce(ctx):
    """Per-window evals -> one key's :class:`~repro.ml.drift.DriftReport`."""
    from repro.ml.drift import drift_report

    p = ctx.params
    return drift_report(
        p["key"], p["m"], p["k"], p["tier"], tuple(p["seeds"]),
        list(ctx.inputs.values()),
    )


@stage_fn(version=1)
def stream_drift_render(ctx):
    p = ctx.params
    reports = {key: ctx.inputs[key] for key in p["keys"]}
    blocks = []
    for key, rep in reports.items():
        table = ascii_table(
            ["window", "runs", "fresh MAPE", "stale MAPE", "drift"],
            rep.rows(),
        )
        blocks.append(
            f"{key} (m={rep.m}, k={rep.k}, tier={rep.tier}, "
            f"{len(rep.seeds)} seeds; fresh = retrained on previous "
            f"window, stale = window-0 model)\n{table}"
        )
    return ExperimentResult(
        exp_id="stream-drift",
        title=f"Rolling-retrain drift over {p['windows']} windows",
        data={
            "reports": reports,
            "mean_drift": {k: r.mean_drift for k, r in reports.items()},
        },
        text="\n\n".join(blocks) if blocks else "single window: no drift to evaluate",
    )


# --------------------------------------------------------------------------- #
# Graph builder and drivers.
# --------------------------------------------------------------------------- #


def stream_keys(campaign, keys: "list[str] | None" = None) -> list[str]:
    """The dataset keys spanning every window of a streamed campaign."""
    man = getattr(campaign, "stream", None)
    if man is None:
        raise ValueError(
            "stream drift needs a streamed campaign "
            "(repro.campaign.streaming.run_stream)"
        )
    common = [
        k
        for k in campaign.keys()
        if all(k in w["shards"] for w in man.windows)
    ]
    if keys is None:
        return common
    missing = [k for k in keys if k not in common]
    if missing:
        raise ValueError(
            f"keys {missing} do not span every stream window "
            f"(candidates: {common})"
        )
    return list(keys)


def build_stream_drift(
    g: Graph, campaign, keys: "list[str] | None" = None, fast: bool = False
) -> str:
    """Add the drift stages for a streamed campaign; returns the render."""
    man = campaign.stream
    keys = stream_keys(campaign, keys)
    p = drift_params(fast)
    m, k, tier = p["m"], p["k"], p["tier"]
    seeds, model = p["seeds"], p["model"]
    windows = len(man.windows)
    manifest = g.add(
        "sd-manifest", stream_shard_manifest, campaign=True, local=True
    )
    report_inputs = []
    for key in keys:
        for w in range(windows):
            for s in seeds:
                g.add(
                    f"sd-train:{key}:w{w}:s{s}",
                    shard_forecaster,
                    params={
                        "m": m, "k": k, "tier": tier, "seed": s,
                        "model": model, "window": w,
                    },
                    dataset=key,
                    shard=man.shard(key, w),
                )
        evals = []
        for w in range(1, windows):
            evals.append(
                g.add(
                    f"sd-eval:{key}:w{w}",
                    shard_drift_eval,
                    params={
                        "m": m, "k": k, "tier": tier,
                        "seeds": seeds, "window": w,
                    },
                    inputs=[
                        (f"fresh{s}", f"sd-train:{key}:w{w - 1}:s{s}")
                        for s in seeds
                    ]
                    + [(f"stale{s}", f"sd-train:{key}:w0:s{s}") for s in seeds],
                    dataset=key,
                    shard=man.shard(key, w),
                )
            )
        report_inputs.append(
            (
                key,
                g.add(
                    f"sd-drift:{key}",
                    drift_reduce,
                    params={
                        "key": key, "m": m, "k": k,
                        "tier": tier, "seeds": seeds,
                    },
                    inputs=[(f"w{w + 1}", name) for w, name in enumerate(evals)],
                ),
            )
        )
    # The manifest is an input of the render so it sits in the executed
    # cone (and is therefore stored): `plan()` covers every stage, and a
    # dangling manifest would re-plan as a perpetual miss on warm replays.
    return g.add(
        "sd-render",
        stream_drift_render,
        params={"keys": keys, "windows": windows},
        inputs=report_inputs + [("manifest", manifest)],
        kind="render",
        local=True,
    )


def _make_runner(
    campaign,
    keys: "list[str] | None",
    fast: bool,
    workers: int | None,
    force: bool,
) -> tuple[GraphRunner, list[str]]:
    from repro.experiments.context import ExperimentContext

    ctx = ExperimentContext(campaign=campaign, fast=fast)
    g = Graph()
    render = build_stream_drift(g, campaign, keys=keys, fast=ctx.fast)
    # The newest window's forecasters are nobody's input yet — they are
    # what the *next* append's fresh evaluation will consume — so they
    # are explicit targets: trained now, stored now, hit later.
    last = len(campaign.stream.windows) - 1
    targets = [render] + [
        name for name in g.stages if f":w{last}:" in name
    ]
    runner = GraphRunner(
        g,
        store=ctx.store,
        campaign_fingerprint=ctx.campaign_fingerprint,
        campaign=lambda: campaign,
        workers=workers,
        force=force,
    )
    return runner, targets


def stream_drift(
    campaign,
    keys: "list[str] | None" = None,
    fast: bool = False,
    workers: int | None = None,
    force: bool = False,
) -> ExperimentResult:
    """Run the drift experiment over a streamed campaign."""
    ensure_run()
    runner, targets = _make_runner(campaign, keys, fast, workers, force)
    with span("experiment.stream-drift", windows=len(campaign.stream.windows)):
        return runner.run(targets)[targets[0]]


def plan_stream_drift(
    campaign,
    keys: "list[str] | None" = None,
    fast: bool = False,
    force: bool = False,
) -> list[StagePlan]:
    """Resolve the drift DAG read-only (``--explain`` / append checks)."""
    runner, _ = _make_runner(campaign, keys, fast, None, force)
    return runner.plan()


def fresh_shard_fingerprints(campaign) -> set[str]:
    """Shard fingerprints of the stream's newest window."""
    man = campaign.stream
    last = man.windows[-1]
    return {s["fingerprint"] for s in last["shards"].values()}


def incremental_violations(
    plans: "list[StagePlan]", fresh: set[str]
) -> list[str]:
    """Misses a warm append must not contain.

    After appending one window to a previously-materialised stream, the
    only legitimate cold work is (a) stages scoped entirely to the fresh
    window's shards, (b) campaign-bound bookkeeping (the stream-keyed
    manifest roots), and (c) pure reduces over stage inputs.  Anything
    else — a stale-shard recompute, or a dataset-bound stage with no
    shard address at all — is a full-dataset recompute the streaming
    refactor exists to prevent.
    """
    bad = []
    for p in plans:
        if p.status not in ("miss", "force"):
            continue
        st = p.stage
        if st.shard:
            if set(st.shard) <= fresh:
                continue
            bad.append(
                f"stale-shard recompute: {st.name} "
                f"(shard {','.join(st.shard)})"
            )
        elif st.dataset is not None:
            bad.append(
                f"full-dataset recompute: {st.name} (dataset {st.dataset})"
            )
        # campaign-bound manifests and pure reduces are legitimate.
    return bad
