"""Extension experiments (beyond the paper's artefacts; DESIGN.md §7).

* ``extra-comm`` — the §III-B communication characterisation in numbers;
* ``extra-routing`` — MINIMAL/VALIANT/ADAPTIVE interference ablation;
* ``extra-whatif`` — the §V-A delay-aware-scheduling opportunity;
* ``extra-sysforecast`` — §V-C's closing proposal: forecast system I/O
  and MPI load directly.
"""

from __future__ import annotations

from repro.experiments.context import get_campaign
from repro.experiments.report import ExperimentResult, ascii_table


def run_comm(campaign=None, fast: bool = False) -> ExperimentResult:
    from repro.apps.characterize import characterize_all, render_profiles

    profiles = characterize_all()
    return ExperimentResult(
        exp_id="extra-comm",
        title="Per-application communication character (§III-B quantified)",
        data={"profiles": profiles},
        text=render_profiles(profiles),
    )


def run_routing(campaign=None, fast: bool = False) -> ExperimentResult:
    from repro.analysis.routing_ablation import render_ablation, routing_ablation
    from repro.topology.dragonfly import DragonflyTopology

    preset = "tiny" if fast else "small"
    topo = DragonflyTopology.from_preset(preset)
    results = routing_ablation(
        topo,
        probe_nodes=24 if fast else 64,
        background_gbps=(0.0, 100.0, 400.0, 1600.0),
    )
    return ExperimentResult(
        exp_id="extra-routing",
        title="Routing-policy ablation under an adversarial hotspot",
        data={"results": results},
        text=render_ablation(results),
    )


def run_whatif(campaign=None, fast: bool = False) -> ExperimentResult:
    from repro.analysis.whatif import scheduling_whatif

    camp = get_campaign(campaign, fast)
    results = scheduling_whatif(camp)
    rows = [
        [
            r.key,
            r.runs_overlapped,
            r.runs_clean,
            f"{r.saving_fraction:.1%}",
            f"{r.net_saving_fraction:.1%}",
            f"{r.aggressor_time_correlation:+.2f}",
        ]
        for r in results
    ]
    text = ascii_table(
        ["dataset", "heavy runs", "light runs", "saving", "net", "corr"], rows
    )
    if results:
        text += f"\n\nidentified aggressors: {', '.join(results[0].aggressors)}"
    return ExperimentResult(
        exp_id="extra-whatif",
        title="Delay-aware scheduling what-if (§V-A's proposal)",
        data={"results": results},
        text=text,
    )


def run_placement(campaign=None, fast: bool = False) -> ExperimentResult:
    from repro.analysis.placement_study import placement_study, render_placement_study
    from repro.topology.dragonfly import DragonflyTopology

    preset = "tiny" if fast else "small"
    topo = DragonflyTopology.from_preset(preset)
    study = placement_study(
        topo,
        probe_nodes=16 if fast else 64,
        background_nodes=60 if fast else 512,
        trials_per_policy=3 if fast else 6,
    )
    return ExperimentResult(
        exp_id="extra-placement",
        title="Placement-policy study: the cost of fragmentation",
        data={"study": study},
        text=render_placement_study(study),
    )


def run_contention(campaign=None, fast: bool = False) -> ExperimentResult:
    import numpy as np

    from repro.network.contention_map import contention_map, render_contention
    from repro.network.engine import CongestionEngine
    from repro.network.traffic import FlowSet, router_alltoall_flows
    from repro.topology.dragonfly import DragonflyTopology
    from repro.topology.placement import AllocationPolicy, allocate

    preset = "tiny" if fast else "small"
    topo = DragonflyTopology.from_preset(preset)
    engine = CongestionEngine(topo)
    rng = np.random.default_rng(0)
    free = topo.compute_nodes
    probe_nodes = allocate(topo, free, 16 if fast else 64, AllocationPolicy.RANDOM, rng)
    tenants = {
        "probe": engine.route(
            router_alltoall_flows(topo, probe_nodes, 10e9)
        ),
    }
    rpg = topo.routers_per_group
    src = np.arange(rpg)
    tenants["hotspot-job"] = engine.route(
        FlowSet(src, src + 2 * rpg, np.full(rpg, 8e9))
    )
    remaining = np.setdiff1d(free, probe_nodes)
    bg_nodes = allocate(topo, remaining, 48 if fast else 256, AllocationPolicy.RANDOM, rng)
    from repro.network.traffic import uniform_random_flows

    tenants["mixed-bg"] = engine.route(
        uniform_random_flows(topo, bg_nodes, 5e8, rng, fanout=3)
    )
    cmap = contention_map(topo, engine, tenants, top_n=10)
    return ExperimentResult(
        exp_id="extra-contention",
        title="Link-level contention attribution (who owns the hot queues)",
        data={"map": cmap},
        text=render_contention(cmap),
    )


def run_sysforecast(campaign=None, fast: bool = False) -> ExperimentResult:
    # Each channel's LDMS window tensor is served by the dataset's
    # FeatureStore (one shared (N, T, 8) view, one window stack per
    # channel), so the three channels below rebuild nothing in common.
    from repro.analysis.system_state import forecast_system_channel
    from repro.ml.attention import AttentionForecaster

    camp = get_campaign(campaign, fast)
    ds = camp["MILC-128"]
    m, k = (5, 10) if ds.num_steps < 40 else (10, 20)

    def factory(seed):
        epochs = 50 if fast else 120
        return AttentionForecaster(d_model=16, hidden=32, epochs=epochs, seed=seed)

    rows = []
    results = {}
    for channel in ("IO_PT_FLIT_TOT", "SYS_RT_FLIT_TOT", "SYS_RT_RB_STL"):
        res = forecast_system_channel(
            ds, channel=channel, m=m, k=k, model_factory=factory
        )
        results[channel] = res
        rows.append(
            [
                channel,
                f"{res.mape:.2f}%",
                f"{res.persistence_mape:.2f}%",
                "yes" if res.beats_persistence else "no",
                f"{res.r2:+.2f}",
            ]
        )
    text = ascii_table(
        ["system channel", "model MAPE", "persistence MAPE", "beats it?", "R2"],
        rows,
    )
    return ExperimentResult(
        exp_id="extra-sysforecast",
        title="Forecasting system state itself (§V-C closing proposal)",
        data={"results": results, "m": m, "k": k},
        text=text,
    )
