"""Extension experiments (beyond the paper's artefacts; DESIGN.md §7).

* ``extra-comm`` — the §III-B communication characterisation in numbers;
* ``extra-routing`` — MINIMAL/VALIANT/ADAPTIVE interference ablation;
* ``extra-whatif`` — the §V-A delay-aware-scheduling opportunity;
* ``extra-sysforecast`` — §V-C's closing proposal: forecast system I/O
  and MPI load directly.

Each extension is one compute stage (memoized in the artifact store)
plus a render stage.  Only ``extra-whatif`` and ``extra-sysforecast``
bind to the campaign; the others never materialise it.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult, ascii_table
from repro.graph import Graph, stage_fn

# --------------------------------------------------------------------------- #
# extra-comm
# --------------------------------------------------------------------------- #


@stage_fn(version=1)
def comm_profiles(ctx):
    from repro.apps.characterize import characterize_all

    return characterize_all()


@stage_fn(version=1)
def render_comm(ctx):
    from repro.apps.characterize import render_profiles

    profiles = ctx.inputs["profiles"]
    return ExperimentResult(
        exp_id=ctx.params["exp_id"],
        title="Per-application communication character (§III-B quantified)",
        data={"profiles": profiles},
        text=render_profiles(profiles),
    )


def build_comm(g: Graph, ctx, exp_id: str = "extra-comm") -> str:
    stage = g.add("extra:comm", comm_profiles, local=True)
    return g.add(
        f"render:{exp_id}",
        render_comm,
        params={"exp_id": exp_id},
        inputs=[("profiles", stage)],
        kind="render",
        local=True,
    )


# --------------------------------------------------------------------------- #
# extra-routing
# --------------------------------------------------------------------------- #


@stage_fn(version=1)
def routing_results(ctx):
    from repro.analysis.routing_ablation import routing_ablation
    from repro.topology.dragonfly import DragonflyTopology

    fast = ctx.params["fast"]
    topo = DragonflyTopology.from_preset("tiny" if fast else "small")
    return routing_ablation(
        topo,
        probe_nodes=24 if fast else 64,
        background_gbps=(0.0, 100.0, 400.0, 1600.0),
    )


@stage_fn(version=1)
def render_routing(ctx):
    from repro.analysis.routing_ablation import render_ablation

    results = ctx.inputs["results"]
    return ExperimentResult(
        exp_id=ctx.params["exp_id"],
        title="Routing-policy ablation under an adversarial hotspot",
        data={"results": results},
        text=render_ablation(results),
    )


def build_routing(g: Graph, ctx, exp_id: str = "extra-routing") -> str:
    stage = g.add("extra:routing", routing_results, params={"fast": ctx.fast})
    return g.add(
        f"render:{exp_id}",
        render_routing,
        params={"exp_id": exp_id},
        inputs=[("results", stage)],
        kind="render",
        local=True,
    )


# --------------------------------------------------------------------------- #
# extra-whatif
# --------------------------------------------------------------------------- #


@stage_fn(version=1)
def whatif_results(ctx):
    from repro.analysis.whatif import scheduling_whatif

    return scheduling_whatif(ctx.camp)


@stage_fn(version=1)
def render_whatif(ctx):
    results = ctx.inputs["results"]
    rows = [
        [
            r.key,
            r.runs_overlapped,
            r.runs_clean,
            f"{r.saving_fraction:.1%}",
            f"{r.net_saving_fraction:.1%}",
            f"{r.aggressor_time_correlation:+.2f}",
        ]
        for r in results
    ]
    text = ascii_table(
        ["dataset", "heavy runs", "light runs", "saving", "net", "corr"], rows
    )
    if results:
        text += f"\n\nidentified aggressors: {', '.join(results[0].aggressors)}"
    return ExperimentResult(
        exp_id=ctx.params["exp_id"],
        title="Delay-aware scheduling what-if (§V-A's proposal)",
        data={"results": results},
        text=text,
    )


def build_whatif(g: Graph, ctx, exp_id: str = "extra-whatif") -> str:
    stage = g.add("extra:whatif", whatif_results, campaign=True, local=True)
    return g.add(
        f"render:{exp_id}",
        render_whatif,
        params={"exp_id": exp_id},
        inputs=[("results", stage)],
        kind="render",
        local=True,
    )


# --------------------------------------------------------------------------- #
# extra-placement
# --------------------------------------------------------------------------- #


@stage_fn(version=1)
def placement_results(ctx):
    from repro.analysis.placement_study import placement_study
    from repro.topology.dragonfly import DragonflyTopology

    fast = ctx.params["fast"]
    topo = DragonflyTopology.from_preset("tiny" if fast else "small")
    return placement_study(
        topo,
        probe_nodes=16 if fast else 64,
        background_nodes=60 if fast else 512,
        trials_per_policy=3 if fast else 6,
    )


@stage_fn(version=1)
def render_placement(ctx):
    from repro.analysis.placement_study import render_placement_study

    study = ctx.inputs["study"]
    return ExperimentResult(
        exp_id=ctx.params["exp_id"],
        title="Placement-policy study: the cost of fragmentation",
        data={"study": study},
        text=render_placement_study(study),
    )


def build_placement(g: Graph, ctx, exp_id: str = "extra-placement") -> str:
    stage = g.add("extra:placement", placement_results, params={"fast": ctx.fast})
    return g.add(
        f"render:{exp_id}",
        render_placement,
        params={"exp_id": exp_id},
        inputs=[("study", stage)],
        kind="render",
        local=True,
    )


# --------------------------------------------------------------------------- #
# extra-contention
# --------------------------------------------------------------------------- #


@stage_fn(version=1)
def contention_results(ctx):
    import numpy as np

    from repro.network.contention_map import contention_map
    from repro.network.engine import CongestionEngine
    from repro.network.traffic import (
        FlowSet,
        router_alltoall_flows,
        uniform_random_flows,
    )
    from repro.topology.dragonfly import DragonflyTopology
    from repro.topology.placement import AllocationPolicy, allocate

    fast = ctx.params["fast"]
    topo = DragonflyTopology.from_preset("tiny" if fast else "small")
    engine = CongestionEngine(topo)
    rng = np.random.default_rng(0)
    free = topo.compute_nodes
    probe_nodes = allocate(
        topo, free, 16 if fast else 64, AllocationPolicy.RANDOM, rng
    )
    tenants = {
        "probe": engine.route(
            router_alltoall_flows(topo, probe_nodes, 10e9)
        ),
    }
    rpg = topo.routers_per_group
    src = np.arange(rpg)
    tenants["hotspot-job"] = engine.route(
        FlowSet(src, src + 2 * rpg, np.full(rpg, 8e9))
    )
    remaining = np.setdiff1d(free, probe_nodes)
    bg_nodes = allocate(
        topo, remaining, 48 if fast else 256, AllocationPolicy.RANDOM, rng
    )
    tenants["mixed-bg"] = engine.route(
        uniform_random_flows(topo, bg_nodes, 5e8, rng, fanout=3)
    )
    return contention_map(topo, engine, tenants, top_n=10)


@stage_fn(version=1)
def render_contention(ctx):
    from repro.network.contention_map import render_contention as render_map

    cmap = ctx.inputs["map"]
    return ExperimentResult(
        exp_id=ctx.params["exp_id"],
        title="Link-level contention attribution (who owns the hot queues)",
        data={"map": cmap},
        text=render_map(cmap),
    )


def build_contention(g: Graph, ctx, exp_id: str = "extra-contention") -> str:
    stage = g.add("extra:contention", contention_results, params={"fast": ctx.fast})
    return g.add(
        f"render:{exp_id}",
        render_contention,
        params={"exp_id": exp_id},
        inputs=[("map", stage)],
        kind="render",
        local=True,
    )


# --------------------------------------------------------------------------- #
# extra-sysforecast
# --------------------------------------------------------------------------- #


@stage_fn(version=1)
def sysforecast_results(ctx):
    # Each channel's LDMS window tensor is served by the dataset's
    # FeatureStore (one shared (N, T, 8) view, one window stack per
    # channel), so the three channels below rebuild nothing in common.
    from repro.analysis.system_state import forecast_system_channel
    from repro.ml.attention import AttentionForecaster

    p = ctx.params
    m, k, fast = p["m"], p["k"], p["fast"]

    def factory(seed):
        epochs = 50 if fast else 120
        return AttentionForecaster(d_model=16, hidden=32, epochs=epochs, seed=seed)

    results = {}
    for channel in ("IO_PT_FLIT_TOT", "SYS_RT_FLIT_TOT", "SYS_RT_RB_STL"):
        results[channel] = forecast_system_channel(
            ctx.ds, channel=channel, m=m, k=k, model_factory=factory
        )
    return results


@stage_fn(version=1)
def render_sysforecast(ctx):
    results = ctx.inputs["results"]
    rows = []
    for channel, res in results.items():
        rows.append(
            [
                channel,
                f"{res.mape:.2f}%",
                f"{res.persistence_mape:.2f}%",
                "yes" if res.beats_persistence else "no",
                f"{res.r2:+.2f}",
            ]
        )
    text = ascii_table(
        ["system channel", "model MAPE", "persistence MAPE", "beats it?", "R2"],
        rows,
    )
    return ExperimentResult(
        exp_id=ctx.params["exp_id"],
        title="Forecasting system state itself (§V-C closing proposal)",
        data={"results": results, "m": ctx.params["m"], "k": ctx.params["k"]},
        text=text,
    )


def build_sysforecast(g: Graph, ctx, exp_id: str = "extra-sysforecast") -> str:
    from repro.experiments import stages

    man = ctx.manifest
    m, k = (5, 10) if man["num_steps"].get("MILC-128", 0) < 40 else (10, 20)
    camp_stage = stages.add_campaign_stage(g)
    stage = g.add(
        "extra:sysforecast",
        sysforecast_results,
        params={"m": m, "k": k, "fast": ctx.fast},
        inputs=[("manifest", camp_stage)],
        dataset="MILC-128",
    )
    return g.add(
        f"render:{exp_id}",
        render_sysforecast,
        params={"exp_id": exp_id, "m": m, "k": k},
        inputs=[("results", stage)],
        kind="render",
        local=True,
    )


# --------------------------------------------------------------------------- #
# Pre-DAG entry points (kept for API compatibility).
# --------------------------------------------------------------------------- #


def run_comm(campaign=None, fast: bool = False) -> ExperimentResult:
    from repro.experiments import run_experiment

    return run_experiment("extra-comm", campaign=campaign, fast=fast)


def run_routing(campaign=None, fast: bool = False) -> ExperimentResult:
    from repro.experiments import run_experiment

    return run_experiment("extra-routing", campaign=campaign, fast=fast)


def run_whatif(campaign=None, fast: bool = False) -> ExperimentResult:
    from repro.experiments import run_experiment

    return run_experiment("extra-whatif", campaign=campaign, fast=fast)


def run_placement(campaign=None, fast: bool = False) -> ExperimentResult:
    from repro.experiments import run_experiment

    return run_experiment("extra-placement", campaign=campaign, fast=fast)


def run_contention(campaign=None, fast: bool = False) -> ExperimentResult:
    from repro.experiments import run_experiment

    return run_experiment("extra-contention", campaign=campaign, fast=fast)


def run_sysforecast(campaign=None, fast: bool = False) -> ExperimentResult:
    from repro.experiments import run_experiment

    return run_experiment("extra-sysforecast", campaign=campaign, fast=fast)
