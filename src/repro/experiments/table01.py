"""Table I: application versions and their inputs."""

from __future__ import annotations

from repro.apps.registry import DATASET_KEYS, get_application
from repro.experiments.report import ExperimentResult, ascii_table
from repro.graph import Graph, stage_fn


@stage_fn(version=1)
def render(ctx):
    rows = []
    for key in DATASET_KEYS:
        app = get_application(key)
        name, version, nodes, params = app.table1_row()
        rows.append([name, version, nodes, params])
    text = ascii_table(
        ["Application", "Version", "No. of Nodes", "Input Parameters"], rows
    )
    return ExperimentResult(
        exp_id=ctx.params["exp_id"],
        title="Application versions and their inputs (Table I)",
        data={"rows": rows},
        text=text,
    )


def build(g: Graph, ctx, exp_id: str = "table01") -> str:
    return g.add(
        f"render:{exp_id}",
        render,
        params={"exp_id": exp_id},
        kind="render",
        local=True,
    )


def run(campaign=None, fast: bool = False) -> ExperimentResult:
    from repro.experiments import run_experiment

    return run_experiment("table01", campaign=campaign, fast=fast)
