"""Table I: application versions and their inputs."""

from __future__ import annotations

from repro.apps.registry import DATASET_KEYS, get_application
from repro.experiments.report import ExperimentResult, ascii_table


def run(campaign=None, fast: bool = False) -> ExperimentResult:
    rows = []
    for key in DATASET_KEYS:
        app = get_application(key)
        name, version, nodes, params = app.table1_row()
        rows.append([name, version, nodes, params])
    text = ascii_table(
        ["Application", "Version", "No. of Nodes", "Input Parameters"], rows
    )
    return ExperimentResult(
        exp_id="table01",
        title="Application versions and their inputs (Table I)",
        data={"rows": rows},
        text=text,
    )
