"""Global configuration: scale presets, RNG policy, and physical constants.

The reproduction runs the same pipelines at three scales:

``tiny``
    Unit-test scale.  A handful of dragonfly groups, a few background jobs,
    short campaigns.  Everything finishes in milliseconds.
``small``
    Benchmark scale (default).  A reduced-size system in which the 128- and
    512-node probe jobs occupy roughly the same *fraction* of the machine as
    they did on Cori, so the congestion regime is comparable.
``cori``
    The full Cray XC40 shape used in the paper: 34 groups of 96 Aries
    routers arranged 16 x 6, four NICs per router.  Slow; used for
    topology-level validation only.

All randomness in the library flows through :func:`rng_for`, which derives
independent, reproducible streams from a root seed using
``numpy.random.SeedSequence`` so that adding a consumer never perturbs the
streams of existing consumers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

import numpy as np

# ---------------------------------------------------------------------------
# Physical constants of the modelled Aries network (Cray XC series).
# ---------------------------------------------------------------------------

#: Bytes per flit on the Aries network (24 B of payload per flit phit group).
FLIT_BYTES = 24.0

#: Mean packet length in flits used when deriving packet counters from flit
#: counters (Aries packets carry up to 64 B of payload; small MPI packets
#: dominate in practice).
MEAN_PACKET_FLITS = 3.0

#: Router clock frequency in Hz (Aries runs at ~875 MHz).
ROUTER_CLOCK_HZ = 875.0e6

#: Per-direction link bandwidths in bytes/second.  Aries: ~5.25 GB/s over
#: optical (blue/global) cables and ~4.7 GB/s electrical within a group.
GREEN_LINK_BW = 4.7e9
BLACK_LINK_BW = 4.7e9
BLUE_LINK_BW = 5.25e9

#: *Effective* per-NIC endpoint capacity in bytes/second.  Raw Aries
#: injection is ~10 GB/s, but for the small-message traffic that dominates
#: these workloads the binding resource is per-message processing on the
#: NIC/processor tiles; 2 GB/s of equivalent byte throughput reproduces the
#: endpoint-congestion regime the paper's PT stall counters capture.
NIC_BW = 2.0e9

#: Utilisation at which the stall model saturates (queueing model knee).
MAX_UTILISATION = 0.96


# ---------------------------------------------------------------------------
# Scale presets.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScalePreset:
    """Describes one system scale at which the reproduction can run.

    Attributes
    ----------
    name:
        Preset identifier (``tiny`` / ``small`` / ``cori`` / custom).
    groups:
        Number of dragonfly groups.
    rows, cols:
        Router-grid shape within a group.  Cray XC uses 16 x 6; reduced
        presets shrink the grid proportionally.
    nodes_per_router:
        Compute nodes (NICs) attached to each router.  Aries has four.
    io_groups:
        Number of groups whose first router column hosts I/O (LNET) nodes
        rather than compute nodes, mirroring Cori's service groups.
    cores_per_node:
        Cores available to applications per node (64 of KNL's 68 in the
        paper's runs).
    """

    name: str
    groups: int
    rows: int
    cols: int
    nodes_per_router: int
    io_groups: int = 1
    cores_per_node: int = 64

    @property
    def routers_per_group(self) -> int:
        return self.rows * self.cols

    @property
    def num_routers(self) -> int:
        return self.groups * self.routers_per_group

    @property
    def num_nodes(self) -> int:
        return self.num_routers * self.nodes_per_router

    def scaled(self, **changes: object) -> "ScalePreset":
        """Return a copy of this preset with ``changes`` applied."""
        return replace(self, **changes)  # type: ignore[arg-type]


#: Unit-test scale: 6 groups x (4x3) routers x 2 nodes = 144 nodes.
TINY = ScalePreset(name="tiny", groups=6, rows=4, cols=3, nodes_per_router=2)

#: Benchmark scale: 15 groups x (12x4) routers x 4 nodes = 2,880 nodes.
#: A 128-node probe job is ~4.4% of the system and a 512-node probe job is
#: ~17.8%; on Cori (9,688 KNL nodes) the figures were 1.3% / 5.3%.  The
#: regime (job much smaller than machine, sharing global links with dozens
#: of neighbours) is preserved.
SMALL = ScalePreset(name="small", groups=15, rows=12, cols=4, nodes_per_router=4)

#: Full Cray XC40 Cori shape: 34 groups of 96 routers (16 x 6), 4 nodes each.
CORI = ScalePreset(name="cori", groups=34, rows=16, cols=6, nodes_per_router=4)

_PRESETS = {p.name: p for p in (TINY, SMALL, CORI)}


def get_preset(name: str | None = None) -> ScalePreset:
    """Look up a scale preset by name.

    When ``name`` is None, the ``REPRO_SCALE`` environment variable is
    consulted, defaulting to ``small``.
    """
    if name is None:
        name = os.environ.get("REPRO_SCALE", "small")
    try:
        return _PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown scale preset {name!r}; expected one of {sorted(_PRESETS)}"
        ) from None


# ---------------------------------------------------------------------------
# Reproducible random-stream derivation.
# ---------------------------------------------------------------------------

#: Root seed for the whole reproduction.  Experiments may override it but the
#: default keeps every figure deterministic.
DEFAULT_SEED = 20200518  # IPDPS 2020 main-conference start date


def rng_for(*stream: object, seed: int = DEFAULT_SEED) -> np.random.Generator:
    """Derive an independent, reproducible RNG for a named stream.

    Parameters
    ----------
    stream:
        Any hashable labels identifying the consumer, e.g.
        ``rng_for("campaign", "milc", 128, run_index)``.  Streams with
        different labels are statistically independent.
    seed:
        Root seed; defaults to :data:`DEFAULT_SEED`.

    Returns
    -------
    numpy.random.Generator
    """
    entropy = [seed]
    for part in stream:
        if isinstance(part, (int, np.integer)):
            entropy.append(int(part) & 0xFFFFFFFF)
        else:
            key = str(part)
            h = _label_hash_cache.get(key)
            if h is None:
                # Stable 32-bit hash of the textual label (hash() is
                # salted per process, so it must not be used here).
                h = 2166136261
                for ch in key.encode():
                    h = ((h ^ ch) * 16777619) & 0xFFFFFFFF
                _label_hash_cache[key] = h
            entropy.append(h)
    return np.random.default_rng(np.random.SeedSequence(entropy))


#: Memoised FNV-1a label hashes for :func:`rng_for` (labels are few and
#: reused thousands of times per campaign; values are unaffected).
_label_hash_cache: dict[str, int] = {}


def resolve_workers(requested: int | None = None) -> int:
    """Resolve the campaign worker-process count.

    Precedence: the ``REPRO_WORKERS`` environment variable (so a CI job or
    benchmark invocation can override any config without code changes),
    then ``requested`` (the ``CampaignConfig.workers`` field), then 1
    (in-process serial execution).  A value ``<= 0`` means "all cores".

    The worker count never changes generated data — parallel output is
    bit-identical to serial output — so it is deliberately *not* part of
    any cache fingerprint.
    """
    env = os.environ.get("REPRO_WORKERS", "").strip()
    if env:
        try:
            requested = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_WORKERS must be an integer, got {env!r}"
            ) from None
    if requested is None:
        return 1
    if requested <= 0:
        return os.cpu_count() or 1
    return requested


#: Default step-block size for the batched campaign solver: each probe
#: run's steps are solved in blocks of up to this many steps (grouped by
#: background window).  64 keeps the per-block scratch matrices at a few
#: megabytes at benchmark scale while amortising per-step NumPy dispatch
#: overhead; the result is bit-identical for any block size.
DEFAULT_STEP_BLOCK = 64


def resolve_step_block(requested: int | None = None) -> int:
    """Resolve the batched solver's step-block size.

    Precedence: the ``REPRO_STEP_BLOCK`` environment variable, then
    ``requested``, then :data:`DEFAULT_STEP_BLOCK`.  The value bounds the
    ``(steps, links)`` scratch matrices of the batched step-block solver
    (see :meth:`repro.campaign.runner.ProbeRunContext.solve_steps`); it
    never changes generated data, so it is *not* part of any cache
    fingerprint.  Must be >= 1.
    """
    env = os.environ.get("REPRO_STEP_BLOCK", "").strip()
    if env:
        try:
            requested = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_STEP_BLOCK must be an integer, got {env!r}"
            ) from None
    if requested is None:
        return DEFAULT_STEP_BLOCK
    if requested < 1:
        raise ValueError(
            f"step block size must be >= 1, got {requested}"
        )
    return requested


@dataclass
class ReproConfig:
    """Top-level knobs shared by campaign and experiment drivers."""

    scale: ScalePreset = field(default_factory=get_preset)
    seed: int = DEFAULT_SEED

    def rng(self, *stream: object) -> np.random.Generator:
        return rng_for(*stream, seed=self.seed)
