"""A small columnar time-series store for telemetry streams.

LDMS on Cori writes ~5 TB/day of counter samples (paper §III-C); facility
pipelines land them in columnar stores and query them by time window.
This is that pattern in miniature: append-only channels of (time, value)
samples with windowed queries, rate conversion and resampling — enough to
back post-hoc analyses of campaign telemetry without re-running the
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Channel:
    """One named stream of (time, value) samples (monotone time)."""

    name: str
    _times: list[float] = field(default_factory=list, repr=False)
    _values: list[float] = field(default_factory=list, repr=False)

    def append(self, t: float, value: float) -> None:
        if self._times and t < self._times[-1]:
            raise ValueError(
                f"channel {self.name}: non-monotone append "
                f"({t} after {self._times[-1]})"
            )
        self._times.append(float(t))
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._times)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._values)

    # ------------------------------------------------------------------ #

    def window(self, start: float, end: float) -> tuple[np.ndarray, np.ndarray]:
        """Samples with start <= t < end."""
        t = self.times
        lo = int(np.searchsorted(t, start, side="left"))
        hi = int(np.searchsorted(t, end, side="left"))
        return t[lo:hi], self.values[lo:hi]

    def integrate(self, start: float, end: float) -> float:
        """Sum of samples in the window (counter *deltas* add)."""
        _, v = self.window(start, end)
        return float(v.sum())

    def rate(self, start: float, end: float) -> float:
        """Mean events/second over the window."""
        span = end - start
        if span <= 0:
            raise ValueError("window must have positive span")
        return self.integrate(start, end) / span

    def resample(
        self, start: float, end: float, step: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-bin sums on a regular grid (LDMS downsampling)."""
        if step <= 0:
            raise ValueError("step must be positive")
        edges = np.arange(start, end + step * 0.5, step)
        t, v = self.window(start, end)
        idx = np.clip(np.searchsorted(edges, t, side="right") - 1, 0, len(edges) - 2)
        sums = np.bincount(idx, weights=v, minlength=len(edges) - 1)
        return edges[:-1], sums


class TelemetryStore:
    """Named channels with shared query helpers."""

    def __init__(self) -> None:
        self._channels: dict[str, Channel] = {}

    def channel(self, name: str) -> Channel:
        """Get (creating on first use) a channel."""
        ch = self._channels.get(name)
        if ch is None:
            ch = Channel(name=name)
            self._channels[name] = ch
        return ch

    def append(self, name: str, t: float, value: float) -> None:
        self.channel(name).append(t, value)

    def append_dict(self, t: float, values: dict[str, float]) -> None:
        """Append one sample per key (e.g. an LDMS row)."""
        for name, v in values.items():
            self.append(name, t, v)

    def names(self) -> list[str]:
        return sorted(self._channels)

    def __contains__(self, name: str) -> bool:
        return name in self._channels

    def correlate(
        self, a: str, b: str, start: float, end: float, step: float
    ) -> float:
        """Pearson correlation of two channels on a shared grid."""
        _, va = self.channel(a).resample(start, end, step)
        _, vb = self.channel(b).resample(start, end, step)
        if va.std() == 0 or vb.std() == 0:
            return 0.0
        return float(np.corrcoef(va, vb)[0, 1])


def store_from_dataset(ds) -> TelemetryStore:
    """Load a campaign dataset's per-step telemetry into a store.

    Channels: the 13 AriesNCL counters plus the 8 LDMS features, sampled
    at each run's step midpoints (absolute campaign time).
    """
    from repro.campaign.datasets import LDMS_FEATURES
    from repro.network.counters import APP_COUNTERS

    store = TelemetryStore()
    # Runs can overlap in time (the paper's probes sometimes did, §III-A),
    # so gather all samples first and append in global time order.
    samples: list[tuple[float, dict[str, float]]] = []
    for run in ds.runs:
        mids = run.start_time + np.cumsum(run.step_times) - run.step_times / 2
        for s, t in enumerate(mids):
            row = {
                name: float(run.counters[s, i])
                for i, name in enumerate(APP_COUNTERS)
            }
            row.update(
                {
                    name: float(run.ldms[s, i])
                    for i, name in enumerate(LDMS_FEATURES)
                }
            )
            row["step_time"] = float(run.step_times[s])
            samples.append((float(t), row))
    samples.sort(key=lambda sv: sv[0])
    for t, row in samples:
        store.append_dict(t, row)
    return store
