"""Slurm ``sacct`` text format: writer and parser.

The paper's neighbourhood features were mined from textual ``sacct``
output (§III-C) — the authors note that job/executable names were too
inconsistent to parse reliably, which is why the analysis keys on user
ids.  This module round-trips the scheduler's job log through the same
pipe-separated format Slurm emits (``sacct -P -o ...``), including the
compressed hostlist syntax (``nid[00012-00015,00021]``), so the analyses
can run from logs alone.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from repro.system.jobs import JobRecord, JobRequest

#: Column layout of our sacct export.
FIELDS = ["JobID", "User", "JobName", "Submit", "Start", "End", "NNodes", "NodeList"]


def compress_nodelist(nodes: np.ndarray, prefix: str = "nid") -> str:
    """Slurm hostlist compression: sorted ids -> ``nid[00001-00003,00007]``."""
    nodes = np.sort(np.asarray(nodes, dtype=np.int64))
    if len(nodes) == 0:
        return f"{prefix}[]"
    parts: list[str] = []
    start = prev = int(nodes[0])
    for n in nodes[1:]:
        n = int(n)
        if n == prev + 1:
            prev = n
            continue
        parts.append(f"{start:05d}" if start == prev else f"{start:05d}-{prev:05d}")
        start = prev = n
    parts.append(f"{start:05d}" if start == prev else f"{start:05d}-{prev:05d}")
    return f"{prefix}[{','.join(parts)}]"


_RANGE = re.compile(r"^(\d+)(?:-(\d+))?$")


def expand_nodelist(text: str, prefix: str = "nid") -> np.ndarray:
    """Inverse of :func:`compress_nodelist`."""
    if not text.startswith(f"{prefix}[") or not text.endswith("]"):
        raise ValueError(f"not a {prefix} hostlist: {text!r}")
    body = text[len(prefix) + 1 : -1]
    if not body:
        return np.empty(0, dtype=np.int64)
    out: list[int] = []
    for token in body.split(","):
        m = _RANGE.match(token)
        if not m:
            raise ValueError(f"bad hostlist token {token!r}")
        lo = int(m.group(1))
        hi = int(m.group(2)) if m.group(2) else lo
        if hi < lo:
            raise ValueError(f"inverted range {token!r}")
        out.extend(range(lo, hi + 1))
    return np.asarray(out, dtype=np.int64)


def write_sacct(jobs: list[JobRecord]) -> str:
    """Render job records as pipe-separated sacct output."""
    lines = ["|".join(FIELDS)]
    for job in jobs:
        lines.append(
            "|".join(
                [
                    str(job.job_id),
                    job.user,
                    job.name,
                    f"{job.request.submit_time:.3f}",
                    f"{job.start_time:.3f}",
                    f"{job.end_time:.3f}",
                    str(job.num_nodes),
                    compress_nodelist(job.nodes),
                ]
            )
        )
    return "\n".join(lines) + "\n"


@dataclass
class ParsedJob:
    """One sacct row, reconstructed."""

    job_id: int
    user: str
    name: str
    submit: float
    start: float
    end: float
    num_nodes: int
    nodes: np.ndarray

    def to_record(self) -> JobRecord:
        return JobRecord(
            job_id=self.job_id,
            request=JobRequest(
                user=self.user,
                name=self.name,
                submit_time=self.submit,
                num_nodes=self.num_nodes,
                duration=max(self.end - self.start, 1e-9),
                is_probe=self.name.startswith("probe-"),
            ),
            start_time=self.start,
            end_time=self.end,
            nodes=self.nodes,
        )


def parse_sacct(text: str) -> list[ParsedJob]:
    """Parse pipe-separated sacct output back into jobs."""
    lines = [ln for ln in text.splitlines() if ln.strip()]
    if not lines:
        return []
    header = lines[0].split("|")
    if header != FIELDS:
        raise ValueError(f"unexpected sacct header: {header}")
    out: list[ParsedJob] = []
    for ln in lines[1:]:
        cols = ln.split("|")
        if len(cols) != len(FIELDS):
            raise ValueError(f"malformed sacct row: {ln!r}")
        nodes = expand_nodelist(cols[7])
        if len(nodes) != int(cols[6]):
            raise ValueError(
                f"row {cols[0]}: NNodes={cols[6]} but hostlist has {len(nodes)}"
            )
        out.append(
            ParsedJob(
                job_id=int(cols[0]),
                user=cols[1],
                name=cols[2],
                submit=float(cols[3]),
                start=float(cols[4]),
                end=float(cols[5]),
                num_nodes=int(cols[6]),
                nodes=nodes,
            )
        )
    return out
