"""Slurm accounting queries (the paper's ``sacct`` log mining, §III-C).

Wraps a :class:`~repro.system.scheduler.SchedulerResult` with the queries
the analyses need: which users had jobs running alongside a probe job
(its "neighbourhood", §V-A) and the probe's placement features.
"""

from __future__ import annotations

import numpy as np

from repro.system.jobs import JobRecord
from repro.system.scheduler import SchedulerResult
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.placement import placement_features


class SacctLog:
    """Query layer over the scheduler's job log."""

    def __init__(self, result: SchedulerResult, topology: DragonflyTopology) -> None:
        self.result = result
        self.topology = topology

    def neighborhood_users(
        self, job: JobRecord, min_nodes: int = 128
    ) -> list[str]:
        """Users with a >= ``min_nodes`` job running during ``job``'s
        entire *or partial* execution window, excluding the job itself.

        The paper considers users "only if their job size is larger than a
        certain number of nodes (128 for this analysis)" (§V-A).
        """
        overlapping = self.result.overlapping(
            job.start_time, job.end_time, min_nodes=min_nodes
        )
        users = {j.user for j in overlapping if j.job_id != job.job_id}
        return sorted(users)

    def placement(self, job: JobRecord) -> dict[str, int]:
        """NUM_ROUTERS / NUM_GROUPS for a job (paper §III-C)."""
        return placement_features(self.topology, job.nodes)

    def user_vocabulary(
        self, jobs: list[JobRecord], min_nodes: int = 128
    ) -> list[str]:
        """All users appearing in any of the jobs' neighbourhoods."""
        vocab: set[str] = set()
        for job in jobs:
            vocab.update(self.neighborhood_users(job, min_nodes))
        return sorted(vocab)

    def co_occurrence_matrix(
        self, jobs: list[JobRecord], min_nodes: int = 128
    ) -> tuple[np.ndarray, list[str]]:
        """Binary (runs x users) matrix M: M[r, u] = user u was running
        during run r (paper §IV-A)."""
        vocab = self.user_vocabulary(jobs, min_nodes)
        index = {u: i for i, u in enumerate(vocab)}
        m = np.zeros((len(jobs), len(vocab)), dtype=np.int8)
        for r, job in enumerate(jobs):
            for u in self.neighborhood_users(job, min_nodes):
                m[r, index[u]] = 1
        return m, vocab
