"""Telemetry layers matching the paper's data sources (§III-C).

* :mod:`~repro.telemetry.ariesncl` — per-job network counters (AriesNCL
  reads PAPI counters for routers directly attached to the job's nodes);
* :mod:`~repro.telemetry.mpip` — mpiP-style MPI profiling (compute vs MPI
  split and per-routine breakdown);
* :mod:`~repro.telemetry.sacct` — Slurm accounting queries (neighbourhood
  users, placements).
"""

from repro.telemetry.ariesncl import AriesNCL, StepCounters
from repro.telemetry.mpip import MPIProfile, profile_run
from repro.telemetry.sacct import SacctLog

__all__ = [
    "AriesNCL",
    "StepCounters",
    "MPIProfile",
    "profile_run",
    "SacctLog",
]
