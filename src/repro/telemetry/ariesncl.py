"""AriesNCL-style per-job counter collection (paper §III-C).

AriesNCL (via PAPI) can only read counters of routers *directly attached*
to the job's nodes — the paper calls this limitation out explicitly, and
it is why the ``io``/``sys`` feature groups need LDMS instead.  This layer
reproduces exactly that view: per time step, it integrates the per-router
counter rates over the step duration and sums over the job's routers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.counters import (
    APP_COUNTERS,
    aggregate_counters,
    synthesize_router_counters,
)
from repro.network.engine import NetworkState
from repro.topology.dragonfly import DragonflyTopology


@dataclass
class StepCounters:
    """Counter deltas recorded for one time step of one run."""

    step: int
    duration: float
    values: dict[str, float] = field(default_factory=dict)

    def vector(self, names: list[str] | None = None) -> np.ndarray:
        names = names or APP_COUNTERS
        return np.array([self.values[n] for n in names], dtype=np.float64)


class AriesNCL:
    """Per-job counter collector bound to one placement."""

    def __init__(
        self,
        topology: DragonflyTopology,
        job_routers: np.ndarray,
        rng: np.random.Generator | None = None,
        noise: float = 0.02,
    ) -> None:
        self.topology = topology
        self.job_routers = np.asarray(job_routers)
        self.rng = rng
        self.noise = noise
        self._steps: list[StepCounters] = []

    def record_step(
        self,
        step: int,
        state: NetworkState,
        duration: float,
        router_rates: dict[str, np.ndarray] | None = None,
    ) -> StepCounters:
        """Read counters for one step from the solved network state."""
        if router_rates is None:
            router_rates = synthesize_router_counters(state)
        values = aggregate_counters(
            router_rates,
            self.job_routers,
            duration,
            rng=self.rng,
            noise=self.noise,
        )
        sc = StepCounters(step=step, duration=duration, values=values)
        self._steps.append(sc)
        return sc

    @property
    def steps(self) -> list[StepCounters]:
        return list(self._steps)

    def matrix(self, names: list[str] | None = None) -> np.ndarray:
        """(T, H) matrix of counter deltas over the recorded steps."""
        names = names or APP_COUNTERS
        return np.stack([s.vector(names) for s in self._steps], axis=0)
