"""AriesNCL-style per-job counter collection (paper §III-C).

AriesNCL (via PAPI) can only read counters of routers *directly attached*
to the job's nodes — the paper calls this limitation out explicitly, and
it is why the ``io``/``sys`` feature groups need LDMS instead.  This layer
reproduces exactly that view: per time step, it integrates the per-router
counter rates over the step duration and sums over the job's routers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.counters import (
    APP_COUNTERS,
    aggregate_counters,
    counters_to_matrix,
    synthesize_router_counters,
)
from repro.network.engine import NetworkState
from repro.topology.dragonfly import DragonflyTopology


@dataclass
class StepCounters:
    """Counter deltas recorded for one time step of one run."""

    step: int
    duration: float
    values: dict[str, float] = field(default_factory=dict)

    def vector(self, names: list[str] | None = None) -> np.ndarray:
        names = names or APP_COUNTERS
        return np.array([self.values[n] for n in names], dtype=np.float64)


class AriesNCL:
    """Per-job counter collector bound to one placement."""

    def __init__(
        self,
        topology: DragonflyTopology,
        job_routers: np.ndarray,
        rng: np.random.Generator | None = None,
        noise: float = 0.02,
    ) -> None:
        self.topology = topology
        self.job_routers = np.asarray(job_routers)
        self.rng = rng
        self.noise = noise
        self._steps: list[StepCounters] = []

    def record_step(
        self,
        step: int,
        state: NetworkState,
        duration: float,
        router_rates: dict[str, np.ndarray] | None = None,
    ) -> StepCounters:
        """Read counters for one step from the solved network state."""
        if router_rates is None:
            router_rates = synthesize_router_counters(state)
        values = aggregate_counters(
            router_rates,
            self.job_routers,
            duration,
            rng=self.rng,
            noise=self.noise,
        )
        sc = StepCounters(step=step, duration=duration, values=values)
        self._steps.append(sc)
        return sc

    def record_steps(
        self,
        steps: list[int],
        durations: list[float],
        router_rates: dict[str, np.ndarray],
    ) -> list[StepCounters]:
        """Batched :meth:`record_step` over a block of steps.

        ``router_rates`` maps counter names to ``(steps, routers)`` rate
        matrices.  Bit-identical to recording step by step: each
        step/counter value is a per-row 1-D sum over the job routers
        (same accumulation order as ``aggregate_counters``), and the
        measurement jitter is drawn from ``self.rng`` as one step-major
        batch — numpy's sized ``lognormal`` consumes the stream exactly
        like the per-step scalar draws, in the same (step, counter)
        order.
        """
        names = list(router_rates)
        matrix = counters_to_matrix(router_rates, names)  # (13, B, R)
        # One gather of the job-router columns for the whole block; each
        # (counter, step) row of `sub` holds the same values in the same
        # order as the per-step gather, so the 1-D sums are bit-equal
        # (C order forced so row reductions use the contiguous kernel).
        sub = np.ascontiguousarray(matrix[:, :, self.job_routers])
        n = len(steps)
        if self.rng is not None and self.noise > 0:
            jitter = self.rng.lognormal(
                mean=0.0, sigma=self.noise, size=n * len(names)
            ).reshape(n, len(names))
        else:
            jitter = None
        out: list[StepCounters] = []
        for i, step in enumerate(steps):
            duration = durations[i]
            values: dict[str, float] = {}
            for j, name in enumerate(names):
                value = float(sub[j, i].sum()) * duration
                if jitter is not None:
                    value *= float(jitter[i, j])
                values[name] = value
            sc = StepCounters(step=step, duration=duration, values=values)
            self._steps.append(sc)
            out.append(sc)
        return out

    @property
    def steps(self) -> list[StepCounters]:
        return list(self._steps)

    def matrix(self, names: list[str] | None = None) -> np.ndarray:
        """(T, H) matrix of counter deltas over the recorded steps."""
        names = names or APP_COUNTERS
        return np.stack([s.vector(names) for s in self._steps], axis=0)
