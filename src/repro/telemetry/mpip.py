"""mpiP-style MPI profiling (paper §III-B, Figs. 4 and 5).

The paper links mpiP into every probe run to split time into compute vs
MPI and to break MPI time into routines.  Here a profile is derived from a
run's realised per-step times and the application's routine mix: the
congestion-dilated share of MPI time lands on the blocking routines
(Wait*, Test*, Iprobe, Barrier, Allreduce), because that is where delayed
messages surface, while Isend/Irecv posting costs stay fixed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.base import Application

#: Routines whose time inflates when the network is congested.
BLOCKING_ROUTINES = {
    "Wait",
    "Waitall",
    "Test",
    "Testall",
    "Iprobe",
    "Barrier",
    "Allreduce",
}


@dataclass
class MPIProfile:
    """One run's mpiP-equivalent report."""

    compute_time: float
    mpi_time: float
    routine_times: dict[str, float]

    @property
    def total_time(self) -> float:
        return self.compute_time + self.mpi_time

    @property
    def mpi_fraction(self) -> float:
        return self.mpi_time / self.total_time if self.total_time > 0 else 0.0

    def dominant_routines(self, k: int = 5) -> list[str]:
        return sorted(self.routine_times, key=self.routine_times.get, reverse=True)[:k]


def profile_run(
    app: Application,
    compute_times: np.ndarray,
    mpi_times: np.ndarray,
    rng: np.random.Generator | None = None,
    jitter: float = 0.03,
) -> MPIProfile:
    """Build a profile from realised per-step compute/MPI times.

    The baseline (uncongested) MPI time follows the app's routine mix;
    any *excess* over baseline is attributed to the blocking routines in
    proportion to their mix share.
    """
    compute = float(np.sum(compute_times))
    mpi = float(np.sum(mpi_times))
    baseline = float(app.step_model().mpi.sum())
    excess = max(mpi - baseline, 0.0)
    base_part = mpi - excess

    mix = app.routine_mix()
    blocking_share = sum(v for k, v in mix.items() if k in BLOCKING_ROUTINES)
    routine_times: dict[str, float] = {}
    for name, share in mix.items():
        t = share * base_part
        if name in BLOCKING_ROUTINES and blocking_share > 0:
            t += excess * share / blocking_share
        if rng is not None and jitter > 0:
            t *= float(rng.lognormal(0.0, jitter))
        routine_times[name] = t
    # Renormalise the jitter so the routine times still sum to mpi.
    s = sum(routine_times.values())
    if s > 0:
        routine_times = {k: v * mpi / s for k, v in routine_times.items()}
    return MPIProfile(
        compute_time=compute, mpi_time=mpi, routine_times=routine_times
    )
