"""repro — reproduction of *The Case of Performance Variability on
Dragonfly-based Systems* (Bhatele et al., IPDPS 2020).

Layered like the study itself:

* :mod:`repro.topology` / :mod:`repro.network` — the Cray XC dragonfly,
  adaptive routing, congestion, Aries counters, LDMS;
* :mod:`repro.apps` / :mod:`repro.system` — the four workloads and the
  shared production machine;
* :mod:`repro.campaign` — the four-month measurement campaign;
* :mod:`repro.ml` / :mod:`repro.analysis` — the paper's ML pipelines;
* :mod:`repro.experiments` — one driver per paper table/figure.

See README.md for a tour and DESIGN.md for the system inventory.
"""

__version__ = "1.0.0"

from repro.config import CORI, SMALL, TINY, ReproConfig, ScalePreset, rng_for

__all__ = [
    "__version__",
    "ReproConfig",
    "ScalePreset",
    "rng_for",
    "TINY",
    "SMALL",
    "CORI",
]
