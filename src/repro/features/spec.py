"""Feature-view specifications: which columns a model sees, in one object.

The paper's §V-C ablation works over four feature *tiers* (job-local
AriesNCL counters, + placement, + io, + sys).  Before this module, each
tier was a dict of ``RunDataset.features()`` kwargs expanded at every
call site, with ``feature_names()`` expanded separately — two code paths
that could silently drift.  A :class:`FeatureSpec` owns both the matrix
construction and the column names, so they are guaranteed consistent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.counters import (
    APP_COUNTERS,
    IO_COUNTERS,
    PLACEMENT_FEATURES,
    SYS_COUNTERS,
)

#: Valid values of :attr:`FeatureSpec.source`.
_SOURCES = ("counters", "ldms")


@dataclass(frozen=True)
class FeatureSpec:
    """One derived feature view of a :class:`~repro.campaign.datasets.RunDataset`.

    ``source="counters"`` is a §V-C ablation tier: the 13 AriesNCL
    counters plus the optional placement / io / sys column blocks.
    ``source="ldms"`` is the raw (N, T, 8) LDMS io+sys stream used by the
    system-state forecasting extension.
    """

    name: str
    placement: bool = False
    io: bool = False
    sys: bool = False
    source: str = "counters"

    def __post_init__(self) -> None:
        if self.source not in _SOURCES:
            raise ValueError(
                f"unknown feature source {self.source!r}; expected one of {_SOURCES}"
            )

    # ---- identity ------------------------------------------------------- #

    @property
    def token(self) -> str:
        """Canonical cache token: derived from the column blocks, not the
        display name, so aliased specs share one cache entry."""
        if self.source == "ldms":
            return "ldms"
        parts = ["app"]
        if self.placement:
            parts.append("placement")
        if self.io:
            parts.append("io")
        if self.sys:
            parts.append("sys")
        return "+".join(parts)

    @classmethod
    def resolve(cls, tier: "str | FeatureSpec") -> "FeatureSpec":
        """A spec from a tier name (or a spec, passed through)."""
        if isinstance(tier, FeatureSpec):
            return tier
        if tier in TIERS:
            return TIERS[tier]
        raise ValueError(f"unknown tier {tier!r}; expected one of {list(TIERS)}")

    # ---- the two halves that must never drift --------------------------- #

    def feature_names(self) -> list[str]:
        """Column labels, in exactly the order :meth:`matrix` stacks them."""
        if self.source == "ldms":
            return IO_COUNTERS + SYS_COUNTERS
        names = list(APP_COUNTERS)
        if self.placement:
            names += PLACEMENT_FEATURES
        if self.io:
            names += IO_COUNTERS
        if self.sys:
            names += SYS_COUNTERS
        return names

    def matrix(self, ds) -> np.ndarray:
        """The (N, T, H) feature tensor of ``ds`` for this view."""
        if self.source == "ldms":
            return ds.ldms
        return ds.features(placement=self.placement, io=self.io, sys=self.sys)

    def kwargs(self) -> dict[str, bool]:
        """The legacy ``RunDataset.features()`` keyword expansion."""
        return {"placement": self.placement, "io": self.io, "sys": self.sys}


#: The §V-C ablation tiers (name -> spec).  The single definition the
#: whole analysis stack shares.
TIERS: dict[str, FeatureSpec] = {
    "app": FeatureSpec("app"),
    "app+placement": FeatureSpec("app+placement", placement=True),
    "app+placement+io": FeatureSpec("app+placement+io", placement=True, io=True),
    "app+placement+io+sys": FeatureSpec(
        "app+placement+io+sys", placement=True, io=True, sys=True
    ),
}

#: The raw LDMS io+sys stream (system-state forecasting extension).
LDMS_SPEC = FeatureSpec("ldms", source="ldms")
