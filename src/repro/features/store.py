"""The FeatureStore: every derived view of a dataset, built exactly once.

Tier feature matrices, mean trends / mean-centered views, and
``(m, k, align_m)`` sliding-window tensors used to be recomputed
independently by every analysis module and every figure driver.  The
store builds each of them once per dataset:

* **in process** — memoized on the store instance, which
  :func:`get_store` attaches to the dataset object, so a campaign shared
  across figures shares every derived array;
* **on disk** — the expensive tensors (tier matrices, window stacks)
  persist under the campaign cache directory (``REPRO_CACHE_DIR``,
  default ``./.repro_cache``), reusing the hardened machinery from
  :mod:`repro.campaign.datasets`: atomic write-then-rename, an
  inter-process ``flock`` per dataset, and corrupt entries treated as
  warned misses that regenerate.

Cache key anatomy (see also ``docs/development.md``)::

    <cache-dir>/features/v<FEATURE_FORMAT_VERSION>/<dataset-fingerprint>/<token>.npz

The dataset fingerprint is ``sha256(campaign fingerprint, dataset key)``
when the dataset came out of a campaign run (the same fingerprint keys
the campaign cache and the experiment context use), or a content hash of
the dataset arrays for ad-hoc datasets.  The token encodes the feature
spec and, for window tensors, ``(m, k, align_m)``.  Bump
:data:`FEATURE_FORMAT_VERSION` when the derived-data layout changes —
old entries are then simply never hit.
"""

from __future__ import annotations

import hashlib
import os
import weakref
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.campaign.datasets import Campaign, FileLock, RunDataset
from repro.features.spec import LDMS_SPEC, FeatureSpec
from repro.features.windows import (
    build_windows,
    interleave_windows,
    validate_window_params,
)
from repro.graph.store import atomic_write, guarded_load
from repro.obs import METRICS, span

#: On-disk feature cache format version; folded into the entry path so a
#: layout change is an automatic miss.
FEATURE_FORMAT_VERSION = 1

#: The store's counters on the process-wide registry
#: (:data:`repro.obs.METRICS`); instrument references stay valid across
#: ``METRICS.reset()``, so caching them here is safe.
_HITS = METRICS.counter("features.cache.hits")
_DISK_HITS = METRICS.counter("features.cache.disk_hits")
_MISSES = METRICS.counter("features.cache.misses")
_BUILD_SECONDS = METRICS.histogram("features.build.seconds")
#: Incremental-append accounting, per shard consumed: a shard whose
#: tensor came out of its own store's memo/disk is an append *hit*; a
#: shard that had to build is an append *miss*.  Appending one window to
#: a warm stream must show exactly one miss per consumed token.
_APPEND_HITS = METRICS.counter("features.append.hit")
_APPEND_MISSES = METRICS.counter("features.append.miss")


class CacheStats:
    """Back-compat view of the feature-cache counters (see :data:`STATS`).

    The counts themselves live on :data:`repro.obs.METRICS` (so traces
    and the ``repro.obs report`` CLI see them); this facade keeps the
    original ``hits``/``disk_hits``/``misses``/``snapshot()`` surface.
    ``misses`` counts actual feature builds; a warm pipeline must show a
    zero miss delta (asserted in ``tests/features``).
    """

    @property
    def hits(self) -> int:
        return _HITS.value

    @property
    def disk_hits(self) -> int:
        return _DISK_HITS.value

    @property
    def misses(self) -> int:
        return _MISSES.value

    @property
    def total(self) -> int:
        return self.hits + self.disk_hits + self.misses

    def reset(self) -> None:
        for c in (_HITS, _DISK_HITS, _MISSES):
            c._reset()

    def snapshot(self) -> tuple[int, int, int]:
        return (self.hits, self.disk_hits, self.misses)


#: Process-wide cache statistics, aggregated over all stores.
STATS = CacheStats()

#: Live stores, for :func:`clear_feature_caches`.
_LIVE_STORES: "weakref.WeakSet[FeatureStore]" = weakref.WeakSet()


def feature_cache_enabled() -> bool:
    """Disk persistence toggle (``REPRO_FEATURE_CACHE=0`` disables)."""
    return os.environ.get("REPRO_FEATURE_CACHE", "1") not in ("0", "", "false")


class FeatureStore:
    """Memoized derived views of one :class:`RunDataset`."""

    def __init__(self, ds: RunDataset, persist: bool | None = None) -> None:
        self.ds = ds
        self.persist = feature_cache_enabled() if persist is None else persist
        self._memo: dict[str, dict[str, np.ndarray]] = {}
        self._fingerprint: str | None = None
        _LIVE_STORES.add(self)

    # ---- identity ------------------------------------------------------- #

    def fingerprint(self) -> str:
        """Stable identity of the dataset's arrays.

        Prefers the provenance stamp ``(campaign fingerprint, key)`` left
        by the campaign runner — the same fingerprint keys the campaign
        cache uses — and falls back to hashing the array contents for
        datasets built by hand (tests, ad-hoc studies).
        """
        if self._fingerprint is None:
            camp_fp = getattr(self.ds, "campaign_fingerprint", None)
            h = hashlib.sha256()
            if camp_fp is not None:
                h.update(f"{camp_fp}/{self.ds.key}".encode())
            else:
                h.update(self.ds.key.encode())
                for arr in (self._base("Y"), self._base("X"), self._base("ldms"),
                            self.ds.placement):
                    h.update(str(arr.shape).encode())
                    h.update(np.ascontiguousarray(arr).tobytes())
            self._fingerprint = h.hexdigest()[:16]
        return self._fingerprint

    def cache_root(self) -> Path:
        return (
            Campaign.cache_dir()
            / "features"
            / f"v{FEATURE_FORMAT_VERSION}"
            / self.fingerprint()
        )

    def clear(self) -> None:
        """Drop the in-process memo (disk entries stay)."""
        self._memo.clear()

    # ---- raw array assembly (stacked once, not counted as features) ----- #

    def _base(self, which: str) -> np.ndarray:
        key = f"_base-{which}"
        entry = self._memo.get(key)
        if entry is None:
            entry = {"x": getattr(self.ds, which)}
            self._memo[key] = entry
        return entry["x"]

    # ---- incremental append (streamed datasets) -------------------------- #

    def _shard_stores(self) -> "list[FeatureStore] | None":
        """Per-shard stores of a streamed dataset, or ``None``.

        The append path only engages for genuinely multi-shard datasets
        whose every shard carries a provenance stamp — the degenerate
        single-shard case (and any hand-built dataset) stays on the
        monolithic path, byte-identical to the pre-streaming behaviour
        with unchanged cache keys.
        """
        views = getattr(self.ds, "shard_views", None)
        if not views or len(views) < 2:
            return None
        if any(
            getattr(v, "campaign_fingerprint", None) is None for v in views
        ):
            return None
        return [get_store(v, persist=self.persist) for v in views]

    def _from_shards(
        self, token: str, shards: "list[FeatureStore]", per_shard, combine
    ) -> dict[str, np.ndarray]:
        """Assemble one derived view shard-by-shard.

        Each shard's tensor comes from *its own* store — memoized in
        process and persisted under the shard's fingerprint, so the
        entries are shared with direct runs of that window's campaign.
        Only the cheap combined view is memoized here (never written to
        disk: the shard is the persisted unit, which is what makes
        appending window N+1 recompute exactly one shard per token).
        """
        entry = self._memo.get(token)
        if entry is not None:
            _HITS.inc()
            return entry
        parts = []
        for store in shards:
            before = _MISSES.value
            parts.append(per_shard(store))
            if _MISSES.value > before:
                _APPEND_MISSES.inc()
            else:
                _APPEND_HITS.inc()
        entry = combine(parts)
        self._memo[token] = entry
        return entry

    # ---- memo/disk plumbing --------------------------------------------- #

    def _get(self, token: str, build, disk: bool = True) -> dict[str, np.ndarray]:
        entry = self._memo.get(token)
        if entry is not None:
            _HITS.inc()
            return entry
        if disk and self.persist:
            with span("features.disk_load", token=token, dataset=self.ds.key):
                entry = self._disk_load(token)
            if entry is not None:
                _DISK_HITS.inc()
                self._memo[token] = entry
                return entry
        _MISSES.inc()
        with span("features.build", token=token, dataset=self.ds.key) as sp:
            t0 = perf_counter()
            entry = build()
            _BUILD_SECONDS.observe(perf_counter() - t0)
            sp.set(persisted=bool(disk and self.persist))
        self._memo[token] = entry
        if disk and self.persist:
            self._disk_save(token, entry)
        return entry

    def _disk_load(self, token: str) -> dict[str, np.ndarray] | None:
        def reader(path: Path) -> dict[str, np.ndarray]:
            with np.load(path) as npz:
                return {name: npz[name] for name in npz.files}

        return guarded_load(
            self.cache_root() / f"{token}.npz", reader, "feature cache"
        )

    def _disk_save(self, token: str, entry: dict[str, np.ndarray]) -> None:
        # Unwritable cache dir degrades to memo-only (atomic_write warns).
        atomic_write(
            self.cache_root() / f"{token}.npz",
            lambda fh: np.savez_compressed(fh, **entry),
            lock=FileLock(self.cache_root().parent / f"{self.fingerprint()}.lock"),
            fail_msg=f"feature cache write failed for {token}",
        )

    # ---- tier matrices --------------------------------------------------- #

    def features(self, spec: "str | FeatureSpec") -> np.ndarray:
        """(N, T, H) feature tensor for a spec or tier name.

        Streamed datasets assemble per shard: the run axis is the shard
        concatenation order, so stacking the per-shard matrices is
        byte-identical to building over the combined dataset.
        """
        spec = FeatureSpec.resolve(spec)
        shards = self._shard_stores()
        if shards is not None:
            return self._from_shards(
                f"tier-{spec.token}",
                shards,
                lambda s: s.features(spec),
                lambda parts: {"x": np.concatenate(parts, axis=0)},
            )["x"]
        return self._get(
            f"tier-{spec.token}", lambda: {"x": spec.matrix(self.ds)}
        )["x"]

    def feature_names(self, spec: "str | FeatureSpec") -> list[str]:
        """Column labels, guaranteed consistent with :meth:`features`."""
        return FeatureSpec.resolve(spec).feature_names()

    # ---- mean-centering (paper §IV-B) ------------------------------------ #

    def mean_trends(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-step means over runs: (T, 13) counters, (T,) times."""
        entry = self._get(
            "mean-trends",
            lambda: dict(
                zip(("xm", "ym"), (self._base("X").mean(axis=0),
                                   self._base("Y").mean(axis=0)))
            ),
        )
        return entry["xm"], entry["ym"]

    def mean_centered(self) -> tuple[np.ndarray, np.ndarray]:
        """X̂, Ŷ with per-step mean trends removed."""
        def build() -> dict[str, np.ndarray]:
            xm, ym = self.mean_trends()
            return {
                "xh": self._base("X") - xm[None, :, :],
                "yh": self._base("Y") - ym[None, :],
            }

        entry = self._get("mean-centered", build)
        return entry["xh"], entry["yh"]

    def flat_mean_centered(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(NT, H) counters, (NT,) deviations, (NT,) per-sample mean trend.

        The deviation-model sample layout (§IV-B): each step of each run
        is one row; ``offsets`` restores absolute times for MAPE.
        """
        def build() -> dict[str, np.ndarray]:
            xh, yh = self.mean_centered()
            n, t, h = xh.shape
            _, ym = self.mean_trends()
            return {
                "x": xh.reshape(n * t, h),
                "y": yh.reshape(n * t),
                "offsets": np.tile(ym, n),
            }

        entry = self._get("flat-mean-centered", build, disk=False)
        return entry["x"], entry["y"], entry["offsets"]

    # ---- sliding windows (paper Fig. 6) ----------------------------------- #

    def windows(
        self,
        spec: "str | FeatureSpec",
        m: int,
        k: int,
        align_m: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Memoized ``build_windows`` over a tier view, targets = step times.

        Streamed datasets build the window tensors per shard and
        interleave the per-instant blocks back into the monolithic
        tc-major order (:func:`~repro.features.windows.interleave_windows`)
        — byte-identical to the one-shot build, while appending a window
        reuses every existing shard tensor from its own cache.
        """
        spec = FeatureSpec.resolve(spec)
        validate_window_params(self.ds.num_steps, m, k, align_m)
        token = f"win-{spec.token}-m{m}-k{k}-a{align_m if align_m is not None else m}"

        shards = self._shard_stores()
        if shards is not None:
            counts = [len(s.ds) for s in shards]

            def combine(parts):
                x, y, groups = interleave_windows(parts, counts)
                return {"x": x, "y": y, "groups": groups}

            entry = self._from_shards(
                token,
                shards,
                lambda s: s.windows(spec, m, k, align_m=align_m),
                combine,
            )
            return entry["x"], entry["y"], entry["groups"]

        def build() -> dict[str, np.ndarray]:
            x, y, groups = build_windows(
                self.features(spec), self._base("Y"), m, k, align_m=align_m
            )
            return {"x": x, "y": y, "groups": groups}

        entry = self._get(token, build)
        return entry["x"], entry["y"], entry["groups"]

    def channel_windows(
        self, channel: str, m: int, k: int, align_m: int | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """LDMS windows whose target is one channel's future sum.

        The system-state forecasting view (§V-C closing proposal): x is
        the full (m, 8) LDMS window, the target is
        ``sum(channel[tc+1 : tc+1+k])``.
        """
        names = LDMS_SPEC.feature_names()
        if channel not in names:
            raise ValueError(
                f"unknown channel {channel!r}; expected one of {names}"
            )
        ci = names.index(channel)
        validate_window_params(self.ds.num_steps, m, k, align_m)
        token = f"win-ldms-ch{ci}-m{m}-k{k}-a{align_m if align_m is not None else m}"

        shards = self._shard_stores()
        if shards is not None:
            counts = [len(s.ds) for s in shards]

            def combine(parts):
                x, y, groups = interleave_windows(parts, counts)
                return {"x": x, "y": y, "groups": groups}

            entry = self._from_shards(
                token,
                shards,
                lambda s: s.channel_windows(channel, m, k, align_m=align_m),
                combine,
            )
            return entry["x"], entry["y"], entry["groups"]

        def build() -> dict[str, np.ndarray]:
            feats = self.features(LDMS_SPEC)
            x, y, groups = build_windows(feats, feats[:, :, ci], m, k, align_m=align_m)
            return {"x": x, "y": y, "groups": groups}

        entry = self._get(token, build)
        return entry["x"], entry["y"], entry["groups"]


def get_store(ds: RunDataset, persist: bool | None = None) -> FeatureStore:
    """The dataset's store, created on first use and attached to it.

    Attaching to the dataset object makes the memo shared by construction:
    every analysis and figure that receives the same campaign sees the
    same store.
    """
    store = getattr(ds, "_feature_store", None)
    if store is None:
        store = FeatureStore(ds, persist=persist)
        ds._feature_store = store
    return store


def clear_feature_caches() -> None:
    """Drop every live store's in-process memo (disk entries stay)."""
    for store in list(_LIVE_STORES):
        store.clear()
