"""Sliding-window construction (paper Fig. 6, §IV-C).

Pure array plumbing, shared by the forecasting analyses and the
:class:`~repro.features.store.FeatureStore` (which memoizes the resulting
tensors).  Moved here from ``repro.analysis.forecasting`` so the window
logic lives with the rest of the derived-data layer; the old import path
still re-exports it.
"""

from __future__ import annotations

import numpy as np


def validate_window_params(t: int, m: int, k: int, align_m: int | None = None) -> None:
    """Raise ``ValueError`` for window parameters that cannot fit ``t`` steps.

    Shared by :func:`build_windows` and the store's cache lookups, so a
    cached tensor can never be served for parameters that would have
    raised when built.
    """
    if m < 1 or k < 1:
        raise ValueError("m and k must be positive")
    if align_m is not None and align_m < m:
        raise ValueError("align_m must be >= m")
    if (align_m or m) + k > t:
        raise ValueError(f"window m={align_m or m} + horizon k={k} exceeds T={t}")


def build_windows(
    features: np.ndarray, y: np.ndarray, m: int, k: int, align_m: int | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sliding windows over every run (paper Fig. 6).

    Parameters
    ----------
    features:
        (N, T, H) per-step features.
    y:
        (N, T) per-step times.
    m:
        Temporal context length (history steps, inclusive of the current
        step t_c).
    k:
        Forecast horizon; the target is ``sum(y[tc+1 : tc+1+k])``.
    align_m:
        When comparing several context lengths, pass the *largest* m here
        so every model sees the same prediction instants (otherwise a
        smaller m gets extra early-run training windows and the comparison
        confounds context length with sample count).

    Returns
    -------
    (x, targets, groups):
        (n, m, H) windows, (n,) aggregate targets, (n,) run indices.
    """
    features = np.asarray(features, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    n, t, h = features.shape
    validate_window_params(t, m, k, align_m)
    tcs = np.arange((align_m or m) - 1, t - k)
    xs = []
    ys = []
    gs = []
    for tc in tcs:
        xs.append(features[:, tc - m + 1 : tc + 1, :])
        ys.append(y[:, tc + 1 : tc + 1 + k].sum(axis=1))
        gs.append(np.arange(n))
    return (
        np.concatenate(xs, axis=0),
        np.concatenate(ys, axis=0),
        np.concatenate(gs, axis=0),
    )
