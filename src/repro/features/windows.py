"""Sliding-window construction (paper Fig. 6, §IV-C).

Pure array plumbing, shared by the forecasting analyses and the
:class:`~repro.features.store.FeatureStore` (which memoizes the resulting
tensors).  Moved here from ``repro.analysis.forecasting`` so the window
logic lives with the rest of the derived-data layer; the old import path
still re-exports it.
"""

from __future__ import annotations

import numpy as np


def validate_window_params(t: int, m: int, k: int, align_m: int | None = None) -> None:
    """Raise ``ValueError`` for window parameters that cannot fit ``t`` steps.

    Shared by :func:`build_windows` and the store's cache lookups, so a
    cached tensor can never be served for parameters that would have
    raised when built.
    """
    if m < 1 or k < 1:
        raise ValueError("m and k must be positive")
    if align_m is not None and align_m < m:
        raise ValueError("align_m must be >= m")
    if (align_m or m) + k > t:
        raise ValueError(f"window m={align_m or m} + horizon k={k} exceeds T={t}")


def build_windows(
    features: np.ndarray, y: np.ndarray, m: int, k: int, align_m: int | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sliding windows over every run (paper Fig. 6).

    Parameters
    ----------
    features:
        (N, T, H) per-step features.
    y:
        (N, T) per-step times.
    m:
        Temporal context length (history steps, inclusive of the current
        step t_c).
    k:
        Forecast horizon; the target is ``sum(y[tc+1 : tc+1+k])``.
    align_m:
        When comparing several context lengths, pass the *largest* m here
        so every model sees the same prediction instants (otherwise a
        smaller m gets extra early-run training windows and the comparison
        confounds context length with sample count).

    Returns
    -------
    (x, targets, groups):
        (n, m, H) windows, (n,) aggregate targets, (n,) run indices.
    """
    features = np.asarray(features, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    n, t, h = features.shape
    validate_window_params(t, m, k, align_m)
    tcs = np.arange((align_m or m) - 1, t - k)
    xs = []
    ys = []
    gs = []
    for tc in tcs:
        xs.append(features[:, tc - m + 1 : tc + 1, :])
        ys.append(y[:, tc + 1 : tc + 1 + k].sum(axis=1))
        gs.append(np.arange(n))
    return (
        np.concatenate(xs, axis=0),
        np.concatenate(ys, axis=0),
        np.concatenate(gs, axis=0),
    )


def interleave_windows(
    parts: "list[tuple[np.ndarray, np.ndarray, np.ndarray]]",
    counts: list[int],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Merge per-shard :func:`build_windows` outputs into the monolithic order.

    :func:`build_windows` lays samples out **tc-major**: for each
    prediction instant, one row per run.  A shard's tensor is tc-major
    over its own runs, so the monolithic layout is recovered by
    interleaving the per-instant blocks of every shard (run counts
    ``counts``, per shard) and offsetting each shard's group ids by the
    runs that precede it.  The result is byte-identical to building the
    windows over the concatenated dataset — the correctness crux of the
    feature store's incremental-append path, locked by
    ``tests/features/test_shard_windows.py``.
    """
    if len(parts) != len(counts):
        raise ValueError("parts and counts must align")
    n_tcs = {
        part[0].shape[0] // c for part, c in zip(parts, counts) if c
    }
    if len(n_tcs) != 1:
        raise ValueError(
            f"shards disagree on prediction instants: {sorted(n_tcs)}"
        )
    n_tc = n_tcs.pop()
    offsets = np.concatenate([[0], np.cumsum(counts)[:-1]]).astype(np.int64)
    xs, ys, gs = [], [], []
    for i in range(n_tc):
        for (x, y, g), c, off in zip(parts, counts, offsets):
            if not c:
                continue
            block = slice(i * c, (i + 1) * c)
            xs.append(x[block])
            ys.append(y[block])
            gs.append(g[block] + off)
    return (
        np.concatenate(xs, axis=0),
        np.concatenate(ys, axis=0),
        np.concatenate(gs, axis=0),
    )
