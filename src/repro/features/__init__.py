"""Derived-data layer: one place that turns campaign datasets into model food.

Everything downstream of campaign generation — tier feature matrices,
mean trends / mean-centered views, and sliding-window tensors — is built
here exactly once per dataset:

* :mod:`~repro.features.spec` — :class:`FeatureSpec`, the single source
  of truth for which columns a feature view contains (the §V-C ablation
  tiers plus the LDMS system view), so matrices and names can never
  drift apart;
* :mod:`~repro.features.windows` — the pure sliding-window construction
  of the paper's Fig. 6 (:func:`build_windows`);
* :mod:`~repro.features.store` — :class:`FeatureStore`, which memoizes
  every derived view in process and persists the expensive ones under
  the campaign cache machinery (atomic writes, ``flock``, corruption =
  warned miss), keyed by (dataset fingerprint, feature spec, feature
  format version).
"""

from repro.features.spec import LDMS_SPEC, TIERS, FeatureSpec
from repro.features.store import (
    FEATURE_FORMAT_VERSION,
    STATS,
    CacheStats,
    FeatureStore,
    clear_feature_caches,
    get_store,
)
from repro.features.windows import (
    build_windows,
    interleave_windows,
    validate_window_params,
)

__all__ = [
    "FeatureSpec",
    "TIERS",
    "LDMS_SPEC",
    "FeatureStore",
    "get_store",
    "clear_feature_caches",
    "CacheStats",
    "STATS",
    "FEATURE_FORMAT_VERSION",
    "build_windows",
    "interleave_windows",
    "validate_window_params",
]
