"""ASCII rendering of the dragonfly (the paper's Fig. 2, in a terminal).

Draws one group's router grid with its green/black all-to-all structure
summarised, and the inter-group blue connectivity, plus an optional
utilisation overlay from a solved network state.
"""

from __future__ import annotations

import numpy as np

from repro.topology.dragonfly import DragonflyTopology, LinkKind


def render_group(topology: DragonflyTopology, group: int = 0) -> str:
    """One group's router grid with link-class annotations."""
    if not 0 <= group < topology.groups:
        raise ValueError("group out of range")
    lines = [
        f"group {group}: {topology.col_size} rows x {topology.row_size} "
        f"routers, {topology.nodes_per_router} nodes each"
    ]
    for row in range(topology.col_size):
        cells = []
        for pos in range(topology.row_size):
            r = int(topology.router_id(group, row, pos))
            mark = "io" if topology.io_router_mask[r] else "r"
            cells.append(f"{mark}{r:04d}")
        lines.append("  " + " --g-- ".join(cells))
    lines.append(
        f"  rows all-to-all via green links ({topology.row_size - 1}/router); "
        f"columns via black links ({topology.col_size - 1}/router)"
    )
    lines.append(
        f"  blue links to each of {topology.groups - 1} peer groups "
        f"x{topology.global_multiplicity}"
    )
    return "\n".join(lines)


def render_group_connectivity(topology: DragonflyTopology) -> str:
    """Group-level adjacency summary (all-to-all on Cray XC)."""
    g = topology.groups
    lines = [f"{g} groups, all-to-all global connectivity:"]
    width = min(g, 16)
    header = "      " + " ".join(f"g{j:02d}" for j in range(width))
    lines.append(header)
    for a in range(min(g, 16)):
        row = [
            " x " if a != b else " . " for b in range(width)
        ]
        lines.append(f"  g{a:02d} " + " ".join(row))
    if g > 16:
        lines.append(f"  ... ({g - 16} more groups)")
    return "\n".join(lines)


def render_utilisation(
    topology: DragonflyTopology,
    link_loads: np.ndarray,
    buckets: str = " .:-=+*#%@",
) -> str:
    """Per-link-class utilisation histogram as a sparkline summary."""
    util = link_loads / topology.link_capacity
    lines = ["link utilisation by class:"]
    for kind in LinkKind:
        u = util[topology.link_kind == kind]
        if len(u) == 0:
            continue
        hist, _ = np.histogram(np.clip(u, 0, 1), bins=10, range=(0.0, 1.0))
        peak = hist.max() if hist.max() > 0 else 1
        spark = "".join(
            buckets[min(int(h / peak * (len(buckets) - 1)), len(buckets) - 1)]
            for h in hist
        )
        lines.append(
            f"  {kind.name.lower():5s} [{spark}] mean={u.mean():.3f} "
            f"max={u.max():.3f} ({len(u)} links)"
        )
    return "\n".join(lines)
