"""ASCII rendering of registered topologies (the paper's Fig. 2, in a
terminal).

For the dragonfly: one group's router grid with its green/black
all-to-all structure summarised.  For Dragonfly+: one group's leaf/spine
split.  Both get the inter-group global connectivity summary and an
optional utilisation overlay from a solved network state; unknown
geometries degrade gracefully with a "not supported" message instead of
crashing.
"""

from __future__ import annotations

import numpy as np

from repro.topology.base import Topology
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.dragonfly_plus import DragonflyPlusTopology


def _render_dragonfly_group(topology: DragonflyTopology, group: int) -> str:
    lines = [
        f"group {group}: {topology.col_size} rows x {topology.row_size} "
        f"routers, {topology.nodes_per_router} nodes each"
    ]
    for row in range(topology.col_size):
        cells = []
        for pos in range(topology.row_size):
            r = int(topology.router_id(group, row, pos))
            mark = "io" if topology.io_router_mask[r] else "r"
            cells.append(f"{mark}{r:04d}")
        lines.append("  " + " --g-- ".join(cells))
    lines.append(
        f"  rows all-to-all via green links ({topology.row_size - 1}/router); "
        f"columns via black links ({topology.col_size - 1}/router)"
    )
    lines.append(
        f"  blue links to each of {topology.groups - 1} peer groups "
        f"x{topology.global_multiplicity}"
    )
    return "\n".join(lines)


def _render_plus_group(topology: DragonflyPlusTopology, group: int) -> str:
    lines = [
        f"group {group}: {topology.leaf_size} leaves x {topology.spine_size} "
        f"spines, {topology.nodes_per_router} nodes per leaf"
    ]
    spines = [
        f"s{int(topology.spine_id(group, s)):04d}"
        for s in range(topology.spine_size)
    ]
    lines.append("  " + "  ".join(spines))
    lines.append("  " + " | " * max(1, min(topology.spine_size, 12)) + " (bipartite up/down)")
    leaves = []
    for leaf in range(topology.leaf_size):
        r = int(topology.leaf_id(group, leaf))
        mark = "io" if topology.io_router_mask[r] else "l"
        leaves.append(f"{mark}{r:04d}")
    lines.append("  " + "  ".join(leaves))
    lines.append(
        f"  every leaf links to every spine ({topology.spine_size} up + "
        f"{topology.spine_size} down per leaf)"
    )
    lines.append(
        f"  global links to each of {topology.groups - 1} peer groups "
        f"x{topology.global_multiplicity} (spine-owned)"
    )
    return "\n".join(lines)


def render_group(topology: Topology, group: int = 0) -> str:
    """One group's router structure with link-class annotations."""
    if not 0 <= group < topology.groups:
        raise ValueError("group out of range")
    if isinstance(topology, DragonflyTopology):
        return _render_dragonfly_group(topology, group)
    if isinstance(topology, DragonflyPlusTopology):
        return _render_plus_group(topology, group)
    return (
        f"group rendering not supported for this topology "
        f"({type(topology).__name__}); {topology.describe()}"
    )


def render_group_connectivity(topology: Topology) -> str:
    """Group-level adjacency summary (all-to-all for both geometries)."""
    g = topology.groups
    lines = [f"{g} groups, all-to-all global connectivity:"]
    width = min(g, 16)
    header = "      " + " ".join(f"g{j:02d}" for j in range(width))
    lines.append(header)
    for a in range(min(g, 16)):
        row = [
            " x " if a != b else " . " for b in range(width)
        ]
        lines.append(f"  g{a:02d} " + " ".join(row))
    if g > 16:
        lines.append(f"  ... ({g - 16} more groups)")
    return "\n".join(lines)


def render_utilisation(
    topology: Topology,
    link_loads: np.ndarray,
    buckets: str = " .:-=+*#%@",
) -> str:
    """Per-link-class utilisation histogram as a sparkline summary."""
    util = link_loads / topology.link_capacity
    lines = ["link utilisation by class:"]
    for kind in type(topology).link_kinds:
        u = util[topology.link_kind == kind]
        if len(u) == 0:
            continue
        hist, _ = np.histogram(np.clip(u, 0, 1), bins=10, range=(0.0, 1.0))
        peak = hist.max() if hist.max() > 0 else 1
        spark = "".join(
            buckets[min(int(h / peak * (len(buckets) - 1)), len(buckets) - 1)]
            for h in hist
        )
        lines.append(
            f"  {kind.name.lower():6s} [{spark}] mean={u.mean():.3f} "
            f"max={u.max():.3f} ({len(u)} links)"
        )
    return "\n".join(lines)
