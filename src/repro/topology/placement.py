"""Node-allocation policies and the paper's placement features.

The paper derives two placement features from Slurm logs (§III-C):

* ``NUM_ROUTERS`` — number of unique Aries routers a job's nodes attach to;
* ``NUM_GROUPS`` — number of unique dragonfly groups the job spans.

Cori's scheduler hands out whatever nodes are free, so production placements
are *fragmented*; the allocation policies here reproduce that spectrum, from
fully contiguous (best case) to uniformly random over free nodes (the
typical busy-system case).
"""

from __future__ import annotations

import enum

import numpy as np

from repro.topology.dragonfly import DragonflyTopology


class AllocationPolicy(enum.Enum):
    """How the scheduler picks nodes for a job."""

    #: Lowest-numbered free nodes: dense, few routers/groups.
    CONTIGUOUS = "contiguous"
    #: Uniformly random free nodes: maximally fragmented (busy Cori).
    RANDOM = "random"
    #: Greedy by group, random within each group: moderate fragmentation.
    CLUSTERED = "clustered"


def allocate(
    topology: DragonflyTopology,
    free_nodes: np.ndarray,
    size: int,
    policy: AllocationPolicy = AllocationPolicy.CLUSTERED,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Pick ``size`` nodes from ``free_nodes`` under ``policy``.

    Parameters
    ----------
    topology:
        Used for group arithmetic under the clustered policy.
    free_nodes:
        Sorted array of currently free node ids.
    size:
        Number of nodes requested.
    policy:
        Allocation flavour.
    rng:
        Random source for the stochastic policies.

    Returns
    -------
    numpy.ndarray
        Sorted node ids of the allocation.

    Raises
    ------
    ValueError
        If fewer than ``size`` nodes are free.
    """
    free_nodes = np.asarray(free_nodes)
    if size <= 0:
        raise ValueError("allocation size must be positive")
    if len(free_nodes) < size:
        raise ValueError(
            f"cannot allocate {size} nodes: only {len(free_nodes)} free"
        )
    if policy is AllocationPolicy.CONTIGUOUS:
        return np.sort(free_nodes[:size])
    if rng is None:
        rng = np.random.default_rng(0)
    if policy is AllocationPolicy.RANDOM:
        return np.sort(rng.choice(free_nodes, size=size, replace=False))
    if policy is AllocationPolicy.CLUSTERED:
        # Fill group by group (groups ordered by how many free nodes they
        # have, descending), taking a random subset within each group.
        groups = topology.node_router(free_nodes) // topology.routers_per_group
        order = rng.permutation(len(free_nodes))
        shuffled = free_nodes[order]
        shuffled_groups = groups[order]
        uniq, counts = np.unique(shuffled_groups, return_counts=True)
        group_order = uniq[np.argsort(-counts, kind="stable")]
        chosen: list[np.ndarray] = []
        remaining = size
        for g in group_order:
            pick = shuffled[shuffled_groups == g][:remaining]
            chosen.append(pick)
            remaining -= len(pick)
            if remaining == 0:
                break
        return np.sort(np.concatenate(chosen))
    raise ValueError(f"unknown policy {policy!r}")


def num_routers_feature(topology: DragonflyTopology, nodes: np.ndarray) -> int:
    """``NUM_ROUTERS``: unique routers attached to the job's nodes."""
    return int(len(np.unique(topology.node_router(np.asarray(nodes)))))


def num_groups_feature(topology: DragonflyTopology, nodes: np.ndarray) -> int:
    """``NUM_GROUPS``: unique dragonfly groups spanned by the job."""
    routers = np.unique(topology.node_router(np.asarray(nodes)))
    return int(len(np.unique(routers // topology.routers_per_group)))


def placement_features(
    topology: DragonflyTopology, nodes: np.ndarray
) -> dict[str, int]:
    """Both placement features as a dict keyed by the paper's names."""
    return {
        "NUM_ROUTERS": num_routers_feature(topology, nodes),
        "NUM_GROUPS": num_groups_feature(topology, nodes),
    }


def job_routers(topology: DragonflyTopology, nodes: np.ndarray) -> np.ndarray:
    """Unique routers a job's nodes attach to (sorted)."""
    return np.unique(topology.node_router(np.asarray(nodes)))
