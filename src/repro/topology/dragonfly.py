"""The Cray XC dragonfly topology with canonically indexed directed links.

Geometry (paper §II-A, Fig. 2)
------------------------------
Routers in a group form a ``row_size x col_size`` grid (16 x 6 on Cray XC,
96 routers).  The ``row_size`` routers sharing a grid row are connected
all-to-all by **green** (row) links; the ``col_size`` routers sharing a grid
column are connected all-to-all by **black** (column) links.  Groups are
connected by **blue** (global) links distributed round-robin over the
routers of each group.

Canonical link indexing
-----------------------
Every directed link has an integer id computed *arithmetically* from its
endpoints, which lets the routing layer translate millions of flow hops into
link ids with pure NumPy (no per-flow Python loops):

* green ids come first, ordered by (group, row, src position, dst position);
* black ids follow, ordered by (group, column, src row, dst row);
* blue ids last, ordered by (ordered group pair, parallel-link index).

Nodes
-----
``nodes_per_router`` compute nodes (NICs) attach to every router.  The first
``io_groups`` groups dedicate their grid column 0 to I/O (LNET) routers,
mirroring Cori's service blades; their nodes are I/O nodes and are excluded
from the compute pool.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.config import (
    BLACK_LINK_BW,
    BLUE_LINK_BW,
    GREEN_LINK_BW,
    ScalePreset,
    get_preset,
)
from repro.topology.base import Topology


class LinkKind(enum.IntEnum):
    """Dragonfly link classes, in canonical id order."""

    GREEN = 0  # intra-group, row (all-to-all within a grid row)
    BLACK = 1  # intra-group, column (all-to-all within a grid column)
    BLUE = 2  # inter-group global links


@dataclass(frozen=True)
class RouterCoord:
    """Human-readable position of a router: (group, row, position-in-row)."""

    group: int
    row: int
    pos: int


class DragonflyTopology(Topology):
    """A Cray-XC-style dragonfly network.

    Parameters
    ----------
    groups:
        Number of dragonfly groups.
    row_size:
        Routers per grid row (connected all-to-all with green links);
        16 on Cray XC.
    col_size:
        Routers per grid column (connected all-to-all with black links);
        6 on Cray XC.
    nodes_per_router:
        NICs per router (4 on Aries).
    global_multiplicity:
        Number of parallel blue links per ordered group pair.  ``None``
        derives a value that keeps per-router global-port counts close to
        the Aries budget (10 optical ports per router).
    io_groups:
        Number of groups whose grid column 0 hosts I/O routers.
    """

    kind = "dragonfly"
    link_kinds = LinkKind

    def __init__(
        self,
        groups: int,
        row_size: int,
        col_size: int,
        nodes_per_router: int = 4,
        global_multiplicity: int | None = None,
        io_groups: int = 1,
    ) -> None:
        if groups < 2:
            raise ValueError("a dragonfly needs at least 2 groups")
        if row_size < 2 or col_size < 2:
            raise ValueError("router grid must be at least 2 x 2")
        if nodes_per_router < 1:
            raise ValueError("nodes_per_router must be positive")
        if io_groups < 0 or io_groups > groups:
            raise ValueError("io_groups out of range")

        self.groups = groups
        self.row_size = row_size
        self.col_size = col_size
        self.nodes_per_router = nodes_per_router
        self.io_groups = io_groups
        self.routers_per_group = row_size * col_size

        if global_multiplicity is None:
            # Aries budget: ~10 optical ports/router => rpg*10 ports per
            # group shared by (groups-1) peers, at least 1.
            ports = self.routers_per_group * 10
            global_multiplicity = max(1, ports // max(1, (groups - 1)) // 2)
            global_multiplicity = min(global_multiplicity, self.routers_per_group)
        self.global_multiplicity = int(global_multiplicity)

        # --- canonical link-count bookkeeping -----------------------------
        self._green_per_row = row_size * (row_size - 1)  # directed
        self._green_per_group = col_size * self._green_per_row
        self.num_green = groups * self._green_per_group

        self._black_per_col = col_size * (col_size - 1)  # directed
        self._black_per_group = row_size * self._black_per_col
        self.num_black = groups * self._black_per_group

        self._pairs = groups * (groups - 1)  # ordered pairs
        self.num_blue = self._pairs * self.global_multiplicity

        self.green_base = 0
        self.black_base = self.num_green
        self.blue_base = self.num_green + self.num_black
        self.num_links = self.num_green + self.num_black + self.num_blue

        self.num_routers = groups * self.routers_per_group
        self.num_nodes = self.num_routers * nodes_per_router

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_preset(cls, preset: ScalePreset | str | None = None) -> "DragonflyTopology":
        """Build a topology from a :class:`~repro.config.ScalePreset`."""
        if preset is None or isinstance(preset, str):
            preset = get_preset(preset)
        return cls(
            groups=preset.groups,
            row_size=preset.rows,
            col_size=preset.cols,
            nodes_per_router=preset.nodes_per_router,
            io_groups=preset.io_groups,
        )

    def default_router(self, **kwargs):
        """The UGAL-style minimal/Valiant path expander for this geometry."""
        from repro.topology.routing import AdaptiveRouter

        return AdaptiveRouter(self, **kwargs)

    # ------------------------------------------------------------------ #
    # Router coordinate arithmetic (all vectorised)
    # ------------------------------------------------------------------ #

    def router_row(self, router: np.ndarray | int):
        """Grid-row index (0..col_size-1) of each router."""
        local = np.asarray(router) % self.routers_per_group
        return local // self.row_size

    def router_pos(self, router: np.ndarray | int):
        """Position within the grid row (0..row_size-1) of each router."""
        local = np.asarray(router) % self.routers_per_group
        return local % self.row_size

    def router_id(self, group, row, pos):
        """Router id from (group, row, pos-in-row) coordinates."""
        return (
            np.asarray(group) * self.routers_per_group
            + np.asarray(row) * self.row_size
            + np.asarray(pos)
        )

    def router_coord(self, router: int) -> RouterCoord:
        """Coordinates of a single router (scalar convenience)."""
        local = router % self.routers_per_group
        return RouterCoord(
            group=router // self.routers_per_group,
            row=local // self.row_size,
            pos=local % self.row_size,
        )

    # ------------------------------------------------------------------ #
    # I/O pool
    # ------------------------------------------------------------------ #

    @cached_property
    def io_routers(self) -> np.ndarray:
        """Routers hosting I/O (LNET) nodes: grid column 0 of io groups."""
        out = []
        for g in range(self.io_groups):
            for row in range(self.col_size):
                out.append(int(self.router_id(g, row, 0)))
        return np.asarray(out, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Canonical link-id arithmetic (vectorised; the heart of fast routing)
    # ------------------------------------------------------------------ #

    @staticmethod
    def _pair_offset(i, j, n: int):
        """Index of ordered pair (i, j), i != j, within all-to-all of size n."""
        i = np.asarray(i)
        j = np.asarray(j)
        return i * (n - 1) + np.where(j < i, j, j - 1)

    def green_link(self, group, row, src_pos, dst_pos):
        """Id of the green link (group, row): src_pos -> dst_pos."""
        base = (
            np.asarray(group) * self._green_per_group
            + np.asarray(row) * self._green_per_row
        )
        return self.green_base + base + self._pair_offset(src_pos, dst_pos, self.row_size)

    def black_link(self, group, pos, src_row, dst_row):
        """Id of the black link (group, column=pos): src_row -> dst_row."""
        base = (
            np.asarray(group) * self._black_per_group
            + np.asarray(pos) * self._black_per_col
        )
        return self.black_base + base + self._pair_offset(src_row, dst_row, self.col_size)

    def _group_pair_index(self, src_group, dst_group):
        return self._pair_offset(src_group, dst_group, self.groups)

    def blue_link(self, src_group, dst_group, channel=0):
        """Id of the ``channel``-th blue link from src_group to dst_group."""
        return (
            self.blue_base
            + self._group_pair_index(src_group, dst_group) * self.global_multiplicity
            + np.asarray(channel)
        )

    def blue_gateway(self, src_group, dst_group, channel=0):
        """Router in ``src_group`` that owns the given blue link.

        Blue links are spread round-robin: the links of group *g* towards
        its j-th peer (peers ordered by group id, skipping g) terminate on
        routers ``(j * multiplicity + channel) mod routers_per_group``.
        """
        src_group = np.asarray(src_group)
        dst_group = np.asarray(dst_group)
        peer_rank = np.where(dst_group < src_group, dst_group, dst_group - 1)
        local = (peer_rank * self.global_multiplicity + np.asarray(channel)) % (
            self.routers_per_group
        )
        return src_group * self.routers_per_group + local

    # ------------------------------------------------------------------ #
    # Link attribute vectors
    # ------------------------------------------------------------------ #

    @cached_property
    def link_kind(self) -> np.ndarray:
        """Per-link :class:`LinkKind` value (int8 vector)."""
        kinds = np.empty(self.num_links, dtype=np.int8)
        kinds[: self.black_base] = LinkKind.GREEN
        kinds[self.black_base : self.blue_base] = LinkKind.BLACK
        kinds[self.blue_base :] = LinkKind.BLUE
        return kinds

    @cached_property
    def link_capacity(self) -> np.ndarray:
        """Per-link capacity in bytes/second."""
        cap = np.empty(self.num_links, dtype=np.float64)
        cap[: self.black_base] = GREEN_LINK_BW
        cap[self.black_base : self.blue_base] = BLACK_LINK_BW
        cap[self.blue_base :] = BLUE_LINK_BW
        return cap

    @cached_property
    def link_endpoints(self) -> tuple[np.ndarray, np.ndarray]:
        """(src_router, dst_router) arrays for every directed link id."""
        src = np.empty(self.num_links, dtype=np.int64)
        dst = np.empty(self.num_links, dtype=np.int64)

        # Green links.
        ids = np.arange(self.num_green)
        group = ids // self._green_per_group
        rem = ids % self._green_per_group
        row = rem // self._green_per_row
        pair = rem % self._green_per_row
        i = pair // (self.row_size - 1)
        jr = pair % (self.row_size - 1)
        j = np.where(jr < i, jr, jr + 1)
        src[ids] = self.router_id(group, row, i)
        dst[ids] = self.router_id(group, row, j)

        # Black links.
        ids = np.arange(self.num_black)
        group = ids // self._black_per_group
        rem = ids % self._black_per_group
        pos = rem // self._black_per_col
        pair = rem % self._black_per_col
        i = pair // (self.col_size - 1)
        jr = pair % (self.col_size - 1)
        j = np.where(jr < i, jr, jr + 1)
        src[self.black_base + ids] = self.router_id(group, i, pos)
        dst[self.black_base + ids] = self.router_id(group, j, pos)

        # Blue links.
        ids = np.arange(self.num_blue)
        pair = ids // self.global_multiplicity
        chan = ids % self.global_multiplicity
        a = pair // (self.groups - 1)
        br = pair % (self.groups - 1)
        b = np.where(br < a, br, br + 1)
        src[self.blue_base + ids] = self.blue_gateway(a, b, chan)
        dst[self.blue_base + ids] = self.blue_gateway(b, a, chan)
        return src, dst

    def describe(self) -> str:
        """One-line summary of the topology."""
        return (
            f"dragonfly(groups={self.groups}, grid={self.row_size}x{self.col_size}, "
            f"routers={self.num_routers}, nodes={self.num_nodes}, "
            f"links={self.num_links} [g{self.num_green}/b{self.num_black}/"
            f"B{self.num_blue}], blue_mult={self.global_multiplicity})"
        )
