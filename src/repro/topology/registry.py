"""Registry making ``(topology, routing)`` an addressable campaign axis.

Topologies register a :class:`~repro.topology.base.Topology` subclass
under a canonical name (plus aliases); routing policies register a
:class:`RoutingSpec` describing how the congestion engine should treat
the two path sets every :class:`~repro.topology.routing.PathExpander`
produces.  Campaign configs, experiment cell ids (``fig09:df+/valiant``)
and the validators all resolve names through this module, so unknown
names fail early with the registered options listed instead of raising a
``KeyError`` deep inside the engine.

Adding a topology: subclass ``Topology``, implement its abstract surface
(including :meth:`default_router` returning a ``PathExpander``), and add
it to :data:`TOPOLOGIES` with any aliases.  Adding a routing policy:
append a :class:`RoutingSpec` to :data:`ROUTING_POLICIES` — ``pinned_alpha
= None`` means the engine solves the UGAL fixed point; a float pins the
minimal/Valiant split and skips the adaptive iterations entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ScalePreset, get_preset
from repro.topology.base import Topology
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.dragonfly_plus import DragonflyPlusTopology

# --------------------------------------------------------------------- #
# Topologies
# --------------------------------------------------------------------- #

#: Canonical topology name -> implementation class.
TOPOLOGIES: dict[str, type[Topology]] = {
    "dragonfly": DragonflyTopology,
    "df+": DragonflyPlusTopology,
}

_TOPOLOGY_ALIASES: dict[str, str] = {
    "dragonfly": "dragonfly",
    "df": "dragonfly",
    "xc": "dragonfly",
    "aries": "dragonfly",
    "df+": "df+",
    "dfplus": "df+",
    "dragonfly+": "df+",
    "dragonfly_plus": "df+",
}

#: The paper's system: Cray XC dragonfly with Aries UGAL routing.
DEFAULT_TOPOLOGY = "dragonfly"
DEFAULT_ROUTING = "ugal"
DEFAULT_CELL = (DEFAULT_TOPOLOGY, DEFAULT_ROUTING)


# --------------------------------------------------------------------- #
# Routing policies
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class RoutingSpec:
    """How the engine splits each flow between its two path sets.

    ``pinned_alpha = None`` marks the adaptive (UGAL) policy: the engine
    iterates the fixed point for the per-flow minimal fraction.  A float
    pins every flow's minimal fraction to that value — 1.0 is pure
    minimal routing, 0.0 pure Valiant — and the solve runs one pass.
    """

    name: str
    pinned_alpha: float | None

    @property
    def pinned(self) -> bool:
        return self.pinned_alpha is not None


#: Canonical routing-policy name -> spec.
ROUTING_POLICIES: dict[str, RoutingSpec] = {
    "ugal": RoutingSpec("ugal", None),
    "minimal": RoutingSpec("minimal", 1.0),
    "valiant": RoutingSpec("valiant", 0.0),
}

_ROUTING_ALIASES: dict[str, str] = {
    "ugal": "ugal",
    "adaptive": "ugal",
    "minimal": "minimal",
    "min": "minimal",
    "valiant": "valiant",
    "val": "valiant",
}


# --------------------------------------------------------------------- #
# Resolution
# --------------------------------------------------------------------- #


def topology_names() -> list[str]:
    """Canonical topology names, sorted."""
    return sorted(TOPOLOGIES)


def routing_names() -> list[str]:
    """Canonical routing-policy names, sorted."""
    return sorted(ROUTING_POLICIES)


def _describe_options(canon: dict[str, str]) -> str:
    by_target: dict[str, list[str]] = {}
    for alias, target in canon.items():
        if alias != target:
            by_target.setdefault(target, []).append(alias)
    parts = []
    for name in sorted(set(canon.values())):
        aliases = sorted(by_target.get(name, []))
        parts.append(f"{name} (aliases: {', '.join(aliases)})" if aliases else name)
    return ", ".join(parts)


def canonical_topology(name: str) -> str:
    """Resolve a topology name or alias; raise with options on failure."""
    key = str(name).strip().lower()
    if key not in _TOPOLOGY_ALIASES:
        raise ValueError(
            f"unknown topology {name!r}; registered topologies: "
            f"{_describe_options(_TOPOLOGY_ALIASES)}"
        )
    return _TOPOLOGY_ALIASES[key]


def canonical_routing(name: str) -> str:
    """Resolve a routing-policy name or alias; raise with options on failure."""
    key = str(name).strip().lower()
    if key not in _ROUTING_ALIASES:
        raise ValueError(
            f"unknown routing policy {name!r}; registered policies: "
            f"{_describe_options(_ROUTING_ALIASES)}"
        )
    return _ROUTING_ALIASES[key]


def routing_spec(name: str) -> RoutingSpec:
    """The :class:`RoutingSpec` for a policy name or alias."""
    return ROUTING_POLICIES[canonical_routing(name)]


def build_topology(
    name: str, preset: ScalePreset | str | None = None
) -> Topology:
    """Instantiate the named topology from a scale preset."""
    cls = TOPOLOGIES[canonical_topology(name)]
    if preset is None or isinstance(preset, str):
        preset = get_preset(preset)
    return cls.from_preset(preset)


def resolve_cell(
    topology: str | None = None, routing: str | None = None
) -> tuple[str, str]:
    """Canonical ``(topology, routing)`` pair, defaulting missing parts."""
    topo = canonical_topology(topology) if topology else DEFAULT_TOPOLOGY
    policy = canonical_routing(routing) if routing else DEFAULT_ROUTING
    return topo, policy


def parse_cell(text: str) -> tuple[str, str]:
    """Parse a ``topology/routing`` cell id (e.g. ``df+/valiant``)."""
    topo, sep, policy = str(text).partition("/")
    if not sep or not topo or not policy:
        raise ValueError(
            f"malformed cell id {text!r}: expected 'topology/routing', "
            f"e.g. 'df+/valiant'"
        )
    return canonical_topology(topo), canonical_routing(policy)


def cell_id(topology: str, routing: str) -> str:
    """Render a canonical cell id string (``dragonfly/ugal``)."""
    return f"{canonical_topology(topology)}/{canonical_routing(routing)}"


def is_default_cell(topology: str, routing: str) -> bool:
    """True when the cell is the paper's baseline (dragonfly, ugal)."""
    return resolve_cell(topology, routing) == DEFAULT_CELL
