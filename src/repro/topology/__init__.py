"""Dragonfly topology substrate (Cray XC / Aries shape).

This subpackage models the two-level dragonfly of Cray XC systems: groups of
routers arranged in a row x column grid, all-to-all *green* links along rows,
all-to-all *black* links along columns, and *blue* global links between
groups (paper §II-A, Fig. 2).

Public API
----------
:class:`~repro.topology.dragonfly.DragonflyTopology`
    The topology object: routers, nodes, canonically indexed links.
:class:`~repro.topology.routing.AdaptiveRouter`
    UGAL-style adaptive routing producing per-flow link incidences.
:mod:`~repro.topology.placement`
    Node-allocation policies and the NUM_ROUTERS / NUM_GROUPS features.
"""

from repro.topology.dragonfly import DragonflyTopology, LinkKind
from repro.topology.placement import (
    AllocationPolicy,
    num_groups_feature,
    num_routers_feature,
    placement_features,
)
from repro.topology.routing import AdaptiveRouter, FlowRouting

__all__ = [
    "DragonflyTopology",
    "LinkKind",
    "AdaptiveRouter",
    "FlowRouting",
    "AllocationPolicy",
    "placement_features",
    "num_routers_feature",
    "num_groups_feature",
]
