"""Network topology substrate: registered geometries + routing.

This subpackage models the networks campaigns run over.  The default is
the two-level dragonfly of Cray XC systems: groups of routers arranged in
a row x column grid, all-to-all *green* links along rows, all-to-all
*black* links along columns, and *blue* global links between groups
(paper §II-A, Fig. 2).  A Dragonfly+ geometry (leaf/spine fat groups) is
also registered, and ``(topology, routing)`` is addressable as a campaign
axis through :mod:`~repro.topology.registry`.

Public API
----------
:class:`~repro.topology.base.Topology`
    The protocol every geometry implements (canonical link ids,
    coordinates, compute/I-O pools, link bandwidth table).
:class:`~repro.topology.dragonfly.DragonflyTopology`
    The Cray XC dragonfly: routers, nodes, canonically indexed links.
:class:`~repro.topology.dragonfly_plus.DragonflyPlusTopology`
    Dragonfly+: two-level fat groups with a leaf/spine split.
:class:`~repro.topology.routing.AdaptiveRouter`
    UGAL-style adaptive routing producing per-flow link incidences.
:mod:`~repro.topology.registry`
    Name -> implementation resolution for the campaign axis.
:mod:`~repro.topology.placement`
    Node-allocation policies and the NUM_ROUTERS / NUM_GROUPS features.
"""

from repro.topology.base import Topology
from repro.topology.dragonfly import DragonflyTopology, LinkKind
from repro.topology.dragonfly_plus import (
    DragonflyPlusRouter,
    DragonflyPlusTopology,
    PlusLinkKind,
)
from repro.topology.placement import (
    AllocationPolicy,
    num_groups_feature,
    num_routers_feature,
    placement_features,
)
from repro.topology.registry import (
    DEFAULT_CELL,
    DEFAULT_ROUTING,
    DEFAULT_TOPOLOGY,
    ROUTING_POLICIES,
    TOPOLOGIES,
    RoutingSpec,
    build_topology,
    canonical_routing,
    canonical_topology,
    cell_id,
    parse_cell,
    resolve_cell,
    routing_spec,
)
from repro.topology.routing import AdaptiveRouter, FlowRouting, PathExpander

__all__ = [
    "Topology",
    "DragonflyTopology",
    "LinkKind",
    "DragonflyPlusTopology",
    "DragonflyPlusRouter",
    "PlusLinkKind",
    "AdaptiveRouter",
    "FlowRouting",
    "PathExpander",
    "TOPOLOGIES",
    "ROUTING_POLICIES",
    "RoutingSpec",
    "DEFAULT_TOPOLOGY",
    "DEFAULT_ROUTING",
    "DEFAULT_CELL",
    "build_topology",
    "canonical_topology",
    "canonical_routing",
    "routing_spec",
    "resolve_cell",
    "parse_cell",
    "cell_id",
    "AllocationPolicy",
    "placement_features",
    "num_routers_feature",
    "num_groups_feature",
]
