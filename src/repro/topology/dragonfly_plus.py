"""Dragonfly+ topology: two-level fat groups with a leaf/spine split.

Geometry (Kang et al., arXiv:2406.15097)
----------------------------------------
Each group is a two-level fat tree: ``leaf_size`` leaf routers hosting all
the group's compute nodes, connected bipartite all-to-all by **up** /
**down** links to ``spine_size`` spine routers.  Spine routers own the
**global** links that connect groups all-to-all, distributed round-robin
like dragonfly blue links.  Nodes never attach to spines.

Canonical link indexing
-----------------------
* up ids first, ordered by (group, leaf, spine);
* down ids next, same (group, leaf, spine) ordering with src/dst swapped;
* global ids last, ordered by (ordered group pair, parallel-link index).

Router numbering is group-major with leaves first: within group ``g``,
local ids ``[0, leaf_size)`` are leaves and ``[leaf_size,
routers_per_group)`` are spines, preserving the base-class contract that
``router // routers_per_group`` recovers the group.
"""

from __future__ import annotations

import enum
from functools import cached_property

import numpy as np

from repro.config import (
    BLUE_LINK_BW,
    GREEN_LINK_BW,
    ScalePreset,
    get_preset,
)
from repro.topology.base import Topology
from repro.topology.routing import FlowRouting, Incidence, _IncidenceBuilder


class PlusLinkKind(enum.IntEnum):
    """Dragonfly+ link classes, in canonical id order."""

    UP = 0  # leaf -> spine within a group
    DOWN = 1  # spine -> leaf within a group
    GLOBAL = 2  # inter-group links between spine routers


class DragonflyPlusTopology(Topology):
    """A Dragonfly+ network of two-level fat groups.

    Parameters
    ----------
    groups:
        Number of groups (>= 1; a single-group instance has no global
        links and is useful for routing edge-case tests).
    leaf_size:
        Leaf routers per group; all compute nodes attach here.
    spine_size:
        Spine routers per group; these own the global links.
    nodes_per_router:
        NICs per *leaf* router.
    global_multiplicity:
        Parallel global links per ordered group pair.  ``None`` derives a
        value from the spine optical-port budget (10 ports per spine).
    io_groups:
        Number of groups whose leaf 0 hosts I/O routers.
    """

    kind = "df+"
    link_kinds = PlusLinkKind

    def __init__(
        self,
        groups: int,
        leaf_size: int,
        spine_size: int,
        nodes_per_router: int = 4,
        global_multiplicity: int | None = None,
        io_groups: int = 1,
    ) -> None:
        if groups < 1:
            raise ValueError("dragonfly+ needs at least 1 group")
        if leaf_size < 1 or spine_size < 1:
            raise ValueError("leaf_size and spine_size must be positive")
        if nodes_per_router < 1:
            raise ValueError("nodes_per_router must be positive")
        if io_groups < 0 or io_groups > groups:
            raise ValueError("io_groups out of range")

        self.groups = groups
        self.leaf_size = leaf_size
        self.spine_size = spine_size
        self.nodes_per_router = nodes_per_router
        self.io_groups = io_groups
        self.routers_per_group = leaf_size + spine_size

        if global_multiplicity is None:
            # Spine budget: ~10 optical ports/spine shared by the
            # (groups-1) peer groups, at least 1.
            ports = spine_size * 10
            global_multiplicity = max(1, ports // max(1, (groups - 1)) // 2)
            global_multiplicity = min(global_multiplicity, spine_size)
        self.global_multiplicity = int(global_multiplicity)

        # --- canonical link-count bookkeeping -----------------------------
        self._updown_per_group = leaf_size * spine_size
        self.num_up = groups * self._updown_per_group
        self.num_down = self.num_up

        self._pairs = groups * (groups - 1)  # ordered pairs
        self.num_global = self._pairs * self.global_multiplicity

        self.up_base = 0
        self.down_base = self.num_up
        self.global_base = self.num_up + self.num_down
        self.num_links = self.num_up + self.num_down + self.num_global

        self.num_routers = groups * self.routers_per_group
        self.num_nodes = groups * leaf_size * nodes_per_router

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_preset(
        cls, preset: ScalePreset | str | None = None
    ) -> "DragonflyPlusTopology":
        """Build a topology from a :class:`~repro.config.ScalePreset`.

        The preset's ``rows x cols`` router grid is split into leaves and
        spines (leaves get the larger half), keeping router counts — and
        therefore campaign cost — comparable to the dragonfly cell.
        Endpoint capacity is preserved too: the nodes the full grid would
        host all attach to the leaves (fatter leaf switches, as deployed
        Dragonfly+ machines do), so a campaign's job mix — including its
        largest probes — schedules identically on either topology.
        """
        if preset is None or isinstance(preset, str):
            preset = get_preset(preset)
        total = preset.rows * preset.cols
        if total < 2:
            raise ValueError("dragonfly+ preset needs at least 2 routers/group")
        leaf = (total + 1) // 2
        nodes_per_leaf = -(-preset.nodes_per_router * total // leaf)  # ceil
        return cls(
            groups=preset.groups,
            leaf_size=leaf,
            spine_size=total - leaf,
            nodes_per_router=nodes_per_leaf,
            io_groups=preset.io_groups,
        )

    def default_router(self, **kwargs):
        """The minimal/Valiant path expander for this geometry."""
        return DragonflyPlusRouter(self, **kwargs)

    # ------------------------------------------------------------------ #
    # Router coordinate arithmetic (all vectorised)
    # ------------------------------------------------------------------ #

    def router_local(self, router: np.ndarray | int):
        """Local id within the group (leaves first, then spines)."""
        return np.asarray(router) % self.routers_per_group

    def is_leaf(self, router: np.ndarray | int):
        """True for leaf routers (the ones hosting nodes)."""
        return self.router_local(router) < self.leaf_size

    def leaf_id(self, group, leaf):
        """Router id of the ``leaf``-th leaf of ``group``."""
        return np.asarray(group) * self.routers_per_group + np.asarray(leaf)

    def spine_id(self, group, spine):
        """Router id of the ``spine``-th spine of ``group``."""
        return (
            np.asarray(group) * self.routers_per_group
            + self.leaf_size
            + np.asarray(spine)
        )

    # ------------------------------------------------------------------ #
    # Node <-> router mapping (nodes only attach to leaves)
    # ------------------------------------------------------------------ #

    def node_router(self, node: np.ndarray | int):
        """Leaf router of each node (spines host no nodes)."""
        node = np.asarray(node)
        per_group = self.leaf_size * self.nodes_per_router
        group = node // per_group
        leaf = (node % per_group) // self.nodes_per_router
        out = group * self.routers_per_group + leaf
        return out if out.ndim else int(out)

    def router_nodes(self, router: int) -> np.ndarray:
        """Nodes attached to one router (empty for spines)."""
        group, local = divmod(router, self.routers_per_group)
        if local >= self.leaf_size:
            return np.empty(0, dtype=np.int64)
        base = (group * self.leaf_size + local) * self.nodes_per_router
        return np.arange(base, base + self.nodes_per_router)

    @cached_property
    def io_routers(self) -> np.ndarray:
        """Routers hosting I/O (LNET) nodes: leaf 0 of the io groups."""
        return np.asarray(
            [int(self.leaf_id(g, 0)) for g in range(self.io_groups)],
            dtype=np.int64,
        )

    # ------------------------------------------------------------------ #
    # Canonical link-id arithmetic (vectorised)
    # ------------------------------------------------------------------ #

    def up_link(self, group, leaf, spine):
        """Id of the up link leaf -> spine within ``group``."""
        return (
            self.up_base
            + np.asarray(group) * self._updown_per_group
            + np.asarray(leaf) * self.spine_size
            + np.asarray(spine)
        )

    def down_link(self, group, spine, leaf):
        """Id of the down link spine -> leaf within ``group``."""
        return (
            self.down_base
            + np.asarray(group) * self._updown_per_group
            + np.asarray(leaf) * self.spine_size
            + np.asarray(spine)
        )

    @staticmethod
    def _pair_offset(i, j, n: int):
        """Index of ordered pair (i, j), i != j, within all-to-all of size n."""
        i = np.asarray(i)
        j = np.asarray(j)
        return i * (n - 1) + np.where(j < i, j, j - 1)

    def global_link(self, src_group, dst_group, channel=0):
        """Id of the ``channel``-th global link from src_group to dst_group."""
        return (
            self.global_base
            + self._pair_offset(src_group, dst_group, self.groups)
            * self.global_multiplicity
            + np.asarray(channel)
        )

    def global_gateway(self, src_group, dst_group, channel=0):
        """Spine router in ``src_group`` owning the given global link.

        Global links are spread round-robin over spines, mirroring the
        dragonfly blue-gateway rule.
        """
        src_group = np.asarray(src_group)
        dst_group = np.asarray(dst_group)
        peer_rank = np.where(dst_group < src_group, dst_group, dst_group - 1)
        local = (peer_rank * self.global_multiplicity + np.asarray(channel)) % (
            self.spine_size
        )
        return src_group * self.routers_per_group + self.leaf_size + local

    # ------------------------------------------------------------------ #
    # Link attribute vectors
    # ------------------------------------------------------------------ #

    @cached_property
    def link_kind(self) -> np.ndarray:
        """Per-link :class:`PlusLinkKind` value (int8 vector)."""
        kinds = np.empty(self.num_links, dtype=np.int8)
        kinds[: self.down_base] = PlusLinkKind.UP
        kinds[self.down_base : self.global_base] = PlusLinkKind.DOWN
        kinds[self.global_base :] = PlusLinkKind.GLOBAL
        return kinds

    @cached_property
    def link_capacity(self) -> np.ndarray:
        """Per-link capacity in bytes/second (up/down = electrical,
        global = optical)."""
        cap = np.empty(self.num_links, dtype=np.float64)
        cap[: self.global_base] = GREEN_LINK_BW
        cap[self.global_base :] = BLUE_LINK_BW
        return cap

    @cached_property
    def link_endpoints(self) -> tuple[np.ndarray, np.ndarray]:
        """(src_router, dst_router) arrays for every directed link id."""
        src = np.empty(self.num_links, dtype=np.int64)
        dst = np.empty(self.num_links, dtype=np.int64)

        # Up and down links share the (group, leaf, spine) decomposition.
        ids = np.arange(self.num_up)
        group = ids // self._updown_per_group
        rem = ids % self._updown_per_group
        leaf = self.leaf_id(group, rem // self.spine_size)
        spine = self.spine_id(group, rem % self.spine_size)
        src[ids] = leaf
        dst[ids] = spine
        src[self.down_base + ids] = spine
        dst[self.down_base + ids] = leaf

        # Global links.
        if self.num_global:
            ids = np.arange(self.num_global)
            pair = ids // self.global_multiplicity
            chan = ids % self.global_multiplicity
            a = pair // (self.groups - 1)
            br = pair % (self.groups - 1)
            b = np.where(br < a, br, br + 1)
            src[self.global_base + ids] = self.global_gateway(a, b, chan)
            dst[self.global_base + ids] = self.global_gateway(b, a, chan)
        return src, dst

    def describe(self) -> str:
        """One-line summary of the topology."""
        return (
            f"dragonfly+(groups={self.groups}, "
            f"leaf/spine={self.leaf_size}/{self.spine_size}, "
            f"routers={self.num_routers}, nodes={self.num_nodes}, "
            f"links={self.num_links} [u{self.num_up}/d{self.num_down}/"
            f"G{self.num_global}], global_mult={self.global_multiplicity})"
        )


class DragonflyPlusRouter:
    """Expands router-level flows into minimal + Valiant link incidences
    over a Dragonfly+ (same surface as
    :class:`repro.topology.routing.AdaptiveRouter`)."""

    def __init__(
        self,
        topology: DragonflyPlusTopology,
        spine_channels: int = 2,
        global_channels: int = 2,
        valiant_samples: int = 2,
    ) -> None:
        """
        Parameters
        ----------
        topology:
            The Dragonfly+ to route over.
        spine_channels:
            Spines used per intra-group (leaf, leaf) segment; traffic is
            spread evenly over them (ECMP over the fat-tree stage).
        global_channels:
            Parallel global links used per (flow, group-pair).
        valiant_samples:
            Intermediate groups sampled per flow for the non-minimal set.
        """
        self.topology = topology
        self.spine_channels = min(spine_channels, topology.spine_size)
        self.global_channels = min(global_channels, topology.global_multiplicity)
        self.valiant_samples = valiant_samples

    # ------------------------------------------------------------------ #

    def route(
        self,
        src_router: np.ndarray,
        dst_router: np.ndarray,
        rng: np.random.Generator | None = None,
        flow_ids: np.ndarray | None = None,
    ) -> FlowRouting:
        """Route flows from ``src_router[i]`` to ``dst_router[i]``.

        Semantics match :meth:`AdaptiveRouter.route`: the result carries a
        minimal and a Valiant incidence; ``rng`` only affects Valiant
        sampling (default: deterministic stride-based sampling).
        ``flow_ids`` overrides the flow indices used for deterministic
        channel striping (default ``arange(n)``): a caller routing several
        concatenated flow sets in one call passes each set's own 0-based
        indices so every flow gets the exact links a solo call would pick.
        """
        src = np.asarray(src_router, dtype=np.int64)
        dst = np.asarray(dst_router, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("src_router and dst_router must have equal length")
        n = len(src)
        topo = self.topology
        fid = (
            np.arange(n, dtype=np.int64)
            if flow_ids is None
            else np.asarray(flow_ids, dtype=np.int64)
        )

        local_mask = src == dst

        minimal = _IncidenceBuilder()
        valiant = _IncidenceBuilder()

        sg = src // topo.routers_per_group
        dg = dst // topo.routers_per_group
        same_group = (sg == dg) & ~local_mask
        inter = ~same_group & ~local_mask

        ls = src % topo.routers_per_group
        ld = dst % topo.routers_per_group
        if bool((ls < topo.leaf_size).all()) and bool(
            (ld < topo.leaf_size).all()
        ):
            # Nodes only attach to leaves, so every flow set built from
            # node placements lands here; each segment then has a single
            # statically-known leaf/spine case and the general per-case
            # masking in _intra_segment is pure overhead.  The expansion
            # below emits the exact same (flow, link, share) triplets in
            # the exact same order as the general path.
            self._route_all_leaf(
                minimal, valiant, sg, dg, ls, ld, src, dst,
                same_group, inter, rng, fid,
            )
        else:
            self._route_general(
                minimal, valiant, sg, dg, src, dst, same_group, inter, rng, fid
            )

        mf, ml, ms = minimal.build()
        vf, vl, vs = valiant.build()
        return FlowRouting(
            n_flows=n,
            minimal=Incidence(mf, ml, ms),
            valiant=Incidence(vf, vl, vs),
            local_mask=local_mask,
        )

    def _route_general(
        self, minimal, valiant, sg, dg, src, dst, same_group, inter, rng, fid
    ) -> None:
        """Reference expansion over the per-case segment helpers."""
        topo = self.topology

        # ---- minimal, intra-group ------------------------------------- #
        idx = np.flatnonzero(same_group)
        if len(idx):
            self._intra_segment(
                minimal, idx, sg[idx], src[idx], dst[idx], np.ones(len(idx))
            )

        # ---- minimal, inter-group ------------------------------------- #
        idx = np.flatnonzero(inter)
        if len(idx):
            f = fid[idx]
            share = np.full(len(idx), 1.0 / self.global_channels)
            for t in range(self.global_channels):
                chan = (f + t) % topo.global_multiplicity
                self._global_hop(
                    minimal, idx, src[idx], dst[idx], sg[idx], dg[idx], chan, share
                )

        # ---- Valiant, intra-group (via an intermediate leaf) ----------- #
        idx = np.flatnonzero(same_group)
        if len(idx):
            mids = self._sample_intra_mid(src[idx], dst[idx], sg[idx], rng)
            share = np.full(len(idx), 1.0)
            self._intra_segment(valiant, idx, sg[idx], src[idx], mids, share)
            self._intra_segment(valiant, idx, sg[idx], mids, dst[idx], share)

        # ---- Valiant, inter-group (via intermediate groups) ------------ #
        idx = np.flatnonzero(inter)
        if len(idx) and topo.groups <= 2:
            # No third group exists; the Valiant set degenerates to the
            # minimal route.
            f = fid[idx]
            share = np.full(len(idx), 1.0 / self.global_channels)
            for t in range(self.global_channels):
                chan = (f + t) % topo.global_multiplicity
                self._global_hop(
                    valiant, idx, src[idx], dst[idx], sg[idx], dg[idx], chan, share
                )
        elif len(idx):
            f = fid[idx]
            k = self.valiant_samples
            share = np.full(len(idx), 1.0 / k)
            for s in range(k):
                inter_g = self._sample_intermediate_group(sg[idx], dg[idx], s, rng)
                chan = (f + s) % topo.global_multiplicity
                gw_in = topo.global_gateway(inter_g, sg[idx], chan)
                self._global_hop(
                    valiant, idx, src[idx], gw_in, sg[idx], inter_g, chan, share
                )
                chan2 = (f + s + 1) % topo.global_multiplicity
                self._global_hop(
                    valiant, idx, gw_in, dst[idx], inter_g, dg[idx], chan2, share
                )

    def _route_all_leaf(
        self, minimal, valiant, sg, dg, ls, ld, src, dst, same_group, inter,
        rng, fid,
    ) -> None:
        """Specialised expansion for flow sets with only leaf endpoints.

        Emits bit-identical triplets to :meth:`_route_general` (same link
        ids, same shares, same entry order — entry order matters because
        ``Incidence.link_loads`` accumulates per-bin sums in entry order).
        Each general-path segment resolves to one fixed case here:

        * minimal intra       -> leaf-leaf ECMP bounce;
        * minimal inter       -> up + global + down;
        * Valiant intra legs  -> leaf-leaf bounces (mid may equal dst);
        * Valiant inter hop 1 -> up + global (the landing spine *is* the
          sampled gateway, so the general path's second segment is empty);
        * Valiant inter hop 2 -> spine-spine bounce + global + down.
        """
        topo = self.topology
        mult = topo.global_multiplicity
        leaf = topo.leaf_size
        spine = topo.spine_size
        updown = topo._updown_per_group
        up_base, down_base = topo.up_base, topo.down_base

        # ---- minimal + Valiant, intra-group --------------------------- #
        idx = np.flatnonzero(same_group)
        if len(idx):
            g, la, lb = sg[idx], ls[idx], ld[idx]
            self._leaf_leaf(minimal, idx, g, la, lb, np.ones(len(idx)))

            mids = self._sample_intra_mid(src[idx], dst[idx], g, rng)
            lm = mids % topo.routers_per_group
            share = np.full(len(idx), 1.0)
            self._leaf_leaf(valiant, idx, g, la, lm, share)
            m = lm != lb  # the sampled mid may coincide with dst
            if m.any():
                self._leaf_leaf(valiant, idx[m], g[m], lm[m], lb[m], share[m])

        # ---- minimal + Valiant, inter-group --------------------------- #
        idx = np.flatnonzero(inter)
        if not len(idx):
            return
        g_s, g_d, la, lb = sg[idx], dg[idx], ls[idx], ld[idx]
        f = fid[idx]
        up0 = up_base + g_s * updown + la * spine
        dn0 = down_base + g_d * updown + lb * spine

        peer_d = np.where(g_d < g_s, g_d, g_d - 1)
        peer_s = np.where(g_s < g_d, g_s, g_s - 1)
        pd_m = peer_d * mult
        ps_m = peer_s * mult
        glob0 = topo.global_base + (g_s * (topo.groups - 1) + peer_d) * mult

        share = np.full(len(idx), 1.0 / self.global_channels)
        for t in range(self.global_channels):
            chan = (f + t) % mult
            minimal.add(idx, up0 + (pd_m + chan) % spine, share)
            minimal.add(idx, glob0 + chan, share)
            minimal.add(idx, dn0 + (ps_m + chan) % spine, share)

        if topo.groups <= 2:
            # No third group: the Valiant set degenerates to minimal.
            for t in range(self.global_channels):
                chan = (f + t) % mult
                valiant.add(idx, up0 + (pd_m + chan) % spine, share)
                valiant.add(idx, glob0 + chan, share)
                valiant.add(idx, dn0 + (ps_m + chan) % spine, share)
            return

        k = self.valiant_samples
        share = np.full(len(idx), 1.0 / k)
        for s in range(k):
            g_i = self._sample_intermediate_group(g_s, g_d, s, rng)
            chan = (f + s) % mult
            chan2 = (f + s + 1) % mult
            # Hop 1: src leaf -> gateway spine of sg -> global to g_i.
            peer_i = np.where(g_i < g_s, g_i, g_i - 1)
            valiant.add(idx, up0 + (peer_i * mult + chan) % spine, share)
            valiant.add(
                idx,
                topo.global_base + (g_s * (topo.groups - 1) + peer_i) * mult + chan,
                share,
            )
            # Hop 2 inside g_i: landing spine -> departure spine (a
            # down+up bounce through a leaf unless they coincide).
            rank_s = np.where(g_s < g_i, g_s, g_s - 1)
            rank_d = np.where(g_d < g_i, g_d, g_d - 1)
            l_in = leaf + (rank_s * mult + chan) % spine
            l_out = leaf + (rank_d * mult + chan2) % spine
            m = l_in != l_out
            if m.any():
                mid = (l_in[m] + l_out[m]) % leaf
                base = g_i[m] * updown + mid * spine
                sh = share[m]
                valiant.add(idx[m], down_base + base + (l_in[m] - leaf), sh)
                valiant.add(idx[m], up_base + base + (l_out[m] - leaf), sh)
            valiant.add(
                idx,
                topo.global_base + (g_i * (topo.groups - 1) + rank_d) * mult + chan2,
                share,
            )
            # Landing spine of g_d -> dst leaf.
            peer_i2 = np.where(g_i < g_d, g_i, g_i - 1)
            valiant.add(idx, dn0 + (peer_i2 * mult + chan2) % spine, share)

    def _leaf_leaf(self, out, fi, g, la, lb, share) -> None:
        """Leaf -> leaf ECMP bounce over ``spine_channels`` spines."""
        topo = self.topology
        sh = share / self.spine_channels
        up0 = topo.up_base + g * topo._updown_per_group + la * topo.spine_size
        dn0 = topo.down_base + g * topo._updown_per_group + lb * topo.spine_size
        s0 = la + lb
        for c in range(self.spine_channels):
            sp = (s0 + c) % topo.spine_size
            out.add(fi, up0 + sp, sh)
            out.add(fi, dn0 + sp, sh)

    # ------------------------------------------------------------------ #
    # Segment expansion helpers (all vectorised over flow subsets)
    # ------------------------------------------------------------------ #

    def _intra_segment(self, out, flow_idx, group, a, b, share) -> None:
        """Add links of the minimal intra-group route a -> b (same group).

        leaf -> leaf crosses up + down via ``spine_channels`` spines
        (ECMP); segments touching a spine endpoint (gateway legs) use the
        single up or down link; spine -> spine bounces through one leaf.
        """
        topo = self.topology
        la = topo.router_local(a)
        lb = topo.router_local(b)
        same = la == lb
        a_leaf = la < topo.leaf_size
        b_leaf = lb < topo.leaf_size

        leaf_leaf = a_leaf & b_leaf & ~same
        if leaf_leaf.any():
            m = leaf_leaf
            g, fi = group[m], flow_idx[m]
            sh = share[m] / self.spine_channels
            for c in range(self.spine_channels):
                spine = (la[m] + lb[m] + c) % topo.spine_size
                out.add(fi, topo.up_link(g, la[m], spine), sh)
                out.add(fi, topo.down_link(g, spine, lb[m]), sh)

        leaf_spine = a_leaf & ~b_leaf
        if leaf_spine.any():
            m = leaf_spine
            out.add(
                flow_idx[m],
                topo.up_link(group[m], la[m], lb[m] - topo.leaf_size),
                share[m],
            )

        spine_leaf = ~a_leaf & b_leaf
        if spine_leaf.any():
            m = spine_leaf
            out.add(
                flow_idx[m],
                topo.down_link(group[m], la[m] - topo.leaf_size, lb[m]),
                share[m],
            )

        spine_spine = ~a_leaf & ~b_leaf & ~same
        if spine_spine.any():
            m = spine_spine
            g, fi, sh = group[m], flow_idx[m], share[m]
            mid = (la[m] + lb[m]) % topo.leaf_size
            out.add(fi, topo.down_link(g, la[m] - topo.leaf_size, mid), sh)
            out.add(fi, topo.up_link(g, mid, lb[m] - topo.leaf_size), sh)

    def _global_hop(self, out, flow_idx, src, dst, sg, dg, chan, share) -> None:
        """Add links for src -> (gateway spine) -> global -> (gateway) -> dst."""
        topo = self.topology
        gw_out = topo.global_gateway(sg, dg, chan)
        gw_in = topo.global_gateway(dg, sg, chan)
        self._intra_segment(out, flow_idx, sg, src, gw_out, share)
        out.add(flow_idx, topo.global_link(sg, dg, chan), share)
        self._intra_segment(out, flow_idx, dg, gw_in, dst, share)

    def _sample_intra_mid(self, src, dst, group, rng) -> np.ndarray:
        """Intermediate leaf within the group (Valiant leg)."""
        topo = self.topology
        n = len(src)
        if topo.leaf_size == 1:
            # Single leaf per group: no distinct intermediate exists.
            return dst.copy()
        la = topo.router_local(src)
        if rng is None:
            offs = (src * 7919 + dst * 104729) % (topo.leaf_size - 1) + 1
        else:
            offs = rng.integers(1, topo.leaf_size, size=n)
        return topo.leaf_id(group, (la + offs) % topo.leaf_size)

    def _sample_intermediate_group(self, sg, dg, salt: int, rng) -> np.ndarray:
        """Random intermediate group distinct from both endpoints."""
        topo = self.topology
        n = len(sg)
        if rng is None:
            raw = (sg * 31 + dg * 17 + salt * 101 + 13) % topo.groups
        else:
            raw = rng.integers(0, topo.groups, size=n)
        clash = (raw == sg) | (raw == dg)
        while clash.any():
            raw = np.where(clash, (raw + 1) % topo.groups, raw)
            clash = (raw == sg) | (raw == dg)
        return raw
