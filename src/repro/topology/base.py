"""The ``Topology`` protocol: what every network implementation provides.

The congestion engine, traffic builders, scheduler, LDMS sampler and
placement features never ask *which* network they run on — they consume
the surface defined here: canonically indexed directed links with
per-link capacities and kinds, router/node index arithmetic, and the
compute/I-O node pools.  A topology implementation supplies

* the link tables (:attr:`link_capacity`, :attr:`link_kind`,
  :attr:`link_endpoints`) over its own canonical link-id scheme;
* the node ↔ router mapping (:meth:`node_router`, :meth:`router_nodes`)
  and the I/O pool roots (:attr:`io_routers`);
* a :meth:`default_router` building the path expander that turns flows
  into weighted link incidences for this geometry.

Group-major router numbering is part of the contract: router ids within
group *g* occupy ``[g * routers_per_group, (g+1) * routers_per_group)``
so consumers can recover a router's group with one integer division.

Implementations register themselves in :mod:`repro.topology.registry`,
which makes ``(topology, routing)`` an addressable campaign axis.
"""

from __future__ import annotations

import abc
import enum
from functools import cached_property
from typing import TYPE_CHECKING, ClassVar

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import ScalePreset


class Topology(abc.ABC):
    """Abstract base of every network geometry (see module docstring).

    Subclass ``__init__`` must set the integer shape attributes
    (``groups``, ``routers_per_group``, ``nodes_per_router``,
    ``num_routers``, ``num_nodes``, ``num_links``, ``io_groups``) before
    any of the shared helpers below are used.
    """

    #: Registry name of the geometry family (``dragonfly``, ``df+``, ...).
    kind: ClassVar[str] = ""
    #: The link-class enum of this geometry, in canonical id order.
    link_kinds: ClassVar[type[enum.IntEnum]]

    groups: int
    routers_per_group: int
    nodes_per_router: int
    num_routers: int
    num_nodes: int
    num_links: int
    io_groups: int

    # ------------------------------------------------------------------ #
    # Abstract surface
    # ------------------------------------------------------------------ #

    @classmethod
    @abc.abstractmethod
    def from_preset(cls, preset: "ScalePreset | str | None" = None) -> "Topology":
        """Build this geometry from a :class:`~repro.config.ScalePreset`."""

    @abc.abstractmethod
    def default_router(self, **kwargs) -> object:
        """The path expander for this geometry (see
        :class:`repro.topology.routing.PathExpander`)."""

    @abc.abstractmethod
    def describe(self) -> str:
        """One-line human-readable summary of the topology."""

    @property
    @abc.abstractmethod
    def link_capacity(self) -> np.ndarray:
        """Per-link capacity in bytes/second (``num_links`` floats)."""

    @property
    @abc.abstractmethod
    def link_kind(self) -> np.ndarray:
        """Per-link :attr:`link_kinds` value (int8 vector)."""

    @property
    @abc.abstractmethod
    def link_endpoints(self) -> tuple[np.ndarray, np.ndarray]:
        """(src_router, dst_router) arrays for every directed link id."""

    @property
    @abc.abstractmethod
    def io_routers(self) -> np.ndarray:
        """Routers hosting I/O (LNET) nodes."""

    # ------------------------------------------------------------------ #
    # Shared arithmetic (identical across geometries by construction)
    # ------------------------------------------------------------------ #

    def router_group(self, router: np.ndarray | int) -> np.ndarray | int:
        """Group index of each router (group-major numbering)."""
        return np.asarray(router) // self.routers_per_group if isinstance(
            router, np.ndarray
        ) else router // self.routers_per_group

    def node_router(self, node: np.ndarray | int):
        """Router to which each node's NIC attaches.

        The default assumes every router hosts ``nodes_per_router``
        nodes; geometries whose nodes attach to a router subset (e.g.
        Dragonfly+ leaves) override this.
        """
        return np.asarray(node) // self.nodes_per_router if isinstance(
            node, np.ndarray
        ) else node // self.nodes_per_router

    def router_nodes(self, router: int) -> np.ndarray:
        """Nodes attached to one router."""
        base = router * self.nodes_per_router
        return np.arange(base, base + self.nodes_per_router)

    # ------------------------------------------------------------------ #
    # Cached link -> router incidence (router-tile aggregation)
    # ------------------------------------------------------------------ #

    @cached_property
    def link_dst(self) -> np.ndarray:
        """Destination router of every directed link (cached view of
        :attr:`link_endpoints`; the router-tile aggregation axis)."""
        return self.link_endpoints[1]

    @cached_property
    def link_dst_counts(self) -> np.ndarray:
        """Number of links terminating at each router (int64, cached).

        Integer-valued and deterministic, so caching it cannot perturb
        any floating-point result downstream.
        """
        return np.bincount(self.link_dst, minlength=self.num_routers)

    def router_link_sums(self, per_link: np.ndarray) -> np.ndarray:
        """Sum a per-link metric into its destination router, batched.

        Accepts a ``(links,)`` vector or a ``(steps, links)`` matrix and
        returns ``(routers,)`` / ``(steps, routers)``.  Each row uses
        ``np.bincount``, which accumulates weights in element order —
        the same per-bin FP accumulation order as a per-state bincount,
        so batched and per-step results are bit-identical (unlike
        ``np.add.reduceat``, whose SIMD partial sums reorder the adds).
        """
        dst = self.link_dst
        r = self.num_routers
        if per_link.ndim == 1:
            return np.bincount(dst, weights=per_link, minlength=r)
        # One flattened bincount over (step, router) keys: row-major
        # flattening visits entries row by row in link order, so every
        # (step, router) bin accumulates in the same element order as a
        # per-row bincount would.
        steps = per_link.shape[0]
        keys = (np.arange(steps, dtype=np.int64)[:, None] * r + dst).ravel()
        return np.bincount(
            keys, weights=per_link.ravel(), minlength=steps * r
        ).reshape(steps, r)

    @cached_property
    def io_router_mask(self) -> np.ndarray:
        mask = np.zeros(self.num_routers, dtype=bool)
        mask[self.io_routers] = True
        return mask

    @cached_property
    def io_nodes(self) -> np.ndarray:
        """Nodes attached to I/O routers."""
        if len(self.io_routers) == 0:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(
            [self.router_nodes(int(r)) for r in self.io_routers]
        )

    @cached_property
    def compute_nodes(self) -> np.ndarray:
        """Nodes available to the batch scheduler (all minus I/O nodes)."""
        mask = np.ones(self.num_nodes, dtype=bool)
        mask[self.io_nodes] = False
        return np.flatnonzero(mask)

    # ------------------------------------------------------------------ #
    # Validation helpers
    # ------------------------------------------------------------------ #

    def to_networkx(self):
        """Export the router graph (for validation / tests only)."""
        import networkx as nx

        g = nx.MultiDiGraph()
        g.add_nodes_from(range(self.num_routers))
        src, dst = self.link_endpoints
        kind = self.link_kind
        kinds = type(self).link_kinds
        for lid in range(self.num_links):
            g.add_edge(
                int(src[lid]), int(dst[lid]), kind=kinds(int(kind[lid])).name
            )
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.describe()}>"
