"""UGAL-style adaptive routing over the dragonfly, fully vectorised.

The Aries network routes each packet either *minimally* (src group ->
destination group directly over a blue link) or *non-minimally* (Valiant:
via a random intermediate group), choosing per packet based on backpressure
(paper §II-A).  An aggregate-flow model cannot route individual packets, so
we reproduce the mechanism at flow granularity:

* every flow is expanded into **two** weighted link sets — its minimal path
  set and a Valiant path set over sampled intermediate groups;
* the congestion engine solves a small fixed point for the per-flow split
  ``alpha`` (fraction routed minimally), increasing Valiant usage when the
  minimal path is more congested, exactly the UGAL decision rule.

Path expansion uses only arithmetic on router coordinates plus the
topology's canonical link ids, so routing ``n`` flows costs a handful of
NumPy operations regardless of ``n``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.topology.dragonfly import DragonflyTopology


class _IncidenceBuilder:
    """Accumulates (flow, link, share) COO triplets from vectorised segments."""

    def __init__(self) -> None:
        self._flows: list[np.ndarray] = []
        self._links: list[np.ndarray] = []
        self._shares: list[np.ndarray] = []

    def add(self, flows: np.ndarray, links: np.ndarray, shares: np.ndarray) -> None:
        if len(flows) == 0:
            return
        self._flows.append(np.asarray(flows, dtype=np.int64))
        self._links.append(np.asarray(links, dtype=np.int64))
        self._shares.append(np.asarray(shares, dtype=np.float64))

    def build(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if not self._flows:
            empty_i = np.empty(0, dtype=np.int64)
            return empty_i, empty_i.copy(), np.empty(0, dtype=np.float64)
        return (
            np.concatenate(self._flows),
            np.concatenate(self._links),
            np.concatenate(self._shares),
        )


@dataclass
class Incidence:
    """Sparse flow -> link incidence: ``share`` of the flow's volume crosses
    ``link`` (COO layout; a flow may appear many times)."""

    flow: np.ndarray
    link: np.ndarray
    share: np.ndarray

    @property
    def nnz(self) -> int:
        return len(self.flow)

    def link_loads(self, volumes: np.ndarray, num_links: int) -> np.ndarray:
        """Scatter-add flow volumes (bytes/s) into per-link loads.

        ``bincount`` and ``np.add.at`` both accumulate the weights in
        entry order (identical per-bin FP sums); ``bincount`` is an
        order of magnitude faster on this workload.
        """
        if not self.nnz:
            return np.zeros(num_links, dtype=np.float64)
        return np.bincount(
            self.link,
            weights=volumes[self.flow] * self.share,
            minlength=num_links,
        )

    def flow_max_metric(self, per_link: np.ndarray, n_flows: int) -> np.ndarray:
        """Per-flow maximum of a per-link metric over the flow's links."""
        out = np.zeros(n_flows, dtype=np.float64)
        if self.nnz:
            np.maximum.at(out, self.flow, per_link[self.link])
        return out

    def flow_mean_metric(self, per_link: np.ndarray, n_flows: int) -> np.ndarray:
        """Per-flow share-weighted mean of a per-link metric."""
        num = np.zeros(n_flows, dtype=np.float64)
        den = np.zeros(n_flows, dtype=np.float64)
        if self.nnz:
            np.add.at(num, self.flow, per_link[self.link] * self.share)
            np.add.at(den, self.flow, self.share)
        return num / np.maximum(den, 1e-300)


@dataclass
class FlowRouting:
    """Routing of a flow set: minimal and Valiant incidences plus metadata.

    The per-flow adaptive split ``alpha`` (fraction of volume routed
    minimally) lives in the congestion engine; a ``FlowRouting`` is pure
    geometry and can be reused across timesteps as long as the placement
    and pattern are unchanged.
    """

    n_flows: int
    minimal: Incidence
    valiant: Incidence
    #: True for flows whose endpoints share a router (no fabric links used).
    local_mask: np.ndarray = field(repr=False)

    def link_loads(
        self, volumes: np.ndarray, alpha: np.ndarray | float, num_links: int
    ) -> np.ndarray:
        """Combined per-link byte/s loads under split ``alpha``."""
        alpha = np.broadcast_to(np.asarray(alpha, dtype=np.float64), (self.n_flows,))
        loads = self.minimal.link_loads(volumes * alpha, num_links)
        loads += self.valiant.link_loads(volumes * (1.0 - alpha), num_links)
        return loads


@runtime_checkable
class PathExpander(Protocol):
    """Flow -> weighted link-incidence expansion for one geometry.

    A path expander owns the *geometry* of routing: it turns router-level
    flows into a :class:`FlowRouting` holding a minimal and a Valiant
    (non-minimal) :class:`Incidence`.  The *policy* — how much of each
    flow travels each set — lives in the congestion engine: pinned
    policies (``minimal``, ``valiant``) fix the split, while ``ugal``
    solves the adaptive fixed point.  Topologies return their expander
    from :meth:`repro.topology.base.Topology.default_router`.
    """

    topology: object

    def route(
        self,
        src_router: np.ndarray,
        dst_router: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> FlowRouting:
        """Route flows from ``src_router[i]`` to ``dst_router[i]``."""
        ...


class AdaptiveRouter:
    """Expands router-level flows into minimal + Valiant link incidences."""

    def __init__(
        self,
        topology: DragonflyTopology,
        blue_channels: int = 2,
        valiant_samples: int = 2,
    ) -> None:
        """
        Parameters
        ----------
        topology:
            The dragonfly to route over.
        blue_channels:
            Parallel blue links used per (flow, group-pair); traffic is
            spread evenly over them (Aries stripes packets over parallel
            optical links).
        valiant_samples:
            Intermediate groups sampled per flow for the non-minimal set.
        """
        self.topology = topology
        self.blue_channels = min(blue_channels, topology.global_multiplicity)
        self.valiant_samples = valiant_samples

    # ------------------------------------------------------------------ #

    def route(
        self,
        src_router: np.ndarray,
        dst_router: np.ndarray,
        rng: np.random.Generator | None = None,
        flow_ids: np.ndarray | None = None,
    ) -> FlowRouting:
        """Route flows from ``src_router[i]`` to ``dst_router[i]``.

        Returns a :class:`FlowRouting` with both path sets.  ``rng`` only
        affects Valiant intermediate-group sampling; pass a seeded
        generator for reproducibility (default: deterministic stride-based
        sampling).  ``flow_ids`` overrides the flow indices used for
        deterministic channel striping (default ``arange(n)``): a caller
        routing several concatenated flow sets in one call passes each
        set's own 0-based indices so every flow gets the exact links a
        solo call would pick.
        """
        src = np.asarray(src_router, dtype=np.int64)
        dst = np.asarray(dst_router, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("src_router and dst_router must have equal length")
        n = len(src)
        topo = self.topology
        fid = (
            np.arange(n, dtype=np.int64)
            if flow_ids is None
            else np.asarray(flow_ids, dtype=np.int64)
        )

        local_mask = src == dst

        minimal = _IncidenceBuilder()
        valiant = _IncidenceBuilder()

        sg = src // topo.routers_per_group
        dg = dst // topo.routers_per_group
        same_group = (sg == dg) & ~local_mask
        inter = ~same_group & ~local_mask

        # ---- minimal, intra-group ------------------------------------- #
        idx = np.flatnonzero(same_group)
        if len(idx):
            self._intra_segment(
                minimal,
                idx,
                sg[idx],
                src[idx],
                dst[idx],
                np.ones(len(idx)),
            )

        # ---- minimal, inter-group ------------------------------------- #
        idx = np.flatnonzero(inter)
        if len(idx):
            f = fid[idx]
            share = np.full(len(idx), 1.0 / self.blue_channels)
            for t in range(self.blue_channels):
                chan = (f + t) % topo.global_multiplicity
                self._global_hop(
                    minimal, idx, src[idx], dst[idx], sg[idx], dg[idx], chan, share
                )

        # ---- Valiant, intra-group (via random router in group) --------- #
        idx = np.flatnonzero(same_group)
        if len(idx):
            mids = self._sample_intra_mid(src[idx], dst[idx], sg[idx], rng)
            # The flow crosses both legs in full, so each leg gets share 1.
            share = np.full(len(idx), 1.0)
            self._intra_segment(valiant, idx, sg[idx], src[idx], mids, share)
            self._intra_segment(valiant, idx, sg[idx], mids, dst[idx], share)

        # ---- Valiant, inter-group (via intermediate groups) ------------ #
        idx = np.flatnonzero(inter)
        if len(idx) and topo.groups <= 2:
            # No third group exists; the Valiant set degenerates to the
            # minimal route (keeps tiny test topologies from looping).
            f = fid[idx]
            share = np.full(len(idx), 1.0 / self.blue_channels)
            for t in range(self.blue_channels):
                chan = (f + t) % topo.global_multiplicity
                self._global_hop(
                    valiant, idx, src[idx], dst[idx], sg[idx], dg[idx], chan, share
                )
        elif len(idx):
            f = fid[idx]
            k = self.valiant_samples
            share = np.full(len(idx), 1.0 / k)
            for s in range(k):
                inter_g = self._sample_intermediate_group(sg[idx], dg[idx], s, rng)
                chan = (f + s) % topo.global_multiplicity
                # Leg 1: src -> intermediate group (to its gateway towards dg
                # is irrelevant; traffic lands on the gateway from sg).
                gw_in = topo.blue_gateway(inter_g, sg[idx], chan)
                self._global_hop(
                    valiant, idx, src[idx], gw_in, sg[idx], inter_g, chan, share
                )
                # Leg 2: intermediate group -> destination group.
                chan2 = (f + s + 1) % topo.global_multiplicity
                self._global_hop(
                    valiant, idx, gw_in, dst[idx], inter_g, dg[idx], chan2, share
                )

        mf, ml, ms = minimal.build()
        vf, vl, vs = valiant.build()
        return FlowRouting(
            n_flows=n,
            minimal=Incidence(mf, ml, ms),
            valiant=Incidence(vf, vl, vs),
            local_mask=local_mask,
        )

    # ------------------------------------------------------------------ #
    # Segment expansion helpers (all vectorised over flow subsets)
    # ------------------------------------------------------------------ #

    def _intra_segment(
        self,
        out: _IncidenceBuilder,
        flow_idx: np.ndarray,
        group: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        share: np.ndarray,
    ) -> None:
        """Add links of the minimal intra-group route a -> b (same group).

        Same row: one green link.  Same column: one black link.  Otherwise
        two 2-hop corner routes, each carrying half the share (dimension-
        order spreading, as Aries' intra-group adaptive routing does).
        """
        topo = self.topology
        ra, pa = topo.router_row(a), topo.router_pos(a)
        rb, pb = topo.router_row(b), topo.router_pos(b)
        same = (ra == rb) & (pa == pb)

        row_case = (ra == rb) & ~same
        if row_case.any():
            m = row_case
            out.add(
                flow_idx[m],
                topo.green_link(group[m], ra[m], pa[m], pb[m]),
                share[m],
            )

        col_case = (pa == pb) & ~same
        if col_case.any():
            m = col_case
            out.add(
                flow_idx[m],
                topo.black_link(group[m], pa[m], ra[m], rb[m]),
                share[m],
            )

        two_hop = ~same & ~row_case & ~col_case
        if two_hop.any():
            m = two_hop
            g, fi, sh = group[m], flow_idx[m], share[m] * 0.5
            # Corner 1: green along source row to dst position, then black.
            out.add(fi, topo.green_link(g, ra[m], pa[m], pb[m]), sh)
            out.add(fi, topo.black_link(g, pb[m], ra[m], rb[m]), sh)
            # Corner 2: black along source column to dst row, then green.
            out.add(fi, topo.black_link(g, pa[m], ra[m], rb[m]), sh)
            out.add(fi, topo.green_link(g, rb[m], pa[m], pb[m]), sh)

    def _global_hop(
        self,
        out: _IncidenceBuilder,
        flow_idx: np.ndarray,
        src: np.ndarray,
        dst: np.ndarray,
        sg: np.ndarray,
        dg: np.ndarray,
        chan: np.ndarray,
        share: np.ndarray,
    ) -> None:
        """Add links for src -> (gateway) -> blue -> (gateway) -> dst."""
        topo = self.topology
        gw_out = topo.blue_gateway(sg, dg, chan)
        gw_in = topo.blue_gateway(dg, sg, chan)
        self._intra_segment(out, flow_idx, sg, src, gw_out, share)
        out.add(flow_idx, topo.blue_link(sg, dg, chan), share)
        self._intra_segment(out, flow_idx, dg, gw_in, dst, share)

    def _sample_intra_mid(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        group: np.ndarray,
        rng: np.random.Generator | None,
    ) -> np.ndarray:
        """Random intermediate router within the group (Valiant leg)."""
        topo = self.topology
        n = len(src)
        if rng is None:
            offs = (src * 7919 + dst * 104729) % (topo.routers_per_group - 1) + 1
        else:
            offs = rng.integers(1, topo.routers_per_group, size=n)
        return group * topo.routers_per_group + (
            (src % topo.routers_per_group + offs) % topo.routers_per_group
        )

    def _sample_intermediate_group(
        self,
        sg: np.ndarray,
        dg: np.ndarray,
        salt: int,
        rng: np.random.Generator | None,
    ) -> np.ndarray:
        """Random intermediate group distinct from both endpoints."""
        topo = self.topology
        n = len(sg)
        if rng is None:
            raw = (sg * 31 + dg * 17 + salt * 101 + 13) % topo.groups
        else:
            raw = rng.integers(0, topo.groups, size=n)
        # Shift away from the endpoint groups deterministically.
        clash = (raw == sg) | (raw == dg)
        while clash.any():
            raw = np.where(clash, (raw + 1) % topo.groups, raw)
            clash = (raw == sg) | (raw == dg)
        return raw
