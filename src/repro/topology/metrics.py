"""Topology-level metrics: validating the dragonfly against its theory.

The dragonfly's selling points (paper §II-A; Kim et al., ISCA'08) are a
low network diameter and high bisection bandwidth from high-radix
routers.  These utilities verify our construction delivers both, and give
downstream users the standard graph metrics for capacity planning.
"""

from __future__ import annotations

import numpy as np

from repro.config import BLUE_LINK_BW
from repro.topology.base import Topology


def theoretical_diameter(topology: Topology) -> int:
    """Upper bound on minimal-route hops: 2 intra + global + 2 intra = 5."""
    intra = 0 if topology.routers_per_group == 1 else 2
    return intra + 1 + intra


def measured_diameter(
    topology: Topology, samples: int = 200, rng=None
) -> int:
    """Max shortest-path length over sampled router pairs (BFS)."""
    import networkx as nx

    g = nx.DiGraph()
    src, dst = topology.link_endpoints
    g.add_edges_from(zip(src.tolist(), dst.tolist()))
    if rng is None:
        rng = np.random.default_rng(0)
    sources = rng.choice(topology.num_routers, size=min(samples, topology.num_routers), replace=False)
    worst = 0
    for s in sources:
        lengths = nx.single_source_shortest_path_length(g, int(s))
        worst = max(worst, max(lengths.values()))
    return worst


def bisection_bandwidth(topology: Topology) -> float:
    """Bytes/s crossing a balanced group bisection (global links only).

    Splitting the groups into two halves, only global (blue) links
    cross; with all-to-all group connectivity the count is ``2 * h1 * h2
    * multiplicity`` directed links.
    """
    g = topology.groups
    h1 = g // 2
    h2 = g - h1
    crossing = 2 * h1 * h2 * topology.global_multiplicity
    return crossing * BLUE_LINK_BW


def per_node_bisection(topology: Topology) -> float:
    """Bisection bytes/s per compute node (capacity-planning figure)."""
    return bisection_bandwidth(topology) / max(topology.num_nodes, 1)


def router_radix(topology: Topology) -> dict[str, float]:
    """Ports per router by link class (Aries: 15 green + 5 black + ~10 blue
    + 8 NIC ports on a 48-port router)."""
    src, _ = topology.link_endpoints
    kind = topology.link_kind
    out: dict[str, float] = {}
    for lk in type(topology).link_kinds:
        counts = np.bincount(
            src[kind == lk], minlength=topology.num_routers
        )
        out[lk.name.lower()] = float(counts.mean())
    out["nic"] = float(topology.nodes_per_router)
    out["total"] = sum(out.values())
    return out


def path_diversity(topology: Topology) -> int:
    """Distinct minimal paths between two routers in different groups
    (per global channel): up to 2 corner routes on each side of the
    global hop."""
    return 2 * 2 * topology.global_multiplicity


def link_load_balance(link_loads: np.ndarray, capacity: np.ndarray) -> float:
    """Max/mean utilisation over loaded links (1 = perfectly balanced)."""
    util = link_loads / capacity
    loaded = util[util > 0]
    if len(loaded) == 0:
        return 1.0
    return float(loaded.max() / loaded.mean())
