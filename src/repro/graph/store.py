"""Content-addressed artifact persistence for the experiment DAG.

Every stage result is stored under::

    <cache-dir>/artifacts/v<ARTIFACT_FORMAT_VERSION>/<group>/<fingerprint>.pkl

where ``group`` is derived from the stage function and ``fingerprint``
is the stage's input-addressed identity (:mod:`repro.graph.stage`).  The
entry format is a one-line header carrying the sha256 digest of the
pickled payload, then the payload itself — a truncated or bit-flipped
entry fails digest verification and is treated as a warned miss that
regenerates, exactly like the campaign and feature caches (PR 1's
discipline: atomic write-then-rename, an advisory ``flock`` per group,
corruption never propagates).

The low-level helpers :func:`guarded_load` and :func:`atomic_write` are
shared with :class:`repro.features.FeatureStore`, so every persistent
cache in the stack degrades the same way: corrupt entries are discarded
with a warning, unwritable directories demote the cache to memory-only.

``REPRO_ARTIFACT_CACHE=0`` disables the store (every stage recomputes).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import warnings
from pathlib import Path
from typing import BinaryIO, Callable

from repro.campaign.datasets import Campaign, FileLock

#: On-disk artifact format version; folded into the root path so a
#: layout change is an automatic miss.
ARTIFACT_FORMAT_VERSION = 1

_MAGIC = b"repro-artifact/1\n"

#: Sentinel distinguishing "no entry" from a stored ``None``.
MISS = object()


def artifact_cache_enabled() -> bool:
    """Store toggle (``REPRO_ARTIFACT_CACHE=0`` disables)."""
    return os.environ.get("REPRO_ARTIFACT_CACHE", "1") not in ("0", "", "false")


# --------------------------------------------------------------------------- #
# Shared hardened-entry helpers (also used by the feature store).
# --------------------------------------------------------------------------- #


def guarded_load(path: Path, reader: Callable[[Path], object], describe: str):
    """Read one cache entry; corrupt entries are warned misses.

    Returns ``None`` when the entry is absent or unreadable.  Any
    exception from ``reader`` discards the entry (best effort) so the
    next writer replaces it.
    """
    if not path.exists():
        return None
    try:
        return reader(path)
    except Exception as exc:
        warnings.warn(
            f"discarding corrupt {describe} entry {path}: "
            f"{type(exc).__name__}: {exc}",
            RuntimeWarning,
            stacklevel=4,
        )
        try:
            path.unlink()
        except OSError:
            pass
        return None


def atomic_write(
    path: Path,
    writer: Callable[[BinaryIO], None],
    lock: FileLock | None = None,
    fail_msg: str = "cache write failed",
) -> bool:
    """Write one cache entry atomically (tmp file + ``os.replace``).

    Readers only ever observe a miss or a complete entry; an unwritable
    directory degrades to a warning (the caller keeps its in-memory
    copy).  Returns whether the entry landed.
    """

    def write() -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        with open(tmp, "wb") as fh:
            writer(fh)
        os.replace(tmp, path)

    try:
        if lock is not None:
            with lock:
                write()
        else:
            write()
        return True
    except OSError as exc:
        warnings.warn(f"{fail_msg}: {exc}", RuntimeWarning, stacklevel=4)
        return False


# --------------------------------------------------------------------------- #
# The artifact store.
# --------------------------------------------------------------------------- #


def _read_artifact(path: Path):
    data = path.read_bytes()
    if not data.startswith(_MAGIC):
        raise ValueError("bad artifact header")
    rest = data[len(_MAGIC):]
    digest, sep, payload = rest.partition(b"\n")
    if not sep:
        raise ValueError("truncated artifact header")
    if hashlib.sha256(payload).hexdigest().encode() != digest:
        raise ValueError("artifact digest mismatch")
    return pickle.loads(payload)


class ArtifactStore:
    """Content-addressed stage-result persistence.

    Parameters
    ----------
    root:
        Directory for the entries; defaults to
        ``<REPRO_CACHE_DIR>/artifacts/v<ARTIFACT_FORMAT_VERSION>``.
    enabled:
        Explicit toggle; ``None`` follows ``REPRO_ARTIFACT_CACHE``.
    """

    def __init__(self, root: Path | None = None, enabled: bool | None = None) -> None:
        self.root = Path(root) if root is not None else (
            Campaign.cache_dir() / "artifacts" / f"v{ARTIFACT_FORMAT_VERSION}"
        )
        self.enabled = artifact_cache_enabled() if enabled is None else enabled

    def path(self, group: str, fingerprint: str) -> Path:
        return self.root / group / f"{fingerprint}.pkl"

    def has(self, group: str, fingerprint: str) -> bool:
        return self.enabled and self.path(group, fingerprint).exists()

    def load(self, group: str, fingerprint: str):
        """The stored artifact, or :data:`MISS`.

        Digest-verified: a truncated or bit-flipped entry is discarded
        with a warning and reported as a miss.
        """
        if not self.enabled:
            return MISS
        # Box the payload so a stored ``None`` stays distinct from a miss.
        boxed = guarded_load(
            self.path(group, fingerprint),
            lambda path: (_read_artifact(path),),
            "artifact",
        )
        return MISS if boxed is None else boxed[0]

    def save(self, group: str, fingerprint: str, value: object) -> bool:
        """Persist one artifact (atomic, locked per group)."""
        if not self.enabled:
            return False
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).hexdigest().encode()

        def write(fh: BinaryIO) -> None:
            fh.write(_MAGIC)
            fh.write(digest)
            fh.write(b"\n")
            fh.write(payload)

        return atomic_write(
            self.path(group, fingerprint),
            write,
            lock=FileLock(self.root / f"{group}.lock"),
            fail_msg=f"artifact write failed for {group}/{fingerprint}",
        )
