"""Stages: pure functions with typed inputs and input-addressed identity.

A :class:`Stage` names a pure function (by import path, so workers can
resolve it), its parameters, and the upstream stages whose artifacts it
consumes.  The stage's **fingerprint** is derived from

* the graph format version,
* the function's import path and declared code version
  (:func:`stage_fn`),
* the JSON-serialised parameters,
* the fingerprints of every input stage (so an upstream change cascades
  to everything downstream), and
* the campaign fingerprint, for stages bound to a campaign or dataset.

Two runs that would compute the same value therefore share one
fingerprint, and a change to any contributing ingredient — one config
knob, one ``@stage_fn(version=...)`` bump — invalidates exactly the
affected cone of the DAG.

Stage functions take a single :class:`StageCtx` and must be
deterministic in it: same params, same input artifacts, same dataset ⇒
bit-identical return value.  **Bump the decorator's ``version`` whenever
the function's output could change** — that is what keeps stale
artifacts from being served after a code edit.
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import dataclass, field
from typing import Callable

#: Fingerprint format version: bump to invalidate every stored artifact.
GRAPH_FORMAT_VERSION = 1


def stage_fn(version: int = 1):
    """Declare a function as a stage body with a code version.

    The version is part of every fingerprint the function contributes
    to; bump it when the function's output changes so stored artifacts
    go stale instead of being served.
    """

    def decorate(fn: Callable) -> Callable:
        fn.__stage_version__ = version
        return fn

    return decorate


def fn_path(fn: Callable) -> str:
    """``module:qualname`` import path of a top-level function."""
    return f"{fn.__module__}:{fn.__qualname__}"


def resolve_fn(path: str) -> Callable:
    """Import a stage function back from its ``module:qualname`` path."""
    module_name, _, attr = path.partition(":")
    obj = importlib.import_module(module_name)
    for part in attr.split("."):
        obj = getattr(obj, part)
    return obj


def fn_version(path: str) -> int:
    return int(getattr(resolve_fn(path), "__stage_version__", 1))


@dataclass
class StageCtx:
    """What a stage function sees: params, input artifacts, bound data."""

    params: dict
    inputs: dict = field(default_factory=dict)
    #: The bound dataset, for stages declared with ``dataset=<key>``.
    ds: object = None
    #: The materialised campaign, for stages declared ``campaign=True``.
    camp: object = None


@dataclass(frozen=True)
class Stage:
    """One node of the experiment DAG (declarative; see :class:`Graph`)."""

    name: str
    fn: str
    params: tuple = ()
    #: ``(role, upstream stage name)`` pairs; the executor presents the
    #: upstream artifacts as ``ctx.inputs[role]``.
    inputs: tuple = ()
    #: Dataset key injected as ``ctx.ds`` (binds the stage to the campaign).
    dataset: str | None = None
    #: Whether the whole campaign is injected as ``ctx.camp`` (forces
    #: in-parent execution).
    campaign: bool = False
    kind: str = "compute"
    #: Run in the parent process even when a worker pool is available
    #: (renders and campaign-bound stages; cheap or unpicklable work).
    local: bool = False
    #: Persist the result in the artifact store.
    store: bool = True
    #: Shard addresses (content fingerprints of the time-window shards
    #: this stage consumes, see :mod:`repro.campaign.streaming`).  A
    #: shard-scoped stage is fingerprinted by its shard addresses
    #: *instead of* the campaign fingerprint, so appending a window to a
    #: stream never re-keys the stages of the existing windows.
    shard: tuple = ()

    def group(self) -> str:
        """Store subdirectory: the stage function's attribute name."""
        return self.fn.rpartition(":")[2].replace(".", "_")


class Graph:
    """A DAG of stages, insertion-ordered topologically.

    ``add`` validates that every input already exists, so insertion
    order is a topological order by construction.  Adding the same name
    twice is a no-op when the definitions agree — that is how two
    experiments share a stage (e.g. one trained forecaster serving both
    the importance panels and the long-run forecast) — and an error
    when they conflict.
    """

    def __init__(self) -> None:
        self.stages: dict[str, Stage] = {}

    def add(
        self,
        name: str,
        fn: "Callable | str",
        *,
        params: dict | None = None,
        inputs: "list[tuple[str, str]] | None" = None,
        dataset: str | None = None,
        campaign: bool = False,
        kind: str = "compute",
        local: bool = False,
        store: bool = True,
        shard: "str | tuple[str, ...] | None" = None,
    ) -> str:
        stage = Stage(
            name=name,
            fn=fn if isinstance(fn, str) else fn_path(fn),
            params=tuple(sorted((params or {}).items())),
            inputs=tuple(inputs or ()),
            dataset=dataset,
            campaign=campaign,
            kind=kind,
            local=local or campaign,
            store=store,
            shard=(shard,) if isinstance(shard, str) else tuple(shard or ()),
        )
        existing = self.stages.get(name)
        if existing is not None:
            if existing != stage:
                raise ValueError(f"conflicting definitions for stage {name!r}")
            return name
        for role, upstream in stage.inputs:
            if upstream not in self.stages:
                raise ValueError(
                    f"stage {name!r} input {role!r} references unknown "
                    f"stage {upstream!r} (add upstream stages first)"
                )
        self.stages[name] = stage
        return name

    def fingerprints(self, campaign_fingerprint: str | None) -> dict[str, str]:
        """Input-addressed fingerprint of every stage, in topo order."""
        fps: dict[str, str] = {}
        for name, st in self.stages.items():
            payload_dict = {
                "format": GRAPH_FORMAT_VERSION,
                "fn": st.fn,
                "code": fn_version(st.fn),
                "params": [[k, v] for k, v in st.params],
                "inputs": [[role, fps[up]] for role, up in st.inputs],
                "dataset": st.dataset,
                # Shard-scoped stages are addressed by the content
                # fingerprints of the shards they consume, not the
                # (stream) campaign fingerprint — appending a window
                # changes the stream fingerprint but must not re-key the
                # existing windows' stages.  The ``shard`` key is only
                # present when set, so every pre-streaming fingerprint
                # is unchanged.
                "campaign": campaign_fingerprint
                if not st.shard and (st.campaign or st.dataset is not None)
                else None,
            }
            if st.shard:
                payload_dict["shard"] = list(st.shard)
            payload = json.dumps(payload_dict, sort_keys=True)
            fps[name] = hashlib.sha256(payload.encode()).hexdigest()[:16]
        return fps
