"""Topological execution of a stage graph with store-backed memoization.

:class:`GraphRunner` resolves a :class:`~repro.graph.stage.Graph`
against an :class:`~repro.graph.store.ArtifactStore`:

* stages whose fingerprint is already stored are **hits** — their
  artifacts are loaded instead of recomputed, and their upstream cone is
  not even visited;
* everything else is scheduled in topological order onto the shared
  :func:`repro.parallel.get_pool` worker pool, streaming: a stage is
  submitted the moment its inputs are complete, independent branches run
  concurrently, and completed results are persisted immediately so a
  crashed run resumes where it stopped;
* ``local`` stages (renders, campaign-bound work) run in the parent
  process, between pool completions.

Warm-vs-cold accounting lands on the metrics registry —
``graph.stage.hit`` / ``graph.stage.miss`` for needed stages at
resolution time and ``graph.stage.run`` per executed stage — which is
what the warm-run "zero recompute" tests and the ``repro.obs report``
cache summary read.

Determinism: stages are pure functions of their fingerprinted inputs
and results are keyed by stage name, so completion order (and therefore
worker count) can never perturb any downstream value.
"""

from __future__ import annotations

import time
import warnings
from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Callable

from repro.graph.stage import Graph, Stage, StageCtx, resolve_fn
from repro.graph.store import MISS, ArtifactStore
from repro.obs import METRICS, event
from repro.obs.profile import profile_requested, profiled_span
from repro.parallel import get_pool, wait_any


def _exec_stage(
    fn_path: str,
    name: str,
    params: dict,
    inputs: dict,
    ds,
    camp=None,
    cell: str | None = None,
):
    """Execute one stage body (top-level so pool workers can run it)."""
    fn = resolve_fn(fn_path)
    attrs = {"stage": name}
    if cell:
        attrs["cell"] = cell
    with profiled_span("graph.stage", **attrs):
        return fn(StageCtx(params=params, inputs=inputs, ds=ds, camp=camp))


@dataclass(frozen=True)
class StagePlan:
    """One stage's resolution: its fingerprint and hit/miss/run status."""

    stage: Stage
    fingerprint: str
    status: str  # "hit" | "miss" | "force" | "run"


_TAGS = {"hit": "[hit ]", "miss": "[miss]", "force": "[force]", "run": "[run ]"}


def render_plan(plans: list[StagePlan]) -> str:
    """Human-readable DAG resolution (the CLI's ``--explain`` output).

    Shard-scoped stages carry a ``shard=<fp>[,<fp>...]`` tag and get
    their own summary line, so the hit/miss granularity of a streamed
    run is visible per shard.
    """
    width = max((len(p.stage.name) for p in plans), default=0)
    lines = []
    shard_counts: defaultdict[str, int] = defaultdict(int)
    for p in plans:
        line = (
            f"{_TAGS[p.status]:<7} {p.stage.kind:<7} "
            f"{p.stage.name:<{width}}  {p.fingerprint}"
        )
        if p.stage.shard:
            line += f"  shard={','.join(p.stage.shard)}"
            shard_counts[p.status] += 1
        lines.append(line)
    counts = defaultdict(int)
    for p in plans:
        counts[p.status] += 1
    summary = ", ".join(f"{counts[s]} {s}" for s in _TAGS if counts[s])
    lines.append(f"{len(plans)} stages: {summary}")
    if shard_counts:
        shard_summary = ", ".join(
            f"{shard_counts[s]} {s}" for s in _TAGS if shard_counts[s]
        )
        lines.append(
            f"{sum(shard_counts.values())} shard-scoped: {shard_summary}"
        )
    return "\n".join(lines)


class GraphRunner:
    """Resolve and execute a stage graph against an artifact store.

    Parameters
    ----------
    graph:
        The stage DAG.
    store:
        Artifact persistence; a disabled store makes every stage run.
    campaign_fingerprint:
        Folded into the fingerprint of every campaign/dataset-bound
        stage (see :meth:`Graph.fingerprints`).
    campaign:
        Zero-argument provider returning the materialised
        :class:`~repro.campaign.datasets.Campaign`.  Called lazily, only
        when an *executing* stage is campaign- or dataset-bound — a
        fully warm run never touches it.
    workers:
        Worker-count request forwarded to :func:`repro.parallel.get_pool`.
    force:
        Bypass stored artifacts (results are still re-saved).
    cell:
        The canonical ``topology/routing`` label this graph runs on, or
        None for the default cell.  Shared stage *names* do not carry
        the cell (only their fingerprints differ), so the runner stamps
        it onto ``graph.stage`` spans, the ``graph.plan`` trace event,
        and cell-qualified ``graph.stage.<status>[<cell>]`` counters —
        that is what makes warm-cache behaviour attributable per cell
        in reports and profiles.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        store: ArtifactStore,
        campaign_fingerprint: str | None,
        campaign: Callable | None = None,
        workers: int | None = None,
        force: bool = False,
        cell: str | None = None,
    ) -> None:
        self.graph = graph
        self.store = store
        self.workers = workers
        self.force = force
        self.cell = cell
        self.fingerprints = graph.fingerprints(campaign_fingerprint)
        self._provider = campaign
        self._camp = None

    def _count(self, status: str, n: int = 1, shard: int = 0) -> None:
        """Bump a ``graph.stage.<status>`` counter, plus its per-cell
        twin when this runner is pinned to a (topology, routing) cell.
        The unqualified counter stays the cross-cell total existing
        tests and reports read.  ``shard`` of the ``n`` stages were
        shard-scoped and additionally land on ``graph.shard.<status>``
        — the numbers the stream-append assertions and ``repro.obs
        report`` read."""
        if not n:
            return
        METRICS.counter(f"graph.stage.{status}").inc(n)
        if self.cell:
            METRICS.counter(f"graph.stage.{status}[{self.cell}]").inc(n)
        if shard:
            METRICS.counter(f"graph.shard.{status}").inc(shard)

    def _campaign(self):
        if self._camp is None:
            if self._provider is None:
                raise RuntimeError(
                    "graph has campaign-bound stages to execute "
                    "but no campaign provider was supplied"
                )
            self._camp = self._provider()
        return self._camp

    # -- resolution ----------------------------------------------------- #

    def plan(self) -> list[StagePlan]:
        """Hit/miss status of every stage, in topological order."""
        plans = []
        for name, st in self.graph.stages.items():
            if self.force:
                status = "force"
            elif not (st.store and self.store.enabled):
                status = "run"
            elif self.store.has(st.group(), self.fingerprints[name]):
                status = "hit"
            else:
                status = "miss"
            plans.append(StagePlan(st, self.fingerprints[name], status))
        return plans

    # -- execution ------------------------------------------------------ #

    def run(self, targets: list[str]) -> dict[str, object]:
        """Materialise ``targets``, reusing stored artifacts.

        Returns ``{target: value}``.  Only the cone of stages actually
        needed runs: the upstream walk stops at every stored hit.
        """
        targets = list(targets)
        for t in targets:
            if t not in self.graph.stages:
                raise KeyError(f"unknown stage {t!r}")
        attrs = {"targets": len(targets), "stages": len(self.graph.stages)}
        if self.cell:
            attrs["cell"] = self.cell
        with profiled_span("graph.run", **attrs):
            out = self._run(targets)
        self._persist_run_profile()
        return out

    def _run(self, targets: list[str]) -> dict[str, object]:
        graph, store, fps = self.graph, self.store, self.fingerprints
        prof_on = profile_requested()

        # Needed-set walk, newest-first: loads hit artifacts as it goes
        # (digest-verified — a corrupt entry counts as a miss and its
        # upstream cone rejoins the walk), stops recursion at each hit.
        values: dict[str, object] = {}
        exec_set: set[str] = set()
        load_times: dict[str, float] = {}
        stack, seen = list(targets), set()
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            st = graph.stages[name]
            if not self.force and st.store and store.enabled:
                t0 = time.perf_counter() if prof_on else 0.0
                value = store.load(st.group(), fps[name])
                if value is not MISS:
                    values[name] = value
                    if prof_on:
                        load_times[name] = time.perf_counter() - t0
                    continue
                self._count("miss", shard=1 if st.shard else 0)
            exec_set.add(name)
            stack.extend(up for _, up in st.inputs)
        self._count(
            "hit",
            len(values),
            shard=sum(1 for n in values if graph.stages[n].shard),
        )

        self._emit_plan(values, exec_set, seen, load_times)
        if exec_set:
            self._execute(exec_set, values)
        return {t: values[t] for t in targets}

    def _emit_plan(
        self,
        values: dict[str, object],
        exec_set: set[str],
        seen: set[str],
        load_times: dict[str, float],
    ) -> None:
        """Record the resolved DAG as one ``graph.plan`` trace event.

        Carries every needed stage's status, input edges, and (when
        profiling) the timed artifact load of each hit — the structural
        half of the profile that critical-path analysis replays, since
        hits never open a ``graph.stage`` span of their own.
        """
        from repro.obs import trace as obs_trace

        if not obs_trace.ACTIVE:
            return
        stages = []
        for name, st in self.graph.stages.items():
            if name in values:
                status = "hit"
            elif name in exec_set:
                status = "force" if self.force else (
                    "miss" if st.store and self.store.enabled else "run"
                )
            elif name not in seen:
                continue  # outside the needed cone of this run
            else:  # pragma: no cover - seen stages are hit or executing
                continue
            entry: dict = {
                "name": name,
                "status": status,
                "inputs": [up for _, up in st.inputs],
            }
            if name in load_times:
                entry["load_s"] = round(load_times[name], 6)
            stages.append(entry)
        event("graph.plan", cell=self.cell, stages=stages)

    def _persist_run_profile(self) -> None:
        """Drop the aggregated run profile next to the stage artifacts
        (``<store root>/_profiles/<trace stem>.json``) after a profiled
        run.  Best-effort: a profile write never fails the run."""
        if not profile_requested() or not self.store.enabled:
            return
        from repro.obs import trace as obs_trace

        path = obs_trace.current_trace_path()
        if path is None:
            return
        try:
            from repro.obs.profile import write_run_profile

            write_run_profile(self.store.root, path)
        except Exception as exc:  # pragma: no cover - best-effort output
            warnings.warn(
                f"could not persist run profile: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )

    def _execute(self, exec_set: set[str], values: dict[str, object]) -> None:
        graph, store, fps = self.graph, self.store, self.fingerprints

        order = [n for n in graph.stages if n in exec_set]
        deps_left: dict[str, int] = {}
        downstream: dict[str, list[str]] = defaultdict(list)
        for name in order:
            ups = {up for _, up in graph.stages[name].inputs if up in exec_set}
            deps_left[name] = len(ups)
            for up in ups:
                downstream[up].append(name)
        ready = deque(n for n in order if deps_left[n] == 0)

        pool = get_pool(self.workers)
        pending: list[tuple[str, object]] = []

        def finish(name: str, value: object) -> None:
            st = graph.stages[name]
            values[name] = value
            if st.store:
                store.save(st.group(), fps[name], value)
            for down in downstream[name]:
                deps_left[down] -= 1
                if deps_left[down] == 0:
                    ready.append(down)

        while ready or pending:
            while ready:
                name = ready.popleft()
                st = graph.stages[name]
                self._count("run", shard=1 if st.shard else 0)
                inputs = {role: values[up] for role, up in st.inputs}
                if st.local or not pool.parallel:
                    finish(name, self._exec_local(st, name, inputs))
                else:
                    ds = (
                        self._campaign()[st.dataset]
                        if st.dataset is not None
                        else None
                    )
                    pending.append(
                        (
                            name,
                            pool.submit(
                                _exec_stage, st.fn, name, dict(st.params),
                                inputs, ds, None, self.cell,
                            ),
                        )
                    )
            if pending:
                done = wait_any([fut for _, fut in pending])
                for i in sorted(done, reverse=True):
                    name, fut = pending.pop(i)
                    finish(name, pool.result(fut))

    def _exec_local(self, st: Stage, name: str, inputs: dict) -> object:
        """Run one stage in this process, with campaign/dataset
        materialisation *inside* the stage span — a cold run's campaign
        generation is real stage time and must be attributed to the
        stage that forced it, or per-stage walls stop summing to the
        root span."""
        fn = resolve_fn(st.fn)
        attrs = {"stage": name}
        if self.cell:
            attrs["cell"] = self.cell
        with profiled_span("graph.stage", **attrs):
            camp = self._campaign() if st.campaign else None
            ds = (
                self._campaign()[st.dataset]
                if st.dataset is not None
                else None
            )
            return fn(StageCtx(params=dict(st.params), inputs=inputs, ds=ds, camp=camp))
