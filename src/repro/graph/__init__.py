"""Artifact-addressed experiment DAG (stages + store + scheduler).

The experiment layer declares its work as a :class:`Graph` of pure
:class:`Stage` functions; :class:`GraphRunner` resolves each stage's
input-addressed fingerprint against the content-addressed
:class:`ArtifactStore` and executes only the missing cone, streaming
ready stages onto the shared worker pool.  See ``docs/architecture.md``.
"""

from repro.graph.scheduler import GraphRunner, StagePlan, render_plan
from repro.graph.stage import (
    GRAPH_FORMAT_VERSION,
    Graph,
    Stage,
    StageCtx,
    fn_path,
    resolve_fn,
    stage_fn,
)
from repro.graph.store import (
    ARTIFACT_FORMAT_VERSION,
    MISS,
    ArtifactStore,
    artifact_cache_enabled,
    atomic_write,
    guarded_load,
)

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "GRAPH_FORMAT_VERSION",
    "MISS",
    "ArtifactStore",
    "Graph",
    "GraphRunner",
    "Stage",
    "StageCtx",
    "StagePlan",
    "artifact_cache_enabled",
    "atomic_write",
    "fn_path",
    "guarded_load",
    "render_plan",
    "resolve_fn",
    "stage_fn",
]
