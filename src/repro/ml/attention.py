"""Scalar dot-product attention forecaster (paper §IV-C).

The paper predicts the aggregate execution time of the next ``k`` steps
from the counters of the last ``m`` steps using "the popular scalar
dot-product attention along with a fully connected neural network"
(Vaswani et al., 2017).  This is that model, with explicit NumPy
forward/backward passes:

    Q = X Wq,  K = X Wk,  V = X Wv             (per-step projections)
    A = softmax(Q K^T / sqrt(d))               (temporal attention)
    C = A V                                    (attended context)
    pooled = [mean_t C ; C_m]                  (mean + current-step context)
    y = W2 relu(W1 pooled + b1) + b2           (MLP head)

The current-step context is concatenated because the forecasting target
(aggregate time of the next k steps) is anchored at the window's final
step t_c (paper Fig. 6).

Inputs are standardised internally; the target is standardised as well so
the MSE landscape is well-conditioned regardless of counter magnitudes.
"""

from __future__ import annotations

import numpy as np

from repro.ml.nn import Adam, glorot, relu, relu_grad, softmax, softmax_backward
from repro.ml.scaling import StandardScaler


class AttentionForecaster:
    """Attention + MLP regressor over (m, H) windows."""

    def __init__(
        self,
        d_model: int = 24,
        hidden: int = 48,
        lr: float = 3e-3,
        epochs: int = 300,
        batch_size: int = 128,
        seed: int = 0,
        patience: int = 40,
        validation_fraction: float = 0.15,
    ) -> None:
        if d_model < 1 or hidden < 1:
            raise ValueError("d_model and hidden must be positive")
        self.d_model = d_model
        self.hidden = hidden
        self.lr = lr
        self.epochs = epochs
        self.batch_size = batch_size
        self.seed = seed
        self.patience = patience
        self.validation_fraction = validation_fraction
        self.params: dict[str, np.ndarray] | None = None
        self._x_scaler: StandardScaler | None = None
        self._y_scaler: StandardScaler | None = None
        self.history_: list[float] = []

    # ------------------------------------------------------------------ #

    def _init_params(self, h: int, rng: np.random.Generator) -> None:
        d, hid = self.d_model, self.hidden
        self.params = {
            "Wq": glorot(rng, (h, d)),
            "Wk": glorot(rng, (h, d)),
            "Wv": glorot(rng, (h, d)),
            "W1": glorot(rng, (2 * d, hid)),
            "b1": np.zeros(hid),
            "W2": glorot(rng, (hid, 1)),
            "b2": np.zeros(1),
        }

    def _standardize_x(self, x: np.ndarray, fit: bool) -> np.ndarray:
        b, m, h = x.shape
        flat = x.reshape(b * m, h)
        if fit:
            self._x_scaler = StandardScaler().fit(flat)
        return self._x_scaler.transform(flat).reshape(b, m, h)

    # ------------------------------------------------------------------ #

    def _forward(self, x: np.ndarray, need_cache: bool = False):
        p = self.params
        d = self.d_model
        q = x @ p["Wq"]
        k = x @ p["Wk"]
        v = x @ p["Wv"]
        scores = q @ np.swapaxes(k, 1, 2) / np.sqrt(d)
        a = softmax(scores, axis=-1)
        c = a @ v
        pooled = np.concatenate([c.mean(axis=1), c[:, -1, :]], axis=1)
        z1 = pooled @ p["W1"] + p["b1"]
        h1 = relu(z1)
        yhat = (h1 @ p["W2"] + p["b2"])[:, 0]
        if not need_cache:
            return yhat
        return yhat, (x, q, k, v, a, pooled, z1, h1)

    def _backward(self, grad_y: np.ndarray, cache) -> dict[str, np.ndarray]:
        p = self.params
        x, q, k, v, a, pooled, z1, h1 = cache
        d = self.d_model
        m = x.shape[1]

        d_h1 = grad_y[:, None] @ p["W2"].T  # (B, hid)
        g = {
            "W2": h1.T @ grad_y[:, None],
            "b2": np.array([grad_y.sum()]),
        }
        d_z1 = d_h1 * relu_grad(z1)
        g["W1"] = pooled.T @ d_z1
        g["b1"] = d_z1.sum(axis=0)
        d_pooled = d_z1 @ p["W1"].T  # (B, 2d)
        d_c = np.repeat(d_pooled[:, None, :d] / m, m, axis=1)  # (B, m, d)
        d_c[:, -1, :] += d_pooled[:, d:]
        d_a = d_c @ np.swapaxes(v, 1, 2)  # (B, m, m)
        d_v = np.swapaxes(a, 1, 2) @ d_c  # (B, m, d)
        d_scores = softmax_backward(a, d_a, axis=-1) / np.sqrt(d)
        d_q = d_scores @ k
        d_k = np.swapaxes(d_scores, 1, 2) @ q
        g["Wq"] = np.einsum("bmh,bmd->hd", x, d_q)
        g["Wk"] = np.einsum("bmh,bmd->hd", x, d_k)
        g["Wv"] = np.einsum("bmh,bmd->hd", x, d_v)
        return g

    # ------------------------------------------------------------------ #

    def fit(self, x: np.ndarray, y: np.ndarray) -> "AttentionForecaster":
        """Train on windows ``x`` (n, m, H) and targets ``y`` (n,)."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if x.ndim != 3 or len(x) != len(y):
            raise ValueError("x must be (n, m, H) with matching y")
        rng = np.random.default_rng(self.seed)
        xs = self._standardize_x(x, fit=True)
        self._y_scaler = StandardScaler().fit(y)
        ys = self._y_scaler.transform(y)

        n = len(xs)
        self._init_params(x.shape[2], rng)
        opt = Adam(self.params, lr=self.lr)

        # Validation split for early stopping.
        n_val = max(1, int(round(self.validation_fraction * n))) if n >= 10 else 0
        perm = rng.permutation(n)
        val_idx = perm[:n_val]
        tr_idx = perm[n_val:]
        best_val = np.inf
        best_params = None
        stale = 0

        self.history_ = []
        bs = min(self.batch_size, len(tr_idx))
        for _ in range(self.epochs):
            order = rng.permutation(tr_idx)
            for start in range(0, len(order), bs):
                batch = order[start : start + bs]
                yhat, cache = self._forward(xs[batch], need_cache=True)
                grad_y = 2.0 * (yhat - ys[batch]) / len(batch)
                grads = self._backward(grad_y, cache)
                opt.step(grads)
            if n_val:
                val_pred = self._forward(xs[val_idx])
                val_loss = float(np.mean((val_pred - ys[val_idx]) ** 2))
                self.history_.append(val_loss)
                if val_loss < best_val - 1e-6:
                    best_val = val_loss
                    best_params = {k: v.copy() for k, v in self.params.items()}
                    stale = 0
                else:
                    stale += 1
                    if stale >= self.patience:
                        break
            else:
                tr_pred = self._forward(xs)
                self.history_.append(float(np.mean((tr_pred - ys) ** 2)))
        if best_params is not None:
            self.params = best_params
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.params is None or self._x_scaler is None:
            raise RuntimeError("model is not fitted")
        x = np.asarray(x, dtype=np.float64)
        xs = self._standardize_x(x, fit=False)
        ys = self._forward(xs)
        return self._y_scaler.inverse_transform(ys)

    # ------------------------------------------------------------------ #

    def attention_map(self, x: np.ndarray) -> np.ndarray:
        """The (n, m, m) attention weights for inspection."""
        if self.params is None:
            raise RuntimeError("model is not fitted")
        xs = self._standardize_x(np.asarray(x, dtype=np.float64), fit=False)
        p = self.params
        q = xs @ p["Wq"]
        k = xs @ p["Wk"]
        return softmax(q @ np.swapaxes(k, 1, 2) / np.sqrt(self.d_model), axis=-1)


def permutation_importance(
    model: AttentionForecaster,
    x: np.ndarray,
    y: np.ndarray,
    metric,
    rng: np.random.Generator | None = None,
    n_repeats: int = 3,
) -> np.ndarray:
    """Model-agnostic feature importance: metric degradation when one
    feature channel is shuffled across windows (used for Fig. 11; the
    paper does not specify its attribution method — see DESIGN.md §6)."""
    if rng is None:
        rng = np.random.default_rng(0)
    x = np.asarray(x, dtype=np.float64)
    base = metric(y, model.predict(x))
    h = x.shape[2]
    out = np.zeros(h)
    for j in range(h):
        scores = []
        for _ in range(n_repeats):
            xp = x.copy()
            perm = rng.permutation(len(x))
            xp[:, :, j] = x[perm][:, :, j]
            scores.append(metric(y, model.predict(xp)) - base)
        out[j] = max(float(np.mean(scores)), 0.0)
    return out
