"""Feature scaling utilities."""

from __future__ import annotations

import numpy as np


class StandardScaler:
    """Zero-mean / unit-variance scaling, tolerant of constant features."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x[:, None]
        self.mean_ = x.mean(axis=0)
        std = x.std(axis=0)
        self.scale_ = np.where(std > 0, std, 1.0)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler is not fitted")
        x = np.asarray(x, dtype=np.float64)
        squeeze = x.ndim == 1
        if squeeze:
            x = x[:, None]
        out = (x - self.mean_) / self.scale_
        return out[:, 0] if squeeze else out

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler is not fitted")
        x = np.asarray(x, dtype=np.float64)
        squeeze = x.ndim == 1
        if squeeze:
            x = x[:, None]
        out = x * self.scale_ + self.mean_
        return out[:, 0] if squeeze else out
