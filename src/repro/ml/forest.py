"""Random-forest regression (bagged histogram trees).

A variance-reduction baseline between the single tree and the boosted
ensemble: bootstrap rows, random feature subsets per tree, average the
predictions.  Useful as a robustness check on the GBR-based deviation
models (similar importances from an uncorrelated ensemble strengthen the
Fig. 9 conclusions).
"""

from __future__ import annotations

import numpy as np

from repro.ml.tree import Binner, DecisionTreeRegressor


class RandomForestRegressor:
    """Bagging over histogram CART trees with feature subsampling."""

    def __init__(
        self,
        n_estimators: int = 60,
        max_depth: int = 6,
        min_samples_leaf: int = 3,
        max_features: float = 0.8,
        n_bins: int = 64,
        random_state: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0 < max_features <= 1:
            raise ValueError("max_features must be in (0, 1]")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.n_bins = n_bins
        self.random_state = random_state
        self.trees_: list[DecisionTreeRegressor] = []
        self._features: list[np.ndarray] = []
        self.binner_: Binner | None = None
        self.feature_importances_: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if x.ndim != 2 or len(x) != len(y):
            raise ValueError("x must be (n, h) with matching y")
        n, h = x.shape
        rng = np.random.default_rng(self.random_state)
        self.binner_ = Binner(self.n_bins).fit(x)
        binned = self.binner_.transform(x)

        k = max(1, int(round(self.max_features * h)))
        importances = np.zeros(h)
        self.trees_ = []
        self._features = []
        for _ in range(self.n_estimators):
            rows = rng.integers(0, n, size=n)  # bootstrap
            feats = np.sort(rng.choice(h, size=k, replace=False))
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                n_bins=self.n_bins,
            )
            tree.fit_binned(binned[rows][:, feats], y[rows])
            self.trees_.append(tree)
            self._features.append(feats)
            if tree.feature_importances_ is not None:
                importances[feats] += tree.feature_importances_
        s = importances.sum()
        self.feature_importances_ = importances / s if s > 0 else importances
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.binner_ is None:
            raise RuntimeError("model is not fitted")
        binned = self.binner_.transform(np.asarray(x, dtype=np.float64))
        acc = np.zeros(len(binned))
        for tree, feats in zip(self.trees_, self._features):
            acc += tree.predict_binned(binned[:, feats])
        return acc / len(self.trees_)
