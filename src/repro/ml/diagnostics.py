"""Model diagnostics: residuals, learning curves, calibration.

Tools an operator would use before trusting the forecaster with
scheduling decisions (the paper's intended deployment): is the model
biased in some regime, how much data does it need, and do its errors
concentrate where the system is busiest?
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.metrics import mae, mape, r2_score


@dataclass
class ResidualReport:
    """Residual structure of a fitted regressor on held-out data."""

    mean_error: float
    mae: float
    mape: float
    r2: float
    #: Pearson correlation of |residual| with the target magnitude —
    #: positive means errors grow where the system is slow (heteroscedastic).
    error_vs_level: float
    #: Residual quantiles (5%, 25%, 50%, 75%, 95%).
    quantiles: np.ndarray

    def is_unbiased(self, tol_fraction: float = 0.05) -> bool:
        """Mean error within ``tol_fraction`` of the target scale."""
        scale = max(abs(self.quantiles[-1] - self.quantiles[0]), 1e-12)
        return abs(self.mean_error) <= tol_fraction * scale


def residual_report(y_true: np.ndarray, y_pred: np.ndarray) -> ResidualReport:
    """Summarise prediction residuals."""
    y_true = np.asarray(y_true, dtype=np.float64).ravel()
    y_pred = np.asarray(y_pred, dtype=np.float64).ravel()
    if y_true.shape != y_pred.shape or len(y_true) == 0:
        raise ValueError("y_true and y_pred must be equal-length, non-empty")
    resid = y_pred - y_true
    if len(y_true) >= 3 and np.std(np.abs(resid)) > 0 and np.std(y_true) > 0:
        corr = float(np.corrcoef(np.abs(resid), y_true)[0, 1])
    else:
        corr = 0.0
    return ResidualReport(
        mean_error=float(resid.mean()),
        mae=mae(y_true, y_pred),
        mape=mape(y_true, y_pred),
        r2=r2_score(y_true, y_pred),
        error_vs_level=corr,
        quantiles=np.quantile(resid, [0.05, 0.25, 0.5, 0.75, 0.95]),
    )


def learning_curve(
    model_factory,
    x: np.ndarray,
    y: np.ndarray,
    fractions: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0),
    test_fraction: float = 0.25,
    seed: int = 0,
) -> list[tuple[int, float]]:
    """(train size, held-out MAPE) along growing training subsets.

    Answers the operator's question: how many historical runs before the
    forecaster is worth deploying?
    """
    x = np.asarray(x)
    y = np.asarray(y, dtype=np.float64)
    n = len(x)
    if n < 8:
        raise ValueError("need at least 8 samples")
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    n_test = max(2, int(round(test_fraction * n)))
    test = perm[:n_test]
    pool = perm[n_test:]
    out: list[tuple[int, float]] = []
    for frac in fractions:
        k = max(2, int(round(frac * len(pool))))
        train = pool[:k]
        model = model_factory(seed)
        model.fit(x[train], y[train])
        out.append((k, mape(y[test], model.predict(x[test]))))
    return out


def interval_coverage(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    width_fraction: float = 0.1,
) -> float:
    """Fraction of truths inside ``y_pred * (1 +/- width_fraction)``.

    A crude calibration check for percentage-style error bars.
    """
    y_true = np.asarray(y_true, dtype=np.float64).ravel()
    y_pred = np.asarray(y_pred, dtype=np.float64).ravel()
    if y_true.shape != y_pred.shape or len(y_true) == 0:
        raise ValueError("y_true and y_pred must be equal-length, non-empty")
    lo = y_pred * (1 - width_fraction)
    hi = y_pred * (1 + width_fraction)
    return float(np.mean((y_true >= np.minimum(lo, hi)) & (y_true <= np.maximum(lo, hi))))
