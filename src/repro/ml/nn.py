"""Minimal neural-network primitives: parameters, Adam, activations.

Just enough machinery for the attention forecaster — explicit forward and
backward passes in NumPy, no autograd.
"""

from __future__ import annotations

import numpy as np


class Adam:
    """Adam optimiser over a dict of named parameter arrays."""

    def __init__(
        self,
        params: dict[str, np.ndarray],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.params = params
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = {k: np.zeros_like(v) for k, v in params.items()}
        self._v = {k: np.zeros_like(v) for k, v in params.items()}
        self._t = 0

    def step(self, grads: dict[str, np.ndarray]) -> None:
        """Apply one update; ``grads`` keys must match the parameters."""
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        for k, g in grads.items():
            p = self.params[k]
            m = self._m[k]
            v = self._v[k]
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            m_hat = m / (1 - b1**self._t)
            v_hat = v / (1 - b2**self._t)
            p -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray) -> np.ndarray:
    return (x > 0).astype(x.dtype)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    z = x - x.max(axis=axis, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=axis, keepdims=True)


def softmax_backward(a: np.ndarray, grad: np.ndarray, axis: int = -1) -> np.ndarray:
    """Backward through softmax given its output ``a`` and upstream grad."""
    inner = (grad * a).sum(axis=axis, keepdims=True)
    return a * (grad - inner)


def glorot(rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    fan_in, fan_out = shape[0], shape[-1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)
