"""Ridge regression (closed form) — the related-work baseline.

Groves et al. (CLUSTER'17) correlated Aries counters with network
benchmarks using *simple linear regression*; the paper positions its
GBR/attention models against exactly that lineage.  A from-scratch ridge
regressor keeps the comparison honest and gives the library a fast,
well-understood baseline.
"""

from __future__ import annotations

import numpy as np

from repro.ml.scaling import StandardScaler


class RidgeRegressor:
    """L2-regularised linear regression, solved in closed form."""

    def __init__(self, alpha: float = 1.0) -> None:
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self._scaler: StandardScaler | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RidgeRegressor":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if x.ndim != 2 or len(x) != len(y):
            raise ValueError("x must be (n, h) with matching y")
        self._scaler = StandardScaler().fit(x)
        xs = self._scaler.transform(x)
        y_mean = y.mean()
        yc = y - y_mean
        h = xs.shape[1]
        gram = xs.T @ xs + self.alpha * np.eye(h)
        self.coef_ = np.linalg.solve(gram, xs.T @ yc)
        self.intercept_ = float(y_mean)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.coef_ is None or self._scaler is None:
            raise RuntimeError("model is not fitted")
        xs = self._scaler.transform(np.asarray(x, dtype=np.float64))
        return xs @ self.coef_ + self.intercept_

    @property
    def feature_importances_(self) -> np.ndarray:
        """|standardised coefficient| shares (sums to 1)."""
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        mag = np.abs(self.coef_)
        s = mag.sum()
        return mag / s if s > 0 else mag


def RidgeForecaster(alpha: float = 10.0):
    """Ridge over flattened (m, H) windows — the linear forecaster.

    A :class:`~repro.ml.pipeline.Pipeline` factory (kept under the old
    class name): the window flattening that used to be duplicated here
    now lives in one :class:`~repro.ml.pipeline.WindowFlattener` step.
    """
    from repro.ml.pipeline import Pipeline, WindowFlattener

    return Pipeline([WindowFlattener()], RidgeRegressor(alpha=alpha))
