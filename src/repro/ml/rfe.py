"""Recursive feature elimination with cross-validated relevance scores.

Paper §IV-B: *"RFE is built upon the idea of repeatedly constructing a
predictive model, identifying the worst performing feature (based on
feature importance), setting that feature aside, and then repeating the
process with the rest of the features.  ...  Finally, we compute the
relevance score of each feature as the likelihood of being chosen as a
well-performing feature across all the cross-validation splits."*

Implementation: on each CV split, run the elimination path on the train
fold, score every intermediate subset on the held-out fold, keep the
best-scoring subset, and count feature membership across splits.

Performance: the sweep fits O(H² · n_splits) boosted ensembles, and the
folds are embarrassingly parallel — :func:`relevance_scores` fans them
out over :mod:`repro.parallel` (``workers=`` / ``REPRO_WORKERS``), with
results reduced in fold order so any worker count yields bit-identical
``scores``/``mapes``/``chosen_subsets``.  Inside each fold, the quantile
:class:`~repro.ml.tree.Binner` is fitted once on the train fold and the
O(H) nested-subset refits reuse its codes by column slicing (quantile
edges are per-feature, so sliced codes are exactly what a per-subset
refit would bin); the k=H nested fit doubles as the full-feature MAPE
model instead of being fitted a third time.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.ml.gbr import GradientBoostedRegressor
from repro.ml.metrics import mape, rmse
from repro.ml.model_selection import KFold
from repro.ml.pipeline import Estimator
from repro.ml.tree import Binner
from repro.obs import span
from repro.parallel import effective_workers, parallel_map


def default_estimator() -> GradientBoostedRegressor:
    """The paper's model: gradient boosted regression trees."""
    return GradientBoostedRegressor(n_estimators=60, max_depth=3)


def _binned_surface(est) -> "tuple[object, int] | None":
    """(fit/predict-binned target, n_bins) when ``est`` supports the
    pre-binned fast path, else None.

    A stepless :class:`~repro.ml.pipeline.Pipeline` qualifies through
    its passthrough (spans/counters preserved); a bare estimator
    qualifies when it exposes the binned surface and its bin count.
    """
    if getattr(est, "supports_binned", False):
        return est, est.estimator.n_bins
    if (
        hasattr(est, "fit_binned")
        and hasattr(est, "predict_binned")
        and hasattr(est, "n_bins")
    ):
        return est, est.n_bins
    return None


class RFE:
    """Single-pass recursive feature elimination.

    Works with any :class:`~repro.ml.pipeline.Estimator` that exposes
    ``feature_importances_`` (GBR, forest, ridge, or a pipeline around
    one) — the paper uses GBR.
    """

    def __init__(
        self,
        estimator_factory: Callable[[], Estimator] = default_estimator,
        step: int = 1,
    ) -> None:
        if step < 1:
            raise ValueError("step must be >= 1")
        self.estimator_factory = estimator_factory
        self.step = step
        #: ranking_[f] = elimination rank of feature f; 1 = kept longest.
        self.ranking_: np.ndarray | None = None
        #: Elimination order, worst first.
        self.elimination_order_: list[int] = []

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        *,
        prebinned: "tuple[np.ndarray, Binner] | None" = None,
    ) -> "RFE":
        """Run the elimination path.

        ``prebinned`` optionally carries ``(codes, binner)`` for ``x``;
        when the factory's estimators support binned fits, each
        iteration then refits from column-sliced codes instead of
        re-binning the shrinking matrix (bit-identical models, since
        quantile edges are per-feature).
        """
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        h = x.shape[1]
        with span("ml.rfe.fit", features=h, n=len(x)):
            return self._fit(x, y, h, prebinned)

    def _fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        h: int,
        prebinned: "tuple[np.ndarray, Binner] | None" = None,
    ) -> "RFE":
        codes, binner = prebinned if prebinned is not None else (None, None)
        remaining = list(range(h))
        ranking = np.empty(h, dtype=np.int64)
        order: list[int] = []
        rank = h
        while len(remaining) > 1:
            est = self.estimator_factory()
            surface = _binned_surface(est) if codes is not None else None
            if surface is not None:
                target, _ = surface
                target.fit_binned(codes[:, remaining], y, binner.subset(remaining))
            else:
                est.fit(x[:, remaining], y)
            imp = est.feature_importances_
            k = min(self.step, len(remaining) - 1)
            worst_local = np.argsort(imp)[:k]
            # Eliminate worst-first so ranks are deterministic.
            for wl in sorted(worst_local, key=lambda i: imp[i]):
                f = remaining[wl]
                ranking[f] = rank
                rank -= 1
                order.append(f)
            remaining = [f for i, f in enumerate(remaining) if i not in set(worst_local)]
        ranking[remaining[0]] = 1
        self.ranking_ = ranking
        self.elimination_order_ = order
        return self


@dataclass
class RelevanceResult:
    """Cross-validated RFE relevance (one dataset's Fig. 9 column set)."""

    feature_names: list[str]
    #: Likelihood of each feature being in the best subset across splits.
    scores: np.ndarray
    #: Cross-validated prediction MAPE of the full-feature model (the
    #: paper reports < 5% for all datasets, §V-B).
    prediction_mape: float
    #: Per-split chosen subsets (feature indices), for inspection.
    chosen_subsets: list[list[int]] = field(default_factory=list)

    def top_features(self, k: int = 3) -> list[str]:
        order = np.argsort(-self.scores, kind="stable")
        return [self.feature_names[i] for i in order[:k]]


def _fold_relevance(
    xtr: np.ndarray,
    ytr: np.ndarray,
    xte: np.ndarray,
    yte: np.ndarray,
    off_te: "np.ndarray | None",
    estimator_factory: Callable[[], Estimator],
    fold: int,
) -> tuple[list[int], float]:
    """One CV fold: elimination path, nested-subset scoring, fold MAPE.

    Top-level so it pickles into pool workers; deterministic in its
    arguments, so the result is independent of which worker runs it.
    """
    with span("ml.rfe.fold", fold=fold):
        h = xtr.shape[1]
        # Bin the fold once; every nested refit below column-slices these
        # codes (per-feature quantile edges make that bit-identical to
        # re-binning the subset).  Falls back to plain fits when the
        # factory's estimators lack the binned surface.
        prebinned = None
        codes_tr = codes_te = binner = None
        surface = _binned_surface(estimator_factory())
        if surface is not None:
            _, n_bins = surface
            binner = Binner(n_bins).fit(xtr)
            codes_tr = binner.transform(xtr)
            codes_te = binner.transform(xte)
            prebinned = (codes_tr, binner)
        # Elimination path on the train fold.
        rfe = RFE(estimator_factory)
        rfe.fit(xtr, ytr, prebinned=prebinned)
        ranking = rfe.ranking_
        # Score nested subsets on the held-out fold; keep the best.
        best_err = np.inf
        best_subset: list[int] = list(range(h))
        full_pred: np.ndarray | None = None
        for k in range(1, h + 1):
            subset = [f for f in range(h) if ranking[f] <= k]
            est = estimator_factory()
            surface = _binned_surface(est) if prebinned is not None else None
            if surface is not None:
                target, _ = surface
                target.fit_binned(codes_tr[:, subset], ytr, binner.subset(subset))
                pred = target.predict_binned(codes_te[:, subset])
            else:
                est.fit(xtr[:, subset], ytr)
                pred = est.predict(xte[:, subset])
            err = rmse(yte, pred)
            if err < best_err - 1e-12:
                best_err = err
                best_subset = subset
            if k == h:
                # The k=H subset is every feature in order: this fit *is*
                # the full-feature model — reuse its predictions for the
                # reported MAPE instead of fitting a third time.
                full_pred = pred
        if off_te is not None:
            truth = yte + off_te
            full_pred = full_pred + off_te
        else:
            truth = yte
        return best_subset, float(mape(truth, full_pred))


def relevance_scores(
    x: np.ndarray,
    y: np.ndarray,
    feature_names: list[str],
    estimator_factory: Callable[[], Estimator] = default_estimator,
    n_splits: int = 10,
    seed: int = 0,
    mape_offset: np.ndarray | None = None,
    max_samples: int | None = 4000,
    workers: int | None = None,
) -> RelevanceResult:
    """Cross-validated RFE relevance scores (paper §IV-B / Fig. 9).

    Parameters
    ----------
    x, y:
        Mean-centered per-step samples: (NT, H) and (NT,).
    feature_names:
        Column labels (Table II abbreviations).
    n_splits:
        Folds (paper: 10).
    mape_offset:
        When ``y`` is a mean-centered deviation, the MAPE of the *time*
        prediction needs the mean trend back; pass the per-sample mean so
        the reported MAPE is on reconstructed absolute times.
    max_samples:
        Random subsample cap on the (NT) rows — the RFE sweep fits
        O(H^2 * n_splits) boosted ensembles, and a few thousand samples
        already pin the relevance ordering.  ``None`` disables.
    workers:
        CV folds are independent tasks fanned out over
        :mod:`repro.parallel` (``REPRO_WORKERS`` overrides; ``0`` = all
        cores; default serial).  Results reduce in fold order, so every
        worker count yields bit-identical output.  ``estimator_factory``
        must be picklable (a module-level function) when ``workers > 1``.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64).ravel()
    if x.shape[1] != len(feature_names):
        raise ValueError("feature_names must match x columns")
    if max_samples is not None and len(x) > max_samples:
        pick = np.random.default_rng(seed).choice(
            len(x), size=max_samples, replace=False
        )
        x = x[pick]
        y = y[pick]
        if mape_offset is not None:
            mape_offset = np.asarray(mape_offset)[pick]
    h = x.shape[1]
    kf = KFold(n_splits=n_splits, shuffle=True, seed=seed)
    tasks = []
    for fold, (train, test) in enumerate(kf.split(len(x))):
        off_te = mape_offset[test] if mape_offset is not None else None
        tasks.append(
            (x[train], y[train], x[test], y[test], off_te, estimator_factory, fold)
        )
    with span(
        "ml.rfe.relevance",
        features=h,
        n=len(x),
        splits=n_splits,
        workers=effective_workers(workers),
    ):
        fold_results = parallel_map(_fold_relevance, tasks, workers=workers)
    counts = np.zeros(h)
    chosen_all: list[list[int]] = []
    mapes: list[float] = []
    for best_subset, fold_mape in fold_results:
        counts[best_subset] += 1.0
        chosen_all.append(best_subset)
        mapes.append(fold_mape)
    return RelevanceResult(
        feature_names=list(feature_names),
        scores=counts / n_splits,
        prediction_mape=float(np.mean(mapes)),
        chosen_subsets=chosen_all,
    )
