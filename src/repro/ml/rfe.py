"""Recursive feature elimination with cross-validated relevance scores.

Paper §IV-B: *"RFE is built upon the idea of repeatedly constructing a
predictive model, identifying the worst performing feature (based on
feature importance), setting that feature aside, and then repeating the
process with the rest of the features.  ...  Finally, we compute the
relevance score of each feature as the likelihood of being chosen as a
well-performing feature across all the cross-validation splits."*

Implementation: on each CV split, run the elimination path on the train
fold, score every intermediate subset on the held-out fold, keep the
best-scoring subset, and count feature membership across splits.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.ml.gbr import GradientBoostedRegressor
from repro.ml.metrics import rmse
from repro.ml.model_selection import KFold
from repro.ml.pipeline import Estimator
from repro.obs import span


def default_estimator() -> GradientBoostedRegressor:
    """The paper's model: gradient boosted regression trees."""
    return GradientBoostedRegressor(n_estimators=60, max_depth=3)


class RFE:
    """Single-pass recursive feature elimination.

    Works with any :class:`~repro.ml.pipeline.Estimator` that exposes
    ``feature_importances_`` (GBR, forest, ridge, or a pipeline around
    one) — the paper uses GBR.
    """

    def __init__(
        self,
        estimator_factory: Callable[[], Estimator] = default_estimator,
        step: int = 1,
    ) -> None:
        if step < 1:
            raise ValueError("step must be >= 1")
        self.estimator_factory = estimator_factory
        self.step = step
        #: ranking_[f] = elimination rank of feature f; 1 = kept longest.
        self.ranking_: np.ndarray | None = None
        #: Elimination order, worst first.
        self.elimination_order_: list[int] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RFE":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        h = x.shape[1]
        with span("ml.rfe.fit", features=h, n=len(x)):
            return self._fit(x, y, h)

    def _fit(self, x: np.ndarray, y: np.ndarray, h: int) -> "RFE":
        remaining = list(range(h))
        ranking = np.empty(h, dtype=np.int64)
        order: list[int] = []
        rank = h
        while len(remaining) > 1:
            est = self.estimator_factory()
            est.fit(x[:, remaining], y)
            imp = est.feature_importances_
            k = min(self.step, len(remaining) - 1)
            worst_local = np.argsort(imp)[:k]
            # Eliminate worst-first so ranks are deterministic.
            for wl in sorted(worst_local, key=lambda i: imp[i]):
                f = remaining[wl]
                ranking[f] = rank
                rank -= 1
                order.append(f)
            remaining = [f for i, f in enumerate(remaining) if i not in set(worst_local)]
        ranking[remaining[0]] = 1
        self.ranking_ = ranking
        self.elimination_order_ = order
        return self


@dataclass
class RelevanceResult:
    """Cross-validated RFE relevance (one dataset's Fig. 9 column set)."""

    feature_names: list[str]
    #: Likelihood of each feature being in the best subset across splits.
    scores: np.ndarray
    #: Cross-validated prediction MAPE of the full-feature model (the
    #: paper reports < 5% for all datasets, §V-B).
    prediction_mape: float
    #: Per-split chosen subsets (feature indices), for inspection.
    chosen_subsets: list[list[int]] = field(default_factory=list)

    def top_features(self, k: int = 3) -> list[str]:
        order = np.argsort(-self.scores, kind="stable")
        return [self.feature_names[i] for i in order[:k]]


def relevance_scores(
    x: np.ndarray,
    y: np.ndarray,
    feature_names: list[str],
    estimator_factory: Callable[[], Estimator] = default_estimator,
    n_splits: int = 10,
    seed: int = 0,
    mape_offset: np.ndarray | None = None,
    max_samples: int | None = 4000,
) -> RelevanceResult:
    """Cross-validated RFE relevance scores (paper §IV-B / Fig. 9).

    Parameters
    ----------
    x, y:
        Mean-centered per-step samples: (NT, H) and (NT,).
    feature_names:
        Column labels (Table II abbreviations).
    n_splits:
        Folds (paper: 10).
    mape_offset:
        When ``y`` is a mean-centered deviation, the MAPE of the *time*
        prediction needs the mean trend back; pass the per-sample mean so
        the reported MAPE is on reconstructed absolute times.
    max_samples:
        Random subsample cap on the (NT) rows — the RFE sweep fits
        O(H^2 * n_splits) boosted ensembles, and a few thousand samples
        already pin the relevance ordering.  ``None`` disables.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64).ravel()
    if x.shape[1] != len(feature_names):
        raise ValueError("feature_names must match x columns")
    if max_samples is not None and len(x) > max_samples:
        pick = np.random.default_rng(seed).choice(
            len(x), size=max_samples, replace=False
        )
        x = x[pick]
        y = y[pick]
        if mape_offset is not None:
            mape_offset = np.asarray(mape_offset)[pick]
    h = x.shape[1]
    counts = np.zeros(h)
    chosen_all: list[list[int]] = []
    mapes: list[float] = []
    kf = KFold(n_splits=n_splits, shuffle=True, seed=seed)
    relevance_span = span(
        "ml.rfe.relevance", features=h, n=len(x), splits=n_splits
    )
    with relevance_span:
        for fold, (train, test) in enumerate(kf.split(len(x))):
            with span("ml.rfe.fold", fold=fold):
                # Elimination path on the train fold.
                rfe = RFE(estimator_factory)
                rfe.fit(x[train], y[train])
                ranking = rfe.ranking_
                # Score nested subsets on the held-out fold; keep the best.
                best_err = np.inf
                best_subset: list[int] = list(range(h))
                for k in range(1, h + 1):
                    subset = [f for f in range(h) if ranking[f] <= k]
                    est = estimator_factory()
                    est.fit(x[train][:, subset], y[train])
                    pred = est.predict(x[test][:, subset])
                    err = rmse(y[test], pred)
                    if err < best_err - 1e-12:
                        best_err = err
                        best_subset = subset
                counts[best_subset] += 1.0
                chosen_all.append(best_subset)
                # Full-model prediction MAPE on reconstructed targets.
                est = estimator_factory()
                est.fit(x[train], y[train])
                pred = est.predict(x[test])
                if mape_offset is not None:
                    truth = y[test] + mape_offset[test]
                    pred = pred + mape_offset[test]
                else:
                    truth = y[test]
                from repro.ml.metrics import mape as _mape

                mapes.append(_mape(truth, pred))
    return RelevanceResult(
        feature_names=list(feature_names),
        scores=counts / n_splits,
        prediction_mape=float(np.mean(mapes)),
        chosen_subsets=chosen_all,
    )
