"""Cross-validation splitters.

The paper uses 10-fold cross-validation for the deviation models (§IV-B)
and cross-validation splits for the forecasting MAPE (§IV-C).  Because
timesteps of the *same run* are correlated, the forecasting pipelines use
:class:`GroupKFold` with run indices as groups — holding out whole runs —
to avoid leakage.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np


class KFold:
    """Classic k-fold splitter with optional shuffling."""

    def __init__(
        self, n_splits: int = 10, shuffle: bool = True, seed: int = 0
    ) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.seed = seed

    def split(self, n: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield (train_idx, test_idx) pairs over ``n`` samples."""
        if n < self.n_splits:
            raise ValueError(f"cannot split {n} samples into {self.n_splits} folds")
        idx = np.arange(n)
        if self.shuffle:
            np.random.default_rng(self.seed).shuffle(idx)
        for fold in np.array_split(idx, self.n_splits):
            train = np.setdiff1d(idx, fold, assume_unique=False)
            yield train, fold


class GroupKFold:
    """K-fold over groups: all samples of a group land in the same fold."""

    def __init__(self, n_splits: int = 5, seed: int = 0) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.seed = seed

    def split(
        self, groups: np.ndarray
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        groups = np.asarray(groups)
        uniq = np.unique(groups)
        if len(uniq) < self.n_splits:
            raise ValueError(
                f"{len(uniq)} groups cannot fill {self.n_splits} folds"
            )
        order = uniq.copy()
        np.random.default_rng(self.seed).shuffle(order)
        for fold_groups in np.array_split(order, self.n_splits):
            test = np.flatnonzero(np.isin(groups, fold_groups))
            train = np.flatnonzero(~np.isin(groups, fold_groups))
            yield train, test


def train_test_split(
    n: int, test_fraction: float = 0.2, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Random index split."""
    if not 0 < test_fraction < 1:
        raise ValueError("test_fraction must be in (0, 1)")
    idx = np.arange(n)
    np.random.default_rng(seed).shuffle(idx)
    cut = max(1, int(round(n * test_fraction)))
    return np.sort(idx[cut:]), np.sort(idx[:cut])
