"""Rolling-window retraining and drift evaluation over streamed shards.

A streamed campaign (see :mod:`repro.campaign.streaming`) exposes its
datasets as ordered time-window shards.  The natural operational
question is **model drift**: how much worse does a forecaster trained
once on window 0 get on later windows than a forecaster retrained on
the window just before?  This module scores both policies per window:

* **fresh** — trained on window ``w - 1``, evaluated on window ``w``
  (the rolling-retrain policy an incremental facility would run);
* **stale** — trained on window 0, evaluated on window ``w`` (the
  train-once policy the one-shot campaign implies).

Every evaluation repeats over seeds, and the report carries variance
alongside means (the k-fold style of the forecasting grids): a drift
claim without spread is indistinguishable from seed noise.

:func:`rolling_drift` is the pure in-process driver; the memoized,
shard-addressed version lives in
:mod:`repro.experiments.stream_drift`, whose stage bodies call the same
:func:`score_on_shard` with the same seeds — identical numbers, two
doors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.features import FeatureSpec, get_store
from repro.ml.metrics import mape
from repro.obs import span

__all__ = [
    "score_on_shard",
    "WindowDrift",
    "DriftReport",
    "drift_report",
    "rolling_drift",
]


def score_on_shard(model, ds, m: int, k: int, tier: "str | FeatureSpec") -> float:
    """MAPE of a trained forecaster on one shard's (m, k, tier) windows.

    The windows come from the shard dataset's own
    :class:`~repro.features.FeatureStore`, so a provenance-stamped shard
    serves them from the persisted feature cache.
    """
    spec = FeatureSpec.resolve(tier)
    x, y, _ = get_store(ds).windows(spec, m, k)
    return float(mape(y, model.predict(x)))


@dataclass
class WindowDrift:
    """Fresh-vs-stale forecast error on one evaluation window."""

    window: int
    runs: int
    #: Per-seed MAPEs of the model retrained on window ``window - 1``.
    fresh: list[float] = field(default_factory=list)
    #: Per-seed MAPEs of the model trained once on window 0.
    stale: list[float] = field(default_factory=list)

    @property
    def fresh_mean(self) -> float:
        return float(np.mean(self.fresh))

    @property
    def fresh_std(self) -> float:
        return float(np.std(self.fresh))

    @property
    def stale_mean(self) -> float:
        return float(np.mean(self.stale))

    @property
    def stale_std(self) -> float:
        return float(np.std(self.stale))

    @property
    def drift(self) -> float:
        """Stale-minus-fresh mean MAPE: positive = retraining helps."""
        return self.stale_mean - self.fresh_mean


@dataclass
class DriftReport:
    """The per-window MAPE trajectory of one dataset key's stream."""

    key: str
    m: int
    k: int
    tier: str
    seeds: tuple
    windows: list[WindowDrift] = field(default_factory=list)

    @property
    def mean_drift(self) -> float:
        """Mean stale-minus-fresh MAPE across evaluation windows."""
        if not self.windows:
            return 0.0
        return float(np.mean([w.drift for w in self.windows]))

    def rows(self) -> list[list[str]]:
        """Table rows: window | runs | fresh | stale | drift."""
        return [
            [
                f"w{w.window}",
                str(w.runs),
                f"{w.fresh_mean:.2f} ± {w.fresh_std:.2f}",
                f"{w.stale_mean:.2f} ± {w.stale_std:.2f}",
                f"{w.drift:+.2f}",
            ]
            for w in self.windows
        ]


def drift_report(
    key: str,
    m: int,
    k: int,
    tier: str,
    seeds: tuple,
    evals: "list[dict]",
) -> DriftReport:
    """Assemble a :class:`DriftReport` from per-window evaluation dicts.

    Each entry carries ``window``, ``runs``, and per-seed ``fresh`` /
    ``stale`` MAPE lists — the exact payload the
    ``sd-eval`` stages of :mod:`repro.experiments.stream_drift` emit.
    """
    return DriftReport(
        key=key,
        m=m,
        k=k,
        tier=tier,
        seeds=tuple(seeds),
        windows=[
            WindowDrift(
                window=int(e["window"]),
                runs=int(e["runs"]),
                fresh=[float(v) for v in e["fresh"]],
                stale=[float(v) for v in e["stale"]],
            )
            for e in sorted(evals, key=lambda e: e["window"])
        ],
    )


def rolling_drift(
    ds,
    m: int,
    k: int,
    tier: "str | FeatureSpec" = "app",
    seeds: tuple = (0, 1),
    model_factory=None,
) -> DriftReport:
    """Rolling-window retraining over a streamed dataset's shards.

    For every evaluation window ``w >= 1``: train per seed on shard
    ``w - 1`` (fresh) and on shard 0 (stale), score both on shard ``w``.
    Pure and in-process — the memoized experiment graph
    (:func:`repro.experiments.stream_drift.stream_drift`) computes the
    identical numbers stage by stage.
    """
    from repro.analysis.forecasting import default_forecaster, fit_forecaster
    from repro.campaign.streaming import shard_view

    factory = model_factory or default_forecaster
    spec = FeatureSpec.resolve(tier)
    views = getattr(ds, "shard_views", None) or [ds]
    report = DriftReport(
        key=ds.key, m=m, k=k, tier=spec.name, seeds=tuple(seeds)
    )
    with span(
        "ml.rolling_drift", dataset=ds.key, windows=len(views), m=m, k=k
    ):
        stale_models = {
            s: fit_forecaster(
                shard_view(ds, 0), m, k, spec, seed=s, model_factory=factory
            )
            for s in seeds
        }
        prev = dict(stale_models)
        for w in range(1, len(views)):
            shard = shard_view(ds, w)
            drift = WindowDrift(window=w, runs=len(shard))
            for s in seeds:
                drift.fresh.append(score_on_shard(prev[s], shard, m, k, spec))
                drift.stale.append(
                    score_on_shard(stale_models[s], shard, m, k, spec)
                )
            report.windows.append(drift)
            prev = {
                s: fit_forecaster(
                    shard, m, k, spec, seed=s, model_factory=factory
                )
                for s in seeds
            }
    return report
