"""Mutual information (paper §IV-A, Eq. 1).

    I(X; Y) = sum_{x,y} P(x,y) log( P(x,y) / (P(x) P(y)) )

computed from empirical joint distributions.  The neighbourhood analysis
uses the binary/binary case: X = "user u had a job running alongside run
r", Y = "run r was optimal".  Natural log (nats) throughout.
"""

from __future__ import annotations

import numpy as np


def mutual_information_discrete(x: np.ndarray, y: np.ndarray) -> float:
    """MI between two discrete variables sampled jointly."""
    x = np.asarray(x)
    y = np.asarray(y)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be equal-length 1-D arrays")
    n = len(x)
    if n == 0:
        raise ValueError("empty input")
    _, xi = np.unique(x, return_inverse=True)
    _, yi = np.unique(y, return_inverse=True)
    nx = xi.max() + 1
    ny = yi.max() + 1
    joint = np.bincount(xi * ny + yi, minlength=nx * ny).reshape(nx, ny) / n
    px = joint.sum(axis=1, keepdims=True)
    py = joint.sum(axis=0, keepdims=True)
    mask = joint > 0
    ratio = np.where(mask, joint / np.where(mask, px * py, 1.0), 1.0)
    return float(np.sum(joint[mask] * np.log(ratio[mask])))


def mutual_information_binary(x: np.ndarray, y: np.ndarray) -> float:
    """MI between two binary variables (fast path of the general case)."""
    x = np.asarray(x).astype(bool)
    y = np.asarray(y).astype(bool)
    return mutual_information_discrete(x.astype(np.int8), y.astype(np.int8))


def columnwise_mi(m: np.ndarray, p: np.ndarray) -> np.ndarray:
    """MI of each column of binary matrix ``m`` with binary vector ``p``.

    This is the paper's user-vs-optimality computation: ``m`` is the
    N x |U| co-occurrence matrix, ``p`` the optimality vector (§IV-A).
    """
    m = np.asarray(m)
    p = np.asarray(p)
    if m.ndim != 2 or len(p) != m.shape[0]:
        raise ValueError("m must be (N, U) and p length-N")
    return np.array(
        [mutual_information_binary(m[:, j], p) for j in range(m.shape[1])]
    )


def mutual_information_histogram(
    x: np.ndarray, y: np.ndarray, bins: int = 16
) -> float:
    """MI between two continuous variables via equal-frequency binning."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be equal-length 1-D arrays")
    qx = np.quantile(x, np.linspace(0, 1, bins + 1)[1:-1])
    qy = np.quantile(y, np.linspace(0, 1, bins + 1)[1:-1])
    xd = np.searchsorted(np.unique(qx), x)
    yd = np.searchsorted(np.unique(qy), y)
    return mutual_information_discrete(xd, yd)
