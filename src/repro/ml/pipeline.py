"""Common Estimator protocol and composable pipelines.

Every model in :mod:`repro.ml` exposes the same minimal surface —
``fit(x, y) -> self``, ``predict(x) -> np.ndarray``, and (for the tree
ensembles and ridge) ``feature_importances_``.  This module names that
surface (:class:`Estimator`) and adds the composition pieces the
analysis stack needs so GBR, ridge, forest, and the attention forecaster
are interchangeable in RFE, the baseline comparisons, and forecasting:

* :class:`WindowFlattener` — (n, m, H) window tensors -> (n, m*H) rows,
  so flat regressors consume the same windows the attention model does
  (this replaces the ad-hoc per-model flattening wrappers);
* :class:`ScalerStep` — standardisation as a pipeline step;
* :class:`Pipeline` — steps -> estimator, with importances folded back
  through the steps (a flattened window's m*H importances aggregate to
  per-channel scores);
* :func:`make_forecaster` — the registry of window forecasters.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.ml.scaling import StandardScaler
from repro.obs import METRICS, span


@runtime_checkable
class Estimator(Protocol):
    """What RFE, the baselines, and the forecasting drivers require."""

    def fit(self, x: np.ndarray, y: np.ndarray) -> "Estimator": ...

    def predict(self, x: np.ndarray) -> np.ndarray: ...


@runtime_checkable
class Transform(Protocol):
    """A fittable, re-applicable array transform (pipeline step)."""

    def fit(self, x: np.ndarray, y: np.ndarray | None = None) -> "Transform": ...

    def transform(self, x: np.ndarray) -> np.ndarray: ...


class WindowFlattener:
    """(n, m, H) window tensors -> (n, m*H) flat rows.

    ``fold_importances`` maps the estimator's m*H importances back to H
    per-channel scores by summing over the temporal axis.
    """

    def __init__(self) -> None:
        self.m_: int | None = None
        self.h_: int | None = None

    def _check(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 3:
            raise ValueError("x must be (n, m, H) windows")
        return x

    def fit(self, x: np.ndarray, y: np.ndarray | None = None) -> "WindowFlattener":
        x = self._check(x)
        self.m_, self.h_ = x.shape[1], x.shape[2]
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        x = self._check(x)
        return x.reshape(len(x), -1)

    def fold_importances(self, imp: np.ndarray) -> np.ndarray:
        if self.m_ is None or self.h_ is None:
            raise RuntimeError("flattener is not fitted")
        return np.asarray(imp).reshape(self.m_, self.h_).sum(axis=0)


class ScalerStep:
    """Zero-mean / unit-variance scaling as a pipeline step (2-D rows)."""

    def __init__(self) -> None:
        self._scaler: StandardScaler | None = None

    def fit(self, x: np.ndarray, y: np.ndarray | None = None) -> "ScalerStep":
        self._scaler = StandardScaler().fit(np.asarray(x, dtype=np.float64))
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self._scaler is None:
            raise RuntimeError("scaler step is not fitted")
        return self._scaler.transform(np.asarray(x, dtype=np.float64))


class Pipeline:
    """Transforms feeding an estimator, presenting the Estimator surface.

    ``feature_importances_`` delegates to the estimator and folds the
    result back through any step that defines ``fold_importances`` (in
    reverse order), so a windowed GBR reports per-channel importances.
    """

    def __init__(self, steps: Sequence[Transform], estimator: Estimator) -> None:
        self.steps = list(steps)
        self.estimator = estimator

    def fit(self, x: np.ndarray, y: np.ndarray) -> "Pipeline":
        est_name = type(self.estimator).__name__
        with span("ml.pipeline.fit", estimator=est_name, n=len(x)):
            for step in self.steps:
                with span("ml.step.fit", step=type(step).__name__):
                    x = step.fit(x, y).transform(x)
            with span("ml.estimator.fit", estimator=est_name, n=len(x)):
                self.estimator.fit(x, y)
            METRICS.counter("ml.pipeline.fits").inc()
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        est_name = type(self.estimator).__name__
        with span("ml.pipeline.predict", estimator=est_name, n=len(x)):
            for step in self.steps:
                with span("ml.step.predict", step=type(step).__name__):
                    x = step.transform(x)
            with span("ml.estimator.predict", estimator=est_name):
                return self.estimator.predict(x)

    # -- pre-binned fast path (RFE nested refits) ----------------------- #

    @property
    def supports_binned(self) -> bool:
        """Can this pipeline fit/predict from pre-binned codes?

        Only a *stepless* pipeline can: codes are not a transformable
        feature space, so any step would be bypassed silently.
        """
        return not self.steps and hasattr(self.estimator, "fit_binned")

    def fit_binned(self, binned: np.ndarray, y: np.ndarray, binner) -> "Pipeline":
        """Delegate a pre-binned fit to the estimator (stepless only).

        Emits the same span/counter as :meth:`fit`, so observability
        counts every model fit no matter which door it came through.
        """
        if not self.supports_binned:
            raise RuntimeError(
                "fit_binned requires a stepless pipeline around a "
                "binned-capable estimator"
            )
        est_name = type(self.estimator).__name__
        with span("ml.pipeline.fit", estimator=est_name, n=len(binned), binned=True):
            self.estimator.fit_binned(binned, y, binner)
            METRICS.counter("ml.pipeline.fits").inc()
        return self

    def predict_binned(self, binned: np.ndarray) -> np.ndarray:
        if not self.supports_binned:
            raise RuntimeError(
                "predict_binned requires a stepless pipeline around a "
                "binned-capable estimator"
            )
        est_name = type(self.estimator).__name__
        with span("ml.pipeline.predict", estimator=est_name, n=len(binned), binned=True):
            return self.estimator.predict_binned(binned)

    @property
    def feature_importances_(self) -> np.ndarray:
        imp = getattr(self.estimator, "feature_importances_", None)
        if imp is None:
            raise AttributeError(
                f"{type(self.estimator).__name__} exposes no feature_importances_"
            )
        for step in reversed(self.steps):
            fold = getattr(step, "fold_importances", None)
            if fold is not None:
                imp = fold(imp)
        return imp


class MeanTargetForecaster:
    """Predict the training-mean target — the weakest sane baseline."""

    def __init__(self) -> None:
        self._mean: float = 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "MeanTargetForecaster":
        self._mean = float(np.asarray(y, dtype=np.float64).mean())
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.full(len(x), self._mean)


def make_forecaster(name: str, seed: int = 0, **kwargs) -> Estimator:
    """A window forecaster by name, all consuming (n, m, H) tensors.

    ``attention`` — the paper's scalar dot-product attention model;
    ``gbr`` / ``forest`` / ``ridge`` — flat regressors behind a
    :class:`WindowFlattener`; ``mean-target`` — the no-learning floor.
    Extra ``kwargs`` reach the underlying model's constructor.
    """
    if name == "attention":
        from repro.ml.attention import AttentionForecaster

        return AttentionForecaster(seed=seed, **kwargs)
    if name == "gbr":
        from repro.ml.gbr import GradientBoostedRegressor

        params = dict(n_estimators=120, max_depth=3, learning_rate=0.08)
        params.update(kwargs)
        return Pipeline(
            [WindowFlattener()],
            GradientBoostedRegressor(random_state=seed, **params),
        )
    if name == "forest":
        from repro.ml.forest import RandomForestRegressor

        return Pipeline(
            [WindowFlattener()], RandomForestRegressor(random_state=seed, **kwargs)
        )
    if name == "ridge":
        from repro.ml.linear import RidgeRegressor

        return Pipeline(
            [WindowFlattener()], RidgeRegressor(alpha=kwargs.pop("alpha", 10.0))
        )
    if name == "mean-target":
        return MeanTargetForecaster()
    raise ValueError(
        f"unknown forecaster {name!r}; expected one of "
        "['attention', 'gbr', 'forest', 'ridge', 'mean-target']"
    )


# Rolling-window retraining over streamed shards lives in
# :mod:`repro.ml.drift`; re-exported here because the drift report is
# the pipeline-level product of the streaming facility mode.
from repro.ml.drift import (  # noqa: E402
    DriftReport,
    WindowDrift,
    drift_report,
    rolling_drift,
    score_on_shard,
)
