"""From-scratch ML substrate (no sklearn/torch in the environment).

Implements exactly what the paper's pipelines need:

* :mod:`~repro.ml.tree` / :mod:`~repro.ml.gbr` — histogram decision trees
  and gradient boosted regression (Friedman 2001), used by the deviation
  models (§IV-B);
* :mod:`~repro.ml.rfe` — recursive feature elimination with cross-
  validated relevance scores (Fig. 9);
* :mod:`~repro.ml.mi` — mutual information for the neighbourhood analysis
  (§IV-A, Table III);
* :mod:`~repro.ml.attention` — the scalar dot-product attention + MLP
  forecaster (§IV-C, Vaswani et al. 2017), trained with Adam
  (:mod:`~repro.ml.nn`);
* :mod:`~repro.ml.pipeline` — the :class:`Estimator` protocol every
  model satisfies, composable :class:`Pipeline` steps (scaler,
  windower), and the :func:`make_forecaster` registry that makes GBR,
  ridge, forest, and attention interchangeable;
* metrics, scalers and CV splitters.
"""

from repro.ml.attention import AttentionForecaster
from repro.ml.drift import (
    DriftReport,
    WindowDrift,
    drift_report,
    rolling_drift,
    score_on_shard,
)
from repro.ml.forest import RandomForestRegressor
from repro.ml.gbr import GradientBoostedRegressor
from repro.ml.linear import RidgeRegressor
from repro.ml.metrics import mae, mape, r2_score, rmse
from repro.ml.mi import mutual_information_binary, mutual_information_discrete
from repro.ml.model_selection import GroupKFold, KFold, train_test_split
from repro.ml.pipeline import (
    Estimator,
    MeanTargetForecaster,
    Pipeline,
    ScalerStep,
    WindowFlattener,
    make_forecaster,
)
from repro.ml.rfe import RFE, relevance_scores
from repro.ml.scaling import StandardScaler
from repro.ml.tree import DecisionTreeRegressor

__all__ = [
    "AttentionForecaster",
    "GradientBoostedRegressor",
    "RandomForestRegressor",
    "RidgeRegressor",
    "DecisionTreeRegressor",
    "Estimator",
    "Pipeline",
    "WindowFlattener",
    "ScalerStep",
    "MeanTargetForecaster",
    "make_forecaster",
    "DriftReport",
    "WindowDrift",
    "drift_report",
    "rolling_drift",
    "score_on_shard",
    "RFE",
    "relevance_scores",
    "mutual_information_binary",
    "mutual_information_discrete",
    "mape",
    "mae",
    "rmse",
    "r2_score",
    "KFold",
    "GroupKFold",
    "train_test_split",
    "StandardScaler",
]
