"""Regression metrics.

MAPE is the paper's headline metric for both the deviation models (<5%,
§V-B) and the forecasting ablations (Figs. 8 and 10).
"""

from __future__ import annotations

import numpy as np


def _check(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=np.float64).ravel()
    y_pred = np.asarray(y_pred, dtype=np.float64).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    if len(y_true) == 0:
        raise ValueError("empty input")
    return y_true, y_pred


def mape(y_true: np.ndarray, y_pred: np.ndarray, eps: float = 1e-12) -> float:
    """Mean absolute percentage error, in percent."""
    y_true, y_pred = _check(y_true, y_pred)
    denom = np.maximum(np.abs(y_true), eps)
    return float(100.0 * np.mean(np.abs(y_true - y_pred) / denom))


def mae(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean absolute error."""
    y_true, y_pred = _check(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def rmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Root mean squared error."""
    y_true, y_pred = _check(y_true, y_pred)
    return float(np.sqrt(np.mean((y_true - y_pred) ** 2)))


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination (1 = perfect, 0 = mean predictor)."""
    y_true, y_pred = _check(y_true, y_pred)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot
