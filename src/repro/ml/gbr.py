"""Gradient boosted regression (Friedman 2001; paper §IV-B, Eq. 2–3).

Least-squares boosting: each stage fits a shallow histogram tree to the
negative gradient of the loss (for L2, the residual), and the ensemble is
the learning-rate-weighted sum.  Feature importances are the gain totals
accumulated over all trees — the quantity RFE eliminates on.
"""

from __future__ import annotations

import numpy as np

from repro.ml.tree import Binner, DecisionTreeRegressor


class GradientBoostedRegressor:
    """L2 gradient boosting over histogram trees."""

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.08,
        max_depth: int = 3,
        min_samples_leaf: int = 5,
        subsample: float = 0.8,
        n_bins: int = 64,
        random_state: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0 < learning_rate <= 1:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0 < subsample <= 1:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.n_bins = n_bins
        self.random_state = random_state
        self.trees_: list[DecisionTreeRegressor] = []
        self.init_: float = 0.0
        self.binner_: Binner | None = None
        self.feature_importances_: np.ndarray | None = None
        self.train_score_: list[float] = []

    # ------------------------------------------------------------------ #

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GradientBoostedRegressor":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if x.ndim != 2 or len(x) != len(y):
            raise ValueError("x must be (n, h) and y length-n")
        binner = Binner(self.n_bins).fit(x)
        return self.fit_binned(binner.transform(x), y, binner)

    def fit_binned(
        self, binned: np.ndarray, y: np.ndarray, binner: Binner
    ) -> "GradientBoostedRegressor":
        """Fit on pre-binned uint8 codes (the RFE nested-refit fast path).

        ``binner`` must be the fitted binner that produced ``binned``
        (or a :meth:`Binner.subset` of one, with ``binned`` column-
        sliced to match) — it is stored for :meth:`predict`.  Because
        quantile edges are per-feature, ``fit(x[:, cols], y)`` and
        ``fit_binned(codes[:, cols], y, binner.subset(cols))`` produce
        bit-identical models.
        """
        y = np.asarray(y, dtype=np.float64).ravel()
        if binned.ndim != 2 or len(binned) != len(y):
            raise ValueError("binned must be (n, h) and y length-n")
        n, h = binned.shape
        rng = np.random.default_rng(self.random_state)
        self.binner_ = binner

        self.init_ = float(y.mean())
        pred = np.full(n, self.init_)
        self.trees_ = []
        self.train_score_ = []
        importances = np.zeros(h)

        sub_n = max(2 * self.min_samples_leaf, int(round(self.subsample * n)))
        sub_n = min(sub_n, n)
        for _ in range(self.n_estimators):
            residual = y - pred
            if self.subsample < 1.0:
                idx = rng.choice(n, size=sub_n, replace=False)
            else:
                idx = np.arange(n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                n_bins=self.n_bins,
            )
            tree.fit_binned(binned[idx], residual[idx])
            pred += self.learning_rate * tree.predict_binned(binned)
            self.trees_.append(tree)
            if tree.feature_importances_ is not None:
                importances += tree.feature_importances_
            self.train_score_.append(float(np.mean((y - pred) ** 2)))

        s = importances.sum()
        self.feature_importances_ = importances / s if s > 0 else importances
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.binner_ is None:
            raise RuntimeError("model is not fitted")
        x = np.asarray(x, dtype=np.float64)
        return self.predict_binned(self.binner_.transform(x))

    def predict_binned(self, binned: np.ndarray) -> np.ndarray:
        """Predict from codes already binned with this model's binner."""
        pred = np.full(len(binned), self.init_)
        for tree in self.trees_:
            pred += self.learning_rate * tree.predict_binned(binned)
        return pred

    def staged_predict(self, x: np.ndarray):
        """Yield predictions after each boosting stage (diagnostics)."""
        if self.binner_ is None:
            raise RuntimeError("model is not fitted")
        binned = self.binner_.transform(np.asarray(x, dtype=np.float64))
        pred = np.full(len(binned), self.init_)
        for tree in self.trees_:
            pred = pred + self.learning_rate * tree.predict_binned(binned)
            yield pred.copy()
