"""Histogram-based decision-tree regression (the GBR base learner).

Features are quantile-binned once (uint8 codes); split search per node is
then a handful of ``bincount`` calls and cumulative scans per feature —
the same design as LightGBM/sklearn's ``HistGradientBoosting``, scaled
down.  Gradient boosting fits hundreds of trees per dataset, so this
vectorisation is what keeps the Fig. 9 RFE sweep tractable.
"""

from __future__ import annotations

import numpy as np

#: Sentinel for leaves in the node arrays.
_LEAF = -1


class Binner:
    """Quantile binning shared by all trees of an ensemble."""

    def __init__(self, n_bins: int = 64) -> None:
        if not 2 <= n_bins <= 256:
            raise ValueError("n_bins must be in [2, 256]")
        self.n_bins = n_bins
        self.edges_: list[np.ndarray] | None = None

    def fit(self, x: np.ndarray) -> "Binner":
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError("x must be 2-D (n_samples, n_features)")
        qs = np.linspace(0, 1, self.n_bins + 1)[1:-1]
        self.edges_ = [
            np.unique(np.quantile(x[:, f], qs)) for f in range(x.shape[1])
        ]
        return self

    #: Row-chunk size for the vectorized transform (bounds the transient
    #: (rows, H, E) comparison tensor to a few MB).
    _CHUNK_ROWS = 4096

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.edges_ is None:
            raise RuntimeError("binner is not fitted")
        x = np.asarray(x, dtype=np.float64)
        lens = {len(e) for e in self.edges_}
        # Fast path: when every feature kept the same number of edges
        # (the common case — deduplication only shrinks constant-ish
        # columns), one broadcast comparison replaces the per-feature
        # searchsorted loop.  ``searchsorted(edges, v, 'right')`` is the
        # count of edges <= v for sorted edges, except for NaN (which
        # sorts last) — so NaN rows take the reference loop.
        if len(lens) == 1 and next(iter(lens)) > 0 and not np.isnan(x).any():
            edges = np.stack(self.edges_)  # (H, E)
            out = np.empty(x.shape, dtype=np.uint8)
            for lo in range(0, len(x), self._CHUNK_ROWS):
                chunk = x[lo : lo + self._CHUNK_ROWS]
                np.sum(
                    chunk[:, :, None] >= edges[None, :, :],
                    axis=2,
                    dtype=np.uint8,
                    out=out[lo : lo + len(chunk)],
                )
            return out
        out = np.empty(x.shape, dtype=np.uint8)
        for f, edges in enumerate(self.edges_):
            out[:, f] = np.searchsorted(edges, x[:, f], side="right")
        return out

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def subset(self, features: "list[int] | np.ndarray") -> "Binner":
        """A fitted binner over a column subset.

        Quantile edges are computed per feature, so the binner fitted on
        ``x[:, features]`` is exactly this binner restricted to those
        columns — the identity the RFE sweep exploits to bin each fold
        once and refit nested subsets by column slicing.
        """
        if self.edges_ is None:
            raise RuntimeError("binner is not fitted")
        sub = Binner(self.n_bins)
        sub.edges_ = [self.edges_[int(f)] for f in features]
        return sub

    def bin_upper_value(self, feature: int, bin_idx: int) -> float:
        """Numeric threshold equivalent of splitting after ``bin_idx``."""
        edges = self.edges_[feature]
        if len(edges) == 0:
            return np.inf
        return float(edges[min(bin_idx, len(edges) - 1)])


class DecisionTreeRegressor:
    """CART regression tree over binned features (squared-error split)."""

    def __init__(
        self,
        max_depth: int = 3,
        min_samples_leaf: int = 5,
        n_bins: int = 64,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.n_bins = n_bins
        self.binner: Binner | None = None
        # Flat node arrays (grown dynamically).
        self._feature: list[int] = []
        self._split_bin: list[int] = []
        self._left: list[int] = []
        self._right: list[int] = []
        self._value: list[float] = []
        self.feature_importances_: np.ndarray | None = None

    # ------------------------------------------------------------------ #

    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if x.ndim != 2 or len(x) != len(y):
            raise ValueError("x must be (n, h) and y length-n")
        self.binner = Binner(self.n_bins).fit(x)
        return self.fit_binned(self.binner.transform(x), y)

    def fit_binned(
        self, binned: np.ndarray, y: np.ndarray
    ) -> "DecisionTreeRegressor":
        """Fit on pre-binned uint8 codes (ensemble fast path)."""
        n, h = binned.shape
        gains = np.zeros(h)
        self._feature, self._split_bin = [], []
        self._left, self._right, self._value = [], [], []

        def new_node() -> int:
            self._feature.append(_LEAF)
            self._split_bin.append(0)
            self._left.append(_LEAF)
            self._right.append(_LEAF)
            self._value.append(0.0)
            return len(self._value) - 1

        root = new_node()
        stack: list[tuple[int, np.ndarray, int]] = [(root, np.arange(n), 0)]
        min_leaf = self.min_samples_leaf
        nb = self.n_bins

        while stack:
            node, idx, depth = stack.pop()
            ys = y[idx]
            total = ys.sum()
            count = len(idx)
            self._value[node] = total / count
            if depth >= self.max_depth or count < 2 * min_leaf:
                continue
            base = total * total / count
            best_gain = 1e-12
            best_f = -1
            best_bin = -1
            sub = binned[idx]
            for f in range(h):
                codes = sub[:, f]
                cnt = np.bincount(codes, minlength=nb).astype(np.float64)
                sm = np.bincount(codes, weights=ys, minlength=nb)
                c_cnt = np.cumsum(cnt)[:-1]
                c_sum = np.cumsum(sm)[:-1]
                n_r = count - c_cnt
                valid = (c_cnt >= min_leaf) & (n_r >= min_leaf)
                if not valid.any():
                    continue
                with np.errstate(divide="ignore", invalid="ignore"):
                    gain = (
                        c_sum**2 / np.maximum(c_cnt, 1)
                        + (total - c_sum) ** 2 / np.maximum(n_r, 1)
                        - base
                    )
                gain[~valid] = -np.inf
                b = int(np.argmax(gain))
                if gain[b] > best_gain:
                    best_gain = float(gain[b])
                    best_f = f
                    best_bin = b
            if best_f < 0:
                continue
            go_left = sub[:, best_f] <= best_bin
            li, ri = idx[go_left], idx[~go_left]
            gains[best_f] += best_gain
            self._feature[node] = best_f
            self._split_bin[node] = best_bin
            l_node = new_node()
            r_node = new_node()
            self._left[node] = l_node
            self._right[node] = r_node
            stack.append((l_node, li, depth + 1))
            stack.append((r_node, ri, depth + 1))

        s = gains.sum()
        self.feature_importances_ = gains / s if s > 0 else gains
        # Freeze node arrays.
        self._nf = np.asarray(self._feature)
        self._nb_arr = np.asarray(self._split_bin)
        self._nl = np.asarray(self._left)
        self._nr = np.asarray(self._right)
        self._nv = np.asarray(self._value)
        return self

    # ------------------------------------------------------------------ #

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.binner is None:
            raise RuntimeError("tree was fitted on pre-binned data; use "
                               "predict_binned, or fit(x, y) first")
        return self.predict_binned(self.binner.transform(np.asarray(x, dtype=np.float64)))

    def predict_binned(self, binned: np.ndarray) -> np.ndarray:
        node = np.zeros(len(binned), dtype=np.int64)
        for _ in range(self.max_depth + 1):
            feat = self._nf[node]
            internal = feat != _LEAF
            if not internal.any():
                break
            rows = np.flatnonzero(internal)
            f = feat[rows]
            go_left = binned[rows, f] <= self._nb_arr[node[rows]]
            node[rows] = np.where(
                go_left, self._nl[node[rows]], self._nr[node[rows]]
            )
        return self._nv[node]

    @property
    def node_count(self) -> int:
        return len(self._value)
