"""Packet-level discrete-event simulator — validation of the flow engine.

The campaign's congestion engine is an *aggregate-flow* model (DESIGN.md
§4): fast enough for 40,000 step solves, but analytic.  This module is
its ground truth: a small discrete-event simulator that moves individual
packets over the same dragonfly, with

* FIFO output queues per directed link (service time = bytes/bandwidth),
* true per-packet UGAL routing — each packet compares the current
  backlog along its minimal route against a randomly chosen Valiant
  candidate, scaled by hop count (UGAL-G flavour; Kim et al., ISCA'08),
* per-link busy/queue statistics and per-flow latency stretch.

It is intentionally small-scale (tiny topologies, 10^4–10^5 packets): the
validation suite checks that where the two models overlap — link
utilisation, stall ordering, slowdown direction — they agree, which is
what justifies using the fast engine for the full campaign.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.network.traffic import FlowSet
from repro.topology.dragonfly import DragonflyTopology

#: Packet payload in bytes (Aries packets carry up to 64 B; we simulate
#: larger aggregates to keep event counts tractable).
PACKET_BYTES = 4096.0

#: UGAL-L threshold bias: minimal is preferred unless its queue is this
#: many packets deeper than the Valiant candidate's (scaled by hops).
UGAL_BIAS = 2.0


@dataclass
class _Packet:
    flow: int
    src: int
    dst: int
    route: list[int] | None = None  # decided at injection time
    hop: int = 0
    created: float = 0.0


@dataclass
class LinkStats:
    """Per-link outcome of a simulation."""

    busy_time: np.ndarray
    queue_time: np.ndarray
    packets: np.ndarray

    def utilisation(self, horizon: float) -> np.ndarray:
        return self.busy_time / horizon

    def mean_queue_delay(self) -> np.ndarray:
        return self.queue_time / np.maximum(self.packets, 1)


@dataclass
class DESResult:
    """Aggregate outcome of one discrete-event run."""

    horizon: float
    link_stats: LinkStats
    #: Mean end-to-end latency per flow (seconds).
    flow_latency: np.ndarray
    #: Mean unloaded (service-only) latency per flow.
    flow_latency_min: np.ndarray
    #: Packets delivered per flow.
    flow_packets: np.ndarray
    #: Fraction of packets routed minimally, per flow.
    minimal_fraction: np.ndarray

    def flow_stretch(self) -> np.ndarray:
        """Latency stretch (loaded / unloaded) per flow with traffic."""
        ok = self.flow_packets > 0
        out = np.ones(len(self.flow_latency))
        out[ok] = self.flow_latency[ok] / np.maximum(
            self.flow_latency_min[ok], 1e-12
        )
        return out


class PacketSimulator:
    """Event-driven packet simulation over one dragonfly."""

    def __init__(
        self,
        topology: DragonflyTopology,
        packet_bytes: float = PACKET_BYTES,
    ) -> None:
        self.topology = topology
        self.packet_bytes = packet_bytes
        self._service = packet_bytes / topology.link_capacity  # per link

    # ------------------------------------------------------------------ #
    # Route construction (single concrete path per option)
    # ------------------------------------------------------------------ #

    def _intra_links(self, a: int, b: int, rng: np.random.Generator) -> list[int]:
        """One concrete minimal intra-group route a -> b (same group)."""
        t = self.topology
        if a == b:
            return []
        g = a // t.routers_per_group
        ra, pa = int(t.router_row(a)), int(t.router_pos(a))
        rb, pb = int(t.router_row(b)), int(t.router_pos(b))
        if ra == rb:
            return [int(t.green_link(g, ra, pa, pb))]
        if pa == pb:
            return [int(t.black_link(g, pa, ra, rb))]
        if rng.random() < 0.5:  # corner via (ra, pb)
            return [
                int(t.green_link(g, ra, pa, pb)),
                int(t.black_link(g, pb, ra, rb)),
            ]
        return [
            int(t.black_link(g, pa, ra, rb)),
            int(t.green_link(g, rb, pa, pb)),
        ]

    def _global_route(
        self, src: int, dst: int, via: int | None, rng: np.random.Generator
    ) -> list[int]:
        """Concrete route src -> dst, optionally via intermediate group."""
        t = self.topology
        sg = src // t.routers_per_group
        dg = dst // t.routers_per_group
        if sg == dg:
            if via is None:
                return self._intra_links(src, dst, rng)
            mid = sg * t.routers_per_group + int(
                rng.integers(0, t.routers_per_group)
            )
            return self._intra_links(src, mid, rng) + self._intra_links(
                mid, dst, rng
            )
        legs: list[int] = []
        here = src
        groups = [sg] + ([via] if via is not None else []) + [dg]
        for a, b in zip(groups, groups[1:]):
            chan = int(rng.integers(0, t.global_multiplicity))
            gw_out = int(t.blue_gateway(a, b, chan))
            gw_in = int(t.blue_gateway(b, a, chan))
            legs += self._intra_links(here, gw_out, rng)
            legs.append(int(t.blue_link(a, b, chan)))
            here = gw_in
        legs += self._intra_links(here, dst, rng)
        return legs

    def minimal_route(self, src: int, dst: int, rng) -> list[int]:
        return self._global_route(src, dst, None, rng)

    def valiant_route(self, src: int, dst: int, rng) -> list[int]:
        t = self.topology
        sg = src // t.routers_per_group
        dg = dst // t.routers_per_group
        if sg == dg:
            # Valiant within a group: detour via a random router.
            return self._global_route(src, dst, via=sg, rng=rng)
        via = int(rng.integers(0, t.groups))
        while via == sg or via == dg:
            via = (via + 1) % t.groups
        return self._global_route(src, dst, via, rng)

    # ------------------------------------------------------------------ #
    # Simulation
    # ------------------------------------------------------------------ #

    def run(
        self,
        flows: FlowSet,
        horizon: float = 0.05,
        rng: np.random.Generator | None = None,
        adaptive: bool = True,
        max_packets: int = 400_000,
    ) -> DESResult:
        """Simulate ``flows`` for ``horizon`` seconds of network time.

        Packets arrive per flow as a Poisson process with rate
        ``volume / packet_bytes``; each is routed at injection (UGAL-L
        when ``adaptive``) and then queues FIFO hop by hop.
        """
        if rng is None:
            rng = np.random.default_rng(0)
        topo = self.topology
        n_links = topo.num_links
        nf = len(flows)

        # Guard BEFORE sampling: the arrival list is O(#packets) memory.
        expected = flows.volume.sum() * horizon / self.packet_bytes
        if expected > max_packets:
            raise ValueError(
                f"~{expected:.0f} packets exceed max_packets={max_packets}; "
                "shorten the horizon or shrink the flows"
            )
        # Pre-sample arrivals.
        arrivals: list[tuple[float, int]] = []
        for f in range(nf):
            rate = flows.volume[f] / self.packet_bytes
            if rate <= 0:
                continue
            n = rng.poisson(rate * horizon)
            if n:
                times = np.sort(rng.uniform(0.0, horizon, size=n))
                arrivals.extend((float(ti), f) for ti in times)
        arrivals.sort()
        if len(arrivals) > max_packets:  # Poisson tail above the estimate
            raise ValueError(
                f"{len(arrivals)} packets exceed max_packets={max_packets}; "
                "shorten the horizon or shrink the flows"
            )

        # Link state: next time each output becomes free.
        free_at = np.zeros(n_links)
        busy = np.zeros(n_links)
        qtime = np.zeros(n_links)
        pkts = np.zeros(n_links, dtype=np.int64)

        lat_sum = np.zeros(nf)
        lat_min_sum = np.zeros(nf)
        delivered = np.zeros(nf, dtype=np.int64)
        took_minimal = np.zeros(nf, dtype=np.int64)
        routed = np.zeros(nf, dtype=np.int64)

        # Event heap: (time, seq, packet, kind) — kind 0=inject, 1=hop done.
        heap: list[tuple[float, int, _Packet]] = []
        seq = 0

        def backlog(route: list[int], now: float) -> float:
            """Worst queueing delay (in service units) along a route."""
            worst = 0.0
            for link in route:
                wait = (free_at[link] - now) / max(self._service[link], 1e-12)
                if wait > worst:
                    worst = wait
            return worst

        for t0, f in arrivals:
            pkt = _Packet(
                flow=f, src=int(flows.src[f]), dst=int(flows.dst[f]), created=t0
            )
            heapq.heappush(heap, (t0, seq, pkt))
            seq += 1

        # Process: each pop either routes a fresh packet (injection) or
        # advances one hop.
        while heap:
            now, _, pkt = heapq.heappop(heap)
            if pkt.route is None:
                f = pkt.flow
                route_min = self.minimal_route(pkt.src, pkt.dst, rng)
                if adaptive and len(route_min) > 0:
                    route_val = self.valiant_route(pkt.src, pkt.dst, rng)
                    q_min = backlog(route_min, now)
                    q_val = backlog(route_val, now)
                    # UGAL: take the detour only if the minimal route's
                    # backlog clearly outweighs the Valiant candidate's,
                    # accounting for its extra hops.
                    if q_min + len(route_min) > q_val + len(route_val) + UGAL_BIAS:
                        pkt.route = route_val
                    else:
                        pkt.route = route_min
                        took_minimal[f] += 1
                else:
                    pkt.route = route_min
                    took_minimal[f] += 1
                routed[f] += 1
                lat_min_sum[f] += float(
                    sum(self._service[link] for link in pkt.route)
                )
            if pkt.hop >= len(pkt.route):
                lat_sum[pkt.flow] += now - pkt.created
                delivered[pkt.flow] += 1
                continue
            link = pkt.route[pkt.hop]
            start = max(now, free_at[link])
            finish = start + self._service[link]
            qtime[link] += start - now
            busy[link] += self._service[link]
            pkts[link] += 1
            free_at[link] = finish
            pkt.hop += 1
            heapq.heappush(heap, (finish, seq, pkt))
            seq += 1

        return DESResult(
            horizon=horizon,
            link_stats=LinkStats(busy_time=busy, queue_time=qtime, packets=pkts),
            flow_latency=lat_sum / np.maximum(delivered, 1),
            flow_latency_min=lat_min_sum / np.maximum(routed, 1),
            flow_packets=delivered,
            minimal_fraction=took_minimal / np.maximum(routed, 1),
        )
