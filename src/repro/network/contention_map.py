"""Link-level contention attribution: *where* is the congestion, and
*whose* traffic is sitting on it?

The paper assigns blame at user granularity from coarse co-occurrence
(§V-A).  With the simulator we can go further, the way a facility
operator with full LDMS access could: decompose each hot link's load into
per-tenant contributions and rank the tenants occupying the network's
worst queues.  This is the link-granularity complement of the MI
analysis, and the information a congestion-aware scheduler would act on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.engine import CongestionEngine, RoutedTraffic
from repro.topology.base import Topology


@dataclass
class HotLink:
    """One congested link with its per-tenant load decomposition."""

    link_id: int
    kind: str
    src_router: int
    dst_router: int
    utilisation: float
    #: tenant label -> fraction of this link's load.
    shares: dict[str, float] = field(default_factory=dict)

    def dominant_tenant(self) -> str:
        return max(self.shares, key=self.shares.get) if self.shares else ""


@dataclass
class ContentionMap:
    """Hot links plus tenant-level aggregates."""

    hot_links: list[HotLink]
    #: tenant -> total bytes/s it places on the hot links.
    tenant_hot_load: dict[str, float]

    def ranked_tenants(self) -> list[tuple[str, float]]:
        return sorted(self.tenant_hot_load.items(), key=lambda kv: -kv[1])

    def blame(self, k: int = 3) -> list[str]:
        """The k tenants with the most traffic on contested links."""
        return [t for t, _ in self.ranked_tenants()[:k]]


def contention_map(
    topology: Topology,
    engine: CongestionEngine,
    tenants: dict[str, RoutedTraffic],
    top_n: int = 10,
    alpha: float | None = None,
) -> ContentionMap:
    """Solve the network for all tenants and attribute the hot links.

    Parameters
    ----------
    tenants:
        Label -> routed traffic (e.g. one entry per running job).
    top_n:
        Number of hottest links to attribute.
    alpha:
        Minimal-routing fraction used for the per-tenant decomposition
        (defaults to the engine's bias; the decomposition is approximate
        for adaptive traffic, exact for pinned policies).
    """
    labels = list(tenants)
    items = [tenants[lb] for lb in labels]
    state = engine.solve(items)
    a = engine.alpha0 if alpha is None else alpha

    # Per-tenant per-link loads (at the routing bias).
    per_tenant = np.zeros((len(labels), topology.num_links))
    for i, it in enumerate(items):
        per_tenant[i] = it.routing.link_loads(
            it.flows.volume, a, topology.num_links
        )
    util = state.link_util
    order = np.argsort(-util)[:top_n]
    src, dst = topology.link_endpoints

    hot: list[HotLink] = []
    hot_load: dict[str, float] = {lb: 0.0 for lb in labels}
    for lid in order:
        lid = int(lid)
        total = per_tenant[:, lid].sum()
        shares = {}
        if total > 0:
            for i, lb in enumerate(labels):
                frac = float(per_tenant[i, lid] / total)
                if frac > 1e-6:
                    shares[lb] = frac
                hot_load[lb] += float(per_tenant[i, lid])
        hot.append(
            HotLink(
                link_id=lid,
                kind=type(topology).link_kinds(int(topology.link_kind[lid])).name.lower(),
                src_router=int(src[lid]),
                dst_router=int(dst[lid]),
                utilisation=float(util[lid]),
                shares=shares,
            )
        )
    return ContentionMap(hot_links=hot, tenant_hot_load=hot_load)


def render_contention(cmap: ContentionMap) -> str:
    from repro.experiments.report import ascii_table

    rows = []
    for hl in cmap.hot_links:
        top = sorted(hl.shares.items(), key=lambda kv: -kv[1])[:3]
        rows.append(
            [
                hl.link_id,
                hl.kind,
                f"r{hl.src_router}->r{hl.dst_router}",
                f"{hl.utilisation:.2f}",
                ", ".join(f"{t} {s:.0%}" for t, s in top),
            ]
        )
    table = ascii_table(
        ["link", "kind", "route", "util", "top tenants"], rows
    )
    ranked = ", ".join(f"{t} ({v / 1e9:.1f} GB/s)" for t, v in cmap.ranked_tenants()[:5])
    return f"{table}\n\nhot-link load by tenant: {ranked}"
