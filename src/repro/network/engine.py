"""The congestion engine: flows -> link loads -> stalls -> slowdowns.

Routing policies: the engine defaults to the Aries behaviour (UGAL-style
adaptive split between minimal and Valiant path sets), but can be pinned
to minimal-only or Valiant-only routing for ablations in the spirit of
the SDN-vs-adaptive comparison of Faizian et al. (SC'17).

This is the reproduction's substitute for the physical Aries fabric (see
DESIGN.md §4).  Given one or more routed flow sets (probe job + background
segments), it

1. solves a small UGAL fixed point for each flow's minimal/Valiant split,
2. produces per-link byte loads, utilisations, and stall-cycle rates from a
   queueing-style delay curve,
3. aggregates endpoint (NIC) loads per router with a request/response VC
   split, and
4. reports per-flow *fabric* and *endpoint* slowdown factors that the
   application models convert into MPI-time dilation.

Design for speed: routing geometry (``FlowRouting``) is computed once per
placement; per-timestep work is elementwise over the link vector
(~10^4–10^5 floats), so a full 1,200-run campaign solves in seconds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.config import (
    FLIT_BYTES,
    MAX_UTILISATION,
    NIC_BW,
    ROUTER_CLOCK_HZ,
)
from repro.network.traffic import FlowSet
from repro.topology.base import Topology
from repro.topology.registry import routing_spec
from repro.topology.routing import FlowRouting, PathExpander

#: Fraction of stall-capable cycles actually observed as stalls at u -> 1
#: (calibration constant for counter magnitudes, not behaviour).
STALL_SCALE = 0.05

#: Hard cap on any single slowdown factor (adaptive routing and MPI overlap
#: prevent unbounded blocking in practice; paper's worst observed was 3.76x
#: end-to-end).
SLOWDOWN_CAP = 6.0

#: Curvature of the utilisation -> slowdown map.
_SLOWDOWN_GAIN = 0.85


class RoutingPolicy(enum.Enum):
    """How flows split between minimal and Valiant path sets."""

    #: Aries default: UGAL-style adaptive split (backpressure-driven).
    ADAPTIVE = "adaptive"
    #: Always minimal — fragile under adversarial group-pair traffic.
    MINIMAL = "minimal"
    #: Always Valiant — balanced but pays double the global hops.
    VALIANT = "valiant"


#: Legacy enum <-> registry routing-policy names (the registry's canonical
#: vocabulary is the campaign axis; the enum remains for existing callers).
_POLICY_TO_NAME = {
    RoutingPolicy.ADAPTIVE: "ugal",
    RoutingPolicy.MINIMAL: "minimal",
    RoutingPolicy.VALIANT: "valiant",
}
_NAME_TO_POLICY = {name: pol for pol, name in _POLICY_TO_NAME.items()}


def stall_curve(util: np.ndarray) -> np.ndarray:
    """Stall-cycles-per-cycle as a function of link utilisation.

    M/M/1-flavoured: negligible when idle, superlinear towards saturation,
    clamped at :data:`~repro.config.MAX_UTILISATION` to keep the fixed
    point stable.
    """
    u = np.minimum(util, MAX_UTILISATION)
    return u * u / (1.0 - u)


def slowdown_curve(util: np.ndarray) -> np.ndarray:
    """Per-flow slowdown factor given the worst utilisation on its path."""
    u = np.minimum(util, MAX_UTILISATION)
    s = 1.0 + _SLOWDOWN_GAIN * u * u / (1.0 - u)
    return np.minimum(s, SLOWDOWN_CAP)


@dataclass
class RoutedTraffic:
    """A flow set bound to its routing geometry (placement-stable)."""

    flows: FlowSet
    routing: FlowRouting

    def scaled(self, factor: float) -> "RoutedTraffic":
        """Same geometry, volumes scaled (e.g. per-step intensity)."""
        return RoutedTraffic(self.flows.scaled(factor), self.routing)


@dataclass
class BaseLoad:
    """Pre-solved traffic folded in as a constant (cached background)."""

    link_loads: np.ndarray
    inj: np.ndarray
    ej: np.ndarray
    vc4: np.ndarray

    @staticmethod
    def zeros(topology: Topology) -> "BaseLoad":
        r = topology.num_routers
        return BaseLoad(
            link_loads=np.zeros(topology.num_links),
            inj=np.zeros(r),
            ej=np.zeros(r),
            vc4=np.zeros(r),
        )

    def __add__(self, other: "BaseLoad") -> "BaseLoad":
        return BaseLoad(
            self.link_loads + other.link_loads,
            self.inj + other.inj,
            self.ej + other.ej,
            self.vc4 + other.vc4,
        )

    def scaled(self, factor: float) -> "BaseLoad":
        return BaseLoad(
            self.link_loads * factor,
            self.inj * factor,
            self.ej * factor,
            self.vc4 * factor,
        )


@dataclass
class FlowMetrics:
    """Per-flow congestion exposure for one routed traffic item."""

    #: Effective worst path utilisation per flow (alpha-blended).
    path_util: np.ndarray
    #: Fabric slowdown factor per flow.
    fabric_slowdown: np.ndarray
    #: Endpoint (NIC) slowdown factor per flow.
    endpoint_slowdown: np.ndarray
    #: Solved minimal-routing fraction per flow.
    alpha: np.ndarray

    def volume_weighted(self, volumes: np.ndarray) -> tuple[float, float]:
        """(fabric, endpoint) slowdowns averaged by flow volume."""
        tot = volumes.sum()
        if tot <= 0 or len(volumes) == 0:
            return 1.0, 1.0
        w = volumes / tot
        return (
            float(self.fabric_slowdown @ w),
            float(self.endpoint_slowdown @ w),
        )


@dataclass
class NetworkState:
    """Solved network condition for one interval."""

    topology: Topology
    link_loads: np.ndarray
    inj: np.ndarray
    ej: np.ndarray
    vc4: np.ndarray
    metrics: list[FlowMetrics] = field(default_factory=list)

    # ---- link-level views --------------------------------------------- #

    @cached_property
    def link_util(self) -> np.ndarray:
        return self.link_loads / self.topology.link_capacity

    @cached_property
    def link_stall_rate(self) -> np.ndarray:
        """Stall cycles/second per link."""
        return ROUTER_CLOCK_HZ * STALL_SCALE * stall_curve(self.link_util)

    # ---- router-level aggregates (network/RT side) -------------------- #

    @cached_property
    def rt_flit_rate(self) -> np.ndarray:
        """Flits/second arriving on each router's network tiles."""
        return self.topology.router_link_sums(self.link_loads) / FLIT_BYTES

    @cached_property
    def rt_stall_rate(self) -> np.ndarray:
        """Stall cycles/second on each router's network input queues."""
        return self.topology.router_link_sums(self.link_stall_rate)

    @cached_property
    def rt_mean_util(self) -> np.ndarray:
        """Mean utilisation of links terminating at each router."""
        cnt = self.topology.link_dst_counts
        tot = self.topology.router_link_sums(self.link_util)
        return tot / np.maximum(cnt, 1)

    # ---- router-level aggregates (endpoint/PT side) ------------------- #

    @cached_property
    def nic_util(self) -> np.ndarray:
        """Aggregate NIC utilisation per router (inj + ej over NIC budget)."""
        cap = self.topology.nodes_per_router * NIC_BW
        return (self.inj + self.ej) / cap

    @cached_property
    def pt_stall_rate(self) -> np.ndarray:
        """Stall cycles/second on processor tiles (endpoint backpressure)."""
        return ROUTER_CLOCK_HZ * STALL_SCALE * stall_curve(self.nic_util)

    def as_base(self) -> BaseLoad:
        """Freeze this state as an additive base for later solves."""
        return BaseLoad(self.link_loads, self.inj, self.ej, self.vc4)


class CongestionEngine:
    """Routes and solves traffic over one registered topology."""

    def __init__(
        self,
        topology: Topology,
        router: PathExpander | None = None,
        alpha0: float = 0.85,
        ugal_gain: float = 4.0,
        iterations: int = 2,
        policy: RoutingPolicy | str = RoutingPolicy.ADAPTIVE,
    ) -> None:
        """
        Parameters
        ----------
        topology:
            The network.
        router:
            Path expander; defaults to the topology's own
            (:meth:`~repro.topology.base.Topology.default_router`).
        alpha0:
            Initial minimal-routing fraction (UGAL biases minimal).
        ugal_gain:
            Sensitivity of the split to the utilisation gap between the
            minimal and Valiant path sets.
        iterations:
            Fixed-point iterations for the adaptive split.
        policy:
            Routing policy: a registry name (``ugal``/``minimal``/
            ``valiant`` or alias) or a legacy :class:`RoutingPolicy`
            member.  Pinned policies fix the split and skip the adaptive
            iterations.
        """
        self.topology = topology
        self.router = router or topology.default_router()
        if isinstance(policy, str):
            spec = routing_spec(policy)
            policy = _NAME_TO_POLICY[spec.name]
        self.policy = policy
        self.policy_name = _POLICY_TO_NAME[policy]
        spec = routing_spec(self.policy_name)
        self.pinned = spec.pinned
        if spec.pinned:
            alpha0 = spec.pinned_alpha
        self.alpha0 = alpha0
        self.ugal_gain = ugal_gain if not spec.pinned else 0.0
        self.iterations = iterations

    # ------------------------------------------------------------------ #

    def route(self, flows: FlowSet, rng: np.random.Generator | None = None) -> RoutedTraffic:
        """Expand a flow set into routed traffic (geometry reusable)."""
        routing = self.router.route(flows.src, flows.dst, rng=rng)
        return RoutedTraffic(flows, routing)

    def solve(
        self,
        items: list[RoutedTraffic],
        base: BaseLoad | None = None,
    ) -> NetworkState:
        """Solve the network state for concurrent traffic items.

        ``base`` contributes constant loads (cached background traffic whose
        own adaptive split was solved when it was created); the adaptive
        split of ``items`` reacts to the *total* load, as Aries' per-packet
        UGAL decision reacts to queue depths from all tenants.
        """
        topo = self.topology
        if base is None:
            base = BaseLoad.zeros(topo)
        cap = topo.link_capacity

        alphas = [np.full(it.routing.n_flows, self.alpha0) for it in items]

        for _ in range(max(1, self.iterations)):
            loads = base.link_loads.copy()
            for it, alpha in zip(items, alphas):
                loads += it.routing.link_loads(it.flows.volume, alpha, topo.num_links)
            util = loads / cap
            if self.policy is not RoutingPolicy.ADAPTIVE:
                break  # pinned split: nothing to iterate
            for i, it in enumerate(items):
                r = it.routing
                u_min = r.minimal.flow_max_metric(util, r.n_flows)
                u_val = r.valiant.flow_max_metric(util, r.n_flows)
                # UGAL: route minimally unless the minimal path is clearly
                # more congested than the non-minimal alternative.
                alphas[i] = np.clip(
                    self.alpha0 + self.ugal_gain * (u_val - u_min), 0.25, 0.98
                )

        # Final loads under the solved splits.
        loads = base.link_loads.copy()
        for it, alpha in zip(items, alphas):
            loads += it.routing.link_loads(it.flows.volume, alpha, topo.num_links)
        util = loads / cap

        # Endpoint accounting.
        inj = base.inj.copy()
        ej = base.ej.copy()
        vc4 = base.vc4.copy()
        for it in items:
            f = it.flows
            if len(f):
                inj += np.bincount(f.src, weights=f.volume, minlength=topo.num_routers)
                ej += np.bincount(f.dst, weights=f.volume, minlength=topo.num_routers)
                # Responses flow back to the sender's NIC on the response VC.
                vc4 += np.bincount(
                    f.src,
                    weights=f.volume * f.response_ratio,
                    minlength=topo.num_routers,
                )

        state = NetworkState(
            topology=topo, link_loads=loads, inj=inj, ej=ej, vc4=vc4
        )

        nic_util = state.nic_util
        for it, alpha in zip(items, alphas):
            r = it.routing
            u_min = r.minimal.flow_max_metric(util, r.n_flows)
            u_val = r.valiant.flow_max_metric(util, r.n_flows)
            path_util = alpha * u_min + (1.0 - alpha) * u_val
            ep_util = np.maximum(nic_util[it.flows.src], nic_util[it.flows.dst]) if len(
                it.flows
            ) else np.empty(0)
            state.metrics.append(
                FlowMetrics(
                    path_util=path_util,
                    fabric_slowdown=slowdown_curve(path_util),
                    endpoint_slowdown=slowdown_curve(ep_util),
                    alpha=alpha,
                )
            )
        return state
