"""Network substrate: traffic, congestion, and Aries counter synthesis.

The congestion engine is the reproduction's stand-in for the physical Aries
network (see DESIGN.md §4): flows -> adaptive routing -> link loads ->
utilisation -> stalls -> per-flow slowdowns, with Table II counters
synthesised per router from the same state.
"""

from repro.network.counters import (
    APP_COUNTERS,
    COUNTER_SPECS,
    IO_COUNTERS,
    PLACEMENT_FEATURES,
    SYS_COUNTERS,
    CounterSpec,
    forecast_feature_names,
)
from repro.network.dessim import PacketSimulator
from repro.network.engine import (
    CongestionEngine,
    NetworkState,
    RoutedTraffic,
    RoutingPolicy,
)
from repro.network.ldms import LDMSSampler
from repro.network.traffic import FlowSet

__all__ = [
    "FlowSet",
    "CongestionEngine",
    "NetworkState",
    "RoutedTraffic",
    "RoutingPolicy",
    "PacketSimulator",
    "LDMSSampler",
    "CounterSpec",
    "COUNTER_SPECS",
    "APP_COUNTERS",
    "IO_COUNTERS",
    "SYS_COUNTERS",
    "PLACEMENT_FEATURES",
    "forecast_feature_names",
]
