"""Traffic descriptions: router-level flow sets and pattern builders.

A :class:`FlowSet` is the unit of traffic the congestion engine consumes:
arrays of (source router, destination router, bytes/second).  Application
models and the background-workload generator build flow sets from
communication patterns at *node* granularity; everything is aggregated to
router granularity immediately, which keeps flow counts bounded by the
square of a job's router span rather than its rank count (8,192–32,768
MPI ranks in the paper's runs).

Builders provided here cover the patterns the four paper codes and the
background archetypes need: d-dimensional halo exchanges, recursive-doubling
allreduce, router-level all-to-all, uniform-random background traffic, and
striped I/O traffic towards LNET routers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.topology.dragonfly import DragonflyTopology


@dataclass
class FlowSet:
    """Router-level traffic: ``volume[i]`` bytes/s from ``src[i]`` to ``dst[i]``.

    Attributes
    ----------
    src, dst:
        Router ids (int64 arrays of equal length).
    volume:
        Bytes per second carried by each flow.
    response_ratio:
        Reverse (response-VC) traffic as a fraction of forward volume; used
        only for processor-tile VC4 counter synthesis, not routed over the
        fabric (responses are small compared with data flits).
    """

    src: np.ndarray
    dst: np.ndarray
    volume: np.ndarray
    response_ratio: float = 0.08

    def __post_init__(self) -> None:
        self.src = np.asarray(self.src, dtype=np.int64)
        self.dst = np.asarray(self.dst, dtype=np.int64)
        self.volume = np.asarray(self.volume, dtype=np.float64)
        if not (len(self.src) == len(self.dst) == len(self.volume)):
            raise ValueError("src, dst, volume must have equal length")
        if len(self.volume) and self.volume.min() < 0:
            raise ValueError("flow volumes must be non-negative")

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.src)

    @property
    def total_volume(self) -> float:
        """Aggregate bytes/s over all flows."""
        return float(self.volume.sum())

    def scaled(self, factor: float) -> "FlowSet":
        """A copy with all volumes multiplied by ``factor``."""
        return FlowSet(self.src, self.dst, self.volume * factor, self.response_ratio)

    def aggregated(self, num_routers: int) -> "FlowSet":
        """Merge duplicate (src, dst) pairs, summing volumes.

        Both branches sum each pair's volumes in entry order (``bincount``
        accumulates sequentially), so they produce bit-identical totals;
        the dense branch merely replaces the sort behind ``np.unique``
        with a direct scatter when the key space is small enough to
        afford a routers^2 scratch vector.
        """
        if len(self) == 0:
            return self
        key = self.src * num_routers + self.dst
        n_keys = num_routers * num_routers
        if n_keys <= 4 * len(key) and n_keys <= 16_000_000:
            counts = np.bincount(key, minlength=n_keys)
            vol_sum = np.bincount(key, weights=self.volume, minlength=n_keys)
            uniq = np.flatnonzero(counts)
            vol = vol_sum[uniq]
        else:
            uniq, inv = np.unique(key, return_inverse=True)
            vol = np.bincount(inv, weights=self.volume, minlength=len(uniq))
        return FlowSet(
            uniq // num_routers, uniq % num_routers, vol, self.response_ratio
        )

    @staticmethod
    def concat(parts: list["FlowSet"]) -> "FlowSet":
        """Concatenate flow sets (volume-weighted mean response ratio)."""
        parts = [p for p in parts if len(p)]
        if not parts:
            return FlowSet.empty()
        tot = sum(p.total_volume for p in parts)
        rr = (
            sum(p.response_ratio * p.total_volume for p in parts) / tot
            if tot > 0
            else 0.0
        )
        return FlowSet(
            np.concatenate([p.src for p in parts]),
            np.concatenate([p.dst for p in parts]),
            np.concatenate([p.volume for p in parts]),
            rr,
        )

    @staticmethod
    def empty() -> "FlowSet":
        z = np.empty(0, dtype=np.int64)
        return FlowSet(z, z.copy(), np.empty(0, dtype=np.float64))


# ---------------------------------------------------------------------------
# Node-level -> router-level helpers
# ---------------------------------------------------------------------------


def node_flows_to_router_flows(
    topology: DragonflyTopology,
    src_nodes: np.ndarray,
    dst_nodes: np.ndarray,
    volumes: np.ndarray,
    response_ratio: float = 0.08,
    drop_local: bool = True,
) -> FlowSet:
    """Aggregate node-to-node traffic to router-to-router flows.

    Traffic between nodes on the *same* router never enters the fabric and
    is dropped by default (it still shows up in processor-tile counters via
    the engine's endpoint accounting when kept; the paper's codes place one
    rank set per node, so same-node traffic is already excluded upstream).
    """
    src_r = topology.node_router(np.asarray(src_nodes))
    dst_r = topology.node_router(np.asarray(dst_nodes))
    vol = np.asarray(volumes, dtype=np.float64)
    if drop_local:
        keep = src_r != dst_r
        src_r, dst_r, vol = src_r[keep], dst_r[keep], vol[keep]
    fs = FlowSet(src_r, dst_r, vol, response_ratio)
    return fs.aggregated(topology.num_routers)


# ---------------------------------------------------------------------------
# Pattern builders
# ---------------------------------------------------------------------------


def rank_to_node(ranks: np.ndarray, ranks_per_node: int) -> np.ndarray:
    """Block mapping of MPI ranks onto nodes (SLURM default)."""
    return np.asarray(ranks) // ranks_per_node


def halo_flows(
    topology: DragonflyTopology,
    nodes: np.ndarray,
    grid: tuple[int, ...],
    bytes_per_neighbor: float,
    ranks_per_node: int,
    periodic: bool = True,
    response_ratio: float = 0.08,
) -> FlowSet:
    """d-dimensional nearest-neighbour halo exchange (±1 per dimension).

    Ranks are laid out in row-major order over ``grid`` and mapped to
    ``nodes`` in blocks of ``ranks_per_node``.  Each rank sends
    ``bytes_per_neighbor`` bytes/s to each of its 2·d face neighbours
    (MILC's 4-D stencil, AMG/UMT's 3-D exchanges; paper §III-A).
    """
    nodes = np.asarray(nodes)
    nranks = int(np.prod(grid))
    if nranks != len(nodes) * ranks_per_node:
        raise ValueError(
            f"grid {grid} has {nranks} ranks but {len(nodes)} nodes x "
            f"{ranks_per_node} ranks/node = {len(nodes) * ranks_per_node}"
        )
    ranks = np.arange(nranks)
    # Row-major stride arithmetic: stepping dimension ``d`` moves the
    # rank id by ``strides[d]`` (with a wrap correction when periodic).
    # Integer-exact and far cheaper than materialising the (d, nranks)
    # coordinate matrix per direction.
    strides = np.ones(len(grid), dtype=np.int64)
    for d in range(len(grid) - 2, -1, -1):
        strides[d] = strides[d + 1] * grid[d + 1]
    src_list, dst_list = [], []
    for dim in range(len(grid)):
        c = (ranks // strides[dim]) % grid[dim]
        for step in (-1, +1):
            if periodic:
                wrapped = (c + step) % grid[dim]
                src_list.append(ranks)
                dst_list.append(ranks + (wrapped - c) * strides[dim])
            else:
                valid = ((c + step) >= 0) & ((c + step) < grid[dim])
                src_list.append(ranks[valid])
                dst_list.append(ranks[valid] + step * strides[dim])
    src_ranks = np.concatenate(src_list)
    dst_ranks = np.concatenate(dst_list)
    # Map the job's node list to routers once and gather per rank — the
    # same integers node_router() would produce entry for entry, without
    # running the coordinate arithmetic over every rank-level endpoint.
    node_r = topology.node_router(nodes)
    src_r = node_r[rank_to_node(src_ranks, ranks_per_node)]
    dst_r = node_r[rank_to_node(dst_ranks, ranks_per_node)]
    keep = src_r != dst_r
    src_r, dst_r = src_r[keep], dst_r[keep]
    vol = np.full(len(src_r), float(bytes_per_neighbor))
    fs = FlowSet(src_r, dst_r, vol, response_ratio)
    return fs.aggregated(topology.num_routers)


def allreduce_flows(
    topology: DragonflyTopology,
    nodes: np.ndarray,
    bytes_per_node: float,
    response_ratio: float = 0.3,
) -> FlowSet:
    """Recursive-doubling allreduce at node granularity.

    Stage ``k`` exchanges ``bytes_per_node`` between node ``i`` and node
    ``i XOR 2^k`` (within the job's node list); log2(n) stages.  Latency-
    sensitive small messages => higher response ratio (request/response
    round trips dominate)."""
    nodes = np.asarray(nodes)
    n = len(nodes)
    if n < 2:
        return FlowSet.empty()
    stages = int(np.ceil(np.log2(n)))
    idx = np.arange(n)
    src_list, dst_list = [], []
    for k in range(stages):
        peer = idx ^ (1 << k)
        valid = peer < n
        src_list.append(idx[valid])
        dst_list.append(peer[valid])
    src = nodes[np.concatenate(src_list)]
    dst = nodes[np.concatenate(dst_list)]
    vol = np.full(len(src), float(bytes_per_node))
    return node_flows_to_router_flows(topology, src, dst, vol, response_ratio)


def router_alltoall_flows(
    topology: DragonflyTopology,
    nodes: np.ndarray,
    total_bytes: float,
    response_ratio: float = 0.08,
    weights: np.ndarray | None = None,
) -> FlowSet:
    """All-to-all across the job's routers, ``total_bytes``/s in aggregate.

    ``weights`` (len = #routers of the job) skews per-router participation
    (miniVite's community-detection exchange is irregular; paper §III-A).
    """
    routers = np.unique(topology.node_router(np.asarray(nodes)))
    r = len(routers)
    if r < 2:
        return FlowSet.empty()
    if weights is None:
        weights = np.ones(r)
    weights = np.asarray(weights, dtype=np.float64)
    weights = weights / weights.sum()
    src = np.repeat(routers, r)
    dst = np.tile(routers, r)
    w = np.repeat(weights, r) * np.tile(weights, r)
    keep = src != dst
    src, dst, w = src[keep], dst[keep], w[keep]
    w = w / w.sum()
    return FlowSet(src, dst, w * float(total_bytes), response_ratio)


def uniform_random_flows(
    topology: DragonflyTopology,
    nodes: np.ndarray,
    bytes_per_node: float,
    rng: np.random.Generator,
    fanout: int = 4,
    response_ratio: float = 0.08,
    node_weights: np.ndarray | None = None,
) -> FlowSet:
    """Each node sends to ``fanout`` random peers within the job.

    The workhorse pattern for background jobs whose real communication
    structure we do not model in detail.  ``node_weights`` skews per-node
    injection (master ranks / I/O aggregators move disproportionate
    volume); the total stays ``bytes_per_node * len(nodes)``.
    """
    nodes = np.asarray(nodes)
    n = len(nodes)
    if n < 2:
        return FlowSet.empty()
    if node_weights is None:
        node_weights = np.ones(n)
    node_weights = np.asarray(node_weights, dtype=np.float64)
    if len(node_weights) != n or (node_weights < 0).any():
        raise ValueError("node_weights must be non-negative, one per node")
    node_weights = node_weights * (n / node_weights.sum())
    fanout = min(fanout, n - 1)
    src = np.repeat(nodes, fanout)
    offs = rng.integers(1, n, size=n * fanout)
    dst = nodes[(np.repeat(np.arange(n), fanout) + offs) % n]
    vol = np.repeat(node_weights, fanout) * float(bytes_per_node) / fanout
    return node_flows_to_router_flows(topology, src, dst, vol, response_ratio)


def io_flows(
    topology: DragonflyTopology,
    nodes: np.ndarray,
    bytes_per_sec: float,
    read_fraction: float = 0.3,
    response_ratio: float = 0.05,
) -> FlowSet:
    """Filesystem traffic: job routers <-> LNET (I/O) routers, striped.

    Writes flow from compute routers to I/O routers, reads the other way;
    striping follows Lustre round-robin over the I/O routers (paper §III-C:
    LDMS organises counters by node role, compute vs I/O).
    """
    io_routers = topology.io_routers
    if len(io_routers) == 0 or bytes_per_sec <= 0:
        return FlowSet.empty()
    routers = np.unique(topology.node_router(np.asarray(nodes)))
    r = len(routers)
    stripe = io_routers[np.arange(r) % len(io_routers)]
    write_vol = bytes_per_sec * (1.0 - read_fraction) / r
    read_vol = bytes_per_sec * read_fraction / r
    src = np.concatenate([routers, stripe])
    dst = np.concatenate([stripe, routers])
    vol = np.concatenate([np.full(r, write_vol), np.full(r, read_vol)])
    fs = FlowSet(src, dst, vol, response_ratio)
    return fs.aggregated(topology.num_routers)


def pairwise_flows(
    topology: DragonflyTopology,
    src_nodes: np.ndarray,
    dst_nodes: np.ndarray,
    volumes: np.ndarray,
    response_ratio: float = 0.08,
) -> FlowSet:
    """Arbitrary node-level pairwise traffic (thin public wrapper)."""
    return node_flows_to_router_flows(
        topology, src_nodes, dst_nodes, volumes, response_ratio
    )
