"""Aries network hardware counter synthesis (paper Table II).

Every counter the study records is reproduced here, by its Cray name and
the paper's abbreviation.  Counter *rates* (per second) are synthesised per
router from a solved :class:`~repro.network.engine.NetworkState`; the
telemetry layer integrates rates over a timestep's duration to obtain the
per-step counter deltas AriesNCL would report.

Router-tile (``RT_``) counters describe traffic *between* routers; processor-
tile (``PT_``) counters describe endpoint traffic to/from the NICs attached
to a router (paper §III-C).  Request traffic travels on VC0 and responses on
VC4, matching the Aries virtual-channel assignment.

Note on paper typos (see DESIGN.md §6): Table II describes ``RT_PKT_TOT``
as "total cycles stalled" and ``PT_PKT_TOT`` as a stall sum; both are
packet totals and are synthesised as such.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import MEAN_PACKET_FLITS, ROUTER_CLOCK_HZ
from repro.network.engine import NetworkState

#: Fraction of processor-tile stall pressure attributed to request VCs; the
#: remainder hits response VCs.  Request flits dominate for data-heavy
#: traffic, responses for latency-bound request/response exchanges.
_RQ_STALL_SHARE = 0.62

#: Column-buffer stalls are a downstream echo of row-bus pressure plus local
#: fabric backpressure; this couples them without making them duplicates.
_CB_FABRIC_COUPLING = 0.35


@dataclass(frozen=True)
class CounterSpec:
    """One row of the paper's Table II."""

    name: str
    abbreviation: str
    description: str
    derived: bool
    tile: str  # "RT" or "PT"


#: Table II, in paper order.
COUNTER_SPECS: list[CounterSpec] = [
    CounterSpec(
        "AR_RTR_INQ_PRF_INCOMING_FLIT_TOTAL",
        "RT_FLIT_TOT",
        "(Derived) Total number of flits received on router tile",
        True,
        "RT",
    ),
    CounterSpec(
        "AR_RTR_INQ_PRF_INCOMING_PKT_TOTAL",
        "RT_PKT_TOT",
        "(Derived) Total number of packets received on router tile "
        "(paper table describes this row as a stall count; evident typo)",
        True,
        "RT",
    ),
    CounterSpec(
        "AR_RTR_INQ_PRF_ROWBUS_2X_USAGE_CNT",
        "RT_RB_2X_USG",
        "Number of cycles in which two stalls occur on a router tile",
        False,
        "RT",
    ),
    CounterSpec(
        "AR_RTR_INQ_PRF_ROWBUS_STALL_CNT",
        "RT_RB_STL",
        "Total number of cycles stalled on router tile",
        False,
        "RT",
    ),
    CounterSpec(
        "AR_RTR_PT_COLBUF_PERF_STALL_RQ",
        "PT_CB_STL_RQ",
        "Number of cycles a processor tile is stalled for request VCs",
        False,
        "PT",
    ),
    CounterSpec(
        "AR_RTR_PT_COLBUF_PERF_STALL_RS",
        "PT_CB_STL_RS",
        "Number of cycles a processor tile is stalled for response VCs",
        False,
        "PT",
    ),
    CounterSpec(
        "AR_RTR_PT_INQ_PRF_INCOMING_FLIT_VC0",
        "PT_FLIT_VC0",
        "Number of flits received on processor tile on VC0",
        False,
        "PT",
    ),
    CounterSpec(
        "AR_RTR_PT_INQ_PRF_INCOMING_FLIT_VC4",
        "PT_FLIT_VC4",
        "Number of flits received on processor tile on VC4",
        False,
        "PT",
    ),
    CounterSpec(
        "AR_RTR_PT_INQ_PRF_INCOMING_FLIT_TOTAL",
        "PT_FLIT_TOT",
        "(Derived) Total number of flits received on processor tile",
        True,
        "PT",
    ),
    CounterSpec(
        "AR_RTR_PT_INQ_PRF_INCOMING_PKT_TOTAL",
        "PT_PKT_TOT",
        "(Derived) Total number of packets received on processor tile "
        "(paper table describes this row as PT_RB_STL_RQ + PT_RB_STL_RS; "
        "evident typo)",
        True,
        "PT",
    ),
    CounterSpec(
        "AR_RTR_PT_INQ_PRF_REQ_ROWBUS_STALL_CNT",
        "PT_RB_STL_RQ",
        "Number of cycles stalled on processor tile request VCs",
        False,
        "PT",
    ),
    CounterSpec(
        "AR_RTR_PT_INQ_PRF_RSP_ROWBUS_STALL_CNT",
        "PT_RB_STL_RS",
        "Number of cycles stalled on processor tile response VCs",
        False,
        "PT",
    ),
    CounterSpec(
        "AR_RTR_PT_INQ_PRF_ROWBUS_2X_USAGE_CNT",
        "PT_RB_2X_USG",
        "Number of cycles in which two stalls occur on a processor tile",
        False,
        "PT",
    ),
]

#: The 13 per-job ("app") counter features, in Fig. 9 / Fig. 11 order.
APP_COUNTERS: list[str] = [
    "RT_FLIT_TOT",
    "RT_PKT_TOT",
    "RT_RB_2X_USG",
    "RT_RB_STL",
    "PT_CB_STL_RQ",
    "PT_CB_STL_RS",
    "PT_FLIT_VC0",
    "PT_FLIT_VC4",
    "PT_FLIT_TOT",
    "PT_PKT_TOT",
    "PT_RB_STL_RQ",
    "PT_RB_STL_RS",
    "PT_RB_2X_USG",
]

#: Placement features from Slurm logs (paper §III-C).
PLACEMENT_FEATURES: list[str] = ["NUM_ROUTERS", "NUM_GROUPS"]

#: LDMS-derived I/O-router features used in the forecasting ablation.
IO_COUNTERS: list[str] = [
    "IO_RT_FLIT_TOT",
    "IO_RT_RB_STL",
    "IO_PT_FLIT_TOT",
    "IO_PT_PKT_TOT",
]

#: LDMS-derived system-router features (routers sharing no nodes with the job).
SYS_COUNTERS: list[str] = [
    "SYS_RT_FLIT_TOT",
    "SYS_RT_RB_STL",
    "SYS_PT_FLIT_TOT",
    "SYS_PT_PKT_TOT",
]


def forecast_feature_names(
    placement: bool = False, io: bool = False, sys: bool = False
) -> list[str]:
    """Feature list for a forecasting ablation tier (Fig. 8/10 legends)."""
    names = list(APP_COUNTERS)
    if placement:
        names += PLACEMENT_FEATURES
    if io:
        names += IO_COUNTERS
    if sys:
        names += SYS_COUNTERS
    return names


def spec_by_abbreviation(abbrev: str) -> CounterSpec:
    """Look up a Table II row by its abbreviation."""
    for spec in COUNTER_SPECS:
        if spec.abbreviation == abbrev:
            return spec
    raise KeyError(abbrev)


# ---------------------------------------------------------------------------
# Synthesis
# ---------------------------------------------------------------------------


def _counter_rates(
    rt_flit: np.ndarray,
    rt_stall: np.ndarray,
    rt_mean_util: np.ndarray,
    nic_util: np.ndarray,
    pt_stall_total: np.ndarray,
    ej: np.ndarray,
    vc4: np.ndarray,
) -> dict[str, np.ndarray]:
    """The Table II rate formulas over router-aggregate inputs.

    Every operation is elementwise, so the same formulas serve the
    per-state ``(routers,)`` view and the batched ``(steps, routers)``
    view bit-identically.
    """
    from repro.config import FLIT_BYTES

    rt_pkt = rt_flit / MEAN_PACKET_FLITS
    # Two simultaneous stalls happen when multiple input queues back up;
    # quadratic in mean utilisation.
    rt_2x = rt_stall * np.minimum(rt_mean_util, 1.0)

    # Processor-tile side: endpoint traffic to/from this router's NICs.
    vc4_flit = vc4 / FLIT_BYTES
    vc0_flit = ej / FLIT_BYTES
    pt_flit = vc0_flit + vc4_flit
    pt_pkt = pt_flit / MEAN_PACKET_FLITS

    pt_rb_stl_rq = pt_stall_total * _RQ_STALL_SHARE
    pt_rb_stl_rs = pt_stall_total * (1.0 - _RQ_STALL_SHARE)
    # Column-buffer stalls: downstream of the row bus, plus a coupling from
    # fabric backpressure reaching the endpoint.
    fabric_echo = _CB_FABRIC_COUPLING * rt_stall * np.minimum(
        nic_util / np.maximum(rt_mean_util, 1e-9), 1.0
    )
    pt_cb_stl_rq = 0.7 * pt_rb_stl_rq + _RQ_STALL_SHARE * fabric_echo
    pt_cb_stl_rs = 0.7 * pt_rb_stl_rs + (1 - _RQ_STALL_SHARE) * fabric_echo
    pt_2x = pt_stall_total * np.minimum(nic_util, 1.0)

    return {
        "RT_FLIT_TOT": rt_flit,
        "RT_PKT_TOT": rt_pkt,
        "RT_RB_2X_USG": rt_2x,
        "RT_RB_STL": rt_stall,
        "PT_CB_STL_RQ": pt_cb_stl_rq,
        "PT_CB_STL_RS": pt_cb_stl_rs,
        "PT_FLIT_VC0": vc0_flit,
        "PT_FLIT_VC4": vc4_flit,
        "PT_FLIT_TOT": pt_flit,
        "PT_PKT_TOT": pt_pkt,
        "PT_RB_STL_RQ": pt_rb_stl_rq,
        "PT_RB_STL_RS": pt_rb_stl_rs,
        "PT_RB_2X_USG": pt_2x,
    }


def synthesize_router_counters(state: NetworkState) -> dict[str, np.ndarray]:
    """Per-router counter *rates* (events/second) from a network state.

    Returns a dict mapping each abbreviation in :data:`APP_COUNTERS` to a
    float vector of length ``num_routers``.  Integrate over an interval to
    get counter deltas.
    """
    return _counter_rates(
        rt_flit=state.rt_flit_rate,
        rt_stall=state.rt_stall_rate,
        rt_mean_util=state.rt_mean_util,
        nic_util=state.nic_util,
        pt_stall_total=state.pt_stall_rate,
        ej=state.ej,
        vc4=state.vc4,
    )


def synthesize_router_counters_block(
    topology,
    link_loads: np.ndarray,
    inj: np.ndarray,
    ej: np.ndarray,
    vc4: np.ndarray,
) -> dict[str, np.ndarray]:
    """Batched :func:`synthesize_router_counters` over a block of steps.

    ``link_loads`` is ``(steps, links)``; ``inj``/``ej``/``vc4`` are
    ``(steps, routers)``.  Returns each counter rate as a
    ``(steps, routers)`` matrix whose rows are bit-identical to building
    a :class:`NetworkState` per step and synthesising from it: the
    router aggregates use the same per-row ``bincount``
    (:meth:`~repro.topology.base.Topology.router_link_sums`) and every
    rate formula is elementwise, so batching cannot change FP order.
    """
    from repro.config import FLIT_BYTES, NIC_BW
    from repro.network.engine import STALL_SCALE, stall_curve

    link_util = link_loads / topology.link_capacity
    link_stall = ROUTER_CLOCK_HZ * STALL_SCALE * stall_curve(link_util)
    nic_util = (inj + ej) / (topology.nodes_per_router * NIC_BW)
    return _counter_rates(
        rt_flit=topology.router_link_sums(link_loads) / FLIT_BYTES,
        rt_stall=topology.router_link_sums(link_stall),
        rt_mean_util=(
            topology.router_link_sums(link_util)
            / np.maximum(topology.link_dst_counts, 1)
        ),
        nic_util=nic_util,
        pt_stall_total=ROUTER_CLOCK_HZ * STALL_SCALE * stall_curve(nic_util),
        ej=ej,
        vc4=vc4,
    )


def counters_to_matrix(
    router_rates: dict[str, np.ndarray],
    names: list[str] | None = None,
) -> np.ndarray:
    """Stack a counter dict into one array ordered by ``names``.

    For per-router rate vectors this yields the ``(len(names), routers)``
    matrix the batched collector consumes; per-step ``(steps, routers)``
    rate matrices stack to ``(len(names), steps, routers)``, and scalar
    counter values stack to a plain feature vector.  Rows are views
    copied in ``names`` order, so element values and ordering match the
    per-name dict lookups exactly.
    """
    if names is None:
        names = list(router_rates)
    return np.stack(
        [np.asarray(router_rates[n], dtype=np.float64) for n in names]
    )


def aggregate_counters(
    router_rates: dict[str, np.ndarray],
    routers: np.ndarray,
    duration: float,
    rng: np.random.Generator | None = None,
    noise: float = 0.02,
) -> dict[str, float]:
    """Sum per-router rates over ``routers`` and integrate over ``duration``.

    ``noise`` adds a small multiplicative measurement jitter (counter
    sampling on Aries is not perfectly aligned with step boundaries).
    """
    routers = np.asarray(routers)
    names = list(router_rates)
    matrix = counters_to_matrix(router_rates, names)
    out: dict[str, float] = {}
    for i, name in enumerate(names):
        # Per-row 1-D sums: identical accumulation order to summing the
        # per-name vectors directly.
        value = float(matrix[i][routers].sum()) * duration
        if rng is not None and noise > 0:
            value *= float(rng.lognormal(mean=0.0, sigma=noise))
        out[name] = value
    return out


def counters_to_vector(counters: dict[str, float], names: list[str]) -> np.ndarray:
    """Order a counter dict into a feature vector by ``names``."""
    return counters_to_matrix(counters, names)
