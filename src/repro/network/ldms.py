"""LDMS-style system-wide counter sampling (paper §III-C).

Cori runs the Lightweight Distributed Metric Service, sampling every Aries
router once per second (~5 TB/day).  The paper derives two feature groups
from it for the forecasting ablations (§V-C):

``io``
    Counters aggregated over routers attached to I/O (LNET) nodes — a proxy
    for filesystem traffic on the network.
``sys``
    Counters aggregated over routers sharing *no* nodes with our job — a
    proxy for everything else happening on the machine.

This sampler produces exactly those aggregates from a solved network state.
"""

from __future__ import annotations

import numpy as np

from repro.network.counters import synthesize_router_counters
from repro.network.engine import NetworkState
from repro.topology.dragonfly import DragonflyTopology


class LDMSSampler:
    """Aggregates system-wide router counters by node role."""

    def __init__(self, topology: DragonflyTopology) -> None:
        self.topology = topology

    def sample(
        self,
        state: NetworkState,
        job_routers: np.ndarray,
        duration: float,
        rng: np.random.Generator | None = None,
        noise: float = 0.02,
        router_rates: dict[str, np.ndarray] | None = None,
    ) -> dict[str, float]:
        """io/sys counter deltas for one interval.

        Parameters
        ----------
        state:
            Solved network condition for the interval.
        job_routers:
            Routers attached to *our* job's nodes (excluded from ``sys``).
        duration:
            Interval length in seconds.
        rng, noise:
            Optional multiplicative measurement jitter.
        router_rates:
            Pre-synthesised per-router rates (pass to avoid recomputing
            when the caller also collects job-local counters).
        """
        topo = self.topology
        if router_rates is None:
            router_rates = synthesize_router_counters(state)

        io_mask = topo.io_router_mask
        sys_mask = np.ones(topo.num_routers, dtype=bool)
        sys_mask[np.asarray(job_routers)] = False
        sys_mask &= ~io_mask  # io routers are reported in the io group

        out: dict[str, float] = {}
        for short in ("RT_FLIT_TOT", "RT_RB_STL", "PT_FLIT_TOT", "PT_PKT_TOT"):
            rates = router_rates[short]
            io_val = float(rates[io_mask].sum()) * duration
            sys_val = float(rates[sys_mask].sum()) * duration
            if rng is not None and noise > 0:
                io_val *= float(rng.lognormal(0.0, noise))
                sys_val *= float(rng.lognormal(0.0, noise))
            out[f"IO_{short}"] = io_val
            out[f"SYS_{short}"] = sys_val
        return out

    def sample_steps(
        self,
        job_routers: np.ndarray,
        durations: list[float],
        rngs: list[np.random.Generator] | None,
        router_rates: dict[str, np.ndarray],
        noise: float = 0.02,
    ) -> list[dict[str, float]]:
        """Batched :meth:`sample` over a block of steps.

        ``router_rates`` maps counter names to ``(steps, routers)`` rate
        matrices; ``durations`` holds one interval length per step and
        ``rngs`` one generator per step (``rng_for("ldms", job, step)``,
        or ``None`` for no jitter).  Bit-identical to calling
        :meth:`sample` step by step: the role masks depend only on the
        placement so they are hoisted out of the loop, each masked sum
        reduces the same row values in the same order, and each step's
        generator draws the same eight lognormals in the same order.
        """
        topo = self.topology
        io_mask = topo.io_router_mask
        sys_mask = np.ones(topo.num_routers, dtype=bool)
        sys_mask[np.asarray(job_routers)] = False
        sys_mask &= ~io_mask  # io routers are reported in the io group

        shorts = ("RT_FLIT_TOT", "RT_RB_STL", "PT_FLIT_TOT", "PT_PKT_TOT")
        # One mask gather per counter for the whole block; each gathered
        # row holds the same values in the same order as the per-step
        # gather, so the 1-D sums are bit-equal.  Axis-1 gathers come
        # back Fortran-ordered; force C order so every row reduction
        # runs the same contiguous kernel as the per-step path.
        io_sub = {
            s: np.ascontiguousarray(router_rates[s][:, io_mask]) for s in shorts
        }
        sys_sub = {
            s: np.ascontiguousarray(router_rates[s][:, sys_mask]) for s in shorts
        }
        out: list[dict[str, float]] = []
        for i, duration in enumerate(durations):
            rng = rngs[i] if rngs is not None else None
            vals: dict[str, float] = {}
            for short in shorts:
                io_val = float(io_sub[short][i].sum()) * duration
                sys_val = float(sys_sub[short][i].sum()) * duration
                if rng is not None and noise > 0:
                    io_val *= float(rng.lognormal(0.0, noise))
                    sys_val *= float(rng.lognormal(0.0, noise))
                vals[f"IO_{short}"] = io_val
                vals[f"SYS_{short}"] = sys_val
            out.append(vals)
        return out
