"""LDMS-style system-wide counter sampling (paper §III-C).

Cori runs the Lightweight Distributed Metric Service, sampling every Aries
router once per second (~5 TB/day).  The paper derives two feature groups
from it for the forecasting ablations (§V-C):

``io``
    Counters aggregated over routers attached to I/O (LNET) nodes — a proxy
    for filesystem traffic on the network.
``sys``
    Counters aggregated over routers sharing *no* nodes with our job — a
    proxy for everything else happening on the machine.

This sampler produces exactly those aggregates from a solved network state.
"""

from __future__ import annotations

import numpy as np

from repro.network.counters import synthesize_router_counters
from repro.network.engine import NetworkState
from repro.topology.dragonfly import DragonflyTopology


class LDMSSampler:
    """Aggregates system-wide router counters by node role."""

    def __init__(self, topology: DragonflyTopology) -> None:
        self.topology = topology

    def sample(
        self,
        state: NetworkState,
        job_routers: np.ndarray,
        duration: float,
        rng: np.random.Generator | None = None,
        noise: float = 0.02,
        router_rates: dict[str, np.ndarray] | None = None,
    ) -> dict[str, float]:
        """io/sys counter deltas for one interval.

        Parameters
        ----------
        state:
            Solved network condition for the interval.
        job_routers:
            Routers attached to *our* job's nodes (excluded from ``sys``).
        duration:
            Interval length in seconds.
        rng, noise:
            Optional multiplicative measurement jitter.
        router_rates:
            Pre-synthesised per-router rates (pass to avoid recomputing
            when the caller also collects job-local counters).
        """
        topo = self.topology
        if router_rates is None:
            router_rates = synthesize_router_counters(state)

        io_mask = topo.io_router_mask
        sys_mask = np.ones(topo.num_routers, dtype=bool)
        sys_mask[np.asarray(job_routers)] = False
        sys_mask &= ~io_mask  # io routers are reported in the io group

        out: dict[str, float] = {}
        for short in ("RT_FLIT_TOT", "RT_RB_STL", "PT_FLIT_TOT", "PT_PKT_TOT"):
            rates = router_rates[short]
            io_val = float(rates[io_mask].sum()) * duration
            sys_val = float(rates[sys_mask].sum()) * duration
            if rng is not None and noise > 0:
                io_val *= float(rng.lognormal(0.0, noise))
                sys_val *= float(rng.lognormal(0.0, noise))
            out[f"IO_{short}"] = io_val
            out[f"SYS_{short}"] = sys_val
        return out
