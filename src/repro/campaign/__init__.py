"""The measurement campaign: probe runs over four months (paper §III).

:class:`~repro.campaign.runner.CampaignRunner` submits 1–2 jobs per
application per day into the simulated production queue, executes each
probe run step by step against the evolving background traffic, and
collects the paper's six datasets (execution times, Aries counters, LDMS
io/sys aggregates, placements, neighbourhoods).
"""

from repro.campaign.datasets import Campaign, RunDataset, RunRecord
from repro.campaign.runner import CampaignConfig, CampaignRunner, run_campaign

__all__ = [
    "Campaign",
    "RunDataset",
    "RunRecord",
    "CampaignConfig",
    "CampaignRunner",
    "run_campaign",
]
