"""CLI: ``python -m repro.campaign [--fast] [--regenerate] [--workers N]``."""

from __future__ import annotations

import argparse
import sys

from repro.campaign.inspect import render_summary, summarize_campaign
from repro.campaign.runner import CampaignConfig, run_campaign
from repro.obs import configure_logging, get_logger

_LOG = get_logger("campaign")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.campaign",
        description="Generate (or load) the measurement campaign and "
        "print per-dataset summary statistics.",
    )
    parser.add_argument(
        "--fast", action="store_true", help="test-scale campaign"
    )
    parser.add_argument(
        "--regenerate",
        action="store_true",
        help="drop the cached entry and rebuild (the fresh campaign is "
        "cached again)",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="run the data-contract checks on every dataset",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for generation (0 = all cores; overrides "
        "the REPRO_WORKERS environment variable; output is bit-identical "
        "for any value)",
    )
    parser.add_argument(
        "--topology",
        default=None,
        metavar="NAME",
        help="network topology (registry name or alias, e.g. dragonfly, "
        "df+); default: dragonfly",
    )
    parser.add_argument(
        "--routing",
        default=None,
        metavar="NAME",
        help="routing policy (ugal, minimal, valiant or alias); "
        "default: ugal",
    )
    args = parser.parse_args(argv)
    configure_logging()
    axis = {}
    if args.topology is not None or args.routing is not None:
        from repro.campaign.validate import validate_axis

        try:
            topo, routing = validate_axis(
                args.topology or "dragonfly", args.routing or "ugal"
            )
        except ValueError as exc:
            parser.error(str(exc))
        axis = {"topology": topo, "routing": routing}
    cfg = (
        CampaignConfig.tiny(**axis) if args.fast else CampaignConfig.small(**axis)
    )
    if args.workers is not None:
        import dataclasses
        import os

        os.environ.pop("REPRO_WORKERS", None)
        cfg = dataclasses.replace(cfg, workers=args.workers)
    if args.regenerate:
        # Drop the cached entry (under the saver lock, so a concurrent
        # generator isn't pulled out from under) and regenerate; the
        # fresh campaign is saved back, unlike use_cache=False.
        import shutil

        from repro.campaign.datasets import Campaign

        with Campaign.cache_lock(cfg.fingerprint()):
            root = Campaign.cache_dir() / cfg.fingerprint()
            if root.exists():
                shutil.rmtree(root)
    campaign = run_campaign(cfg, progress=True)
    # Results (fingerprint, summary, validation verdict) are the CLI's
    # output proper and stay on stdout; generation progress arrives as
    # log records (see campaign/runner.py).
    print(f"campaign fingerprint: {cfg.fingerprint()}")
    if axis:
        print(f"campaign cell: {cfg.cell_id}")
    print(render_summary(summarize_campaign(campaign)))
    print(f"ground-truth aggressors: {campaign.ground_truth_aggressors}")
    if args.validate:
        from repro.campaign.validate import validate_campaign

        reports = validate_campaign(campaign)
        bad = {k: r for k, r in reports.items() if not r.ok}
        if bad:
            for key, rep in bad.items():
                _LOG.error("INVALID %s: %s", key, ", ".join(rep.failed()))
            return 1
        print(f"all {len(reports)} datasets pass the data contract")
    return 0


if __name__ == "__main__":
    sys.exit(main())
