"""CLI: ``python -m repro.campaign [--fast] [--regenerate]``."""

from __future__ import annotations

import argparse
import sys

from repro.campaign.inspect import render_summary, summarize_campaign
from repro.campaign.runner import CampaignConfig, run_campaign


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.campaign",
        description="Generate (or load) the measurement campaign and "
        "print per-dataset summary statistics.",
    )
    parser.add_argument(
        "--fast", action="store_true", help="test-scale campaign"
    )
    parser.add_argument(
        "--regenerate",
        action="store_true",
        help="ignore the disk cache and rebuild from scratch",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="run the data-contract checks on every dataset",
    )
    args = parser.parse_args(argv)
    cfg = CampaignConfig.tiny() if args.fast else CampaignConfig.small()
    if args.regenerate:
        import dataclasses

        cfg = dataclasses.replace(cfg, use_cache=False)
    campaign = run_campaign(cfg, progress=True)
    print(f"campaign fingerprint: {cfg.fingerprint()}")
    print(render_summary(summarize_campaign(campaign)))
    print(f"ground-truth aggressors: {campaign.ground_truth_aggressors}")
    if args.validate:
        from repro.campaign.validate import validate_campaign

        reports = validate_campaign(campaign)
        bad = {k: r for k, r in reports.items() if not r.ok}
        if bad:
            for key, rep in bad.items():
                print(f"INVALID {key}: {', '.join(rep.failed())}")
            return 1
        print(f"all {len(reports)} datasets pass the data contract")
    return 0


if __name__ == "__main__":
    sys.exit(main())
