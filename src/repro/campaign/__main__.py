"""CLI: ``python -m repro.campaign [--fast] [--regenerate] [--workers N]``.

``python -m repro.campaign stream ...`` enters the longitudinal
streaming mode (see :mod:`repro.campaign.streaming`): generate or
append time windows, render the shard table, and optionally run the
rolling-retrain drift experiment over the shards.
"""

from __future__ import annotations

import argparse
import sys

from repro.campaign.inspect import render_summary, summarize_campaign
from repro.campaign.runner import CampaignConfig, run_campaign
from repro.obs import configure_logging, get_logger

_LOG = get_logger("campaign")


def _resolve_axis(parser: argparse.ArgumentParser, args) -> dict:
    """Validate the (topology, routing) flags into config overrides."""
    if args.topology is None and args.routing is None:
        return {}
    from repro.campaign.validate import validate_axis

    try:
        topo, routing = validate_axis(
            args.topology or "dragonfly", args.routing or "ugal"
        )
    except ValueError as exc:
        parser.error(str(exc))
    return {"topology": topo, "routing": routing}


def _axis_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--topology",
        default=None,
        metavar="NAME",
        help="network topology (registry name or alias, e.g. dragonfly, "
        "df+); default: dragonfly",
    )
    parser.add_argument(
        "--routing",
        default=None,
        metavar="NAME",
        help="routing policy (ugal, minimal, valiant or alias); "
        "default: ugal",
    )


def stream_main(argv: list[str]) -> int:
    """``python -m repro.campaign stream``: windows, shards, drift."""
    parser = argparse.ArgumentParser(
        prog="repro.campaign stream",
        description="Generate (or incrementally append to) a streamed "
        "campaign of time-window shards and print the shard table. "
        "Re-running with --windows N+1 generates only the new window; "
        "everything else loads from the per-window caches.",
    )
    parser.add_argument(
        "--fast", action="store_true", help="test-scale windows"
    )
    parser.add_argument(
        "--windows",
        type=int,
        default=2,
        metavar="N",
        help="number of time windows in the stream (default: 2)",
    )
    parser.add_argument(
        "--window-days",
        type=float,
        default=None,
        metavar="D",
        help="days per window (default: the base config's full horizon "
        "for every window; window 0 is then exactly the one-shot "
        "campaign)",
    )
    parser.add_argument(
        "--drift",
        action="store_true",
        help="run the rolling-retrain drift experiment over the shards",
    )
    parser.add_argument(
        "--keys",
        default=None,
        metavar="K1,K2",
        help="comma-separated dataset keys for the drift experiment "
        "(default: every key present in all windows)",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="render the drift DAG with per-stage (and per-shard) "
        "hit/miss status before running",
    )
    parser.add_argument(
        "--check-incremental",
        action="store_true",
        help="fail unless every cold stage is scoped to the newest "
        "window's shards (the append contract; exit 1 on violations)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (0 = all cores; overrides REPRO_WORKERS)",
    )
    _axis_arguments(parser)
    args = parser.parse_args(argv)
    configure_logging()
    axis = _resolve_axis(parser, args)
    cfg = (
        CampaignConfig.tiny(**axis) if args.fast else CampaignConfig.small(**axis)
    )
    if args.workers is not None:
        import dataclasses
        import os

        os.environ.pop("REPRO_WORKERS", None)
        cfg = dataclasses.replace(cfg, workers=args.workers)

    from repro.campaign.streaming import StreamConfig, render_stream, run_stream

    sconf = StreamConfig(
        base=cfg, windows=args.windows, window_days=args.window_days
    )
    campaign = run_stream(sconf, progress=True)
    if axis:
        print(f"campaign cell: {cfg.cell_id}")
    print(render_stream(campaign.stream))

    keys = [k for k in args.keys.split(",") if k] if args.keys else None
    if args.explain or args.check_incremental:
        from repro.experiments.stream_drift import (
            fresh_shard_fingerprints,
            incremental_violations,
            plan_stream_drift,
        )
        from repro.graph import render_plan

        plans = plan_stream_drift(campaign, keys=keys, fast=args.fast)
        if args.explain:
            print(render_plan(plans))
        if args.check_incremental:
            bad = incremental_violations(
                plans, fresh_shard_fingerprints(campaign)
            )
            if bad:
                for line in bad:
                    _LOG.error("incremental violation: %s", line)
                print(f"{len(bad)} incremental-append violations")
                return 1
            print(
                "incremental append clean: every cold stage is scoped to "
                "the newest window's shards"
            )
    if args.drift:
        from repro.experiments.stream_drift import stream_drift

        result = stream_drift(
            campaign, keys=keys, fast=args.fast, workers=args.workers
        )
        print(result.render())
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "stream":
        return stream_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro.campaign",
        description="Generate (or load) the measurement campaign and "
        "print per-dataset summary statistics.",
    )
    parser.add_argument(
        "--fast", action="store_true", help="test-scale campaign"
    )
    parser.add_argument(
        "--regenerate",
        action="store_true",
        help="drop the cached entry and rebuild (the fresh campaign is "
        "cached again)",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="run the data-contract checks on every dataset",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for generation (0 = all cores; overrides "
        "the REPRO_WORKERS environment variable; output is bit-identical "
        "for any value)",
    )
    _axis_arguments(parser)
    args = parser.parse_args(argv)
    configure_logging()
    axis = _resolve_axis(parser, args)
    cfg = (
        CampaignConfig.tiny(**axis) if args.fast else CampaignConfig.small(**axis)
    )
    if args.workers is not None:
        import dataclasses
        import os

        os.environ.pop("REPRO_WORKERS", None)
        cfg = dataclasses.replace(cfg, workers=args.workers)
    if args.regenerate:
        # Drop the cached entry (under the saver lock, so a concurrent
        # generator isn't pulled out from under) and regenerate; the
        # fresh campaign is saved back, unlike use_cache=False.
        import shutil

        from repro.campaign.datasets import Campaign

        with Campaign.cache_lock(cfg.fingerprint()):
            root = Campaign.cache_dir() / cfg.fingerprint()
            if root.exists():
                shutil.rmtree(root)
    campaign = run_campaign(cfg, progress=True)
    # Results (fingerprint, summary, validation verdict) are the CLI's
    # output proper and stay on stdout; generation progress arrives as
    # log records (see campaign/runner.py).
    print(f"campaign fingerprint: {cfg.fingerprint()}")
    if axis:
        print(f"campaign cell: {cfg.cell_id}")
    print(render_summary(summarize_campaign(campaign)))
    print(f"ground-truth aggressors: {campaign.ground_truth_aggressors}")
    if args.validate:
        from repro.campaign.validate import validate_campaign

        reports = validate_campaign(campaign)
        bad = {k: r for k, r in reports.items() if not r.ok}
        if bad:
            for key, rep in bad.items():
                _LOG.error("INVALID %s: %s", key, ", ".join(rep.failed()))
            return 1
        print(f"all {len(reports)} datasets pass the data contract")
    return 0


if __name__ == "__main__":
    sys.exit(main())
