"""Campaign inspection: summary statistics of generated datasets.

``python -m repro.campaign`` prints one row per dataset — run counts,
step counts, variability spread, optimality fraction, MPI share, and
placement fragmentation — the quick health check before running the
analyses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.campaign.datasets import Campaign, RunDataset


@dataclass
class DatasetSummary:
    """One dataset's health-check row."""

    key: str
    runs: int
    steps: int
    worst_over_best: float
    optimal_fraction: float
    mpi_fraction: float
    mean_total: float
    mean_num_routers: float
    mean_num_groups: float

    def row(self) -> list[str]:
        return [
            self.key,
            str(self.runs),
            str(self.steps),
            f"{self.worst_over_best:.2f}x",
            f"{self.optimal_fraction:.0%}",
            f"{self.mpi_fraction:.0%}",
            f"{self.mean_total:.0f}s",
            f"{self.mean_num_routers:.0f}",
            f"{self.mean_num_groups:.1f}",
        ]


def summarize_dataset(ds: RunDataset) -> DatasetSummary:
    if len(ds) == 0:
        raise ValueError(f"dataset {ds.key} is empty")
    mpi = np.array([r.mpi_times.sum() for r in ds.runs])
    totals = ds.totals
    return DatasetSummary(
        key=ds.key,
        runs=len(ds),
        steps=ds.num_steps,
        worst_over_best=float(ds.relative_performance().max()),
        optimal_fraction=float(ds.optimality().mean()),
        mpi_fraction=float(mpi.sum() / totals.sum()),
        mean_total=float(totals.mean()),
        mean_num_routers=float(ds.placement[:, 0].mean()),
        mean_num_groups=float(ds.placement[:, 1].mean()),
    )


def summarize_campaign(campaign: Campaign) -> list[DatasetSummary]:
    out = []
    for key in campaign.keys():
        ds = campaign[key]
        if len(ds):
            out.append(summarize_dataset(ds))
    return out


def render_summary(summaries: list[DatasetSummary]) -> str:
    from repro.experiments.report import ascii_table

    return ascii_table(
        [
            "dataset",
            "runs",
            "steps",
            "worst/best",
            "optimal",
            "MPI",
            "mean total",
            "routers",
            "groups",
        ],
        [s.row() for s in summaries],
    )
