"""Parallel campaign execution: fan probe-run solves across processes.

The campaign has one inherently serial part — the chronological
:class:`~repro.campaign.runner.TrafficTimeline` sweep that maintains the
additive background-traffic accumulators — and a large embarrassingly
parallel part: routing geometry construction and the per-step solves of
every probe run.  This module supplies the parallel side:

* a :class:`CampaignPool` wrapping ``concurrent.futures
  .ProcessPoolExecutor`` (or running everything in-process for
  ``workers == 1`` — the *same* code path, so serial and parallel output
  are bit-identical by construction);
* per-worker environment construction (topology, engine, LDMS sampler,
  user population) via the pool initializer, so tasks ship only slim
  specs and **never pickle the runner**;
* chunked task functions for the three parallel phases:

  1. probe mean contributions (routing geometry per probe placement),
  2. background-job contributions (batched lookahead for the sweep),
  3. the per-run step solves, fed with shared *per-window* background
     snapshots (the accumulator state between two scheduler events)
     instead of per-step copies.

Determinism: every random draw a worker makes flows through
:func:`repro.config.rng_for` with per-``(job, step)`` stream labels, and
each run's steps are solved in step order inside one task.  Worker count,
chunking, and completion order therefore cannot perturb any stream, and
``workers=N`` output is bit-identical to ``workers=1`` output.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.config import rng_for
from repro.network.engine import BaseLoad, CongestionEngine, NetworkState
from repro.network.counters import (
    synthesize_router_counters,
    synthesize_router_counters_block,
)
from repro.network.ldms import LDMSSampler
from repro.obs import span
from repro.obs.profile import profiled_span
from repro.parallel import WorkerPool, WorkerPoolError, chunked
from repro.system.users import UserPopulation
from repro.telemetry.ariesncl import AriesNCL
from repro.telemetry.mpip import profile_run
from repro.topology.base import Topology
from repro.topology.registry import build_topology

__all__ = [
    "CampaignPool",
    "CampaignWorkerError",
    "WorkerEnv",
    "chunked",  # re-exported from repro.parallel (the generalized layer)
]

#: Env hook for the worker-crash regression test: when set, solve tasks
#: running in a *subprocess* worker die hard (``os._exit``), which must
#: surface as a clean :class:`CampaignWorkerError`, never a hang.
_CRASH_ENV = "REPRO_TEST_WORKER_CRASH"

#: Env hook selecting the per-run solver: ``reference`` runs the frozen
#: per-step loop (:func:`_solve_one_run_reference`), anything else (or
#: unset) the batched step-block solver.  Both produce bit-identical
#: results; the reference path exists so tests can prove it.
_SOLVER_ENV = "REPRO_SOLVER"

#: Routing-geometry contexts kept alive per worker between the
#: contribution phase and the solve phase (LRU; rebuilt on miss).
#: Contexts are a few MB each at benchmark scale; 64 keeps every probe
#: placement of a months-long campaign resident in the common case where
#: a handful of apps cycle through O(10) placements, while still
#: bounding memory for adversarial campaigns.  ``REPRO_CTX_CACHE``
#: overrides (cache size never affects results — rebuilds are
#: deterministic).
_CTX_CACHE_CAP = int(os.environ.get("REPRO_CTX_CACHE", "") or 64)


class CampaignWorkerError(WorkerPoolError):
    """A campaign worker process died or the pool broke."""


# --------------------------------------------------------------------------- #
# Task specs and results (all slim and picklable).
# --------------------------------------------------------------------------- #


@dataclass
class ProbeSpec:
    """What a worker needs to build one probe's routing geometry."""

    pi: int
    job_id: int
    key: str
    long_steps: int | None
    nodes: np.ndarray


@dataclass
class BgJobSpec:
    """What a worker needs to solve one background job's contribution."""

    job_id: int
    user: str
    nodes: np.ndarray


@dataclass
class RunTask:
    """One probe run's solve task.

    ``window_ids[step]`` indexes into the shared per-chunk window dict;
    ``weather[step]`` is the filesystem-weather multiplier at the step's
    midpoint (the comm "breathing" multiplier is drawn worker-side from
    the run's own ``rng_for("burst", job_id)`` stream).
    """

    pi: int
    job_id: int
    key: str
    long_steps: int | None
    start_time: float
    nodes: np.ndarray
    window_ids: np.ndarray
    weather: np.ndarray


@dataclass
class RunResult:
    """Everything a solved probe run contributes to its dataset."""

    pi: int
    step_times: np.ndarray
    compute_times: np.ndarray
    mpi_times: np.ndarray
    counters: np.ndarray
    ldms: np.ndarray
    routine_times: dict[str, float]


# --------------------------------------------------------------------------- #
# Worker environment.
# --------------------------------------------------------------------------- #


class WorkerEnv:
    """Per-process solving state, built once per worker (or borrowed from
    the parent runner in the in-process ``workers=1`` mode)."""

    def __init__(
        self,
        config,
        topology: Topology | None = None,
        engine: CongestionEngine | None = None,
        sampler: LDMSSampler | None = None,
        population: UserPopulation | None = None,
        in_subprocess: bool = False,
    ) -> None:
        from repro.campaign.runner import BackgroundTrafficModel

        self.config = config
        self.seed = config.seed
        # Rebuild the campaign's (topology, routing) cell through the
        # registry so subprocess workers solve the same network as the
        # parent runner.
        self.topology = topology or build_topology(config.topology, config.preset)
        self.engine = engine or CongestionEngine(
            self.topology, policy=config.routing
        )
        self.sampler = sampler or LDMSSampler(self.topology)
        self.population = population or UserPopulation.cori_like(
            node_scale=config.node_scale
        )
        self.bg_model = BackgroundTrafficModel(
            self.topology,
            self.engine,
            self.population,
            config.background_intensity,
            config.seed,
        )
        self.in_subprocess = in_subprocess


_ENV: WorkerEnv | None = None
_CTX_CACHE: "OrderedDict[int, object]" = OrderedDict()


def _init_worker(config) -> None:
    """Pool initializer: build the solving environment in the subprocess.

    Runs after :mod:`repro.parallel`'s worker bootstrap, which already
    mirrored the parent's observability (``[w<pid>]`` log tag, trace
    sink attach) and set the nested-parallelism guard.
    """
    global _ENV
    with span("campaign.worker_init"):
        _ENV = WorkerEnv(config, in_subprocess=True)
    _CTX_CACHE.clear()


def _set_local_env(env: WorkerEnv) -> None:
    """Install a parent-built environment for the in-process serial mode."""
    global _ENV
    _ENV = env
    _CTX_CACHE.clear()


def _require_env() -> WorkerEnv:
    if _ENV is None:  # pragma: no cover - defensive
        raise CampaignWorkerError("campaign worker environment not initialised")
    return _ENV


def _get_context(spec_job_id: int, key: str, long_steps: int | None,
                 nodes: np.ndarray, *, keep: bool):
    """Build (or fetch from the worker-local LRU) one probe's context.

    Context construction is deterministic (no RNG), so a cache hit and a
    rebuild yield bit-identical solving state.
    """
    from repro.apps.registry import get_application
    from repro.campaign.runner import ProbeRunContext, _long_step_model

    env = _require_env()
    ctx = _CTX_CACHE.pop(spec_job_id, None)
    if ctx is None:
        app = get_application(key)
        sm = _long_step_model(app, long_steps) if long_steps else app.step_model()
        ctx = ProbeRunContext(app, env.topology, env.engine, nodes, sm)
    if keep:
        _CTX_CACHE[spec_job_id] = ctx
        while len(_CTX_CACHE) > _CTX_CACHE_CAP:
            _CTX_CACHE.popitem(last=False)
    return ctx


# --------------------------------------------------------------------------- #
# Task functions (top-level so they pickle under any start method).
# --------------------------------------------------------------------------- #


def _task_probe_contributions(
    specs: list[ProbeSpec],
) -> list[tuple[int, BaseLoad]]:
    """Mean traffic contributions (as seen by other jobs) per probe."""
    out = []
    with profiled_span("campaign.task.probe_contributions", n=len(specs)):
        for spec in specs:
            ctx = _get_context(
                spec.job_id, spec.key, spec.long_steps, spec.nodes, keep=True
            )
            out.append((spec.pi, ctx.mean_contribution()))
    return out


def _task_bg_contributions(
    specs: list[BgJobSpec],
) -> list[tuple[int, BaseLoad, BaseLoad]]:
    """(steady comm, filesystem) contributions per background job."""
    env = _require_env()
    with profiled_span("campaign.task.bg_contributions", n=len(specs)):
        pairs = env.bg_model.contributions_for_batch(
            [(spec.job_id, spec.user, spec.nodes) for spec in specs]
        )
    return [
        (spec.job_id, comm, io) for spec, (comm, io) in zip(specs, pairs)
    ]


def _task_solve_runs(
    tasks: list[RunTask],
    windows: dict[int, tuple[BaseLoad, BaseLoad]],
) -> list[RunResult]:
    """Solve a chunk of probe runs against shared background windows."""
    env = _require_env()
    if env.in_subprocess and os.environ.get(_CRASH_ENV):
        os._exit(17)  # crash-path regression hook (see _CRASH_ENV)
    with profiled_span(
        "campaign.task.solve",
        runs=len(tasks),
        steps=sum(len(t.window_ids) for t in tasks),
    ):
        return [_solve_one_run(task, windows, env) for task in tasks]


def _solve_one_run(
    task: RunTask,
    windows: dict[int, tuple[BaseLoad, BaseLoad]],
    env: WorkerEnv,
) -> RunResult:
    """Solve one probe run (batched step-block solver by default).

    ``REPRO_SOLVER=reference`` selects the frozen per-step loop instead;
    the equality tests run both and assert byte-identical results.
    """
    if os.environ.get(_SOLVER_ENV, "").strip() == "reference":
        return _solve_one_run_reference(task, windows, env)
    return _solve_one_run_batched(task, windows, env)


def _solve_one_run_reference(
    task: RunTask,
    windows: dict[int, tuple[BaseLoad, BaseLoad]],
    env: WorkerEnv,
) -> RunResult:
    """The original per-step solve loop, kept frozen as the reference.

    :func:`_solve_one_run_batched` must reproduce this loop's output
    byte for byte; do not modify one without the other.  Steps are
    solved in step order; every random draw comes from a
    ``(job_id[, step])``-labelled stream, so the result is independent of
    which worker runs this and of whatever ran before it.
    """
    from repro.apps.registry import get_application
    from repro.campaign.datasets import LDMS_FEATURES
    from repro.campaign.runner import (
        COUNTER_NOISE,
        _PT_FLIT_FAMILY,
        _RT_FLIT_FAMILY,
        _burst_series,
        _long_step_model,
    )

    topo = env.topology
    seed = env.seed
    app = get_application(task.key)
    sm = (
        _long_step_model(app, task.long_steps)
        if task.long_steps
        else app.step_model()
    )
    ctx = _get_context(task.job_id, task.key, task.long_steps, task.nodes,
                       keep=False)
    self_comm = ctx.mean_contribution()

    durations = sm.compute + sm.mpi
    mids = task.start_time + np.cumsum(durations) - durations / 2
    burst = _burst_series(mids, rng_for("burst", task.job_id, seed=seed))
    collector = AriesNCL(
        topo,
        ctx.routers,
        rng=rng_for("ncl", task.job_id, seed=seed),
        noise=COUNTER_NOISE,
    )
    n_steps = sm.num_steps
    step_t = np.zeros(n_steps)
    comp_t = np.zeros(n_steps)
    mpi_t = np.zeros(n_steps)
    ldms_t = np.zeros((n_steps, len(LDMS_FEATURES)))

    for step in range(n_steps):
        rng = rng_for("steps", task.job_id, step, seed=seed)
        b = float(burst[step])
        w = float(task.weather[step])
        comm, io = windows[int(task.window_ids[step])]
        # Background at the step midpoint: comm "breathing" scales the
        # steady part, the filesystem part follows its own weather; then
        # this probe's own mean contribution (folded into the timeline
        # when its start event crossed) is subtracted back out.
        base = BaseLoad(
            np.maximum(
                b * comm.link_loads + w * io.link_loads
                - b * self_comm.link_loads,
                0.0,
            ),
            np.maximum(b * comm.inj + w * io.inj - b * self_comm.inj, 0.0),
            np.maximum(b * comm.ej + w * io.ej - b * self_comm.ej, 0.0),
            np.maximum(b * comm.vc4 + w * io.vc4 - b * self_comm.vc4, 0.0),
        )
        vol_noise = float(rng.lognormal(0.0, app.intensity_sigma))
        intensity = sm.intensity[step] * vol_noise
        state, fabric_s, endpoint_s = ctx.solve_step(base, intensity)

        blended = app.blended_slowdown(fabric_s, endpoint_s)
        t_mpi = (
            sm.mpi[step]
            * vol_noise
            * blended
            * float(rng.lognormal(0.0, app.residual_sigma))
        )
        t_comp = sm.compute[step] * float(rng.lognormal(0.0, app.compute_sigma))
        t_step = t_comp + t_mpi

        rates = synthesize_router_counters(state)
        # Background-only rates, to split flit-family integration (see
        # the counter-attribution note in repro.campaign.runner).
        bg_state = NetworkState(
            topology=topo,
            link_loads=base.link_loads,
            inj=base.inj,
            ej=base.ej,
            vc4=base.vc4,
        )
        bg_rates = synthesize_router_counters(bg_state)
        # This step's nominal duration: its own flit volume is (rate x
        # nominal time), regardless of how long congestion stretched it.
        t_nominal = float(sm.compute[step] + sm.mpi[step])
        job_rates = {}
        for name, total_rate in rates.items():
            if name in _PT_FLIT_FAMILY:
                own = np.maximum(total_rate - bg_rates[name], 0.0)
                job_rates[name] = own * (t_nominal / t_step)
            elif name in _RT_FLIT_FAMILY:
                own = np.maximum(total_rate - bg_rates[name], 0.0)
                job_rates[name] = own * (t_nominal / t_step) + bg_rates[name]
            else:
                job_rates[name] = total_rate
        collector.record_step(step, state, t_step, router_rates=job_rates)
        ldms_vals = env.sampler.sample(
            state,
            ctx.routers,
            duration=t_step,
            rng=rng_for("ldms", task.job_id, step, seed=seed),
            noise=COUNTER_NOISE,
            router_rates=rates,
        )
        step_t[step] = t_step
        comp_t[step] = t_comp
        mpi_t[step] = t_mpi
        ldms_t[step] = [ldms_vals[n] for n in LDMS_FEATURES]

    prof = profile_run(
        app, comp_t, mpi_t, rng=rng_for("mpip", task.job_id, seed=seed)
    )
    return RunResult(
        pi=task.pi,
        step_times=step_t,
        compute_times=comp_t,
        mpi_times=mpi_t,
        counters=collector.matrix(),
        ldms=ldms_t,
        routine_times=prof.routine_times,
    )


def _solve_one_run_batched(
    task: RunTask,
    windows: dict[int, tuple[BaseLoad, BaseLoad]],
    env: WorkerEnv,
) -> RunResult:
    """Batched step-block solver: bit-identical to the reference loop.

    Steps are processed in blocks of up to ``REPRO_STEP_BLOCK`` steps
    sharing one background window.  Per block, the per-step background
    ``BaseLoad`` construction, the network solve
    (:meth:`ProbeRunContext.solve_steps`), both counter syntheses
    (:func:`synthesize_router_counters_block`), counter collection
    (:meth:`AriesNCL.record_steps`) and LDMS sampling
    (:meth:`LDMSSampler.sample_steps`) each run once over
    ``(steps, links)`` / ``(steps, routers)`` arrays.

    Bit-identity with :func:`_solve_one_run_reference` rests on three
    invariants (each asserted by the equality tests):

    * every batched array op is elementwise/broadcast, an exact
      ``maximum`` reduction, or an explicit per-row 1-D ``bincount`` /
      sum / dot — never a BLAS matmul or an axis-0 reduction, which
      reorder FP accumulation;
    * scalar chains that feed Python ``float`` arithmetic (step-time
      products, ``blended_slowdown``'s ``**``) stay per-step scalar;
    * RNG streams are consumed in the reference order: the per-step
      ``"steps"`` stream yields (volume, residual, compute) upfront —
      the solve never touches it — and the ``"ncl"`` / ``"ldms"``
      draws happen step-major inside the batched collectors.
    """
    from repro.apps.registry import get_application
    from repro.campaign.datasets import LDMS_FEATURES
    from repro.campaign.runner import (
        COUNTER_NOISE,
        _PT_FLIT_FAMILY,
        _RT_FLIT_FAMILY,
        _burst_series,
        _long_step_model,
    )
    from repro.config import resolve_step_block

    topo = env.topology
    seed = env.seed
    app = get_application(task.key)
    sm = (
        _long_step_model(app, task.long_steps)
        if task.long_steps
        else app.step_model()
    )
    ctx = _get_context(task.job_id, task.key, task.long_steps, task.nodes,
                       keep=False)
    self_comm = ctx.mean_contribution()

    durations = sm.compute + sm.mpi
    mids = task.start_time + np.cumsum(durations) - durations / 2
    burst = _burst_series(mids, rng_for("burst", task.job_id, seed=seed))
    collector = AriesNCL(
        topo,
        ctx.routers,
        rng=rng_for("ncl", task.job_id, seed=seed),
        noise=COUNTER_NOISE,
    )
    n_steps = sm.num_steps
    step_t = np.zeros(n_steps)
    comp_t = np.zeros(n_steps)
    mpi_t = np.zeros(n_steps)
    ldms_t = np.zeros((n_steps, len(LDMS_FEATURES)))

    # Per-step stochastic factors, drawn upfront in the reference order
    # (volume, residual, compute within each step's own stream).
    vol_noise = np.empty(n_steps)
    res_noise = np.empty(n_steps)
    comp_noise = np.empty(n_steps)
    for step in range(n_steps):
        rng = rng_for("steps", task.job_id, step, seed=seed)
        vol_noise[step] = rng.lognormal(0.0, app.intensity_sigma)
        res_noise[step] = rng.lognormal(0.0, app.residual_sigma)
        comp_noise[step] = rng.lognormal(0.0, app.compute_sigma)

    block_cap = resolve_step_block()
    window_ids = np.asarray(task.window_ids)
    weather = np.asarray(task.weather, dtype=np.float64)

    start = 0
    while start < n_steps:
        wid = int(window_ids[start])
        end = start + 1
        while (
            end < n_steps
            and int(window_ids[end]) == wid
            and end - start < block_cap
        ):
            end += 1
        steps = list(range(start, end))
        nb = end - start
        comm, io = windows[wid]

        # Background at each step midpoint (see the reference loop).
        bcol = burst[start:end, None]
        wcol = weather[start:end, None]

        def _bg(c: np.ndarray, i: np.ndarray, s: np.ndarray) -> np.ndarray:
            return np.maximum(bcol * c + wcol * i - bcol * s, 0.0)

        bg = BaseLoad(
            _bg(comm.link_loads, io.link_loads, self_comm.link_loads),
            _bg(comm.inj, io.inj, self_comm.inj),
            _bg(comm.ej, io.ej, self_comm.ej),
            _bg(comm.vc4, io.vc4, self_comm.vc4),
        )
        intensities = sm.intensity[start:end] * vol_noise[start:end]
        loads, inj, ej, vc4, fabric_s, endpoint_s = ctx.solve_steps(
            bg, intensities
        )

        # Step times: scalar chains kept per-step (blended_slowdown's
        # ``**`` must see Python floats, as in the reference).
        t_nominal_b = np.empty(nb)
        for i, step in enumerate(steps):
            blended = app.blended_slowdown(
                float(fabric_s[i]), float(endpoint_s[i])
            )
            t_mpi = (
                sm.mpi[step]
                * float(vol_noise[step])
                * blended
                * float(res_noise[step])
            )
            t_comp = sm.compute[step] * float(comp_noise[step])
            step_t[step] = t_comp + t_mpi
            comp_t[step] = t_comp
            mpi_t[step] = t_mpi
            t_nominal_b[i] = float(sm.compute[step] + sm.mpi[step])
        t_step_b = step_t[start:end]

        rates = synthesize_router_counters_block(topo, loads, inj, ej, vc4)
        bg_rates = synthesize_router_counters_block(
            topo, bg.link_loads, bg.inj, bg.ej, bg.vc4
        )
        ratio = (t_nominal_b / t_step_b)[:, None]
        job_rates = {}
        for name, total_rate in rates.items():
            if name in _PT_FLIT_FAMILY:
                own = np.maximum(total_rate - bg_rates[name], 0.0)
                job_rates[name] = own * ratio
            elif name in _RT_FLIT_FAMILY:
                own = np.maximum(total_rate - bg_rates[name], 0.0)
                job_rates[name] = own * ratio + bg_rates[name]
            else:
                job_rates[name] = total_rate

        durations_b = [float(step_t[s]) for s in steps]
        collector.record_steps(steps, durations_b, job_rates)
        ldms_vals = env.sampler.sample_steps(
            ctx.routers,
            durations_b,
            [rng_for("ldms", task.job_id, s, seed=seed) for s in steps],
            rates,
            noise=COUNTER_NOISE,
        )
        for i, step in enumerate(steps):
            ldms_t[step] = [ldms_vals[i][n] for n in LDMS_FEATURES]
        start = end

    prof = profile_run(
        app, comp_t, mpi_t, rng=rng_for("mpip", task.job_id, seed=seed)
    )
    return RunResult(
        pi=task.pi,
        step_times=step_t,
        compute_times=comp_t,
        mpi_times=mpi_t,
        counters=collector.matrix(),
        ldms=ldms_t,
        routine_times=prof.routine_times,
    )


# --------------------------------------------------------------------------- #
# The pool.
# --------------------------------------------------------------------------- #


class CampaignPool:
    """Executes campaign tasks on ``workers`` processes.

    A thin campaign-specific veneer over :class:`repro.parallel
    .WorkerPool`: it owns the worker-environment initializer and the
    typed ``submit_*`` surface; pool mechanics (span re-rooting, ordered
    futures, worker-death translation) live in the generic layer.

    ``workers == 1`` runs every task in-process through the *same* task
    functions (no executor), which is both the fast path for small
    campaigns and the reference the determinism test compares against.
    """

    def __init__(self, config, workers: int, env: WorkerEnv | None = None):
        self._pool = WorkerPool(
            max(1, int(workers)),
            initializer=_init_worker,
            initargs=(config,),
            error=CampaignWorkerError,
            name="campaign",
        )
        self.workers = self._pool.workers
        self.parallel = self._pool.parallel
        if not self.parallel:
            _set_local_env(env or WorkerEnv(config))

    # -- submission ----------------------------------------------------- #

    def submit_probe_contributions(self, specs: list[ProbeSpec]):
        return self._pool.submit(_task_probe_contributions, specs)

    def submit_bg_contributions(self, specs: list[BgJobSpec]):
        return self._pool.submit(_task_bg_contributions, specs)

    def submit_solve(self, tasks: list[RunTask], windows: dict):
        return self._pool.submit(_task_solve_runs, tasks, windows)

    def result(self, future):
        """Unwrap a future, translating worker death into a clean error."""
        return self._pool.result(future)

    # -- lifecycle ------------------------------------------------------ #

    def shutdown(self) -> None:
        self._pool.shutdown()

    def __enter__(self) -> "CampaignPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
