"""Longitudinal streaming mode: the campaign as time-windowed shards.

The one-shot campaign fingerprints its datasets as indivisible wholes —
appending one more week of telemetry would invalidate every feature
matrix, artifact, and trained model downstream.  Streaming mode instead
models the facility as an **ordered sequence of time windows**, each an
independent campaign generation:

* window 0 of an un-overridden stream *is* the base config — same
  fingerprint, same cache entry, same derived features — so the one-shot
  run is exactly the degenerate single-shard case;
* window ``w >= 1`` replaces the seed with :func:`window_seed` (a stable
  derivation, so window fingerprints never move when windows are
  appended) and drops the Fig. 12 long runs (they belong to the campaign
  tail, not to every window);
* appending window ``N`` therefore generates *only* window ``N`` — the
  existing windows load from the hardened per-campaign cache untouched,
  which is what makes prefix stability exact rather than approximate.

Identity model::

    window fingerprint  = CampaignConfig.fingerprint() of the window
    shard fingerprint   = sha256(f"{window fp}/{key}")[:16]
    stream fingerprint  = window fp            (single window)
                        = sha256 over the ordered window fps (else)

The shard fingerprint is *by construction* the same value
:meth:`repro.features.FeatureStore.fingerprint` derives for a dataset
stamped with the window fingerprint — one identity names the shard in
the feature cache, the stage graph (``Stage.shard``), and the stream
manifest persisted under ``<cache>/streams/<stream fp>.json``.

The combined per-key dataset concatenates the shard runs (start times
offset by the window origin, run indices renumbered) and carries the
shard views for the feature store's incremental-append path and for
shard-scoped graph stages (:func:`shard_view`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.campaign.datasets import (
    Campaign,
    RunDataset,
    _atomic_write_text,
)
from repro.campaign.runner import CampaignConfig, run_campaign
from repro.obs import annotate, get_logger, span
from repro.system.workload import DAY

_LOG = get_logger("campaign.stream")

#: Stream manifest schema version (independent of the campaign cache
#: format: a manifest is derived bookkeeping, never a source of truth).
STREAM_FORMAT_VERSION = 1


def window_seed(seed: int, window: int) -> int:
    """Stable per-window seed: window 0 keeps the base seed.

    Derived by hashing, not offsetting, so neighbouring base seeds can
    never collide with each other's window streams.
    """
    if window == 0:
        return int(seed)
    digest = hashlib.sha256(f"stream-window/{seed}/{window}".encode()).digest()
    return int.from_bytes(digest[:4], "big") % (2**31 - 1)


def shard_fingerprint(window_fingerprint: str, key: str) -> str:
    """Content fingerprint of one ``(window, dataset key)`` shard.

    Identical to the :class:`~repro.features.FeatureStore` dataset
    fingerprint of the shard's ``RunDataset`` (stamped with the window
    campaign fingerprint) — one identity across cache, graph, manifest.
    """
    return hashlib.sha256(f"{window_fingerprint}/{key}".encode()).hexdigest()[:16]


def stream_fingerprint(window_fingerprints: list[str]) -> str:
    """Identity of the whole stream: the ordered window fingerprints.

    A single-window stream collapses to its window's campaign
    fingerprint, so the degenerate case shares every existing cache
    entry, golden baseline, and artifact address.
    """
    if len(window_fingerprints) == 1:
        return window_fingerprints[0]
    payload = json.dumps(
        {"v": STREAM_FORMAT_VERSION, "windows": list(window_fingerprints)},
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class StreamConfig:
    """A streaming campaign: ``windows`` generations of ``base``.

    ``window_days=None`` gives every window the base config's full
    ``days`` horizon (window 0 is then *exactly* the base config);
    overriding it shrinks each window, which also drops the long runs
    from window 0 — a long run's submit time assumes the base horizon.
    """

    base: CampaignConfig
    windows: int = 1
    window_days: float | None = None

    def __post_init__(self) -> None:
        if self.windows < 1:
            raise ValueError("a stream needs at least one window")
        if self.window_days is not None and self.window_days <= 0:
            raise ValueError("window_days must be positive")

    @property
    def window_length_days(self) -> float:
        return float(self.window_days or self.base.days)

    def window_config(self, window: int) -> CampaignConfig:
        """The independent campaign config of one window."""
        if not 0 <= window < self.windows:
            raise ValueError(f"window {window} outside 0..{self.windows - 1}")
        if window == 0 and self.window_days is None:
            return self.base
        overrides: dict = {"seed": window_seed(self.base.seed, window)}
        if self.window_days is not None:
            overrides["days"] = float(self.window_days)
            overrides["long_runs"] = ()
        if window > 0:
            overrides["long_runs"] = ()
        return dataclasses.replace(self.base, **overrides)

    def window_fingerprints(self) -> list[str]:
        return [self.window_config(w).fingerprint() for w in range(self.windows)]

    def fingerprint(self) -> str:
        return stream_fingerprint(self.window_fingerprints())


@dataclass
class StreamManifest:
    """The ``(campaign fp, key, window) -> shard fp`` map of one stream."""

    fingerprint: str
    base: str
    window_days: float
    #: One record per window: index, campaign fingerprint, seed, days,
    #: offset_days, and ``shards`` mapping key -> {fingerprint, runs}.
    windows: list[dict] = field(default_factory=list)

    def shard(self, key: str, window: int) -> str:
        return self.windows[window]["shards"][key]["fingerprint"]

    def window_fingerprints(self) -> list[str]:
        return [w["campaign"] for w in self.windows]

    # ---- persistence (derived bookkeeping under the hardened cache) ---- #

    @staticmethod
    def path(fingerprint: str) -> Path:
        return Campaign.cache_dir() / "streams" / f"{fingerprint}.json"

    def save(self) -> Path:
        path = self.path(self.fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        _atomic_write_text(
            path,
            json.dumps(
                {
                    "format": STREAM_FORMAT_VERSION,
                    "stream": self.fingerprint,
                    "base": self.base,
                    "window_days": self.window_days,
                    "windows": self.windows,
                },
                sort_keys=True,
            ),
        )
        return path

    @classmethod
    def load(cls, fingerprint: str) -> "StreamManifest | None":
        path = cls.path(fingerprint)
        if not path.exists():
            return None
        try:
            meta = json.loads(path.read_text())
            if meta.get("format") != STREAM_FORMAT_VERSION:
                return None
            return cls(
                fingerprint=meta["stream"],
                base=meta["base"],
                window_days=meta["window_days"],
                windows=meta["windows"],
            )
        except Exception:
            # Derived bookkeeping: a torn manifest is rebuilt, not fatal.
            return None


def shard_view(ds: RunDataset, window: int) -> RunDataset:
    """The per-window shard of a (possibly streamed) dataset.

    A dataset without shard views is its own single shard — the
    degenerate case every shard-scoped stage body runs through when the
    campaign was generated one-shot.
    """
    views = getattr(ds, "shard_views", None)
    if views is None:
        if window == 0:
            return ds
        raise IndexError(
            f"dataset {ds.key!r} has one shard; window {window} requested"
        )
    return views[window]


def _combine_shards(
    key: str,
    views: list[RunDataset],
    window_fps: list[str],
    offsets: list[float],
    stream_fp: str,
) -> RunDataset:
    steps = {int(v.num_steps) for v in views}
    if len(steps) != 1:
        raise ValueError(
            f"shards of {key!r} disagree on step count: {sorted(steps)}"
        )
    runs = []
    for view, off in zip(views, offsets):
        for r in view.runs:
            runs.append(
                dataclasses.replace(
                    r, run_index=len(runs), start_time=r.start_time + off
                )
            )
    combined = RunDataset(key=key, runs=runs, campaign_fingerprint=stream_fp)
    combined.shard_views = list(views)
    combined.shard_fingerprints = [
        shard_fingerprint(fp, key) for fp in window_fps
    ]
    return combined


def run_stream(config: StreamConfig, progress: bool = False) -> Campaign:
    """Generate (or load) every window and assemble the streamed campaign.

    Each window runs through the ordinary :func:`run_campaign` path —
    per-window disk caching, parallel generation, provenance stamping —
    so appending window ``N`` to a previously-materialised stream costs
    one window's generation plus cache loads.  The combined campaign's
    datasets are stamped with the stream fingerprint and carry their
    shard views; the stream manifest is persisted and attached as
    ``campaign.stream``.
    """
    window_cfgs = [config.window_config(w) for w in range(config.windows)]
    window_fps = [cfg.fingerprint() for cfg in window_cfgs]
    stream_fp = stream_fingerprint(window_fps)
    length = config.window_length_days

    with span(
        "stream.run", fingerprint=stream_fp, windows=config.windows
    ):
        campaigns = []
        for w, cfg in enumerate(window_cfgs):
            _LOG.info(
                "stream window %d/%d: campaign %s",
                w + 1, config.windows, window_fps[w],
            )
            with span("stream.window", window=w, fingerprint=window_fps[w]):
                campaigns.append(run_campaign(cfg, progress=progress))
        annotate(stream_fingerprint=stream_fp, stream_windows=config.windows)

    offsets = [w * length * DAY for w in range(config.windows)]
    if config.windows == 1:
        camp = campaigns[0]
        for key, ds in camp.datasets.items():
            ds.shard_views = [ds]
            ds.shard_fingerprints = [shard_fingerprint(window_fps[0], key)]
    else:
        # Keys present in every window combine into multi-shard datasets;
        # window-local extras (the window-0 long runs) ride along as
        # single-shard datasets, after the regular keys.
        common = [
            k
            for k in campaigns[0].keys()
            if all(k in c.datasets for c in campaigns[1:])
        ]
        datasets: dict[str, RunDataset] = {}
        for key in common:
            datasets[key] = _combine_shards(
                key,
                [c[key] for c in campaigns],
                window_fps,
                offsets,
                stream_fp,
            )
        for w, c in enumerate(campaigns):
            for key, ds in c.datasets.items():
                if key in datasets:
                    continue
                lone = _combine_shards(
                    key, [ds], [window_fps[w]], [offsets[w]], window_fps[w]
                )
                datasets[key] = lone
        aggressors: list[str] = []
        for c in campaigns:
            for user in c.ground_truth_aggressors:
                if user not in aggressors:
                    aggressors.append(user)
        camp = Campaign(datasets=datasets, ground_truth_aggressors=aggressors)

    manifest = StreamManifest(
        fingerprint=stream_fp,
        base=window_fps[0],
        window_days=length,
        windows=[
            {
                "index": w,
                "campaign": window_fps[w],
                "seed": window_cfgs[w].seed,
                "days": window_cfgs[w].days,
                "offset_days": w * length,
                "shards": {
                    key: {
                        "fingerprint": shard_fingerprint(window_fps[w], key),
                        "runs": len(c[key]),
                    }
                    for key, _ds in c.datasets.items()
                },
            }
            for w, c in enumerate(campaigns)
        ],
    )
    manifest.save()
    camp.stream = manifest
    return camp


def render_stream(manifest: StreamManifest) -> str:
    """Human-readable shard table of a stream manifest."""
    lines = [
        f"stream fingerprint: {manifest.fingerprint} "
        f"({len(manifest.windows)} windows x {manifest.window_days:g} days)"
    ]
    for w in manifest.windows:
        runs = sum(s["runs"] for s in w["shards"].values())
        lines.append(
            f"  window {w['index']}: campaign {w['campaign']} "
            f"seed={w['seed']} offset={w['offset_days']:g}d "
            f"({runs} runs over {len(w['shards'])} datasets)"
        )
        for key in sorted(w["shards"]):
            s = w["shards"][key]
            lines.append(
                f"    {key:<24} shard {s['fingerprint']} ({s['runs']} runs)"
            )
    return "\n".join(lines)
