"""Campaign datasets: the paper's X (N x T x H) and Y (N x T) matrices.

Each (application, node count) pair is an independent dataset of N runs
with T time steps and H recorded features per step (paper §IV-B).  Beyond
the 13 AriesNCL counters, every run carries its LDMS io/sys aggregates,
placement features, neighbourhood user list, and mpiP routine breakdown —
everything the three analyses consume.

Datasets cache to ``.npz`` + JSON under ``REPRO_CACHE_DIR`` (default
``./.repro_cache``) keyed by the campaign-config fingerprint, so figures
and benchmarks share one generation pass.  The cache layer is hardened
for concurrent users (parallel generation, pytest + a benchmark run
racing on the same fingerprint):

* every file is written to a temp name and atomically renamed into
  place, with the ``campaign.json`` manifest written last — readers see
  either a complete entry or no entry;
* the manifest carries :data:`CACHE_FORMAT_VERSION`; a mismatching or
  missing stamp is a cache miss, never a crash;
* corrupt or truncated entries (half-written ``.npz``, garbled JSON)
  trigger regeneration with a warning instead of an exception;
* savers serialise on an inter-process ``flock`` (:class:`FileLock`).
"""

from __future__ import annotations

import datetime as _dt
import json
import os
import warnings
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

#: On-disk cache format version.  Bump when the file layout or manifest
#: schema changes; it is stamped into every manifest *and* folded into
#: ``CampaignConfig.fingerprint()``, so old-format entries are simply
#: never hit (and a manually tampered stamp is a miss, not a crash).
CACHE_FORMAT_VERSION = 2


class FileLock:
    """Advisory inter-process lock on a file (``flock``-based).

    Used to serialise concurrent savers of the same cache fingerprint
    (e.g. pytest and a benchmark run both generating the campaign).  On
    platforms without ``fcntl`` the lock degrades to a no-op — atomic
    renames still keep readers safe; only write-write races lose the
    duplicated work.
    """

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self._fd: int | None = None

    def acquire(self, blocking: bool = True) -> bool:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            import fcntl
        except ImportError:  # pragma: no cover - non-POSIX fallback
            self._fd = fd
            return True
        flags = fcntl.LOCK_EX | (0 if blocking else fcntl.LOCK_NB)
        try:
            fcntl.flock(fd, flags)
        except OSError:
            os.close(fd)
            return False
        self._fd = fd
        return True

    def release(self) -> None:
        if self._fd is not None:
            os.close(self._fd)  # closing the fd drops the flock
            self._fd = None

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()


def _atomic_write_text(path: Path, text: str) -> None:
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    tmp.write_text(text)
    os.replace(tmp, path)

from repro.network.counters import (
    APP_COUNTERS,
    IO_COUNTERS,
    PLACEMENT_FEATURES,
    SYS_COUNTERS,
)

#: Campaign epoch: the first date on Fig. 1's time axis.
EPOCH = _dt.datetime(2018, 11, 29)

#: LDMS feature order as stored in the dataset arrays.
LDMS_FEATURES: list[str] = IO_COUNTERS + SYS_COUNTERS


def seconds_to_date(t: float) -> _dt.datetime:
    """Campaign seconds -> calendar timestamp (Fig. 1 axis)."""
    return EPOCH + _dt.timedelta(seconds=float(t))


@dataclass
class RunRecord:
    """One probe run: everything recorded for it."""

    run_index: int
    start_time: float
    #: Realised wall time per step (T,).
    step_times: np.ndarray
    #: Compute / MPI split per step (T,), (T,).
    compute_times: np.ndarray
    mpi_times: np.ndarray
    #: AriesNCL counters per step (T, 13) in APP_COUNTERS order.
    counters: np.ndarray
    #: LDMS io/sys aggregates per step (T, 8) in LDMS_FEATURES order.
    ldms: np.ndarray
    #: NUM_ROUTERS, NUM_GROUPS.
    num_routers: int
    num_groups: int
    #: Users with large jobs overlapping this run (anonymised ids).
    neighborhood: list[str]
    #: mpiP routine breakdown for the whole run.
    routine_times: dict[str, float]

    @property
    def total_time(self) -> float:
        return float(self.step_times.sum())

    @property
    def date(self) -> _dt.datetime:
        return seconds_to_date(self.start_time)


@dataclass
class RunDataset:
    """One of the six campaign datasets.

    ``campaign_fingerprint`` is the provenance stamp: the fingerprint of
    the campaign (or stream) this dataset came out of.  It keys every
    derived-data cache (:class:`repro.features.FeatureStore`), so it is
    persisted with the dataset and restored on load — a warm load must
    never silently re-key the feature cache onto an array-content hash.

    Streamed datasets additionally carry ``shard_views`` (the ordered
    per-window :class:`RunDataset` shards, each stamped with its own
    window-campaign fingerprint) and ``shard_fingerprints`` — set by
    :mod:`repro.campaign.streaming`, read by the feature store's
    incremental-append path.
    """

    key: str
    runs: list[RunRecord] = field(default_factory=list)
    campaign_fingerprint: str | None = None

    # ---- basic shape ---------------------------------------------------- #

    def __len__(self) -> int:
        return len(self.runs)

    @property
    def num_steps(self) -> int:
        return int(self.runs[0].step_times.shape[0]) if self.runs else 0

    # ---- assembled arrays ------------------------------------------------ #

    @property
    def Y(self) -> np.ndarray:
        """(N, T) per-step execution times."""
        return np.stack([r.step_times for r in self.runs])

    @property
    def X(self) -> np.ndarray:
        """(N, T, 13) AriesNCL counters."""
        return np.stack([r.counters for r in self.runs])

    @property
    def ldms(self) -> np.ndarray:
        """(N, T, 8) io/sys counters."""
        return np.stack([r.ldms for r in self.runs])

    @property
    def placement(self) -> np.ndarray:
        """(N, 2): NUM_ROUTERS, NUM_GROUPS."""
        return np.array(
            [[r.num_routers, r.num_groups] for r in self.runs], dtype=np.float64
        )

    @property
    def totals(self) -> np.ndarray:
        """(N,) total run times."""
        return np.array([r.total_time for r in self.runs])

    @property
    def start_times(self) -> np.ndarray:
        return np.array([r.start_time for r in self.runs])

    def feature_names(
        self, placement: bool = False, io: bool = False, sys: bool = False
    ) -> list[str]:
        names = list(APP_COUNTERS)
        if placement:
            names += PLACEMENT_FEATURES
        if io:
            names += IO_COUNTERS
        if sys:
            names += SYS_COUNTERS
        return names

    def features(
        self, placement: bool = False, io: bool = False, sys: bool = False
    ) -> np.ndarray:
        """(N, T, H') feature tensor for a forecasting ablation tier."""
        parts = [self.X]
        if placement:
            pl = self.placement  # (N, 2), constant over steps
            parts.append(np.repeat(pl[:, None, :], self.num_steps, axis=1))
        ld = self.ldms
        if io:
            parts.append(ld[:, :, : len(IO_COUNTERS)])
        if sys:
            parts.append(ld[:, :, len(IO_COUNTERS) :])
        return np.concatenate(parts, axis=2)

    # ---- paper §IV-B: mean-centering ------------------------------------- #

    def mean_trends(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-step means over runs: (T, 13) counters, (T,) times (Fig. 7)."""
        return self.X.mean(axis=0), self.Y.mean(axis=0)

    def mean_centered(self) -> tuple[np.ndarray, np.ndarray]:
        """X̂, Ŷ with per-step mean trends removed (paper §IV-B)."""
        xm, ym = self.mean_trends()
        return self.X - xm[None, :, :], self.Y - ym[None, :]

    # ---- optimality labels (paper §IV-A) ---------------------------------- #

    def optimality(self, tau: float = 1.0) -> np.ndarray:
        """Binary vector p: run r is optimal iff t_r < tau * mean(t)."""
        totals = self.totals
        return (totals < tau * totals.mean()).astype(np.int8)

    def relative_performance(self) -> np.ndarray:
        """Per-run total time relative to the best run (Fig. 1 y-axis)."""
        totals = self.totals
        return totals / totals.min()

    # ---- serialisation ----------------------------------------------------- #

    def save(self, path: Path, campaign_fingerprint: str | None = None) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        npz_path = path.with_suffix(".npz")
        tmp = npz_path.with_name(f"{npz_path.name}.tmp{os.getpid()}")
        with open(tmp, "wb") as fh:
            np.savez_compressed(
                fh,
                step_times=self.Y,
                compute_times=np.stack([r.compute_times for r in self.runs]),
                mpi_times=np.stack([r.mpi_times for r in self.runs]),
                counters=self.X,
                ldms=self.ldms,
                placement=self.placement,
                start_times=self.start_times,
            )
        os.replace(tmp, npz_path)
        meta = {
            "key": self.key,
            "neighborhoods": [r.neighborhood for r in self.runs],
            "routine_times": [r.routine_times for r in self.runs],
        }
        # Provenance travels with the entry (an optional key, so the
        # schema — and therefore CACHE_FORMAT_VERSION and every existing
        # fingerprint — is unchanged): warm loads keep keying the feature
        # cache off the campaign fingerprint instead of array contents.
        fp = campaign_fingerprint or self.campaign_fingerprint
        if fp is not None:
            meta["campaign_fingerprint"] = fp
        _atomic_write_text(path.with_suffix(".json"), json.dumps(meta))

    @classmethod
    def load(cls, path: Path) -> "RunDataset":
        path = Path(path)
        meta = json.loads(path.with_suffix(".json").read_text())
        runs = []
        with np.load(path.with_suffix(".npz")) as npz:
            # Materialise every array once, inside the context, so a
            # truncated archive fails *here* (where Campaign.load catches
            # it) and each member is decompressed a single time.
            arrays = {name: npz[name] for name in npz.files}
        n = arrays["step_times"].shape[0]
        for i in range(n):
            runs.append(
                RunRecord(
                    run_index=i,
                    start_time=float(arrays["start_times"][i]),
                    step_times=arrays["step_times"][i],
                    compute_times=arrays["compute_times"][i],
                    mpi_times=arrays["mpi_times"][i],
                    counters=arrays["counters"][i],
                    ldms=arrays["ldms"][i],
                    num_routers=int(arrays["placement"][i, 0]),
                    num_groups=int(arrays["placement"][i, 1]),
                    neighborhood=meta["neighborhoods"][i],
                    routine_times=meta["routine_times"][i],
                )
            )
        return cls(
            key=meta["key"],
            runs=runs,
            campaign_fingerprint=meta.get("campaign_fingerprint"),
        )


@dataclass
class Campaign:
    """All datasets from one campaign plus shared context."""

    datasets: dict[str, RunDataset]
    #: Anonymised ground-truth aggressor users (for evaluation only; the
    #: analyses never see this).
    ground_truth_aggressors: list[str] = field(default_factory=list)

    def __getitem__(self, key: str) -> RunDataset:
        return self.datasets[key]

    def keys(self) -> list[str]:
        return list(self.datasets)

    # ---- cache ------------------------------------------------------------ #

    @staticmethod
    def cache_dir() -> Path:
        return Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))

    @classmethod
    def cache_lock(cls, fingerprint: str) -> FileLock:
        """The inter-process lock serialising savers of ``fingerprint``."""
        return FileLock(cls.cache_dir() / f"{fingerprint}.lock")

    def save(self, fingerprint: str) -> Path:
        """Write this campaign into the cache, safely.

        Holds the fingerprint's :class:`FileLock` so two concurrent
        generators (e.g. pytest and a benchmark run) serialise instead of
        interleaving writes; every file lands via write-then-rename with
        the manifest last, so concurrent *readers* only ever observe a
        miss or a complete entry.
        """
        root = self.cache_dir() / fingerprint
        with self.cache_lock(fingerprint):
            root.mkdir(parents=True, exist_ok=True)
            for key, ds in self.datasets.items():
                ds.save(root / key, campaign_fingerprint=fingerprint)
            _atomic_write_text(
                root / "campaign.json",
                json.dumps(
                    {
                        "format": CACHE_FORMAT_VERSION,
                        "keys": list(self.datasets),
                        "ground_truth_aggressors": self.ground_truth_aggressors,
                    }
                ),
            )
        return root

    @classmethod
    def load(cls, fingerprint: str) -> "Campaign | None":
        """Load a cached campaign, or ``None`` on any kind of miss.

        A missing entry, a format-version mismatch, and a corrupt or
        truncated entry are all plain misses — the caller regenerates.
        Corruption additionally warns, since it usually means a writer
        died mid-save or the cache directory was hand-edited.
        """
        root = cls.cache_dir() / fingerprint
        manifest = root / "campaign.json"
        if not manifest.exists():
            return None
        try:
            meta = json.loads(manifest.read_text())
            if meta.get("format") != CACHE_FORMAT_VERSION:
                return None
            datasets = {k: RunDataset.load(root / k) for k in meta["keys"]}
        except FileNotFoundError:
            return None
        except Exception as exc:
            # Any other failure mode (truncated .npz, garbled JSON, bad
            # shapes) means a broken entry: regenerate rather than crash.
            warnings.warn(
                f"discarding corrupt campaign cache entry {root}: "
                f"{type(exc).__name__}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        # The entry is keyed by this fingerprint, so it is authoritative
        # provenance whether or not the per-dataset meta carried the
        # (newer, optional) stamp — pre-stamp cache entries load warm too.
        for ds in datasets.values():
            ds.campaign_fingerprint = fingerprint
        return cls(
            datasets=datasets,
            ground_truth_aggressors=meta.get("ground_truth_aggressors", []),
        )
