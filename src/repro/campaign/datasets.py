"""Campaign datasets: the paper's X (N x T x H) and Y (N x T) matrices.

Each (application, node count) pair is an independent dataset of N runs
with T time steps and H recorded features per step (paper §IV-B).  Beyond
the 13 AriesNCL counters, every run carries its LDMS io/sys aggregates,
placement features, neighbourhood user list, and mpiP routine breakdown —
everything the three analyses consume.

Datasets cache to ``.npz`` + JSON under ``REPRO_CACHE_DIR`` (default
``./.repro_cache``) keyed by the campaign-config fingerprint, so figures
and benchmarks share one generation pass.
"""

from __future__ import annotations

import datetime as _dt
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.network.counters import (
    APP_COUNTERS,
    IO_COUNTERS,
    PLACEMENT_FEATURES,
    SYS_COUNTERS,
)

#: Campaign epoch: the first date on Fig. 1's time axis.
EPOCH = _dt.datetime(2018, 11, 29)

#: LDMS feature order as stored in the dataset arrays.
LDMS_FEATURES: list[str] = IO_COUNTERS + SYS_COUNTERS


def seconds_to_date(t: float) -> _dt.datetime:
    """Campaign seconds -> calendar timestamp (Fig. 1 axis)."""
    return EPOCH + _dt.timedelta(seconds=float(t))


@dataclass
class RunRecord:
    """One probe run: everything recorded for it."""

    run_index: int
    start_time: float
    #: Realised wall time per step (T,).
    step_times: np.ndarray
    #: Compute / MPI split per step (T,), (T,).
    compute_times: np.ndarray
    mpi_times: np.ndarray
    #: AriesNCL counters per step (T, 13) in APP_COUNTERS order.
    counters: np.ndarray
    #: LDMS io/sys aggregates per step (T, 8) in LDMS_FEATURES order.
    ldms: np.ndarray
    #: NUM_ROUTERS, NUM_GROUPS.
    num_routers: int
    num_groups: int
    #: Users with large jobs overlapping this run (anonymised ids).
    neighborhood: list[str]
    #: mpiP routine breakdown for the whole run.
    routine_times: dict[str, float]

    @property
    def total_time(self) -> float:
        return float(self.step_times.sum())

    @property
    def date(self) -> _dt.datetime:
        return seconds_to_date(self.start_time)


@dataclass
class RunDataset:
    """One of the six campaign datasets."""

    key: str
    runs: list[RunRecord] = field(default_factory=list)

    # ---- basic shape ---------------------------------------------------- #

    def __len__(self) -> int:
        return len(self.runs)

    @property
    def num_steps(self) -> int:
        return int(self.runs[0].step_times.shape[0]) if self.runs else 0

    # ---- assembled arrays ------------------------------------------------ #

    @property
    def Y(self) -> np.ndarray:
        """(N, T) per-step execution times."""
        return np.stack([r.step_times for r in self.runs])

    @property
    def X(self) -> np.ndarray:
        """(N, T, 13) AriesNCL counters."""
        return np.stack([r.counters for r in self.runs])

    @property
    def ldms(self) -> np.ndarray:
        """(N, T, 8) io/sys counters."""
        return np.stack([r.ldms for r in self.runs])

    @property
    def placement(self) -> np.ndarray:
        """(N, 2): NUM_ROUTERS, NUM_GROUPS."""
        return np.array(
            [[r.num_routers, r.num_groups] for r in self.runs], dtype=np.float64
        )

    @property
    def totals(self) -> np.ndarray:
        """(N,) total run times."""
        return np.array([r.total_time for r in self.runs])

    @property
    def start_times(self) -> np.ndarray:
        return np.array([r.start_time for r in self.runs])

    def feature_names(
        self, placement: bool = False, io: bool = False, sys: bool = False
    ) -> list[str]:
        names = list(APP_COUNTERS)
        if placement:
            names += PLACEMENT_FEATURES
        if io:
            names += IO_COUNTERS
        if sys:
            names += SYS_COUNTERS
        return names

    def features(
        self, placement: bool = False, io: bool = False, sys: bool = False
    ) -> np.ndarray:
        """(N, T, H') feature tensor for a forecasting ablation tier."""
        parts = [self.X]
        if placement:
            pl = self.placement  # (N, 2), constant over steps
            parts.append(np.repeat(pl[:, None, :], self.num_steps, axis=1))
        ld = self.ldms
        if io:
            parts.append(ld[:, :, : len(IO_COUNTERS)])
        if sys:
            parts.append(ld[:, :, len(IO_COUNTERS) :])
        return np.concatenate(parts, axis=2)

    # ---- paper §IV-B: mean-centering ------------------------------------- #

    def mean_trends(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-step means over runs: (T, 13) counters, (T,) times (Fig. 7)."""
        return self.X.mean(axis=0), self.Y.mean(axis=0)

    def mean_centered(self) -> tuple[np.ndarray, np.ndarray]:
        """X̂, Ŷ with per-step mean trends removed (paper §IV-B)."""
        xm, ym = self.mean_trends()
        return self.X - xm[None, :, :], self.Y - ym[None, :]

    # ---- optimality labels (paper §IV-A) ---------------------------------- #

    def optimality(self, tau: float = 1.0) -> np.ndarray:
        """Binary vector p: run r is optimal iff t_r < tau * mean(t)."""
        totals = self.totals
        return (totals < tau * totals.mean()).astype(np.int8)

    def relative_performance(self) -> np.ndarray:
        """Per-run total time relative to the best run (Fig. 1 y-axis)."""
        totals = self.totals
        return totals / totals.min()

    # ---- serialisation ----------------------------------------------------- #

    def save(self, path: Path) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(
            path.with_suffix(".npz"),
            step_times=self.Y,
            compute_times=np.stack([r.compute_times for r in self.runs]),
            mpi_times=np.stack([r.mpi_times for r in self.runs]),
            counters=self.X,
            ldms=self.ldms,
            placement=self.placement,
            start_times=self.start_times,
        )
        meta = {
            "key": self.key,
            "neighborhoods": [r.neighborhood for r in self.runs],
            "routine_times": [r.routine_times for r in self.runs],
        }
        path.with_suffix(".json").write_text(json.dumps(meta))

    @classmethod
    def load(cls, path: Path) -> "RunDataset":
        path = Path(path)
        arrays = np.load(path.with_suffix(".npz"))
        meta = json.loads(path.with_suffix(".json").read_text())
        runs = []
        n = arrays["step_times"].shape[0]
        for i in range(n):
            runs.append(
                RunRecord(
                    run_index=i,
                    start_time=float(arrays["start_times"][i]),
                    step_times=arrays["step_times"][i],
                    compute_times=arrays["compute_times"][i],
                    mpi_times=arrays["mpi_times"][i],
                    counters=arrays["counters"][i],
                    ldms=arrays["ldms"][i],
                    num_routers=int(arrays["placement"][i, 0]),
                    num_groups=int(arrays["placement"][i, 1]),
                    neighborhood=meta["neighborhoods"][i],
                    routine_times=meta["routine_times"][i],
                )
            )
        return cls(key=meta["key"], runs=runs)


@dataclass
class Campaign:
    """All datasets from one campaign plus shared context."""

    datasets: dict[str, RunDataset]
    #: Anonymised ground-truth aggressor users (for evaluation only; the
    #: analyses never see this).
    ground_truth_aggressors: list[str] = field(default_factory=list)

    def __getitem__(self, key: str) -> RunDataset:
        return self.datasets[key]

    def keys(self) -> list[str]:
        return list(self.datasets)

    # ---- cache ------------------------------------------------------------ #

    @staticmethod
    def cache_dir() -> Path:
        return Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))

    def save(self, fingerprint: str) -> Path:
        root = self.cache_dir() / fingerprint
        root.mkdir(parents=True, exist_ok=True)
        for key, ds in self.datasets.items():
            ds.save(root / key)
        (root / "campaign.json").write_text(
            json.dumps(
                {
                    "keys": list(self.datasets),
                    "ground_truth_aggressors": self.ground_truth_aggressors,
                }
            )
        )
        return root

    @classmethod
    def load(cls, fingerprint: str) -> "Campaign | None":
        root = cls.cache_dir() / fingerprint
        manifest = root / "campaign.json"
        if not manifest.exists():
            return None
        meta = json.loads(manifest.read_text())
        try:
            datasets = {k: RunDataset.load(root / k) for k in meta["keys"]}
        except FileNotFoundError:
            return None
        return cls(
            datasets=datasets,
            ground_truth_aggressors=meta.get("ground_truth_aggressors", []),
        )
