"""Dataset quality validation — the campaign's data contract.

Before four months of (simulated or real) telemetry feed the ML
pipelines, an operator wants mechanical checks that the data is sane.
``validate_dataset`` codifies the invariants every analysis in this
repository relies on; the campaign CLI and tests run it, and it is the
first thing to run when a modified substrate produces surprising figures.
``validate_axis`` front-loads the (topology, routing) resolution so a
typo'd cell name fails with the registered options listed instead of a
``KeyError`` deep in the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.campaign.datasets import LDMS_FEATURES, RunDataset
from repro.network.counters import APP_COUNTERS


def validate_axis(topology: str, routing: str) -> tuple[str, str]:
    """Resolve a (topology, routing) cell, failing loudly on unknowns.

    Returns the canonical pair.  Raises :class:`ValueError` naming the
    offending axis value and listing every registered option (aliases
    included) — the message the campaign CLI and config validation
    surface to the user.
    """
    from repro.topology.registry import canonical_routing, canonical_topology

    return canonical_topology(topology), canonical_routing(routing)


@dataclass
class ValidationReport:
    """Outcome of validating one dataset."""

    key: str
    checks: dict[str, bool] = field(default_factory=dict)
    messages: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(self.checks.values())

    def failed(self) -> list[str]:
        return [name for name, passed in self.checks.items() if not passed]


def validate_dataset(ds: RunDataset, min_runs: int = 3) -> ValidationReport:
    """Run the data-contract checks on one dataset."""
    rep = ValidationReport(key=ds.key)

    def check(name: str, passed: bool, msg: str = "") -> None:
        rep.checks[name] = bool(passed)
        if not passed and msg:
            rep.messages.append(f"{name}: {msg}")

    n = len(ds)
    check("has-runs", n >= min_runs, f"{n} runs < {min_runs}")
    if n == 0:
        return rep

    y = ds.Y
    x = ds.X
    ld = ds.ldms
    t = ds.num_steps

    check("consistent-steps", all(len(r.step_times) == t for r in ds.runs))
    check("positive-times", bool((y > 0).all()), "non-positive step time")
    check("finite-times", bool(np.isfinite(y).all()))
    check(
        "counter-shape",
        x.shape == (n, t, len(APP_COUNTERS)),
        f"got {x.shape}",
    )
    check("counters-nonnegative", bool((x >= 0).all()))
    check("counters-finite", bool(np.isfinite(x).all()))
    check(
        "ldms-shape", ld.shape == (n, t, len(LDMS_FEATURES)), f"got {ld.shape}"
    )
    check("ldms-nonnegative", bool((ld >= 0).all()))

    # Split consistency: compute + mpi == step time.
    comp = np.stack([r.compute_times for r in ds.runs])
    mpi = np.stack([r.mpi_times for r in ds.runs])
    check(
        "split-consistent",
        bool(np.allclose(comp + mpi, y, rtol=1e-6)),
        "compute + MPI != step time",
    )

    # Placement features within physical bounds.
    pl = ds.placement
    check("routers-positive", bool((pl[:, 0] >= 1).all()))
    check(
        "groups-le-routers",
        bool((pl[:, 1] <= pl[:, 0]).all()),
        "NUM_GROUPS exceeds NUM_ROUTERS",
    )

    # Counters must not be constant across runs (else deviation models
    # have nothing to learn from).  Needs a real population of runs.
    if n >= 3:
        stds = x.std(axis=0).sum(axis=0)  # per counter
        check(
            "counters-vary",
            bool((stds > 0).sum() >= len(APP_COUNTERS) - 1),
            "too many constant counters",
        )
        check("times-vary", bool(y.std(axis=0).sum() > 0))

    # Routine breakdown sums to the MPI time.
    sums_ok = all(
        abs(sum(r.routine_times.values()) - r.mpi_times.sum())
        <= 1e-6 * max(r.mpi_times.sum(), 1.0)
        for r in ds.runs
    )
    check("routines-sum-to-mpi", sums_ok)

    # Neighbourhoods are anonymised user ids.
    users_ok = all(
        u.startswith("User-") for r in ds.runs for u in r.neighborhood
    )
    check("neighborhood-anonymised", users_ok)
    return rep


def validate_campaign(campaign, min_runs: int = 3) -> dict[str, ValidationReport]:
    """Validate every dataset with runs; returns reports keyed by dataset."""
    out = {}
    for key in campaign.keys():
        ds = campaign[key]
        if len(ds):
            out[key] = validate_dataset(
                ds, min_runs=1 if "-long" in key else min_runs
            )
    return out
