"""Campaign driver: four months of probe runs on the shared machine.

The runner reproduces the paper's data collection (§III):

1. generate the background job stream and our probe submissions
   (1–2 jobs per application per day, December 2018 – April 2019);
2. schedule everything through the Slurm-like queue — probes get whatever
   fragmented placement is free when they start;
3. execute every probe run step by step against the *evolving* background
   traffic, recording per-step times, AriesNCL counters, LDMS io/sys
   aggregates, placements, neighbourhoods and mpiP profiles;
4. assemble the six datasets (plus the long MILC run used for Fig. 12).

Performance design (the campaign solves ~40k network states):

* background link loads change only at job start/end events, so a single
  chronological sweep maintains an additive :class:`BaseLoad` accumulator
  (O(#links) per event);
* each probe run's routing geometry is built once; a step solve is then
  O(#links) vector work plus two ``maximum.reduceat`` passes for the
  UGAL split — a few milliseconds each;
* everything *outside* the chronological sweep — per-job traffic routing
  and every probe run's step solves — fans out over a process pool (see
  :mod:`repro.campaign.parallel`); ``CampaignConfig.workers`` /
  ``REPRO_WORKERS`` picks the worker count, and any count produces
  bit-identical datasets.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.apps.base import Application, StepModel
from repro.apps.registry import DATASET_KEYS, get_application
from repro.campaign.datasets import (
    CACHE_FORMAT_VERSION,
    Campaign,
    RunDataset,
    RunRecord,
)
from repro.config import (
    DEFAULT_SEED,
    ScalePreset,
    get_preset,
    resolve_workers,
    rng_for,
)
from repro.network.engine import (
    BaseLoad,
    CongestionEngine,
    NetworkState,
    slowdown_curve,
)
from repro.obs import METRICS, annotate, event, get_logger
from repro.obs.profile import profiled_span
from repro.network.ldms import LDMSSampler
from repro.network.traffic import (
    FlowSet,
    allreduce_flows,
    io_flows,
    router_alltoall_flows,
    uniform_random_flows,
)
from repro.system.jobs import JobRecord, JobRequest
from repro.system.scheduler import Scheduler
from repro.system.users import UserPopulation
from repro.system.workload import DAY, BackgroundWorkloadGenerator
from repro.telemetry.sacct import SacctLog
from repro.topology.base import Topology
from repro.topology.placement import job_routers
from repro.topology.registry import (
    DEFAULT_CELL,
    build_topology,
    canonical_routing,
    canonical_topology,
)
from repro.topology.routing import Incidence

#: Cori's KNL partition size; background job sizes scale relative to it.
CORI_KNL_NODES = 9688

_LOG = get_logger("campaign")

#: Fingerprint version: bump when the generation pipeline changes in a way
#: that invalidates cached campaigns.
_PIPELINE_VERSION = 12

#: Counter attribution (what a job's AriesNCL reading actually sees):
#:
#: * Processor-tile *flit* counters are per-NIC: the job reads the tiles of
#:   its own nodes, so it counts only its own endpoint traffic — and that
#:   volume is fixed by the step's workload (congestion stretches a
#:   transfer, it does not add flits), so it integrates over the *nominal*
#:   step work.
#: * Router-tile flit counters are shared per router: the job sees its own
#:   flits (nominal work) plus every tenant's fabric traffic crossing its
#:   routers, which accrues for the full realised step duration.
#: * All stall counters reflect shared backpressure (row/column buses and
#:   link queues) at the *congested* rate for the realised duration.
_PT_FLIT_FAMILY = {"PT_FLIT_VC0", "PT_FLIT_VC4", "PT_FLIT_TOT", "PT_PKT_TOT"}
_RT_FLIT_FAMILY = {"RT_FLIT_TOT", "RT_PKT_TOT"}

#: Short-timescale background "breathing": application phases (collectives
#: vs compute, checkpoint waves) make aggregate traffic fluctuate on
#: second-to-minute scales around the scheduler-determined level.
#: Modelled as a per-run lognormal Ornstein-Uhlenbeck multiplier on the
#: background load, correlation time BURST_TAU seconds.  This temporal
#: structure is what the forecasting models exploit: a longer context m
#: denoises the current level, and a larger horizon k amortises bursts
#: (the paper's Fig. 8/10 trends, §V-C).
BURST_SIGMA = 0.35
BURST_TAU = 45.0

#: Counter sampling jitter (AriesNCL reads are not perfectly aligned with
#: step boundaries; LDMS samples at 1 Hz).
COUNTER_NOISE = 0.05


def _burst_series(
    midpoints: np.ndarray, rng: np.random.Generator,
    sigma: float = BURST_SIGMA, tau: float = BURST_TAU,
) -> np.ndarray:
    """Lognormal OU multiplier sampled at a run's step midpoints."""
    n = len(midpoints)
    x = np.empty(n)
    x[0] = rng.normal()
    for i in range(1, n):
        rho = float(np.exp(-max(midpoints[i] - midpoints[i - 1], 0.0) / tau))
        x[i] = rho * x[i - 1] + np.sqrt(max(1 - rho * rho, 0.0)) * rng.normal()
    return np.exp(sigma * x - 0.5 * sigma * sigma)


@dataclass(frozen=True)
class CampaignConfig:
    """Knobs of one campaign generation."""

    preset: ScalePreset
    days: float = 120.0
    seed: int = DEFAULT_SEED
    dataset_keys: tuple[str, ...] = tuple(DATASET_KEYS)
    #: Min/max probe submissions per (app, day) — paper: "one or two".
    probes_per_day: tuple[int, int] = (1, 2)
    #: Global multiplier on background traffic intensities (calibration).
    background_intensity: float = 1.0
    #: Fraction of compute nodes the background keeps busy on average
    #: (production systems run near-full; lower at tiny scale so the
    #: 512-node probes can still fit).
    target_utilization: float = 0.75
    #: Long probe runs for the Fig. 12 experiment: dataset key -> steps.
    long_runs: tuple[tuple[str, int], ...] = (("MILC-128", 620),)
    #: Cache generated datasets on disk.
    use_cache: bool = True
    #: Worker processes for the parallel generation phases.  ``None``
    #: defers to the ``REPRO_WORKERS`` environment variable (default 1,
    #: i.e. in-process); ``0`` means "all cores".  Any value yields
    #: bit-identical datasets, so this knob is *not* part of the
    #: fingerprint.
    workers: int | None = None
    #: The campaign's network cell on the (topology, routing) axis; names
    #: resolve through :mod:`repro.topology.registry` (aliases accepted).
    topology: str = DEFAULT_CELL[0]
    routing: str = DEFAULT_CELL[1]

    def __post_init__(self) -> None:
        # Canonicalise the cell so aliases ("df", "adaptive", ...) and the
        # canonical names fingerprint identically.
        object.__setattr__(self, "topology", canonical_topology(self.topology))
        object.__setattr__(self, "routing", canonical_routing(self.routing))

    # ------------------------------------------------------------------ #

    @classmethod
    def small(cls, **overrides) -> "CampaignConfig":
        """Benchmark-scale campaign (the default for all figures)."""
        return cls(preset=get_preset("small"), **overrides)

    @classmethod
    def tiny(cls, **overrides) -> "CampaignConfig":
        """Test-scale campaign: a 960-node machine, a few days."""
        preset = ScalePreset(
            name="campaign-tiny", groups=10, rows=6, cols=4, nodes_per_router=4
        )
        defaults = dict(
            preset=preset,
            days=6.0,
            probes_per_day=(1, 1),
            long_runs=(("MILC-128", 160),),
            target_utilization=0.45,
        )
        defaults.update(overrides)
        return cls(**defaults)

    @property
    def node_scale(self) -> float:
        """Background job-size scale relative to Cori's KNL partition."""
        return self.preset.num_nodes / CORI_KNL_NODES

    @property
    def min_neighbor_nodes(self) -> int:
        """Neighbourhood size filter, scaled like the background jobs
        (paper uses 128 nodes on Cori, §V-A)."""
        return max(8, int(round(128 * self.node_scale)))

    @property
    def cell(self) -> tuple[str, str]:
        """The canonical ``(topology, routing)`` pair."""
        return (self.topology, self.routing)

    @property
    def cell_id(self) -> str:
        """The cell rendered as an id string (``dragonfly/ugal``)."""
        return f"{self.topology}/{self.routing}"

    def fingerprint(self) -> str:
        payload = {
            "v": _PIPELINE_VERSION,
            "fmt": CACHE_FORMAT_VERSION,
            "preset": [
                self.preset.groups,
                self.preset.rows,
                self.preset.cols,
                self.preset.nodes_per_router,
                self.preset.io_groups,
            ],
            "days": self.days,
            "seed": self.seed,
            "keys": list(self.dataset_keys),
            "ppd": list(self.probes_per_day),
            "bg": self.background_intensity,
            "util": self.target_utilization,
            "long": [list(x) for x in self.long_runs],
        }
        # The default cell omits the key entirely so pre-axis fingerprints
        # (cached campaigns, CI caches, bench baselines) stay valid.
        if self.cell != DEFAULT_CELL:
            payload["cell"] = [self.topology, self.routing]
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()
        ).hexdigest()[:16]


# --------------------------------------------------------------------------- #
# Fast per-step probe solver
# --------------------------------------------------------------------------- #


#: Discount on middle-hop congestion in the per-flow slowdown.  UGAL-style
#: adaptive routing can steer around congested *intermediate* links by
#: picking other minimal/Valiant candidates, but the first and last hops —
#: the links adjacent to the flow's source and destination routers — are
#: unavoidable (Kim et al., ISCA'08).  This is what makes stall counters on
#: the job's *own* routers the dominant deviation signal (paper §V-B).
MID_HOP_DISCOUNT = 0.55


class _SegMax:
    """Per-flow maximum of a per-link metric via one sorted reduceat.

    ``entry_mask`` restricts the reduction to a subset of incidence
    entries (e.g. only endpoint-adjacent links).
    """

    def __init__(
        self, inc: Incidence, n_flows: int, entry_mask: np.ndarray | None = None
    ) -> None:
        if entry_mask is not None:
            inc = Incidence(
                inc.flow[entry_mask], inc.link[entry_mask], inc.share[entry_mask]
            )
        order = np.argsort(inc.flow, kind="stable")
        self.link = inc.link[order]
        flows_sorted = inc.flow[order]
        if len(flows_sorted):
            self.seg_starts = np.flatnonzero(
                np.r_[True, flows_sorted[1:] != flows_sorted[:-1]]
            )
            self.seg_flows = flows_sorted[self.seg_starts]
        else:
            self.seg_starts = np.empty(0, dtype=np.int64)
            self.seg_flows = np.empty(0, dtype=np.int64)
        self.n_flows = n_flows

    def __call__(self, per_link: np.ndarray) -> np.ndarray:
        out = np.zeros(self.n_flows)
        if len(self.link):
            out[self.seg_flows] = np.maximum.reduceat(
                per_link[self.link], self.seg_starts
            )
        return out

    def block(self, per_link: np.ndarray) -> np.ndarray:
        """Batched :meth:`__call__`: ``(steps, links)`` -> ``(steps, flows)``.

        One axis-1 gather plus one ``maximum.reduceat`` along axis 1.
        ``maximum`` is an exact reduction (no rounding), so the batched
        rows are bit-identical to per-step calls regardless of how the
        reduction is ordered internally.
        """
        out = np.zeros((per_link.shape[0], self.n_flows))
        if len(self.link):
            out[:, self.seg_flows] = np.maximum.reduceat(
                per_link[:, self.link], self.seg_starts, axis=1
            )
        return out


class ProbeRunContext:
    """Placement-bound solving state for one probe run.

    Construction is deterministic (no RNG), so any process can rebuild
    an identical context from ``(app, topology, engine, nodes)`` — the
    property the parallel executor relies on.
    """

    def __init__(
        self,
        app: Application,
        topology: Topology,
        engine: CongestionEngine,
        nodes: np.ndarray,
        step_model: StepModel,
    ) -> None:
        self.app = app
        self.topology = topology
        self.engine = engine
        self.nodes = nodes
        self.step_model = step_model
        self.routers = job_routers(topology, nodes)

        flows = app.flow_geometry(topology, nodes)
        self.flows = flows
        routed = engine.route(flows)
        self.routing = routed.routing
        n_links = topology.num_links
        vol = flows.volume
        self.load_min = self.routing.minimal.link_loads(vol, n_links)
        self.load_val = self.routing.valiant.link_loads(vol, n_links)
        # Split each path set into endpoint-adjacent ("edge") hops, which
        # adaptive routing cannot avoid, and middle hops, which it can
        # partially steer around (see MID_HOP_DISCOUNT).
        ls, ld = topology.link_endpoints
        def _edge_mask(inc: Incidence) -> np.ndarray:
            return (ls[inc.link] == flows.src[inc.flow]) | (
                ld[inc.link] == flows.dst[inc.flow]
            )
        m_edge = _edge_mask(self.routing.minimal)
        v_edge = _edge_mask(self.routing.valiant)
        self.seg_min_edge = _SegMax(self.routing.minimal, len(flows), m_edge)
        self.seg_min_mid = _SegMax(self.routing.minimal, len(flows), ~m_edge)
        self.seg_val_edge = _SegMax(self.routing.valiant, len(flows), v_edge)
        self.seg_val_mid = _SegMax(self.routing.valiant, len(flows), ~v_edge)
        r = topology.num_routers
        self.inj_unit = np.bincount(flows.src, weights=vol, minlength=r)
        self.ej_unit = np.bincount(flows.dst, weights=vol, minlength=r)
        self.vc4_unit = self.inj_unit * flows.response_ratio
        self.vol_weights = vol / vol.sum() if vol.sum() > 0 else vol

    def mean_contribution(self) -> BaseLoad:
        """This probe's average traffic, as seen by *other* jobs."""
        a0 = self.engine.alpha0
        return BaseLoad(
            link_loads=a0 * self.load_min + (1 - a0) * self.load_val,
            inj=self.inj_unit.copy(),
            ej=self.ej_unit.copy(),
            vc4=self.vc4_unit.copy(),
        )

    def solve_step(
        self, base: BaseLoad, intensity: float
    ) -> tuple[NetworkState, float, float]:
        """Solve one step: returns (state, fabric_slowdown, endpoint_slowdown)."""
        topo = self.topology
        eng = self.engine
        cap = topo.link_capacity
        s = intensity
        a0 = eng.alpha0

        loads0 = base.link_loads + s * (a0 * self.load_min + (1 - a0) * self.load_val)
        util0 = loads0 / cap
        u_min = np.maximum(
            self.seg_min_edge(util0), MID_HOP_DISCOUNT * self.seg_min_mid(util0)
        )
        u_val = np.maximum(
            self.seg_val_edge(util0), MID_HOP_DISCOUNT * self.seg_val_mid(util0)
        )
        if eng.pinned:
            # Pinned policies fix the split exactly (the UGAL clip band
            # must not pull a pure-minimal/pure-Valiant split inward).
            alpha_f = np.full(len(u_min), a0)
        else:
            alpha_f = np.clip(a0 + eng.ugal_gain * (u_val - u_min), 0.25, 0.98)
        a = float(alpha_f @ self.vol_weights) if len(alpha_f) else a0

        loads = base.link_loads + s * (a * self.load_min + (1 - a) * self.load_val)
        state = NetworkState(
            topology=topo,
            link_loads=loads,
            inj=base.inj + s * self.inj_unit,
            ej=base.ej + s * self.ej_unit,
            vc4=base.vc4 + s * self.vc4_unit,
        )
        path_util = alpha_f * u_min + (1.0 - alpha_f) * u_val
        fabric = slowdown_curve(path_util)
        nic_util = state.nic_util
        if len(self.flows):
            ep_util = np.maximum(
                nic_util[self.flows.src], nic_util[self.flows.dst]
            )
        else:
            ep_util = np.empty(0)
        endpoint = slowdown_curve(ep_util)
        w = self.vol_weights
        return (
            state,
            float(fabric @ w) if len(w) else 1.0,
            float(endpoint @ w) if len(w) else 1.0,
        )

    def solve_steps(
        self, base: BaseLoad, intensities: np.ndarray
    ) -> tuple[np.ndarray, ...]:
        """Solve a block of steps in one pass (batched :meth:`solve_step`).

        ``base`` carries the per-step background stacked as
        ``(steps, links)`` / ``(steps, routers)`` arrays; ``intensities``
        is one probe intensity per step.  Returns ``(link_loads, inj,
        ej, vc4, fabric, endpoint)``: the solved per-step state arrays
        plus the per-step volume-weighted slowdown scalars.

        Bit-identical to calling :meth:`solve_step` per step: every
        batched operation is either elementwise/broadcast (same scalar
        arithmetic per element), an exact ``maximum`` reduction
        (:meth:`_SegMax.block`), or an explicitly per-row 1-D dot —
        2-D matmul is avoided because BLAS gemv/gemm reorder the
        accumulation and would change low-order bits.
        """
        from repro.config import NIC_BW

        topo = self.topology
        eng = self.engine
        cap = topo.link_capacity
        s = np.asarray(intensities)[:, None]
        n = s.shape[0]
        a0 = eng.alpha0

        # a0 and the fixed path-set vectors are step-invariant, so the
        # first-pass mix is computed once for the block (same expression,
        # same value, as the per-step form).
        mix0 = a0 * self.load_min + (1 - a0) * self.load_val
        loads0 = base.link_loads + s * mix0
        util0 = loads0 / cap
        u_min = np.maximum(
            self.seg_min_edge.block(util0),
            MID_HOP_DISCOUNT * self.seg_min_mid.block(util0),
        )
        u_val = np.maximum(
            self.seg_val_edge.block(util0),
            MID_HOP_DISCOUNT * self.seg_val_mid.block(util0),
        )
        if eng.pinned:
            alpha_f = np.full(u_min.shape, a0)
        else:
            alpha_f = np.clip(a0 + eng.ugal_gain * (u_val - u_min), 0.25, 0.98)
        w = self.vol_weights
        if len(w):
            a = np.empty(n)
            for i in range(n):
                a[i] = float(alpha_f[i] @ w)
        else:
            a = np.full(n, a0)

        loads = base.link_loads + s * (
            a[:, None] * self.load_min + (1 - a)[:, None] * self.load_val
        )
        inj = base.inj + s * self.inj_unit
        ej = base.ej + s * self.ej_unit
        vc4 = base.vc4 + s * self.vc4_unit

        path_util = alpha_f * u_min + (1.0 - alpha_f) * u_val
        fabric = slowdown_curve(path_util)
        nic_util = (inj + ej) / (topo.nodes_per_router * NIC_BW)
        if len(self.flows):
            # Axis-1 advanced indexing yields a Fortran-ordered array;
            # force C order so each row below is a contiguous vector —
            # the strided-row dot kernel rounds differently from the
            # contiguous one the per-step path uses.
            ep_util = np.ascontiguousarray(
                np.maximum(
                    nic_util[:, self.flows.src], nic_util[:, self.flows.dst]
                )
            )
        else:
            ep_util = np.empty((n, 0))
        endpoint = slowdown_curve(ep_util)
        fabric_s = np.empty(n)
        endpoint_s = np.empty(n)
        if len(w):
            for i in range(n):
                fabric_s[i] = float(fabric[i] @ w)
                endpoint_s[i] = float(endpoint[i] @ w)
        else:
            fabric_s[:] = 1.0
            endpoint_s[:] = 1.0
        return loads, inj, ej, vc4, fabric_s, endpoint_s


# --------------------------------------------------------------------------- #
# Background traffic
# --------------------------------------------------------------------------- #


#: Lognormal sigma of per-node injection skew within background jobs.
#: Master ranks and I/O aggregators concentrate endpoint traffic, so the
#: NIC pressure a probe sees at a *shared* router is a local lottery —
#: largely decorrelated from the machine-wide fabric load.  This is what
#: separates the endpoint (PT-stall) deviation channel from the fabric
#: (RT-stall) channel in the datasets.
ENDPOINT_SKEW_SIGMA = 1.2


class BackgroundTrafficModel:
    """Builds each background job's additive BaseLoad contribution."""

    def __init__(
        self,
        topology: Topology,
        engine: CongestionEngine,
        population: UserPopulation,
        intensity: float,
        seed: int,
    ) -> None:
        self.topology = topology
        self.engine = engine
        self.population = population
        self.intensity = intensity
        self.seed = seed

    def flows_for(self, job_id: int, user: str, nodes: np.ndarray) -> FlowSet:
        arch = self.population.by_name(user)
        rng = rng_for("bgflows", job_id, seed=self.seed)
        n = len(nodes)
        comm_total = arch.comm_intensity * n * self.intensity
        node_weights = rng.lognormal(0.0, ENDPOINT_SKEW_SIGMA, size=n)
        parts: list[FlowSet] = []
        if arch.pattern == "alltoall":
            routers = np.unique(self.topology.node_router(nodes))
            router_w = np.bincount(
                np.searchsorted(routers, self.topology.node_router(nodes)),
                weights=node_weights,
                minlength=len(routers),
            )
            parts.append(
                router_alltoall_flows(
                    self.topology,
                    nodes,
                    comm_total,
                    arch.response_ratio,
                    weights=router_w + 1e-12,
                )
            )
        elif arch.pattern == "allreduce":
            parts.append(
                allreduce_flows(
                    self.topology,
                    nodes,
                    bytes_per_node=arch.comm_intensity * self.intensity,
                    response_ratio=arch.response_ratio,
                )
            )
        else:  # uniform
            parts.append(
                uniform_random_flows(
                    self.topology,
                    nodes,
                    bytes_per_node=arch.comm_intensity * self.intensity,
                    rng=rng,
                    fanout=3,
                    response_ratio=arch.response_ratio,
                    node_weights=node_weights,
                )
            )
        # Filesystem traffic is built separately (see contribution_for())
        # so the timeline can modulate it with the bursty I/O weather.
        return FlowSet.concat(parts)

    def _solve_static(self, flows: FlowSet) -> BaseLoad:
        routed = self.engine.route(flows)
        a0 = self.engine.alpha0
        loads = routed.routing.link_loads(
            flows.volume, a0, self.topology.num_links
        )
        r = self.topology.num_routers
        if len(flows):
            inj = np.bincount(flows.src, weights=flows.volume, minlength=r)
            ej = np.bincount(flows.dst, weights=flows.volume, minlength=r)
            vc4 = inj * flows.response_ratio
        else:
            inj = np.zeros(r)
            ej = np.zeros(r)
            vc4 = np.zeros(r)
        return BaseLoad(link_loads=loads, inj=inj, ej=ej, vc4=vc4)

    def contribution_for(
        self, job_id: int, user: str, nodes: np.ndarray
    ) -> tuple[BaseLoad, BaseLoad]:
        """(steady communication, filesystem) contributions of one job.

        The I/O part is kept separate so the timeline can modulate it with
        the bursty filesystem "weather" (see :class:`IOWeather`).  Takes
        plain fields rather than a :class:`JobRecord` so worker processes
        receive slim, picklable specs.
        """
        comm = self._solve_static(self.flows_for(job_id, user, nodes))
        arch = self.population.by_name(user)
        if arch.io_intensity > 0:
            io = self._solve_static(
                io_flows(
                    self.topology,
                    nodes,
                    bytes_per_sec=arch.io_intensity * len(nodes) * self.intensity,
                )
            )
        else:
            io = BaseLoad.zeros(self.topology)
        return comm, io

    def contribution(self, job: JobRecord) -> tuple[BaseLoad, BaseLoad]:
        """Convenience wrapper over :meth:`contribution_for`."""
        return self.contribution_for(job.job_id, job.user, job.nodes)

    def _solve_static_batch(self, flow_sets: list[FlowSet]) -> list[BaseLoad]:
        """Map :meth:`_solve_static` over many flow sets in one pass.

        Bit-identical to the per-set loop by construction: the router's
        deterministic samplers key on ``(src, dst)`` and the per-set flow
        index (restored via ``flow_ids``), never on position within the
        call, so the concatenated routing emits each flow's solo links.
        Per-``(set, link)`` bincount keys then preserve each set's
        accumulation order — entries for different sets land in different
        bins, so every bin sums the exact solo sequence.
        """
        topo = self.topology
        n_sets = len(flow_sets)
        num_links = topo.num_links
        r = topo.num_routers
        sizes = np.array([len(fs) for fs in flow_sets], dtype=np.int64)
        if sizes.sum() == 0:
            return [BaseLoad.zeros(topo) for _ in flow_sets]
        src = np.concatenate([fs.src for fs in flow_sets])
        dst = np.concatenate([fs.dst for fs in flow_sets])
        vol = np.concatenate([fs.volume for fs in flow_sets])
        fid = np.concatenate([np.arange(s, dtype=np.int64) for s in sizes])
        routing = self.engine.router.route(src, dst, rng=None, flow_ids=fid)
        set_of = np.repeat(np.arange(n_sets, dtype=np.int64), sizes)
        a0 = self.engine.alpha0

        def loads2(inc, vols: np.ndarray) -> np.ndarray:
            if not inc.nnz:
                return np.zeros((n_sets, num_links))
            return np.bincount(
                set_of[inc.flow] * num_links + inc.link,
                weights=vols[inc.flow] * inc.share,
                minlength=n_sets * num_links,
            ).reshape(n_sets, num_links)

        link2 = loads2(routing.minimal, vol * a0)
        link2 += loads2(routing.valiant, vol * (1.0 - a0))
        inj2 = np.bincount(
            set_of * r + src, weights=vol, minlength=n_sets * r
        ).reshape(n_sets, r)
        ej2 = np.bincount(
            set_of * r + dst, weights=vol, minlength=n_sets * r
        ).reshape(n_sets, r)
        return [
            BaseLoad(
                link_loads=link2[j].copy(),
                inj=inj2[j].copy(),
                ej=ej2[j].copy(),
                vc4=inj2[j] * fs.response_ratio,
            )
            for j, fs in enumerate(flow_sets)
        ]

    def contributions_for_batch(
        self, specs: list[tuple[int, str, np.ndarray]]
    ) -> list[tuple[BaseLoad, BaseLoad]]:
        """Batched :meth:`contribution_for` over ``(job_id, user, nodes)``.

        Builds every job's flow geometry, then routes and bin-sums all of
        them in two :meth:`_solve_static_batch` passes (communication and
        filesystem) instead of two small routing calls per job — the cold
        campaign path hands each worker its whole chunk at once.
        """
        comm_sets = [
            self.flows_for(job_id, user, nodes)
            for job_id, user, nodes in specs
        ]
        comm = self._solve_static_batch(comm_sets)
        io: list[BaseLoad] = [BaseLoad.zeros(self.topology) for _ in specs]
        io_idx: list[int] = []
        io_sets: list[FlowSet] = []
        for i, (_, user, nodes) in enumerate(specs):
            arch = self.population.by_name(user)
            if arch.io_intensity > 0:
                io_idx.append(i)
                io_sets.append(
                    io_flows(
                        self.topology,
                        nodes,
                        bytes_per_sec=arch.io_intensity
                        * len(nodes)
                        * self.intensity,
                    )
                )
        if io_sets:
            for i, load in zip(io_idx, self._solve_static_batch(io_sets)):
                io[i] = load
        return list(zip(comm, io))


class IOWeather:
    """Bursty machine-wide filesystem activity multiplier.

    Filesystem load on production systems is famously bursty: checkpoint
    waves, staging campaigns and scrubbing drive order-of-magnitude swings
    on timescales of minutes to hours.  Modelled as a lognormal AR(1)
    (Ornstein-Uhlenbeck in log space) sampled on an hourly grid; mean 1.

    This burstiness matters twice for the reproduction: it decorrelates
    *fabric* congestion (I/O crosses global links) from *endpoint*
    congestion (I/O never lands on a compute job's NICs), and it is the
    signal behind the paper's finding that system-wide I/O counters are
    the top forecasting feature for bandwidth-bound MILC (§V-C).
    """

    def __init__(
        self,
        horizon: float,
        rng: np.random.Generator,
        step: float = 1800.0,
        sigma: float = 0.9,
        correlation: float = 0.92,
    ) -> None:
        n = max(2, int(np.ceil(horizon / step)) + 2)
        log_w = np.empty(n)
        log_w[0] = rng.normal(0.0, sigma)
        innov = rng.normal(0.0, sigma * np.sqrt(1 - correlation**2), size=n)
        for i in range(1, n):
            log_w[i] = correlation * log_w[i - 1] + innov[i]
        # Mean-one normalisation of the lognormal.
        self._w = np.exp(log_w - 0.5 * sigma**2)
        self._step = step

    def at(self, t: float) -> float:
        """Multiplier at time ``t`` (piecewise constant)."""
        i = min(int(max(t, 0.0) / self._step), len(self._w) - 1)
        return float(self._w[i])


class TrafficTimeline:
    """Chronological sweep over job start/end events with additive
    accumulators for steady (comm) and weather-modulated (io) traffic.

    The sweep is the campaign's one inherently serial pass: callers
    :meth:`advance` through non-decreasing sample times and
    :meth:`snapshot` the raw ``(comm, io)`` accumulators whenever events
    were folded in.  Scalar modulation (the per-run comm "breathing" and
    the filesystem weather) and the exclusion of a probe's own traffic
    are applied later, per step, by whichever process solves the run —
    that is what lets one snapshot be shared by every run in a window.
    """

    def __init__(
        self,
        contributions: "_ContributionStore",
        jobs: list[JobRecord],
    ):
        self._contrib = contributions
        events: list[tuple[float, int, int]] = []
        for j in jobs:
            events.append((j.start_time, +1, j.job_id))
            events.append((j.end_time, -1, j.job_id))
        events.sort()
        self._events = events
        self._ptr = 0
        self._comm: BaseLoad | None = None
        self._io: BaseLoad | None = None
        self._jobs_by_id = {j.job_id: j for j in jobs}

    @staticmethod
    def _iadd(acc: BaseLoad, c: BaseLoad, sign: float) -> None:
        acc.link_loads += sign * c.link_loads
        acc.inj += sign * c.inj
        acc.ej += sign * c.ej
        acc.vc4 += sign * c.vc4

    def advance(self, t: float) -> bool:
        """Fold in all events up to ``t``; True if the background changed.

        Must be called with non-decreasing ``t``.
        """
        if self._comm is None:
            self._comm = BaseLoad.zeros(self._contrib.topology)
            self._io = BaseLoad.zeros(self._contrib.topology)
        changed = False
        while self._ptr < len(self._events) and self._events[self._ptr][0] <= t:
            _, delta, jid = self._events[self._ptr]
            comm, io = self._contrib.get(self._jobs_by_id[jid])
            sign = 1.0 if delta > 0 else -1.0
            self._iadd(self._comm, comm, sign)
            self._iadd(self._io, io, sign)
            if delta < 0:
                self._contrib.drop(jid)
            self._ptr += 1
            changed = True
        return changed

    def snapshot(self) -> tuple[BaseLoad, BaseLoad]:
        """Copies of the (comm, io) accumulators for the current window."""
        return (
            BaseLoad(
                self._comm.link_loads.copy(),
                self._comm.inj.copy(),
                self._comm.ej.copy(),
                self._comm.vc4.copy(),
            ),
            BaseLoad(
                self._io.link_loads.copy(),
                self._io.inj.copy(),
                self._io.ej.copy(),
                self._io.vc4.copy(),
            ),
        )


class _ContributionStore:
    """Per-job BaseLoads feeding the timeline, dropped at job end.

    Probe contributions are registered up front (computed, possibly in
    parallel, from each probe's own flow geometry at mean intensity), so
    overlapping probes see each other — the paper observed exactly this
    self-interference (§V-A: User-8 appears in its own aggressor lists).
    Background-job contributions arrive through ``loader``, which may
    batch lookahead work across worker processes; it must insert the
    requested job before returning.
    """

    def __init__(self, topology: Topology, loader) -> None:
        self.topology = topology
        self._loader = loader
        self._cache: dict[int, tuple[BaseLoad, BaseLoad]] = {}
        # Probes generate negligible filesystem traffic (§III-A); one
        # shared zero BaseLoad serves them all (it is only ever read).
        self._zero_io = BaseLoad.zeros(topology)

    def register_probe(self, job_id: int, comm: BaseLoad) -> None:
        self._cache[job_id] = (comm, self._zero_io)

    def insert(self, job_id: int, comm: BaseLoad, io: BaseLoad) -> None:
        self._cache[job_id] = (comm, io)

    def has(self, job_id: int) -> bool:
        return job_id in self._cache

    def get(self, job: JobRecord) -> tuple[BaseLoad, BaseLoad]:
        c = self._cache.get(job.job_id)
        if c is None:
            self._loader(job)
            c = self._cache[job.job_id]
        return c

    def drop(self, job_id: int) -> None:
        self._cache.pop(job_id, None)


# --------------------------------------------------------------------------- #
# The runner
# --------------------------------------------------------------------------- #


def _long_step_model(app: Application, steps: int) -> StepModel:
    """Extend an app's step model to ``steps`` by tiling the steady phase."""
    sm = app.step_model()
    t = sm.num_steps
    if steps <= t:
        return StepModel(
            sm.compute[:steps], sm.mpi[:steps], sm.intensity[:steps]
        )
    # Keep the native prefix; repeat the last quarter (the steady phase).
    tail = slice(max(t - max(t // 4, 1), 0), t)
    reps = int(np.ceil((steps - t) / max(tail.stop - tail.start, 1)))
    compute = np.concatenate([sm.compute] + [sm.compute[tail]] * reps)[:steps]
    mpi = np.concatenate([sm.mpi] + [sm.mpi[tail]] * reps)[:steps]
    inten = np.concatenate([sm.intensity] + [sm.intensity[tail]] * reps)[:steps]
    return StepModel(compute, mpi, inten)


@dataclass
class _ProbePlan:
    """One probe submission before scheduling."""

    key: str
    long_steps: int | None = None  # None = regular dataset run


class CampaignRunner:
    """Generates a :class:`~repro.campaign.datasets.Campaign`."""

    def __init__(self, config: CampaignConfig) -> None:
        self.config = config
        self.topology = build_topology(config.topology, config.preset)
        self.engine = CongestionEngine(self.topology, policy=config.routing)
        self.sampler = LDMSSampler(self.topology)
        self.population = UserPopulation.cori_like(node_scale=config.node_scale)

    # ------------------------------------------------------------------ #

    def run(self, progress: bool = False) -> Campaign:
        cfg = self.config
        fingerprint = cfg.fingerprint()
        with profiled_span("campaign.run", fingerprint=fingerprint) as sp:
            campaign = Campaign.load(fingerprint) if cfg.use_cache else None
            cached = campaign is not None
            if campaign is None:
                METRICS.counter("campaign.cache.misses").inc()
                campaign = self._generate(progress=progress)
                if cfg.use_cache:
                    with profiled_span("campaign.save", fingerprint=fingerprint):
                        campaign.save(fingerprint)
            else:
                METRICS.counter("campaign.cache.hits").inc()
            sp.set(cached=cached)
            annotate(
                campaign_fingerprint=fingerprint,
                campaign_cached=cached,
                datasets=sorted(campaign.datasets),
            )
        # Provenance stamp: lets each dataset's FeatureStore key its
        # derived-data cache off the campaign fingerprint instead of
        # hashing array contents (generation is deterministic, so the
        # fingerprint identifies the data whether or not it was cached).
        for ds in campaign.datasets.values():
            ds.campaign_fingerprint = fingerprint
        return campaign

    # ------------------------------------------------------------------ #

    def _probe_requests(self) -> tuple[list[JobRequest], dict[tuple[str, float], _ProbePlan]]:
        """Probe submissions: 1-2 per app per day plus the long runs."""
        cfg = self.config
        rng = rng_for("probe-schedule", seed=cfg.seed)
        requests: list[JobRequest] = []
        plans: dict[tuple[str, float], _ProbePlan] = {}
        lo, hi = cfg.probes_per_day
        for day in range(int(cfg.days)):
            for key in cfg.dataset_keys:
                app = get_application(key)
                n = int(rng.integers(lo, hi + 1))
                for _ in range(n):
                    t = day * DAY + float(rng.uniform(0, DAY))
                    req = JobRequest(
                        user="User-8",
                        name=f"probe-{key}",
                        submit_time=t,
                        num_nodes=app.num_nodes,
                        duration=app.step_model().total_mean_time * 1.6 + 120.0,
                        traffic_tag=key,
                        is_probe=True,
                    )
                    requests.append(req)
                    plans[(key, t)] = _ProbePlan(key=key)
        # Long runs near the campaign end (unseen by earlier training data).
        for key, steps in cfg.long_runs:
            app = get_application(key)
            sm = _long_step_model(app, steps)
            t = (cfg.days - 1.5) * DAY
            req = JobRequest(
                user="User-8",
                name=f"probe-long-{key}",
                submit_time=t,
                num_nodes=app.num_nodes,
                duration=sm.total_mean_time * 1.6 + 120.0,
                traffic_tag=key,
                is_probe=True,
            )
            requests.append(req)
            plans[(key, t)] = _ProbePlan(key=key, long_steps=steps)
        return requests, plans

    def _generate(self, progress: bool = False) -> Campaign:
        cfg = self.config
        topo = self.topology
        horizon = cfg.days * DAY
        workers = resolve_workers(cfg.workers)

        from repro.campaign import parallel as par

        # 1. Jobs: background + probes, scheduled together.
        with profiled_span("campaign.schedule", days=cfg.days, workers=workers):
            bg_gen = BackgroundWorkloadGenerator.for_target_utilisation(
                self.population,
                rng_for("bg-workload", seed=cfg.seed),
                total_nodes=len(topo.compute_nodes),
                target_utilisation=cfg.target_utilization,
                max_job_nodes=max(len(topo.compute_nodes) // 3, 4),
            )
            bg_requests = bg_gen.generate(0.0, horizon)
            probe_requests, plans = self._probe_requests()
            scheduler = Scheduler(
                topo,
                rng=rng_for("scheduler", seed=cfg.seed),
                horizon=horizon * 1.2,
            )
            result = scheduler.schedule(bg_requests + probe_requests)
            sacct = SacctLog(result, topo)
            probes = result.probes()
        _LOG.info(
            "scheduled %d background jobs and %d probe runs over %.0f days",
            len(bg_requests), len(probes), cfg.days,
        )

        # 2. Probe sample plan: nominal step midpoints, in global time order.
        samples: list[tuple[float, int, int]] = []  # (t, probe idx, step)
        step_models: list[StepModel] = []
        plan_list: list[_ProbePlan] = []
        for pi, job in enumerate(probes):
            plan = plans[(job.request.traffic_tag, job.request.submit_time)]
            app = get_application(plan.key)
            sm = (
                _long_step_model(app, plan.long_steps)
                if plan.long_steps
                else app.step_model()
            )
            step_models.append(sm)
            plan_list.append(plan)
            durations = sm.compute + sm.mpi
            mids = job.start_time + np.cumsum(durations) - durations / 2
            for s in range(sm.num_steps):
                samples.append((float(mids[s]), pi, s))
        samples.sort()

        # 3. Fan the parallel phases out over the worker pool; the
        #    chronological sweep stays in this process.
        env = par.WorkerEnv(
            cfg,
            topology=topo,
            engine=self.engine,
            sampler=self.sampler,
            population=self.population,
        )
        with par.CampaignPool(cfg, workers, env=env) as pool:
            results = self._solve_probes(
                pool,
                env,
                result.jobs,
                probes,
                plan_list,
                step_models,
                samples,
                horizon,
                progress,
            )

        # 4. Assemble datasets.
        from repro.topology.placement import placement_features

        with profiled_span("campaign.assemble", runs=len(probes)):
            datasets: dict[str, RunDataset] = {
                key: RunDataset(key=key) for key in cfg.dataset_keys
            }
            for key, steps in cfg.long_runs:
                datasets[f"{key}-long{steps}"] = RunDataset(
                    key=f"{key}-long{steps}"
                )

            for pi, job in enumerate(probes):
                plan = plan_list[pi]
                res = results[pi]
                feats = placement_features(topo, job.nodes)
                key = (
                    f"{plan.key}-long{plan.long_steps}"
                    if plan.long_steps
                    else plan.key
                )
                ds = datasets[key]
                ds.runs.append(
                    RunRecord(
                        run_index=len(ds.runs),
                        start_time=job.start_time,
                        step_times=res.step_times,
                        compute_times=res.compute_times,
                        mpi_times=res.mpi_times,
                        counters=res.counters,
                        ldms=res.ldms,
                        num_routers=feats["NUM_ROUTERS"],
                        num_groups=feats["NUM_GROUPS"],
                        neighborhood=sacct.neighborhood_users(
                            job, min_nodes=cfg.min_neighbor_nodes
                        ),
                        routine_times=res.routine_times,
                    )
                )

        return Campaign(
            datasets=datasets,
            ground_truth_aggressors=self.population.aggressors,
        )

    # ------------------------------------------------------------------ #

    def _solve_probes(
        self,
        pool,
        env,
        all_jobs: list[JobRecord],
        probes: list[JobRecord],
        plan_list: list[_ProbePlan],
        step_models: list[StepModel],
        samples: list[tuple[float, int, int]],
        horizon: float,
        progress: bool,
    ) -> dict[int, "object"]:
        """Solve every probe run; returns ``{probe idx: RunResult}``.

        Three phases, all bit-deterministic for any worker count:

        1. every probe's mean traffic contribution (routing geometry) is
           computed on the pool and registered with the timeline;
        2. the chronological sweep walks the samples, folding background
           contributions in (fetched from the pool in batched lookahead)
           and snapshotting the accumulators once per *window* (the span
           between two scheduler events);
        3. as runs complete their sweep, they are submitted to the pool
           in chunks that carry only the window snapshots their steps
           reference; windows are refcounted and freed once every
           referencing run has been dispatched.
        """
        from repro.campaign import parallel as par

        cfg = self.config
        workers = pool.workers
        n_probes = len(probes)

        start = perf_counter()

        # -- phase 1: probe mean contributions --------------------------- #
        with profiled_span("campaign.probe_contributions", probes=n_probes):
            specs = [
                par.ProbeSpec(
                    pi=pi,
                    job_id=probes[pi].job_id,
                    key=plan_list[pi].key,
                    long_steps=plan_list[pi].long_steps,
                    nodes=probes[pi].nodes,
                )
                for pi in range(n_probes)
            ]
            futures = [
                pool.submit_probe_contributions(chunk)
                for chunk in par.chunked(specs, workers * 2)
            ]
            probe_comm: dict[int, BaseLoad] = {}
            for fut in futures:
                for pi, comm in pool.result(fut):
                    probe_comm[pi] = comm
        _LOG.info("routed %d probe placements", n_probes)

        # -- background contributions: batched lookahead loader ---------- #
        probe_ids = {j.job_id for j in probes}
        from collections import deque

        pending = deque(
            sorted(
                (j for j in all_jobs if j.job_id not in probe_ids),
                key=lambda j: (j.start_time, j.job_id),
            )
        )
        bg_batch = max(32, workers * 16)

        def _load_bg_batch(job: JobRecord) -> None:
            # The timeline requests background jobs in start-event order,
            # which is exactly `pending` order — pull through the
            # requested job, then extend with lookahead so one pool trip
            # covers many upcoming start events.
            batch: list[JobRecord] = []
            while pending:
                nxt = pending.popleft()
                batch.append(nxt)
                if nxt.job_id == job.job_id:
                    break
            while pending and len(batch) < bg_batch:
                batch.append(pending.popleft())
            bg_specs = [
                par.BgJobSpec(job_id=j.job_id, user=j.user, nodes=j.nodes)
                for j in batch
            ]
            futs = [
                pool.submit_bg_contributions(chunk)
                for chunk in par.chunked(bg_specs, workers)
            ]
            for f in futs:
                for job_id, comm, io in pool.result(f):
                    store.insert(job_id, comm, io)
            if not store.has(job.job_id):  # pragma: no cover - defensive
                comm, io = env.bg_model.contribution(job)
                store.insert(job.job_id, comm, io)

        store = _ContributionStore(self.topology, _load_bg_batch)
        for pi, comm in probe_comm.items():
            store.register_probe(probes[pi].job_id, comm)

        timeline = TrafficTimeline(store, all_jobs)
        weather = IOWeather(horizon * 1.3, rng_for("io-weather", seed=cfg.seed))

        # -- phases 2+3: sweep, snapshot windows, dispatch run chunks ----- #
        window_store: dict[int, tuple[BaseLoad, BaseLoad]] = {}
        wref: dict[int, int] = {}
        run_windows: list[set[int]] = [set() for _ in range(n_probes)]
        win_ids = [np.zeros(sm.num_steps, dtype=np.int64) for sm in step_models]
        weather_bufs = [np.zeros(sm.num_steps) for sm in step_models]
        remaining = [sm.num_steps for sm in step_models]

        results: dict[int, par.RunResult] = {}
        inflight: deque = deque()
        ready: list[int] = []
        done_runs = 0
        chunk_size = max(1, min(8, -(-n_probes // (workers * 4))))
        max_inflight = workers * 2

        # Per-dataset progress accounting: long runs land in their own
        # dataset (the same keying the assembly phase uses).
        ds_key = [
            f"{p.key}-long{p.long_steps}" if p.long_steps else p.key
            for p in plan_list
        ]
        ds_total: dict[str, int] = {}
        for key in ds_key:
            ds_total[key] = ds_total.get(key, 0) + 1
        ds_done: dict[str, int] = dict.fromkeys(ds_total, 0)
        runs_solved = METRICS.counter("campaign.runs_solved")

        def collect(fut) -> None:
            nonlocal done_runs
            chunk_results = pool.result(fut)
            for res in chunk_results:
                results[res.pi] = res
                ds_done[ds_key[res.pi]] += 1
            done_runs += len(chunk_results)
            runs_solved.inc(len(chunk_results))
            elapsed = perf_counter() - start
            event(
                "campaign.progress",
                n_done=done_runs,
                n_total=n_probes,
                elapsed=round(elapsed, 3),
                datasets={
                    k: [ds_done[k], ds_total[k]] for k in sorted(ds_total)
                },
            )
            _LOG.info(
                "%d/%d runs solved in %.1fs (%d worker%s; %s)",
                done_runs,
                n_probes,
                elapsed,
                workers,
                "s" if workers != 1 else "",
                ", ".join(
                    f"{k} {ds_done[k]}/{ds_total[k]}" for k in sorted(ds_total)
                ),
            )

        def flush() -> None:
            if not ready:
                return
            tasks = [
                par.RunTask(
                    pi=pi,
                    job_id=probes[pi].job_id,
                    key=plan_list[pi].key,
                    long_steps=plan_list[pi].long_steps,
                    start_time=probes[pi].start_time,
                    nodes=probes[pi].nodes,
                    window_ids=win_ids[pi],
                    weather=weather_bufs[pi],
                )
                for pi in ready
            ]
            payload = {
                w: window_store[w] for pi in ready for w in run_windows[pi]
            }
            inflight.append(pool.submit_solve(tasks, payload))
            for pi in ready:
                for w in run_windows[pi]:
                    wref[w] -= 1
                    if wref[w] == 0 and w != current_wid:
                        del window_store[w]
                        del wref[w]
                run_windows[pi].clear()
            ready.clear()
            while len(inflight) > max_inflight:
                collect(inflight.popleft())

        with profiled_span(
            "campaign.sweep", samples=len(samples), runs=n_probes,
            workers=workers,
        ):
            current_wid = -1
            for t, pi, step in samples:
                if timeline.advance(t) or current_wid < 0:
                    prev = current_wid
                    current_wid += 1
                    window_store[current_wid] = timeline.snapshot()
                    wref[current_wid] = 0
                    if prev >= 0 and wref.get(prev) == 0:
                        del window_store[prev]
                        del wref[prev]
                win_ids[pi][step] = current_wid
                weather_bufs[pi][step] = weather.at(t)
                if current_wid not in run_windows[pi]:
                    run_windows[pi].add(current_wid)
                    wref[current_wid] += 1
                remaining[pi] -= 1
                if remaining[pi] == 0:
                    ready.append(pi)
                    if len(ready) >= chunk_size:
                        flush()
            flush()
            while inflight:
                collect(inflight.popleft())
        return results


def run_campaign(
    config: CampaignConfig | None = None, progress: bool = False
) -> Campaign:
    """Convenience wrapper: build (or load from cache) a campaign.

    ``progress=True`` makes the generation's INFO-level progress visible
    (configuring ``repro`` logging if the caller has not).
    """
    if progress:
        from repro.obs.log import configure_logging

        configure_logging()
    return CampaignRunner(config or CampaignConfig.small()).run(progress=progress)
