"""miniVite: distributed Louvain community detection (Table I, §III-B).

Configuration facts from the paper:

* 128 nodes, graph ``nlpkkt240`` (~28M vertices, ~373M edges), arguments
  ``-f nlpkkt240.bin -t 1E-02 -i 6``.
* The authors wrapped the phase in an outer loop: each of the 6 recorded
  "time steps" is one full Louvain phase over the same graph.
* >98% of time in MPI, almost all of it in ``Waitall``; the slowest run
  was 3.76x the best — the largest spread in the study.
* Deviation predictors are *flit* counters (PT_FLIT_VC0, RT_FLIT_TOT):
  the irregular, data-dependent exchange makes its own traffic volume the
  main driver of step time.

The model executes a real Louvain phase on a synthetic stand-in graph
(:mod:`repro.apps.kernels.louvain`) and rescales its measured cross-
partition traffic to nlpkkt240's edge count.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.apps.base import Application, StepModel
from repro.apps.kernels.louvain import (
    LouvainPhaseResult,
    run_louvain_phase,
    synthetic_kkt_graph,
)
from repro.network.traffic import FlowSet, router_alltoall_flows
from repro.topology.dragonfly import DragonflyTopology

#: Stand-in graph size (vertices; rounded to a cube internally).
KERNEL_VERTICES = 4096

#: Partitions used for the kernel's traffic accounting.
KERNEL_PARTITIONS = 64

#: Outer-loop repetitions = recorded time steps (paper: ``-i 6`` wrapper).
NUM_STEPS = 6

#: Traffic amplification: ghost-vertex payloads, degree lists and MPI
#: packing overhead beyond the bare 24-byte updates the kernel counts.
TRAFFIC_SCALE = 6.0


@lru_cache(maxsize=4)
def _cached_phase(vertices: int, partitions: int) -> LouvainPhaseResult:
    rng = np.random.default_rng(1_234_567)
    adj = synthetic_kkt_graph(vertices, rng=rng)
    return run_louvain_phase(adj, partitions, rng=rng)


class MiniVite(Application):
    """miniVite at 128 nodes."""

    name = "miniVite"
    version = "1.0"
    # Convergence is data/order dependent: large intrinsic variation, which
    # is what makes flit counters its best deviation predictors.
    intensity_sigma = 0.22
    residual_sigma = 0.05
    response_ratio = 0.10
    endpoint_sensitivity = 0.30
    fabric_sensitivity = 0.35

    def __init__(self, num_nodes: int = 128) -> None:
        super().__init__(num_nodes)
        if num_nodes != 128:
            raise ValueError("miniVite ran on 128 nodes in the study")

    # ------------------------------------------------------------------ #

    @property
    def phase(self) -> LouvainPhaseResult:
        """The executed Louvain phase backing this model (cached)."""
        return _cached_phase(KERNEL_VERTICES, KERNEL_PARTITIONS)

    def input_summary(self) -> str:
        return "-f nlpkkt240.bin -t 1E-02 -i 6"

    def step_model(self) -> StepModel:
        mpi_frac = 0.98
        # Each step repeats the same phase; the first pays graph
        # (re)distribution and cold caches.
        total = np.full(NUM_STEPS, 170.0)
        total[0] *= 1.15
        mpi = total * mpi_frac
        compute = total * (1.0 - mpi_frac)
        intensity = np.ones(NUM_STEPS)
        intensity[0] = 1.15
        intensity /= intensity.mean()
        return StepModel(compute=compute, mpi=mpi, intensity=intensity)

    def flow_geometry(
        self, topology: DragonflyTopology, nodes: np.ndarray
    ) -> FlowSet:
        phase = self.phase
        sm = self.step_model()
        mean_step = float((sm.compute + sm.mpi).mean())
        phase_bytes = (
            float(phase.iteration_volumes().sum())
            * phase.scale_to_graph()
            * TRAFFIC_SCALE
        )
        rate = phase_bytes / mean_step
        # Map the kernel's per-partition traffic skew onto the job's
        # routers (partitions are block-distributed over ranks/routers).
        routers = np.unique(topology.node_router(np.asarray(nodes)))
        pw = phase.partition_weights()
        idx = (np.arange(len(routers)) * len(pw)) // max(len(routers), 1)
        weights = pw[np.minimum(idx, len(pw) - 1)] + 1e-12
        return router_alltoall_flows(
            topology,
            nodes,
            total_bytes=rate,
            response_ratio=self.response_ratio,
            weights=weights,
        )

    def routine_mix(self) -> dict[str, float]:
        return {
            "Waitall": 0.82,
            "Irecv": 0.07,
            "Isend": 0.05,
            "Other": 0.06,
        }
