"""MILC (su3_rmd): lattice QCD 4-D stencil code (paper Table I, §III-B).

Configuration facts from the paper:

* 128 nodes (``n128_large.in``) and 512 nodes (``n512_large.in``); 4-D
  stencil on a 4x4x4x4 per-process lattice.
* 80 time steps: the first 20 are fast "warmup" trajectories, the next 60
  are slower; steps are shorter than AMG's.
* Sends *large point-to-point messages*; ~89% of time in MPI; dominant
  routines: Allreduce, Wait, Isend, Irecv.
* Bandwidth-bound: the router-tile stall counter RT_RB_STL is the top
  deviation predictor, and system-wide I/O traffic (IO_PT_FLIT_TOT) is
  the top *forecasting* feature (paper §V-C).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Application, StepModel
from repro.apps.kernels.halo import halo_surface_bytes
from repro.network.traffic import FlowSet, allreduce_flows, halo_flows
from repro.topology.dragonfly import DragonflyTopology

#: CG solver iterations per trajectory step (warmup runs fewer).
CG_ITERS_REGULAR = 450
CG_ITERS_WARMUP = 110

#: Bytes per lattice site crossing a face (SU(3) gauge links + spinors).
BYTES_PER_SITE = 96.0

#: Warmup trajectories at the start of every run (paper §III-B).
WARMUP_STEPS = 20
REGULAR_STEPS = 60


class MILC(Application):
    """MILC su3_rmd at 128 or 512 nodes."""

    name = "MILC"
    version = "7.8.0"
    intensity_sigma = 0.05
    residual_sigma = 0.03
    response_ratio = 0.05  # streaming large messages
    endpoint_sensitivity = 0.20
    fabric_sensitivity = 0.62

    def __init__(self, num_nodes: int) -> None:
        super().__init__(num_nodes)
        if num_nodes == 128:
            self.process_grid = (16, 16, 8, 4)  # 8,192 ranks
            self._regular_step = 7.2
            self._warmup_step = 1.8
        elif num_nodes == 512:
            self.process_grid = (16, 16, 16, 8)  # 32,768 ranks
            self._regular_step = 8.5
            self._warmup_step = 2.2
        else:
            raise ValueError("MILC ran on 128 or 512 nodes in the study")
        self.local_lattice = (4, 4, 4, 4)

    # ------------------------------------------------------------------ #

    def input_summary(self) -> str:
        return f"n{self.num_nodes}_large.in"

    def step_model(self) -> StepModel:
        mpi_frac = 0.89
        total = np.concatenate(
            [
                np.full(WARMUP_STEPS, self._warmup_step),
                np.full(REGULAR_STEPS, self._regular_step),
            ]
        )
        # Mild ramp within the regular phase (trajectory acceptance tuning).
        total[WARMUP_STEPS:] *= 1.0 + 0.04 * np.linspace(0, 1, REGULAR_STEPS)
        mpi = total * mpi_frac
        compute = total * (1.0 - mpi_frac)
        # Traffic scales with CG iterations: warmup steps move less data.
        iters = np.concatenate(
            [
                np.full(WARMUP_STEPS, CG_ITERS_WARMUP, dtype=float),
                np.full(REGULAR_STEPS, CG_ITERS_REGULAR, dtype=float),
            ]
        )
        # Intensity multiplies a *rate*; a warmup step is shorter too, so
        # rate ~ volume/time.
        rate = iters / total
        intensity = rate / rate.mean()
        return StepModel(compute=compute, mpi=mpi, intensity=intensity)

    def flow_geometry(
        self, topology: DragonflyTopology, nodes: np.ndarray
    ) -> FlowSet:
        sm = self.step_model()
        mean_step = float((sm.compute + sm.mpi).mean())
        mean_iters = (
            WARMUP_STEPS * CG_ITERS_WARMUP + REGULAR_STEPS * CG_ITERS_REGULAR
        ) / (WARMUP_STEPS + REGULAR_STEPS)
        per_dim = halo_surface_bytes(self.local_lattice, BYTES_PER_SITE)
        bytes_per_neighbor_rate = float(per_dim.mean()) * mean_iters / mean_step
        halo = halo_flows(
            topology,
            nodes,
            self.process_grid,
            bytes_per_neighbor=bytes_per_neighbor_rate,
            ranks_per_node=self.ranks_per_node,
            response_ratio=self.response_ratio,
        )
        # 2 allreduces per CG iteration (residual norms), 8 bytes each.
        ar_bytes = 2 * mean_iters * 8.0 * self.ranks_per_node / mean_step
        ar = allreduce_flows(topology, nodes, bytes_per_node=ar_bytes)
        return FlowSet.concat([halo, ar])

    def routine_mix(self) -> dict[str, float]:
        return {
            "Allreduce": 0.27,
            "Wait": 0.30,
            "Isend": 0.19,
            "Irecv": 0.18,
            "Other": 0.06,
        }
