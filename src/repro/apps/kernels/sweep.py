"""KBA-style transport sweep schedule (the UMT substrate).

UMT is a discrete-ordinates (S_n) radiation transport code (paper §III-A):
each time step sweeps the spatial domain once per angular octant, with a
wavefront of work propagating diagonally across the 3-D process grid.
Downstream ranks *wait* on upstream faces — which is why UMT's MPI time
concentrates in ``Wait``/``Barrier`` even though only ~30% of its runtime
is communication, and why its performance is highly sensitive to latency
inflation on a congested network (paper §III-B: 3.3x worst/best).

:class:`SweepSchedule` computes the wavefront structure exactly: stage
counts, per-stage sending ranks, and face-message sizes from the angular
and energy discretisation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SweepSchedule:
    """Sweep structure for one time step of an S_n transport solve."""

    process_grid: tuple[int, int, int]
    local_zones: tuple[int, int, int]
    angles_per_octant: int
    energy_groups: int
    bytes_per_unknown: float = 8.0

    def __post_init__(self) -> None:
        if len(self.process_grid) != 3 or len(self.local_zones) != 3:
            raise ValueError("process_grid and local_zones must be 3-D")
        if any(p < 1 for p in self.process_grid) or any(z < 1 for z in self.local_zones):
            raise ValueError("dimensions must be positive")
        if self.angles_per_octant < 1 or self.energy_groups < 1:
            raise ValueError("angles and groups must be positive")

    # ------------------------------------------------------------------ #

    @property
    def num_ranks(self) -> int:
        return int(np.prod(self.process_grid))

    @property
    def octants(self) -> int:
        return 8

    @property
    def stages_per_octant(self) -> int:
        """Wavefront stages to cross the grid: px + py + pz - 2."""
        return sum(self.process_grid) - 2

    @property
    def critical_path_stages(self) -> int:
        """Pipeline length of a full step (all octants, pipelined)."""
        # Octant sweeps pipeline behind one another; the tail costs one
        # full traversal plus one stage per extra octant.
        return self.stages_per_octant + self.octants - 1

    def face_bytes(self) -> np.ndarray:
        """Bytes per downstream face message, per dimension."""
        zones = np.asarray(self.local_zones, dtype=np.float64)
        faces = zones.prod() / zones  # zones on the face orthogonal to dim
        return (
            faces
            * self.angles_per_octant
            * self.energy_groups
            * self.bytes_per_unknown
        )

    def bytes_per_rank_per_step(self) -> float:
        """Total bytes each interior rank sends during one time step."""
        # Each octant sweep sends up to 3 downstream faces per rank.
        return float(self.face_bytes().sum() * self.octants)

    def messages_per_rank_per_step(self) -> int:
        """Downstream face messages per rank per step."""
        return 3 * self.octants

    def mean_message_bytes(self) -> float:
        msgs = self.messages_per_rank_per_step()
        return self.bytes_per_rank_per_step() / msgs if msgs else 0.0

    def pipeline_efficiency(self) -> float:
        """Useful-work fraction of the sweep pipeline (idle-wait model).

        Ranks idle while the wavefront reaches them; deeper process grids
        wait longer.  This feeds UMT's Wait-dominated MPI profile.
        """
        work_stages = self.octants * max(self.process_grid)
        return work_stages / (work_stages + self.critical_path_stages)

    def wavefront_sizes(self, octant: int = 0) -> np.ndarray:
        """Number of ranks active at each stage of one octant's sweep.

        The wavefront is the set of grid points with constant coordinate
        sum (after orienting axes along the octant's sweep direction).
        """
        px, py, pz = self.process_grid
        coords = np.array(
            np.meshgrid(np.arange(px), np.arange(py), np.arange(pz), indexing="ij")
        ).reshape(3, -1)
        # Orient each axis by the octant's direction bits.
        for dim in range(3):
            if (octant >> dim) & 1:
                coords[dim] = self.process_grid[dim] - 1 - coords[dim]
        depth = coords.sum(axis=0)
        return np.bincount(depth, minlength=self.stages_per_octant + 1)
