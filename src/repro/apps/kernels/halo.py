"""Exact halo-exchange accounting for block-decomposed grid codes.

Given a per-rank local grid and the width/byte-size of the exchanged ghost
layers, computes the bytes each rank sends to each face neighbour per
exchange.  Used by the MILC (4-D stencil) and AMG/UMT (3-D) models to get
message sizes from the actual decomposition rather than hand-tuned
constants.
"""

from __future__ import annotations

import numpy as np


def halo_surface_bytes(
    local_shape: tuple[int, ...],
    bytes_per_site: float,
    ghost_width: int = 1,
) -> np.ndarray:
    """Bytes sent per face neighbour for one halo exchange.

    Parameters
    ----------
    local_shape:
        The per-rank local grid, e.g. ``(4, 4, 4, 4)`` for MILC's 4-D
        per-process lattice or ``(32, 32, 32)`` for AMG (Table I).
    bytes_per_site:
        Payload bytes per grid site in the ghost layer (e.g. an SU(3)
        colour matrix is 72 bytes, a double-precision scalar 8).
    ghost_width:
        Ghost-layer depth in sites.

    Returns
    -------
    numpy.ndarray
        Per-dimension message size in bytes; the exchange sends this to
        both the + and - neighbour of each dimension.
    """
    shape = np.asarray(local_shape, dtype=np.int64)
    if (shape <= 0).any():
        raise ValueError("local grid dimensions must be positive")
    if ghost_width < 1:
        raise ValueError("ghost_width must be >= 1")
    if bytes_per_site <= 0:
        raise ValueError("bytes_per_site must be positive")
    total = shape.prod()
    surfaces = total // shape  # sites on the face orthogonal to each dim
    width = np.minimum(ghost_width, shape)
    return surfaces.astype(np.float64) * width * bytes_per_site


def halo_messages_per_exchange(ndim: int) -> int:
    """Point-to-point messages per rank per exchange (2 per dimension)."""
    if ndim < 1:
        raise ValueError("ndim must be >= 1")
    return 2 * ndim


def mean_message_size(per_dim_bytes: np.ndarray) -> float:
    """Volume-weighted mean message size over the face exchanges."""
    per_dim_bytes = np.asarray(per_dim_bytes, dtype=np.float64)
    return float(per_dim_bytes.mean())
