"""Algebraic-multigrid communication model (the AMG proxy app substrate).

AMG solves a linear system with AMG-preconditioned GMRES on a 3-D problem
(paper Table I: ``-problem 2``, 32^3 points per process).  Communication
per solve step is dominated by

* halo exchanges on every level of the multigrid hierarchy — message sizes
  *shrink* geometrically with level while neighbour counts *grow* (coarse
  stencils widen), which is why AMG sends "a large number of small-sized
  messages" (paper §III-B), and
* latency-bound ``MPI_Allreduce`` calls from GMRES orthogonalisation.

:class:`MultigridHierarchy` builds the level structure from the actual
process grid and per-rank problem size, so message counts/sizes respond to
the configuration instead of being constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.kernels.halo import halo_surface_bytes


@dataclass(frozen=True)
class MultigridLevel:
    """One level of the AMG hierarchy (level 0 = finest)."""

    index: int
    local_shape: tuple[int, int, int]
    #: Face neighbours exchanged with on this level (stencil growth widens
    #: this towards 26 on coarse levels).
    neighbors: int
    #: Bytes per neighbour per halo exchange.
    bytes_per_neighbor: float
    #: Halo exchanges per V-cycle visit (pre+post smoothing + residual).
    exchanges_per_cycle: int


@dataclass
class MultigridHierarchy:
    """The level structure plus per-step aggregate communication."""

    process_grid: tuple[int, int, int]
    fine_local_shape: tuple[int, int, int]
    levels: list[MultigridLevel] = field(default_factory=list)
    #: GMRES iterations per time step (each costs 2 allreduces).
    gmres_iterations: int = 10

    @classmethod
    def from_problem(
        cls,
        process_grid: tuple[int, int, int],
        local_shape: tuple[int, int, int] = (32, 32, 32),
        bytes_per_site: float = 8.0,
        coarsening: int = 2,
        min_local: int = 2,
        gmres_iterations: int = 10,
    ) -> "MultigridHierarchy":
        """Build the hierarchy by repeated coarsening of the local grid.

        Coarsening stops when the local block would drop below
        ``min_local`` sites per dimension (hypre then agglomerates onto
        fewer ranks; we stop the distributed phase there, which is where
        the network traffic lives).
        """
        if len(process_grid) != 3 or len(local_shape) != 3:
            raise ValueError("process_grid and local_shape must be 3-D")
        if any(p < 1 for p in process_grid) or any(s < 1 for s in local_shape):
            raise ValueError("grid dimensions must be positive")
        hier = cls(
            process_grid=tuple(process_grid),
            fine_local_shape=tuple(local_shape),
            gmres_iterations=gmres_iterations,
        )
        shape = np.asarray(local_shape, dtype=np.int64)
        level = 0
        while (shape >= min_local).all():
            surf = halo_surface_bytes(tuple(int(s) for s in shape), bytes_per_site)
            # Stencil width grows with coarsening: 6 face neighbours on the
            # finest level towards the full 26-point neighbourhood.
            neighbors = min(6 + 4 * level, 26)
            hier.levels.append(
                MultigridLevel(
                    index=level,
                    local_shape=tuple(int(s) for s in shape),
                    neighbors=neighbors,
                    bytes_per_neighbor=float(surf.mean()),
                    exchanges_per_cycle=3,
                )
            )
            shape = np.maximum(shape // coarsening, 1)
            level += 1
            if level > 20:  # pragma: no cover - safety net
                break
        if not hier.levels:
            raise ValueError("local_shape too small to build any level")
        return hier

    # ------------------------------------------------------------------ #

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    def bytes_per_rank_per_step(self) -> float:
        """Halo bytes each rank sends per solver step (one V-cycle)."""
        return float(
            sum(
                lv.neighbors * lv.bytes_per_neighbor * lv.exchanges_per_cycle
                for lv in self.levels
            )
        )

    def messages_per_rank_per_step(self) -> int:
        """Point-to-point messages each rank sends per step."""
        return int(
            sum(lv.neighbors * lv.exchanges_per_cycle for lv in self.levels)
        )

    def mean_message_bytes(self) -> float:
        """Average message size — small, by multigrid's nature."""
        msgs = self.messages_per_rank_per_step()
        return self.bytes_per_rank_per_step() / msgs if msgs else 0.0

    def allreduces_per_step(self) -> int:
        """Collective count per step: 2 per GMRES iteration + AMG setup."""
        return 2 * self.gmres_iterations + self.num_levels
