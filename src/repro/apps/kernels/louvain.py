"""A single distributed Louvain phase (the miniVite substrate).

miniVite performs one phase of Louvain community detection on a distributed
graph (paper §III-A; Ghosh et al., IPDPS 2018).  Its communication is
irregular and data-dependent: every iteration, vertices exchange community
membership with their neighbours across partition boundaries, and traffic
decays as the phase converges.

To ground the miniVite model in the real algorithm, this module *runs* a
Louvain phase on a synthetic stand-in graph (nlpkkt240 itself is a 28M-
vertex matrix we cannot ship): a 3-D-grid-plus-random-rewire graph with the
same flavour of locality.  The phase produces, per iteration,

* the modularity trajectory and vertices-moved counts, and
* a partition-to-partition traffic matrix (bytes), which the application
  model maps onto ranks/nodes/routers and rescales to nlpkkt240's edge
  count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

#: Bytes per cross-partition community update (vertex id + community id +
#: degree, as miniVite packs them).
UPDATE_BYTES = 24.0

#: nlpkkt240's published size (paper §III-A): ~28M vertices, ~373M edges.
NLPKKT240_VERTICES = 27_993_600
NLPKKT240_EDGES = 373_239_376


def synthetic_kkt_graph(
    n: int, extra_degree: int = 6, rng: np.random.Generator | None = None
) -> sp.csr_matrix:
    """A 3-D-grid graph with random long-range edges (nlpkkt240 stand-in).

    nlpkkt240 arises from a PDE-constrained optimisation on a 3-D mesh, so
    it is locally grid-like with sparse global coupling.  ``n`` is rounded
    down to a perfect cube.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    side = max(2, round(n ** (1 / 3)))
    n = side**3
    idx = np.arange(n)
    coords = np.array(np.unravel_index(idx, (side, side, side)))
    rows, cols = [], []
    for dim in range(3):
        nbr = coords.copy()
        valid = nbr[dim] + 1 < side
        nbr[dim] += 1
        j = np.ravel_multi_index(tuple(nbr[:, valid]), (side, side, side))
        rows.append(idx[valid])
        cols.append(j)
    # Random long-range edges (the KKT coupling blocks).
    m_extra = n * extra_degree // 2
    r = rng.integers(0, n, size=m_extra)
    c = rng.integers(0, n, size=m_extra)
    keep = r != c
    rows.append(r[keep])
    cols.append(c[keep])
    r = np.concatenate(rows)
    c = np.concatenate(cols)
    data = np.ones(len(r))
    a = sp.coo_matrix((data, (r, c)), shape=(n, n))
    a = a + a.T
    a.data[:] = 1.0
    return a.tocsr()


@dataclass
class LouvainPhaseResult:
    """Outcome of one Louvain phase over a partitioned graph."""

    num_vertices: int
    num_edges: int
    num_partitions: int
    #: Modularity after each iteration.
    modularity: np.ndarray
    #: Vertices that changed community in each iteration.
    moved: np.ndarray
    #: (iterations, p, p) cross-partition bytes sent per iteration.
    partition_traffic: np.ndarray

    @property
    def iterations(self) -> int:
        return len(self.moved)

    def iteration_volumes(self) -> np.ndarray:
        """Total cross-partition bytes per iteration (decaying)."""
        return self.partition_traffic.sum(axis=(1, 2))

    def partition_weights(self) -> np.ndarray:
        """Relative per-partition traffic share over the whole phase."""
        tot = self.partition_traffic.sum(axis=0)
        w = tot.sum(axis=1) + tot.sum(axis=0)
        s = w.sum()
        return w / s if s > 0 else np.full(self.num_partitions, 1.0 / max(self.num_partitions, 1))

    def scale_to_graph(self, edges: int = NLPKKT240_EDGES) -> float:
        """Volume multiplier to rescale the stand-in to a larger graph."""
        return edges / max(self.num_edges, 1)


def _modularity(adj: sp.csr_matrix, communities: np.ndarray, two_m: float) -> float:
    """Newman modularity of a partition (vectorised)."""
    rows, cols = adj.nonzero()
    internal = adj.data[communities[rows] == communities[cols]].sum()
    degrees = np.asarray(adj.sum(axis=1)).ravel()
    comm_deg = np.bincount(communities, weights=degrees)
    return float(internal / two_m - ((comm_deg / two_m) ** 2).sum())


def run_louvain_phase(
    adj: sp.csr_matrix,
    num_partitions: int,
    max_iterations: int = 12,
    min_moved_fraction: float = 0.01,
    rng: np.random.Generator | None = None,
) -> LouvainPhaseResult:
    """Execute one Louvain phase and account its communication.

    Vertices are block-partitioned over ``num_partitions`` owners (miniVite
    distributes contiguous vertex ranges).  Each iteration scans vertices
    in random order and greedily moves each to the neighbouring community
    with the highest modularity gain; a vertex move generates one
    ``UPDATE_BYTES`` message to every remote partition that owns one of
    its neighbours.  Iteration 0 additionally pays a full ghost-community
    exchange over every cut edge.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    n = adj.shape[0]
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    indptr, indices = adj.indptr, adj.indices
    degrees = np.diff(indptr).astype(np.float64)
    two_m = float(degrees.sum())

    owner = np.minimum(
        (np.arange(n) * num_partitions) // n, num_partitions - 1
    )

    # The per-vertex scan runs over tiny neighbour lists, where numpy
    # array dispatch costs more than the arithmetic; plain Python
    # containers make the phase several times faster.  All gain/degree
    # arithmetic is IEEE double either way, performed operation for
    # operation in the same order as the vectorised formulas, so the
    # result is unchanged.  Per-vertex neighbour/owner structure is
    # loop-invariant and hoisted out of the iterations.
    nbrs_of = [indices[indptr[v]: indptr[v + 1]].tolist() for v in range(n)]
    owner_l = owner.tolist()
    remote_of = [
        sorted({owner_l[u] for u in nbrs_of[v]} - {owner_l[v]})
        for v in range(n)
    ]
    degrees_l = degrees.tolist()
    comm_l = list(range(n))
    comm_deg_l = degrees.tolist()  # sum of degrees per community
    two_m2 = two_m * two_m

    modularity: list[float] = []
    moved_counts: list[int] = []
    traffic: list[np.ndarray] = []

    for it in range(max_iterations):
        moved = 0
        tr = np.zeros((num_partitions, num_partitions))
        if it == 0:
            # Initial ghost exchange: every cut edge carries one update.
            rows, cols = adj.nonzero()
            cut = owner[rows] != owner[cols]
            np.add.at(tr, (owner[rows[cut]], owner[cols[cut]]), UPDATE_BYTES)
        tr_l = tr.tolist()
        order = rng.permutation(n)
        for v in order.tolist():
            nbrs = nbrs_of[v]
            if not nbrs:
                continue
            c_old = comm_l[v]
            # Edge weight towards each neighbouring community.
            counts: dict[int, int] = {}
            for u in nbrs:
                c = comm_l[u]
                counts[c] = counts.get(c, 0) + 1
            k_v = degrees_l[v]
            # Modularity gain of joining community c:
            #   w(v->c)/m - k_v * deg(c) / (2 m^2)   (constant terms drop)
            # Scanned in sorted community order with a strict ">" so the
            # winner is the first maximum, exactly like argmax over the
            # sorted-unique community vector.
            stay = 0.0
            best_c = -1
            best_gain = -np.inf
            for c in sorted(counts):
                deg_c = comm_deg_l[c] - k_v if c == c_old else comm_deg_l[c]
                g = counts[c] / two_m - k_v * deg_c / two_m2
                if c == c_old:
                    stay = g
                if g > best_gain:
                    best_gain = g
                    best_c = c
            if best_gain > stay + 1e-15 and best_c != c_old:
                comm_deg_l[c_old] -= k_v
                comm_deg_l[best_c] += k_v
                comm_l[v] = best_c
                moved += 1
                # Announce the move to remote owners of the neighbours.
                row = tr_l[owner_l[v]]
                for r in remote_of[v]:
                    row[r] += UPDATE_BYTES
        moved_counts.append(moved)
        traffic.append(np.array(tr_l))
        modularity.append(_modularity(adj, np.asarray(comm_l), two_m))
        if moved < min_moved_fraction * n:
            break

    return LouvainPhaseResult(
        num_vertices=n,
        num_edges=int(adj.nnz // 2),
        num_partitions=num_partitions,
        modularity=np.asarray(modularity),
        moved=np.asarray(moved_counts),
        partition_traffic=np.asarray(traffic),
    )
