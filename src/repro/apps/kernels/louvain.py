"""A single distributed Louvain phase (the miniVite substrate).

miniVite performs one phase of Louvain community detection on a distributed
graph (paper §III-A; Ghosh et al., IPDPS 2018).  Its communication is
irregular and data-dependent: every iteration, vertices exchange community
membership with their neighbours across partition boundaries, and traffic
decays as the phase converges.

To ground the miniVite model in the real algorithm, this module *runs* a
Louvain phase on a synthetic stand-in graph (nlpkkt240 itself is a 28M-
vertex matrix we cannot ship): a 3-D-grid-plus-random-rewire graph with the
same flavour of locality.  The phase produces, per iteration,

* the modularity trajectory and vertices-moved counts, and
* a partition-to-partition traffic matrix (bytes), which the application
  model maps onto ranks/nodes/routers and rescales to nlpkkt240's edge
  count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

#: Bytes per cross-partition community update (vertex id + community id +
#: degree, as miniVite packs them).
UPDATE_BYTES = 24.0

#: nlpkkt240's published size (paper §III-A): ~28M vertices, ~373M edges.
NLPKKT240_VERTICES = 27_993_600
NLPKKT240_EDGES = 373_239_376


def synthetic_kkt_graph(
    n: int, extra_degree: int = 6, rng: np.random.Generator | None = None
) -> sp.csr_matrix:
    """A 3-D-grid graph with random long-range edges (nlpkkt240 stand-in).

    nlpkkt240 arises from a PDE-constrained optimisation on a 3-D mesh, so
    it is locally grid-like with sparse global coupling.  ``n`` is rounded
    down to a perfect cube.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    side = max(2, round(n ** (1 / 3)))
    n = side**3
    idx = np.arange(n)
    coords = np.array(np.unravel_index(idx, (side, side, side)))
    rows, cols = [], []
    for dim in range(3):
        nbr = coords.copy()
        valid = nbr[dim] + 1 < side
        nbr[dim] += 1
        j = np.ravel_multi_index(tuple(nbr[:, valid]), (side, side, side))
        rows.append(idx[valid])
        cols.append(j)
    # Random long-range edges (the KKT coupling blocks).
    m_extra = n * extra_degree // 2
    r = rng.integers(0, n, size=m_extra)
    c = rng.integers(0, n, size=m_extra)
    keep = r != c
    rows.append(r[keep])
    cols.append(c[keep])
    r = np.concatenate(rows)
    c = np.concatenate(cols)
    data = np.ones(len(r))
    a = sp.coo_matrix((data, (r, c)), shape=(n, n))
    a = a + a.T
    a.data[:] = 1.0
    return a.tocsr()


@dataclass
class LouvainPhaseResult:
    """Outcome of one Louvain phase over a partitioned graph."""

    num_vertices: int
    num_edges: int
    num_partitions: int
    #: Modularity after each iteration.
    modularity: np.ndarray
    #: Vertices that changed community in each iteration.
    moved: np.ndarray
    #: (iterations, p, p) cross-partition bytes sent per iteration.
    partition_traffic: np.ndarray

    @property
    def iterations(self) -> int:
        return len(self.moved)

    def iteration_volumes(self) -> np.ndarray:
        """Total cross-partition bytes per iteration (decaying)."""
        return self.partition_traffic.sum(axis=(1, 2))

    def partition_weights(self) -> np.ndarray:
        """Relative per-partition traffic share over the whole phase."""
        tot = self.partition_traffic.sum(axis=0)
        w = tot.sum(axis=1) + tot.sum(axis=0)
        s = w.sum()
        return w / s if s > 0 else np.full(self.num_partitions, 1.0 / max(self.num_partitions, 1))

    def scale_to_graph(self, edges: int = NLPKKT240_EDGES) -> float:
        """Volume multiplier to rescale the stand-in to a larger graph."""
        return edges / max(self.num_edges, 1)


def _modularity(adj: sp.csr_matrix, communities: np.ndarray, two_m: float) -> float:
    """Newman modularity of a partition (vectorised)."""
    rows, cols = adj.nonzero()
    internal = adj.data[communities[rows] == communities[cols]].sum()
    degrees = np.asarray(adj.sum(axis=1)).ravel()
    comm_deg = np.bincount(communities, weights=degrees)
    return float(internal / two_m - ((comm_deg / two_m) ** 2).sum())


def run_louvain_phase(
    adj: sp.csr_matrix,
    num_partitions: int,
    max_iterations: int = 12,
    min_moved_fraction: float = 0.01,
    rng: np.random.Generator | None = None,
) -> LouvainPhaseResult:
    """Execute one Louvain phase and account its communication.

    Vertices are block-partitioned over ``num_partitions`` owners (miniVite
    distributes contiguous vertex ranges).  Each iteration scans vertices
    in random order and greedily moves each to the neighbouring community
    with the highest modularity gain; a vertex move generates one
    ``UPDATE_BYTES`` message to every remote partition that owns one of
    its neighbours.  Iteration 0 additionally pays a full ghost-community
    exchange over every cut edge.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    n = adj.shape[0]
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    indptr, indices = adj.indptr, adj.indices
    degrees = np.diff(indptr).astype(np.float64)
    two_m = float(degrees.sum())

    owner = np.minimum(
        (np.arange(n) * num_partitions) // n, num_partitions - 1
    )
    communities = np.arange(n)
    comm_deg = degrees.copy()  # sum of degrees per community

    modularity: list[float] = []
    moved_counts: list[int] = []
    traffic: list[np.ndarray] = []

    for it in range(max_iterations):
        moved = 0
        tr = np.zeros((num_partitions, num_partitions))
        if it == 0:
            # Initial ghost exchange: every cut edge carries one update.
            rows, cols = adj.nonzero()
            cut = owner[rows] != owner[cols]
            np.add.at(tr, (owner[rows[cut]], owner[cols[cut]]), UPDATE_BYTES)
        order = rng.permutation(n)
        for v in order:
            beg, end = indptr[v], indptr[v + 1]
            nbrs = indices[beg:end]
            if len(nbrs) == 0:
                continue
            c_old = communities[v]
            # Edge weight towards each neighbouring community.
            nbr_comms = communities[nbrs]
            uniq, inv = np.unique(nbr_comms, return_inverse=True)
            weights = np.bincount(inv).astype(np.float64)
            k_v = degrees[v]
            # Modularity gain of joining community c:
            #   w(v->c)/m - k_v * deg(c) / (2 m^2)   (constant terms drop)
            deg_c = comm_deg[uniq] - np.where(uniq == c_old, k_v, 0.0)
            gain = weights / two_m - k_v * deg_c / (two_m * two_m)
            # Gain of staying put.
            stay = 0.0
            if (uniq == c_old).any():
                stay = gain[uniq == c_old][0]
            best = int(np.argmax(gain))
            if gain[best] > stay + 1e-15 and uniq[best] != c_old:
                c_new = int(uniq[best])
                comm_deg[c_old] -= k_v
                comm_deg[c_new] += k_v
                communities[v] = c_new
                moved += 1
                # Announce the move to remote owners of the neighbours.
                remote = np.unique(owner[nbrs])
                remote = remote[remote != owner[v]]
                tr[owner[v], remote] += UPDATE_BYTES
        moved_counts.append(moved)
        traffic.append(tr)
        modularity.append(_modularity(adj, communities, two_m))
        if moved < min_moved_fraction * n:
            break

    return LouvainPhaseResult(
        num_vertices=n,
        num_edges=int(adj.nnz // 2),
        num_partitions=num_partitions,
        modularity=np.asarray(modularity),
        moved=np.asarray(moved_counts),
        partition_traffic=np.asarray(traffic),
    )
