"""Executable communication kernels behind the application models."""

from repro.apps.kernels.halo import halo_surface_bytes
from repro.apps.kernels.louvain import LouvainPhaseResult, run_louvain_phase
from repro.apps.kernels.multigrid import MultigridHierarchy
from repro.apps.kernels.sweep import SweepSchedule

__all__ = [
    "halo_surface_bytes",
    "MultigridHierarchy",
    "run_louvain_phase",
    "LouvainPhaseResult",
    "SweepSchedule",
]
