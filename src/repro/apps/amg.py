"""AMG: parallel algebraic multigrid solver proxy (paper Table I, §III-B).

Configuration facts from the paper:

* 128 nodes: ``-P 32 16 16 -n 32 32 32 -problem 2`` (8,192 ranks);
  512 nodes: ``-P 32 32 32`` (32,768 ranks); weak scaling.
* 20 time steps; 128-node runs are faster per step than 512-node runs.
* Sends a *large number of small messages*; spends 76% (128) / 82% (512)
  of time in MPI; dominant routines: Iprobe, Test, Testall, Waitall,
  Allreduce.
* Deviation predictors: processor-tile stall counters (PT_RB_STL_RQ,
  PT_RB_2X_USG) — endpoint congestion — plus RT_RB_STL at 512 nodes,
  where inter-group traffic grows.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Application, StepModel
from repro.apps.kernels.multigrid import MultigridHierarchy
from repro.network.traffic import FlowSet, allreduce_flows, halo_flows
from repro.topology.dragonfly import DragonflyTopology

#: V-cycles (plus GMRES work) per outer time step.
CYCLES_PER_STEP = 30

#: Effective traffic amplification over the bare halo payload: packet
#: headers, Iprobe/Test polling traffic, and coarse-level agglomeration
#: exchanges that the hierarchy model does not itemise.
TRAFFIC_SCALE = 25.0


class AMG(Application):
    """The AMG proxy app at 128 or 512 nodes."""

    name = "AMG"
    version = "1.1"
    intensity_sigma = 0.04
    residual_sigma = 0.035
    response_ratio = 0.22  # request/response-heavy small messages

    def __init__(self, num_nodes: int) -> None:
        super().__init__(num_nodes)
        if num_nodes == 128:
            self.process_grid = (32, 16, 16)
            self.endpoint_sensitivity = 0.55
            self.fabric_sensitivity = 0.20
            self._step_base = 12.0
        elif num_nodes == 512:
            self.process_grid = (32, 32, 32)
            self.endpoint_sensitivity = 0.40
            self.fabric_sensitivity = 0.45
            self._step_base = 35.0
        else:
            raise ValueError("AMG ran on 128 or 512 nodes in the study")
        self.hierarchy = MultigridHierarchy.from_problem(
            self.process_grid, local_shape=(32, 32, 32)
        )

    # ------------------------------------------------------------------ #

    def input_summary(self) -> str:
        p = self.process_grid
        return f"-P {p[0]} {p[1]} {p[2]} -n 32 32 32 -problem 2"

    def step_model(self) -> StepModel:
        steps = np.arange(20)
        mpi_frac = 0.76 if self.num_nodes == 128 else 0.82
        total = self._step_base * (1.0 + 0.25 * np.exp(-steps / 3.0))
        mpi = total * mpi_frac
        compute = total * (1.0 - mpi_frac)
        intensity = mpi / mpi.mean()
        return StepModel(compute=compute, mpi=mpi, intensity=intensity)

    def flow_geometry(
        self, topology: DragonflyTopology, nodes: np.ndarray
    ) -> FlowSet:
        sm = self.step_model()
        mean_step = float((sm.compute + sm.mpi).mean())
        bytes_per_rank = (
            self.hierarchy.bytes_per_rank_per_step() * CYCLES_PER_STEP * TRAFFIC_SCALE
        )
        rate_scale = bytes_per_rank / mean_step
        # Halo traffic: the fine level's 6-neighbour structure carries the
        # aggregate (coarse levels reuse neighbours in the same directions).
        halo = halo_flows(
            topology,
            nodes,
            self.process_grid,
            bytes_per_neighbor=rate_scale / 6.0,
            ranks_per_node=self.ranks_per_node,
            response_ratio=self.response_ratio,
        )
        # GMRES allreduces: tiny payload, latency-bound.
        ar_bytes = (
            self.hierarchy.allreduces_per_step()
            * CYCLES_PER_STEP
            * 8.0
            * self.ranks_per_node
            / mean_step
        )
        ar = allreduce_flows(topology, nodes, bytes_per_node=ar_bytes)
        return FlowSet.concat([halo, ar])

    def routine_mix(self) -> dict[str, float]:
        return {
            "Iprobe": 0.21,
            "Test": 0.17,
            "Testall": 0.12,
            "Waitall": 0.26,
            "Allreduce": 0.19,
            "Other": 0.05,
        }
