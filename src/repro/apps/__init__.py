"""Application models for the four paper workloads (paper §III-A/B).

Each model derives its per-step communication from a first-principles
kernel (domain decomposition, multigrid hierarchy, Louvain phase, KBA
sweep) and exposes:

* a mean time-per-step trend (Fig. 3 shapes),
* a unit-intensity router-level flow geometry plus per-step intensity,
* an MPI-routine mix (Fig. 4/5), and
* sensitivity weights that split congestion exposure between endpoint
  (processor-tile) and fabric (router-tile) pressure.
"""

from repro.apps.base import Application, StepModel
from repro.apps.registry import APPLICATIONS, DATASET_KEYS, get_application

__all__ = [
    "Application",
    "StepModel",
    "APPLICATIONS",
    "DATASET_KEYS",
    "get_application",
]
