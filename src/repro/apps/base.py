"""Application model interface shared by AMG, MILC, miniVite and UMT.

An :class:`Application` describes one (code, node count) configuration —
one row of the paper's Table I, one dataset of the campaign.  It provides
everything the campaign runner needs to execute a probe job on the
simulated machine:

* ``step_model()`` — the mean per-step compute/MPI time trend (the Fig. 3
  shapes) and a per-step traffic-intensity multiplier;
* ``flow_geometry()`` — the router-level flow set at unit intensity for a
  given placement (routed once per run, rescaled per step);
* ``routine_mix()`` — how MPI time splits across routines (Fig. 4/5);
* congestion *sensitivities* — how much of the MPI time dilates with
  endpoint (processor-tile) vs fabric (router-tile) pressure.  These are
  physical characteristics (message size and synchronisation structure),
  and they are what make the per-app counter rankings of Fig. 9 emerge
  from the analysis instead of being baked into it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.network.traffic import FlowSet
from repro.topology.dragonfly import DragonflyTopology


@dataclass
class StepModel:
    """Mean per-step behaviour of one application configuration."""

    #: Mean compute seconds per step (T,).
    compute: np.ndarray
    #: Mean *uncongested* MPI seconds per step (T,).
    mpi: np.ndarray
    #: Traffic-intensity multiplier per step, applied to the unit
    #: flow geometry (T,).  Normalised so the per-step mean is O(1).
    intensity: np.ndarray

    def __post_init__(self) -> None:
        self.compute = np.asarray(self.compute, dtype=np.float64)
        self.mpi = np.asarray(self.mpi, dtype=np.float64)
        self.intensity = np.asarray(self.intensity, dtype=np.float64)
        if not (len(self.compute) == len(self.mpi) == len(self.intensity)):
            raise ValueError("step model arrays must share a length")
        if (self.compute < 0).any() or (self.mpi < 0).any():
            raise ValueError("step times must be non-negative")

    @property
    def num_steps(self) -> int:
        return len(self.mpi)

    @property
    def total_mean_time(self) -> float:
        return float((self.compute + self.mpi).sum())

    @property
    def mpi_fraction(self) -> float:
        """Fraction of total time spent in MPI at mean behaviour."""
        tot = self.total_mean_time
        return float(self.mpi.sum() / tot) if tot > 0 else 0.0


class Application(abc.ABC):
    """One (application, node count) configuration of the study."""

    #: Code name as in Table I.
    name: str = ""
    #: Version string as in Table I.
    version: str = ""
    #: MPI ranks per node (64 of the KNL's 68 cores; paper §III-A).
    ranks_per_node: int = 64

    #: Fraction of MPI time that dilates with endpoint (NIC/processor-tile)
    #: congestion — high for small-message / latency-bound codes.
    endpoint_sensitivity: float = 0.4
    #: Fraction of MPI time that dilates with fabric (router-tile)
    #: congestion — high for bandwidth-bound codes.
    fabric_sensitivity: float = 0.4
    #: Lognormal sigma of intrinsic per-step workload variation (data-
    #: dependent codes like miniVite have large values).
    intensity_sigma: float = 0.03
    #: Lognormal sigma of residual unexplained MPI-time noise.
    residual_sigma: float = 0.04
    #: Lognormal sigma of compute-time jitter (OS noise is minimal on the
    #: paper's runs: cores were set aside for daemons).
    compute_sigma: float = 0.01
    #: Bytes/s of filesystem traffic the job itself generates.
    io_bytes_per_sec: float = 0.0
    #: Response-VC share of the app's endpoint traffic (latency-bound
    #: request/response codes are higher).
    response_ratio: float = 0.08
    #: Exponent on the blended dilation.  1.0 for codes whose messages are
    #: independent; >1 for dependency-chain codes (UMT's sweep wavefront
    #: compounds per-hop delays, which is how a 30%-MPI code ends up 3.3x
    #: slower end to end — paper §III-B).
    dilation_exponent: float = 1.0

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 1:
            raise ValueError("num_nodes must be positive")
        self.num_nodes = num_nodes

    # ------------------------------------------------------------------ #
    # Abstract surface
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def step_model(self) -> StepModel:
        """Mean per-step trend for this configuration."""

    @abc.abstractmethod
    def flow_geometry(
        self, topology: DragonflyTopology, nodes: np.ndarray
    ) -> FlowSet:
        """Router-level flows (bytes/s) at unit intensity for a placement."""

    @abc.abstractmethod
    def routine_mix(self) -> dict[str, float]:
        """MPI-time share per routine (sums to 1; Fig. 4/5)."""

    @abc.abstractmethod
    def input_summary(self) -> str:
        """The Table I input-parameters string."""

    # ------------------------------------------------------------------ #
    # Shared behaviour
    # ------------------------------------------------------------------ #

    @property
    def dataset_key(self) -> str:
        """Dataset identifier, e.g. ``"AMG-512"``."""
        return f"{self.name}-{self.num_nodes}"

    @property
    def num_ranks(self) -> int:
        return self.num_nodes * self.ranks_per_node

    @property
    def num_steps(self) -> int:
        return self.step_model().num_steps

    def table1_row(self) -> tuple[str, str, int, str]:
        """(application, version, nodes, input parameters) — Table I."""
        return (self.name, self.version, self.num_nodes, self.input_summary())

    def blended_slowdown(
        self, fabric_slowdown: float, endpoint_slowdown: float
    ) -> float:
        """MPI-time dilation from the two congestion channels.

        The insensitive remainder of MPI time (synchronisation already
        overlapped, on-node transfers) does not dilate.  The dilation
        exponent compounds delays for dependency-chain codes.
        """
        base = (
            1.0
            + self.fabric_sensitivity * (fabric_slowdown - 1.0)
            + self.endpoint_sensitivity * (endpoint_slowdown - 1.0)
        )
        return float(base**self.dilation_exponent)

    def validate(self) -> None:
        """Internal consistency checks (used by tests and the registry)."""
        sm = self.step_model()
        if sm.num_steps < 1:
            raise ValueError(f"{self.dataset_key}: no steps")
        if self.endpoint_sensitivity + self.fabric_sensitivity > 1.0 + 1e-9:
            raise ValueError(f"{self.dataset_key}: sensitivities exceed 1")
        mix = self.routine_mix()
        if abs(sum(mix.values()) - 1.0) > 1e-6:
            raise ValueError(f"{self.dataset_key}: routine mix must sum to 1")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.dataset_key}>"
