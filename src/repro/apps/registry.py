"""Registry of the six study configurations (paper Table I rows).

The campaign treats each (application, node count) pair as an independent
dataset with 175–225 runs (paper §III-A).
"""

from __future__ import annotations

from repro.apps.amg import AMG
from repro.apps.base import Application
from repro.apps.milc import MILC
from repro.apps.minivite import MiniVite
from repro.apps.umt import UMT

#: Dataset keys in Table I order.
DATASET_KEYS: list[str] = [
    "AMG-128",
    "AMG-512",
    "MILC-128",
    "MILC-512",
    "miniVite-128",
    "UMT-128",
]

_FACTORIES = {
    "AMG-128": lambda: AMG(128),
    "AMG-512": lambda: AMG(512),
    "MILC-128": lambda: MILC(128),
    "MILC-512": lambda: MILC(512),
    "miniVite-128": lambda: MiniVite(128),
    "UMT-128": lambda: UMT(128),
}

#: Lazily built singleton applications keyed by dataset key.
APPLICATIONS: dict[str, Application] = {}


def get_application(key: str) -> Application:
    """The application model for a dataset key (singletons, validated)."""
    if key not in _FACTORIES:
        raise KeyError(f"unknown dataset {key!r}; expected one of {DATASET_KEYS}")
    if key not in APPLICATIONS:
        app = _FACTORIES[key]()
        app.validate()
        APPLICATIONS[key] = app
    return APPLICATIONS[key]
