"""UMT: deterministic S_n radiation transport (paper Table I, §III-B).

Configuration facts from the paper:

* 128 nodes, input ``custom_8k.cmg 4 2 4 4 4 0.04``; 7 time steps.
* The *smallest* MPI fraction of the four codes (~30%) yet among the
  highest variability (3.3x worst/best): sweep dependencies serialise
  ranks, so latency inflation anywhere on the wavefront path stalls
  everything downstream.
* Dominant MPI routines: Allreduce, Barrier, Wait.
* Top deviation predictor: PT_RB_STL_RQ — endpoint request-channel
  stalls, i.e. delayed face messages.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Application, StepModel
from repro.apps.kernels.sweep import SweepSchedule
from repro.network.traffic import FlowSet, allreduce_flows, halo_flows
from repro.topology.dragonfly import DragonflyTopology

#: Sweep passes per time step (non-linear temperature iterations).
SWEEPS_PER_STEP = 4

#: Traffic amplification over bare angular-flux payloads (mesh metadata,
#: per-angle packing, control messages).
TRAFFIC_SCALE = 4.0

NUM_STEPS = 7


class UMT(Application):
    """UMT 2.0 at 128 nodes."""

    name = "UMT"
    version = "2.0"
    intensity_sigma = 0.04
    residual_sigma = 0.05
    response_ratio = 0.30  # sweep handshakes: heavy request/response
    endpoint_sensitivity = 0.68
    fabric_sensitivity = 0.10
    dilation_exponent = 1.7  # sweep wavefront compounds per-hop delays

    def __init__(self, num_nodes: int = 128) -> None:
        super().__init__(num_nodes)
        if num_nodes != 128:
            raise ValueError("UMT ran on 128 nodes in the study")
        self.process_grid = (32, 16, 16)  # 8,192 ranks
        self.schedule = SweepSchedule(
            process_grid=self.process_grid,
            local_zones=(8, 8, 8),
            angles_per_octant=32,
            energy_groups=16,
        )

    # ------------------------------------------------------------------ #

    def input_summary(self) -> str:
        return "custom_8k.cmg 4 2 4 4 4 0.04"

    def step_model(self) -> StepModel:
        mpi_frac = 0.30
        steps = np.arange(NUM_STEPS)
        # Slight ramp as the radiation field develops and iteration counts
        # settle (Fig. 3 right).
        total = 62.0 * (1.0 + 0.06 * steps / max(NUM_STEPS - 1, 1))
        mpi = total * mpi_frac
        compute = total * (1.0 - mpi_frac)
        intensity = mpi / mpi.mean()
        return StepModel(compute=compute, mpi=mpi, intensity=intensity)

    def flow_geometry(
        self, topology: DragonflyTopology, nodes: np.ndarray
    ) -> FlowSet:
        sm = self.step_model()
        mean_step = float((sm.compute + sm.mpi).mean())
        bytes_per_rank = (
            self.schedule.bytes_per_rank_per_step() * SWEEPS_PER_STEP * TRAFFIC_SCALE
        )
        per_neighbor_rate = bytes_per_rank / 6.0 / mean_step
        # Sweep faces follow the 3-D decomposition's neighbour structure.
        halo = halo_flows(
            topology,
            nodes,
            self.process_grid,
            bytes_per_neighbor=per_neighbor_rate,
            ranks_per_node=self.ranks_per_node,
            periodic=False,
            response_ratio=self.response_ratio,
        )
        # Allreduce + barrier per sweep pass.
        ar_bytes = SWEEPS_PER_STEP * 2 * 8.0 * self.ranks_per_node / mean_step
        ar = allreduce_flows(topology, nodes, bytes_per_node=ar_bytes)
        return FlowSet.concat([halo, ar])

    def routine_mix(self) -> dict[str, float]:
        return {
            "Wait": 0.33,
            "Barrier": 0.24,
            "Allreduce": 0.31,
            "Waitall": 0.08,
            "Other": 0.04,
        }
