"""Application communication characterisation (paper §III-B in numbers).

Derives, from each application's kernel, the quantities behind the
paper's prose: message counts, mean message sizes and per-rank volumes —
"AMG sends a large number of small-sized messages", "MILC sends large
point-to-point messages", UMT's sparse-but-serialised sweep faces,
miniVite's irregular data-dependent exchange.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.amg import AMG, CYCLES_PER_STEP
from repro.apps.base import Application
from repro.apps.kernels.halo import halo_surface_bytes
from repro.apps.milc import (
    BYTES_PER_SITE,
    CG_ITERS_REGULAR,
    MILC,
)
from repro.apps.minivite import MiniVite
from repro.apps.registry import DATASET_KEYS, get_application
from repro.apps.umt import SWEEPS_PER_STEP, UMT


@dataclass
class CommProfile:
    """Per-step, per-rank communication character of one configuration."""

    key: str
    pattern: str
    messages_per_rank_per_step: float
    mean_message_bytes: float
    bytes_per_rank_per_step: float
    notes: str

    def row(self) -> list[str]:
        return [
            self.key,
            self.pattern,
            f"{self.messages_per_rank_per_step:,.0f}",
            f"{self.mean_message_bytes:,.0f}",
            f"{self.bytes_per_rank_per_step / 1e6:,.1f} MB",
            self.notes,
        ]


def characterize(app: Application) -> CommProfile:
    """Build the communication profile of one configuration."""
    if isinstance(app, AMG):
        h = app.hierarchy
        msgs = h.messages_per_rank_per_step() * CYCLES_PER_STEP
        total = h.bytes_per_rank_per_step() * CYCLES_PER_STEP
        return CommProfile(
            key=app.dataset_key,
            pattern="3-D multigrid halos + GMRES allreduce",
            messages_per_rank_per_step=msgs,
            mean_message_bytes=total / msgs,
            bytes_per_rank_per_step=total,
            notes=f"{h.num_levels} levels; coarse stencils widen to 26 neighbours",
        )
    if isinstance(app, MILC):
        per_dim = halo_surface_bytes(app.local_lattice, BYTES_PER_SITE)
        msgs = 8.0 * CG_ITERS_REGULAR  # 2 per 4-D dimension per CG iter
        total = float(per_dim.mean()) * msgs
        return CommProfile(
            key=app.dataset_key,
            pattern="4-D stencil (8 neighbours) + CG allreduce",
            messages_per_rank_per_step=msgs,
            mean_message_bytes=total / msgs,
            bytes_per_rank_per_step=total,
            notes="large point-to-point messages, bandwidth-bound",
        )
    if isinstance(app, MiniVite):
        phase = app.phase
        scale = phase.scale_to_graph()
        total_phase = float(phase.iteration_volumes().sum()) * scale
        per_rank = total_phase / app.num_ranks
        msgs = max(
            float(phase.partition_traffic.sum() / 24.0)
            * scale
            / app.num_ranks,
            1.0,
        )
        return CommProfile(
            key=app.dataset_key,
            pattern="irregular vertex-update exchange (Louvain)",
            messages_per_rank_per_step=msgs,
            mean_message_bytes=per_rank / msgs,
            bytes_per_rank_per_step=per_rank,
            notes=f"data-dependent; {phase.iterations} inner iterations/phase",
        )
    if isinstance(app, UMT):
        s = app.schedule
        msgs = s.messages_per_rank_per_step() * SWEEPS_PER_STEP
        total = s.bytes_per_rank_per_step() * SWEEPS_PER_STEP
        return CommProfile(
            key=app.dataset_key,
            pattern="KBA sweep faces (8 octants) + allreduce/barrier",
            messages_per_rank_per_step=msgs,
            mean_message_bytes=total / msgs,
            bytes_per_rank_per_step=total,
            notes=(
                f"{s.critical_path_stages}-stage wavefront; "
                f"pipeline efficiency {s.pipeline_efficiency():.0%}"
            ),
        )
    raise TypeError(f"no characterisation for {type(app).__name__}")


def characterize_all() -> list[CommProfile]:
    return [characterize(get_application(k)) for k in DATASET_KEYS]


def render_profiles(profiles: list[CommProfile]) -> str:
    from repro.experiments.report import ascii_table

    return ascii_table(
        ["dataset", "pattern", "msgs/rank/step", "mean msg", "vol/rank/step", "notes"],
        [p.row() for p in profiles],
    )
