"""Link-level contention attribution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.contention_map import contention_map, render_contention
from repro.network.engine import CongestionEngine
from repro.network.traffic import FlowSet, router_alltoall_flows


@pytest.fixture(scope="module")
def setup(tiny_topo):
    engine = CongestionEngine(tiny_topo)
    rng = np.random.default_rng(0)
    quiet_nodes = rng.choice(tiny_topo.compute_nodes, size=12, replace=False)
    quiet = engine.route(router_alltoall_flows(tiny_topo, quiet_nodes, 1e9))
    # A loud tenant hammering one group pair.
    rpg = tiny_topo.routers_per_group
    src = np.arange(rpg)
    dst = src + 2 * rpg
    loud = engine.route(FlowSet(src, dst, np.full(rpg, 5e9)))
    return engine, {"quiet-job": quiet, "loud-job": loud}


def test_hot_links_identify_loud_tenant(tiny_topo, setup):
    engine, tenants = setup
    cmap = contention_map(tiny_topo, engine, tenants, top_n=8)
    assert len(cmap.hot_links) == 8
    # Utilisations sorted descending.
    utils = [hl.utilisation for hl in cmap.hot_links]
    assert utils == sorted(utils, reverse=True)
    # The loud tenant dominates the hottest link and the blame list.
    assert cmap.hot_links[0].dominant_tenant() == "loud-job"
    assert cmap.blame(1) == ["loud-job"]


def test_shares_normalised(tiny_topo, setup):
    engine, tenants = setup
    cmap = contention_map(tiny_topo, engine, tenants, top_n=5)
    for hl in cmap.hot_links:
        if hl.shares:
            assert sum(hl.shares.values()) == pytest.approx(1.0, abs=1e-6)
        assert hl.kind in {"green", "black", "blue"}
        assert 0 <= hl.src_router < tiny_topo.num_routers


def test_tenant_hot_load_accounting(tiny_topo, setup):
    engine, tenants = setup
    cmap = contention_map(tiny_topo, engine, tenants, top_n=6)
    assert set(cmap.tenant_hot_load) == {"quiet-job", "loud-job"}
    assert cmap.tenant_hot_load["loud-job"] > cmap.tenant_hot_load["quiet-job"]
    ranked = cmap.ranked_tenants()
    assert ranked[0][0] == "loud-job"


def test_render(tiny_topo, setup):
    engine, tenants = setup
    text = render_contention(contention_map(tiny_topo, engine, tenants, top_n=4))
    assert "top tenants" in text
    assert "loud-job" in text
    assert "GB/s" in text
