"""Counter synthesis: Table II fidelity and accounting identities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import FLIT_BYTES, MEAN_PACKET_FLITS, rng_for
from repro.network.counters import (
    APP_COUNTERS,
    COUNTER_SPECS,
    IO_COUNTERS,
    PLACEMENT_FEATURES,
    SYS_COUNTERS,
    aggregate_counters,
    counters_to_matrix,
    counters_to_vector,
    forecast_feature_names,
    spec_by_abbreviation,
    synthesize_router_counters,
)
from repro.network.traffic import router_alltoall_flows


@pytest.fixture(scope="module")
def busy_state(tiny_topo):
    from repro.network.engine import CongestionEngine

    engine = CongestionEngine(tiny_topo)
    rng = np.random.default_rng(11)
    nodes = rng.choice(tiny_topo.compute_nodes, size=40, replace=False)
    flows = router_alltoall_flows(tiny_topo, nodes, 4e10)
    return engine.solve([engine.route(flows)])


def test_table2_has_thirteen_rows():
    assert len(COUNTER_SPECS) == 13
    assert [s.abbreviation for s in COUNTER_SPECS] == APP_COUNTERS
    # Exactly the paper's derived rows.
    derived = {s.abbreviation for s in COUNTER_SPECS if s.derived}
    assert derived == {"RT_FLIT_TOT", "RT_PKT_TOT", "PT_FLIT_TOT", "PT_PKT_TOT"}


def test_table2_cray_names_follow_aries_convention():
    for spec in COUNTER_SPECS:
        assert spec.name.startswith("AR_RTR_")
        if spec.tile == "PT":
            assert spec.name.startswith("AR_RTR_PT_")
            assert spec.abbreviation.startswith("PT_")
        else:
            assert spec.abbreviation.startswith("RT_")


def test_spec_lookup():
    assert spec_by_abbreviation("RT_RB_STL").tile == "RT"
    with pytest.raises(KeyError):
        spec_by_abbreviation("NOPE")


def test_synthesis_covers_all_app_counters(busy_state, tiny_topo):
    rates = synthesize_router_counters(busy_state)
    assert set(rates) == set(APP_COUNTERS)
    for name, vec in rates.items():
        assert vec.shape == (tiny_topo.num_routers,)
        assert (vec >= 0).all(), name


def test_derived_counter_identities(busy_state):
    rates = synthesize_router_counters(busy_state)
    np.testing.assert_allclose(
        rates["PT_FLIT_TOT"], rates["PT_FLIT_VC0"] + rates["PT_FLIT_VC4"]
    )
    np.testing.assert_allclose(
        rates["PT_PKT_TOT"], rates["PT_FLIT_TOT"] / MEAN_PACKET_FLITS
    )
    np.testing.assert_allclose(
        rates["RT_PKT_TOT"], rates["RT_FLIT_TOT"] / MEAN_PACKET_FLITS
    )


def test_pt_flits_match_endpoint_bytes(busy_state):
    rates = synthesize_router_counters(busy_state)
    np.testing.assert_allclose(
        rates["PT_FLIT_VC0"].sum(), busy_state.ej.sum() / FLIT_BYTES
    )
    np.testing.assert_allclose(
        rates["PT_FLIT_VC4"].sum(), busy_state.vc4.sum() / FLIT_BYTES
    )


def test_stall_counters_rise_with_load(tiny_topo):
    from repro.network.engine import CongestionEngine

    engine = CongestionEngine(tiny_topo)
    rng = np.random.default_rng(5)
    nodes = rng.choice(tiny_topo.compute_nodes, size=40, replace=False)
    lo = engine.solve([engine.route(router_alltoall_flows(tiny_topo, nodes, 1e9))])
    hi = engine.solve([engine.route(router_alltoall_flows(tiny_topo, nodes, 6e10))])
    r_lo = synthesize_router_counters(lo)
    r_hi = synthesize_router_counters(hi)
    for stall in ("RT_RB_STL", "PT_RB_STL_RQ", "PT_RB_STL_RS", "PT_CB_STL_RQ"):
        assert r_hi[stall].sum() > r_lo[stall].sum()
    # Stalls grow superlinearly while flits grow linearly.
    flit_ratio = r_hi["RT_FLIT_TOT"].sum() / max(r_lo["RT_FLIT_TOT"].sum(), 1e-9)
    stall_ratio = r_hi["RT_RB_STL"].sum() / max(r_lo["RT_RB_STL"].sum(), 1e-9)
    assert stall_ratio > flit_ratio


def test_aggregate_counters_integrates_duration(busy_state):
    rates = synthesize_router_counters(busy_state)
    routers = np.arange(5)
    one = aggregate_counters(rates, routers, duration=1.0)
    ten = aggregate_counters(rates, routers, duration=10.0)
    for name in APP_COUNTERS:
        assert ten[name] == pytest.approx(10 * one[name])


def test_aggregate_counters_noise_reproducible(busy_state):
    rates = synthesize_router_counters(busy_state)
    routers = np.arange(5)
    a = aggregate_counters(rates, routers, 1.0, rng=rng_for("agg"), noise=0.05)
    b = aggregate_counters(rates, routers, 1.0, rng=rng_for("agg"), noise=0.05)
    assert a == b
    c = aggregate_counters(rates, routers, 1.0, rng=rng_for("other"), noise=0.05)
    assert any(a[k] != c[k] for k in a)


def test_counters_to_vector_order():
    d = {n: float(i) for i, n in enumerate(APP_COUNTERS)}
    v = counters_to_vector(d, APP_COUNTERS)
    np.testing.assert_array_equal(v, np.arange(13.0))


def test_counters_to_matrix_orders_and_shapes():
    # Per-router rate vectors -> (names, routers).
    rates = {"a": np.arange(4.0), "b": np.arange(4.0) * 2}
    m = counters_to_matrix(rates, ["b", "a"])
    assert m.shape == (2, 4)
    np.testing.assert_array_equal(m[0], rates["b"])
    np.testing.assert_array_equal(m[1], rates["a"])
    # Default name order is dict insertion order.
    np.testing.assert_array_equal(counters_to_matrix(rates)[0], rates["a"])
    # Per-step (steps, routers) matrices -> (names, steps, routers).
    block = {"a": np.arange(12.0).reshape(3, 4), "b": np.ones((3, 4))}
    cube = counters_to_matrix(block, ["a", "b"])
    assert cube.shape == (2, 3, 4)
    np.testing.assert_array_equal(cube[0], block["a"])
    # Scalars -> a plain feature vector, same as counters_to_vector.
    d = {n: float(i) for i, n in enumerate(APP_COUNTERS)}
    np.testing.assert_array_equal(
        counters_to_matrix(d, APP_COUNTERS), counters_to_vector(d, APP_COUNTERS)
    )


def test_forecast_feature_names_tiers():
    base = forecast_feature_names()
    assert base == APP_COUNTERS
    placed = forecast_feature_names(placement=True)
    assert placed == APP_COUNTERS + PLACEMENT_FEATURES
    full = forecast_feature_names(placement=True, io=True, sys=True)
    assert full == APP_COUNTERS + PLACEMENT_FEATURES + IO_COUNTERS + SYS_COUNTERS
    assert len(full) == 23  # matches Fig. 11 (right) feature axis
