"""Congestion engine: monotonicity, conservation, adaptivity, composition."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MAX_UTILISATION, TINY, rng_for
from repro.network.engine import (
    SLOWDOWN_CAP,
    BaseLoad,
    CongestionEngine,
    slowdown_curve,
    stall_curve,
)
from repro.network.traffic import FlowSet, router_alltoall_flows, uniform_random_flows
from repro.topology.dragonfly import DragonflyTopology


def _job_flows(topo, n_nodes, volume, seed=0):
    rng = np.random.default_rng(seed)
    nodes = rng.choice(topo.compute_nodes, size=n_nodes, replace=False)
    return router_alltoall_flows(topo, nodes, volume), nodes


def test_stall_curve_shape():
    u = np.array([0.0, 0.2, 0.5, 0.9, 1.5])
    s = stall_curve(u)
    assert s[0] == 0.0
    assert (np.diff(s) >= 0).all()
    # Clamped above MAX_UTILISATION.
    assert s[-1] == stall_curve(np.array([MAX_UTILISATION]))[0]


def test_slowdown_curve_bounds():
    u = np.linspace(0, 2, 50)
    s = slowdown_curve(u)
    assert (s >= 1.0).all()
    assert (s <= SLOWDOWN_CAP).all()
    assert (np.diff(s) >= 0).all()


def test_empty_network_is_idle(tiny_topo, tiny_engine):
    state = tiny_engine.solve([])
    assert state.link_loads.sum() == 0.0
    assert state.link_stall_rate.sum() == 0.0
    assert state.nic_util.max() == 0.0
    assert state.rt_flit_rate.sum() == 0.0


def test_single_job_loads_positive(tiny_topo, tiny_engine):
    flows, _ = _job_flows(tiny_topo, 20, 5e9)
    routed = tiny_engine.route(flows)
    state = tiny_engine.solve([routed])
    assert state.link_loads.sum() > 0
    assert len(state.metrics) == 1
    m = state.metrics[0]
    assert (m.fabric_slowdown >= 1.0).all()
    assert (m.alpha >= 0.25).all() and (m.alpha <= 0.98).all()


def test_more_traffic_more_slowdown(tiny_topo, tiny_engine):
    flows, _ = _job_flows(tiny_topo, 24, 1e9)
    routed_lo = tiny_engine.route(flows)
    routed_hi = tiny_engine.route(flows.scaled(40.0))
    lo = tiny_engine.solve([routed_lo]).metrics[0]
    hi = tiny_engine.solve([routed_hi]).metrics[0]
    w = flows.volume
    assert hi.volume_weighted(w)[0] > lo.volume_weighted(w)[0]


def test_background_interference_slows_job(tiny_topo, tiny_engine):
    """The paper's central mechanism: a neighbour's traffic slows our job."""
    ours, _ = _job_flows(tiny_topo, 16, 2e9, seed=1)
    theirs, _ = _job_flows(tiny_topo, 60, 3e10, seed=2)
    routed = tiny_engine.route(ours)
    alone = tiny_engine.solve([routed]).metrics[0]
    noisy_base = tiny_engine.solve([tiny_engine.route(theirs)]).as_base()
    shared = tiny_engine.solve([routed], base=noisy_base).metrics[0]
    w = ours.volume
    assert shared.volume_weighted(w)[0] > alone.volume_weighted(w)[0]


def test_adaptive_split_reacts_to_congestion(tiny_topo):
    """Congested minimal path => alpha drops below the initial bias."""
    engine = CongestionEngine(tiny_topo, iterations=3)
    t = tiny_topo
    src = np.array([int(t.router_id(0, 0, 0))])
    dst = np.array([int(t.router_id(3, 1, 1))])
    flows = FlowSet(src, dst, np.array([1e8]))
    routed = engine.route(flows)
    # Saturate every direct blue link 0 -> 3 (the minimal path's global
    # hop); Valiant routes go via other groups and stay clean.
    base = BaseLoad.zeros(t)
    for c in range(t.global_multiplicity):
        base.link_loads[int(t.blue_link(0, 3, c))] = 2e10
    state = engine.solve([routed], base=base)
    assert state.metrics[0].alpha[0] < engine.alpha0
    # Without the hot base load the split stays at (or above) the bias.
    clean = engine.solve([routed])
    assert clean.metrics[0].alpha[0] >= engine.alpha0 - 1e-9


def test_endpoint_accounting(tiny_topo, tiny_engine):
    flows = FlowSet(np.array([0, 0]), np.array([13, 25]), np.array([1e9, 2e9]))
    routed = tiny_engine.route(flows)
    state = tiny_engine.solve([routed])
    assert state.inj[0] == pytest.approx(3e9)
    assert state.ej[13] == pytest.approx(1e9)
    assert state.ej[25] == pytest.approx(2e9)
    assert state.vc4[0] == pytest.approx(3e9 * flows.response_ratio)
    assert state.inj.sum() == pytest.approx(flows.total_volume)
    assert state.ej.sum() == pytest.approx(flows.total_volume)


def test_base_load_composition(tiny_topo, tiny_engine):
    flows, _ = _job_flows(tiny_topo, 20, 1e9)
    routed = tiny_engine.route(flows)
    state = tiny_engine.solve([routed])
    base = state.as_base()
    doubled = tiny_engine.solve([routed], base=base)
    assert doubled.inj.sum() == pytest.approx(2 * flows.total_volume)
    # BaseLoad algebra.
    z = BaseLoad.zeros(tiny_topo)
    assert (z + base).link_loads.sum() == pytest.approx(base.link_loads.sum())
    assert base.scaled(0.5).inj.sum() == pytest.approx(0.5 * base.inj.sum())


def test_rt_aggregation_conserves_flits(tiny_topo, tiny_engine):
    from repro.config import FLIT_BYTES

    flows, _ = _job_flows(tiny_topo, 20, 1e9)
    routed = tiny_engine.route(flows)
    state = tiny_engine.solve([routed])
    assert state.rt_flit_rate.sum() == pytest.approx(
        state.link_loads.sum() / FLIT_BYTES
    )


def test_per_flow_endpoint_slowdown_tracks_hot_nic(tiny_topo, tiny_engine):
    # Saturate router 5's NICs with incast.
    srcs = np.arange(20, 40)
    flows = FlowSet(srcs, np.full(20, 5), np.full(20, 3e9))
    routed = tiny_engine.route(flows)
    state = tiny_engine.solve([routed])
    assert state.nic_util[5] > state.nic_util[6]
    m = state.metrics[0]
    assert m.endpoint_slowdown.max() > 1.0


def test_volume_weighted_empty():
    from repro.network.engine import FlowMetrics

    m = FlowMetrics(
        path_util=np.empty(0),
        fabric_slowdown=np.empty(0),
        endpoint_slowdown=np.empty(0),
        alpha=np.empty(0),
    )
    assert m.volume_weighted(np.empty(0)) == (1.0, 1.0)


@given(seed=st.integers(0, 200), scale=st.floats(0.1, 50.0))
@settings(max_examples=15, deadline=None)
def test_property_loads_scale_linearly_at_fixed_alpha(seed, scale):
    topo = DragonflyTopology.from_preset(TINY)
    engine = CongestionEngine(topo, iterations=1)
    rng = np.random.default_rng(seed)
    nodes = rng.choice(topo.compute_nodes, size=16, replace=False)
    flows = uniform_random_flows(topo, nodes, 1e8, rng)
    if len(flows) == 0:
        return
    routed = engine.route(flows)
    l1 = routed.routing.link_loads(flows.volume, 0.8, topo.num_links)
    l2 = routed.routing.link_loads(flows.volume * scale, 0.8, topo.num_links)
    np.testing.assert_allclose(l2, l1 * scale, rtol=1e-9)
