"""Traffic pattern builders: volume conservation and shape checks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TINY, rng_for
from repro.network.traffic import (
    FlowSet,
    allreduce_flows,
    halo_flows,
    io_flows,
    node_flows_to_router_flows,
    router_alltoall_flows,
    uniform_random_flows,
)
from repro.topology.dragonfly import DragonflyTopology


def test_flowset_validation():
    with pytest.raises(ValueError):
        FlowSet(np.array([0]), np.array([1, 2]), np.array([1.0]))
    with pytest.raises(ValueError):
        FlowSet(np.array([0]), np.array([1]), np.array([-1.0]))


def test_flowset_aggregation_merges_duplicates():
    fs = FlowSet(
        np.array([0, 0, 1]), np.array([1, 1, 0]), np.array([2.0, 3.0, 1.0])
    )
    agg = fs.aggregated(num_routers=4)
    assert len(agg) == 2
    assert agg.total_volume == pytest.approx(6.0)
    i = np.flatnonzero((agg.src == 0) & (agg.dst == 1))[0]
    assert agg.volume[i] == pytest.approx(5.0)


def test_flowset_concat_and_scale():
    a = FlowSet(np.array([0]), np.array([1]), np.array([4.0]), response_ratio=0.1)
    b = FlowSet(np.array([2]), np.array([3]), np.array([12.0]), response_ratio=0.3)
    c = FlowSet.concat([a, b])
    assert len(c) == 2
    assert c.total_volume == pytest.approx(16.0)
    # Volume-weighted response ratio.
    assert c.response_ratio == pytest.approx((0.1 * 4 + 0.3 * 12) / 16)
    assert c.scaled(0.5).total_volume == pytest.approx(8.0)
    assert FlowSet.concat([]).total_volume == 0.0


def test_node_flows_drop_local(tiny_topo):
    # Nodes 0 and 1 share router 0 at 2 nodes/router.
    fs = node_flows_to_router_flows(
        tiny_topo, np.array([0, 0]), np.array([1, 2]), np.array([5.0, 7.0])
    )
    assert len(fs) == 1
    assert fs.total_volume == pytest.approx(7.0)


def test_halo_flows_volume_conservation(tiny_topo):
    nodes = tiny_topo.compute_nodes[:16]
    grid = (4, 4, 2)  # 32 ranks over 16 nodes at 2 ranks/node
    fs = halo_flows(tiny_topo, nodes, grid, bytes_per_neighbor=1000.0, ranks_per_node=2)
    nranks = 32
    # Total volume <= 6 neighbours * nranks * 1000 (some neighbours land on
    # the same node/router and are dropped as local).
    assert fs.total_volume <= 6 * nranks * 1000.0 + 1e-9
    assert fs.total_volume > 0
    # All flows live on the job's routers.
    routers = np.unique(tiny_topo.node_router(nodes))
    assert np.isin(fs.src, routers).all()
    assert np.isin(fs.dst, routers).all()


def test_halo_flows_grid_mismatch_raises(tiny_topo):
    with pytest.raises(ValueError):
        halo_flows(tiny_topo, tiny_topo.compute_nodes[:4], (4, 4), 10.0, 2)


def test_halo_flows_nonperiodic_smaller(tiny_topo):
    nodes = tiny_topo.compute_nodes[:16]
    grid = (8, 4)
    per = halo_flows(tiny_topo, nodes, grid, 100.0, 2, periodic=True)
    non = halo_flows(tiny_topo, nodes, grid, 100.0, 2, periodic=False)
    assert non.total_volume < per.total_volume


def test_allreduce_flows_log_stages(tiny_topo):
    nodes = tiny_topo.compute_nodes[:8]
    fs = allreduce_flows(tiny_topo, nodes, bytes_per_node=64.0)
    # 8 nodes -> 3 stages x 8 participants = 24 node exchanges; local ones
    # (same router) are dropped.
    assert fs.total_volume <= 24 * 64.0
    assert fs.total_volume > 0
    assert allreduce_flows(tiny_topo, nodes[:1], 64.0).total_volume == 0.0


def test_router_alltoall_total(tiny_topo):
    nodes = tiny_topo.compute_nodes[:12]
    fs = router_alltoall_flows(tiny_topo, nodes, total_bytes=1e6)
    assert fs.total_volume == pytest.approx(1e6)
    assert (fs.src != fs.dst).all()


def test_router_alltoall_weights_skew(tiny_topo):
    nodes = tiny_topo.compute_nodes[:12]
    routers = np.unique(tiny_topo.node_router(nodes))
    w = np.ones(len(routers))
    w[0] = 10.0
    fs = router_alltoall_flows(tiny_topo, nodes, 1e6, weights=w)
    hot = fs.volume[(fs.src == routers[0]) | (fs.dst == routers[0])].sum()
    assert hot > 0.5 * fs.total_volume


def test_uniform_random_flows(tiny_topo):
    rng = rng_for("traffic-test")
    nodes = tiny_topo.compute_nodes[:20]
    fs = uniform_random_flows(tiny_topo, nodes, bytes_per_node=1e4, rng=rng)
    assert fs.total_volume <= 20 * 1e4 + 1e-6
    assert fs.total_volume > 0


def test_io_flows_touch_io_routers(tiny_topo):
    nodes = tiny_topo.compute_nodes[:10]
    fs = io_flows(tiny_topo, nodes, bytes_per_sec=1e8, read_fraction=0.25)
    assert fs.total_volume == pytest.approx(1e8)
    io = set(tiny_topo.io_routers.tolist())
    touches_io = np.array([s in io or d in io for s, d in zip(fs.src, fs.dst)])
    assert touches_io.all()
    # Reads + writes split as requested.
    write = fs.volume[np.isin(fs.dst, tiny_topo.io_routers)].sum()
    assert write == pytest.approx(0.75e8, rel=0.01)


def test_io_flows_empty_cases(tiny_topo):
    assert io_flows(tiny_topo, tiny_topo.compute_nodes[:4], 0.0).total_volume == 0


@given(seed=st.integers(0, 500), n_nodes=st.integers(2, 40))
@settings(max_examples=25, deadline=None)
def test_property_flows_on_valid_routers(seed, n_nodes):
    topo = DragonflyTopology.from_preset(TINY)
    rng = np.random.default_rng(seed)
    nodes = rng.choice(topo.compute_nodes, size=n_nodes, replace=False)
    fs = uniform_random_flows(topo, nodes, 1e5, rng)
    assert (fs.src >= 0).all() and (fs.src < topo.num_routers).all()
    assert (fs.dst >= 0).all() and (fs.dst < topo.num_routers).all()
    assert (fs.src != fs.dst).all()
    assert (fs.volume >= 0).all()


def test_aggregated_dense_and_sorted_paths_bitwise_equal():
    """Both aggregation branches sum each pair's volumes in entry order.

    The dense-scatter branch fires when routers^2 is small relative to
    the entry count; a sequential per-pair accumulation reproduces the
    same FP result, so both branches must match it bitwise.
    """
    rng = np.random.default_rng(5)
    for num_routers, n in ((6, 400), (200, 50)):  # dense / sorted branch
        src = rng.integers(0, num_routers, size=n)
        dst = rng.integers(0, num_routers, size=n)
        vol = rng.random(n)
        vol[rng.random(n) < 0.1] = 0.0  # zero-volume pairs must survive
        fs = FlowSet(src, dst, vol, 0.1).aggregated(num_routers)
        acc: dict[int, float] = {}
        for s, d, v in zip(src, dst, vol):
            key = int(s) * num_routers + int(d)
            acc[key] = acc.get(key, 0.0) + float(v)
        keys = sorted(acc)
        np.testing.assert_array_equal(fs.src, np.array(keys) // num_routers)
        np.testing.assert_array_equal(fs.dst, np.array(keys) % num_routers)
        np.testing.assert_array_equal(fs.volume, [acc[k] for k in keys])
