"""Packet-level DES: internal invariants + cross-validation of the
aggregate-flow engine (the justification for using the fast model in the
campaign)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TINY
from repro.network.dessim import PACKET_BYTES, PacketSimulator
from repro.network.engine import CongestionEngine
from repro.network.traffic import FlowSet, router_alltoall_flows
from repro.topology.dragonfly import DragonflyTopology


@pytest.fixture(scope="module")
def topo():
    return DragonflyTopology.from_preset(TINY)


@pytest.fixture(scope="module")
def sim(topo):
    return PacketSimulator(topo)


def _small_flows(topo, scale=1.0, seed=0):
    rng = np.random.default_rng(seed)
    nodes = rng.choice(topo.compute_nodes, size=24, replace=False)
    return router_alltoall_flows(topo, nodes, 2e9 * scale)


# --------------------------------------------------------------------- #
# route construction
# --------------------------------------------------------------------- #


def test_routes_are_connected(topo, sim):
    src_l, dst_l = topo.link_endpoints
    rng = np.random.default_rng(1)
    for _ in range(60):
        a = int(rng.integers(0, topo.num_routers))
        b = int(rng.integers(0, topo.num_routers))
        for route in (sim.minimal_route(a, b, rng), sim.valiant_route(a, b, rng)):
            here = a
            for link in route:
                assert int(src_l[link]) == here
                here = int(dst_l[link])
            assert here == b


def test_minimal_route_hop_bound(topo, sim):
    rng = np.random.default_rng(2)
    for _ in range(60):
        a = int(rng.integers(0, topo.num_routers))
        b = int(rng.integers(0, topo.num_routers))
        assert len(sim.minimal_route(a, b, rng)) <= 5


def test_valiant_route_detours(topo, sim):
    rng = np.random.default_rng(3)
    a = int(topo.router_id(0, 0, 0))
    b = int(topo.router_id(3, 1, 1))
    blue = topo.link_kind
    from repro.topology.dragonfly import LinkKind

    route = sim.valiant_route(a, b, rng)
    n_blue = sum(1 for link in route if blue[link] == LinkKind.BLUE)
    assert n_blue == 2  # via an intermediate group


# --------------------------------------------------------------------- #
# simulation invariants
# --------------------------------------------------------------------- #


def test_packet_conservation(topo, sim):
    flows = _small_flows(topo)
    res = sim.run(flows, horizon=0.004, rng=np.random.default_rng(4))
    assert res.flow_packets.sum() > 0
    # Every injected packet is delivered (the sim drains its heap).
    expect = flows.volume.sum() * res.horizon / PACKET_BYTES
    assert res.flow_packets.sum() == pytest.approx(expect, rel=0.25)


def test_latency_stretch_grows_with_load(topo, sim):
    rng = np.random.default_rng(5)
    lo = sim.run(_small_flows(topo, 0.5), horizon=0.004, rng=rng)
    hi = sim.run(_small_flows(topo, 12.0), horizon=0.004, rng=rng)
    w_lo = lo.flow_packets / max(lo.flow_packets.sum(), 1)
    w_hi = hi.flow_packets / max(hi.flow_packets.sum(), 1)
    assert (hi.flow_stretch() @ w_hi) > (lo.flow_stretch() @ w_lo)
    assert (lo.flow_stretch() >= 1.0 - 1e-9).all()


def test_utilisation_bounded(topo, sim):
    res = sim.run(_small_flows(topo, 8.0), horizon=0.004, rng=np.random.default_rng(6))
    util = res.link_stats.utilisation(res.horizon)
    assert (util >= 0).all()
    # A work-conserving FIFO server can lag slightly past the horizon but
    # never by more than the backlog allows; loads here keep it near <= 1.
    assert util.max() < 2.0


def test_ugal_offloads_under_congestion(topo, sim):
    """Adaptive packets abandon the minimal path when it saturates."""
    # Hot pair: all routers of group 0 -> group 3, heavy volume.
    rpg = topo.routers_per_group
    src = np.arange(rpg)
    dst = src + 3 * rpg
    hot = FlowSet(src, dst, np.full(rpg, 2.5e9))
    rng = np.random.default_rng(7)
    res_adaptive = sim.run(hot, horizon=0.01, rng=rng, adaptive=True)
    frac = float(
        (res_adaptive.minimal_fraction * res_adaptive.flow_packets).sum()
        / res_adaptive.flow_packets.sum()
    )
    assert frac < 0.999  # some packets detour
    # And under light load nearly everything stays minimal.
    light = FlowSet(src, dst, np.full(rpg, 1e7))
    res_light = sim.run(light, horizon=0.01, rng=np.random.default_rng(8))
    frac_light = float(
        (res_light.minimal_fraction * res_light.flow_packets).sum()
        / max(res_light.flow_packets.sum(), 1)
    )
    assert frac_light > frac


def test_max_packets_guard(topo, sim):
    flows = _small_flows(topo, 100.0)
    with pytest.raises(ValueError):
        sim.run(flows, horizon=10.0, max_packets=100)


# --------------------------------------------------------------------- #
# cross-validation against the aggregate-flow engine
# --------------------------------------------------------------------- #


def test_engine_and_des_agree_on_link_utilisation(topo, sim):
    """The headline validation: per-link utilisation from the analytic
    engine correlates strongly with the packet simulation's busy time."""
    flows = _small_flows(topo, 4.0)
    engine = CongestionEngine(topo)
    state = engine.solve([engine.route(flows)])
    a_util = state.link_util

    res = sim.run(flows, horizon=0.008, rng=np.random.default_rng(9))
    d_util = res.link_stats.utilisation(res.horizon)

    used = (a_util > 1e-6) | (d_util > 1e-6)
    assert used.sum() > 50
    r = float(np.corrcoef(a_util[used], d_util[used])[0, 1])
    assert r > 0.7
    # Totals agree too (same offered load).
    assert d_util.sum() == pytest.approx(a_util.sum(), rel=0.35)


def test_engine_and_des_agree_on_slowdown_direction(topo, sim):
    """When the engine says a traffic mix is slower, the DES agrees."""
    engine = CongestionEngine(topo)
    results = {}
    for label, scale in (("lo", 0.5), ("hi", 10.0)):
        flows = _small_flows(topo, scale)
        state = engine.solve([engine.route(flows)])
        eng_s, _ = state.metrics[0].volume_weighted(flows.volume)
        res = sim.run(flows, horizon=0.004, rng=np.random.default_rng(10))
        w = res.flow_packets / max(res.flow_packets.sum(), 1)
        results[label] = (eng_s, float(res.flow_stretch() @ w))
    assert results["hi"][0] > results["lo"][0]  # engine direction
    assert results["hi"][1] > results["lo"][1]  # DES direction
