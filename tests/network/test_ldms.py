"""LDMS sampler: io/sys partitions and aggregation identities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import rng_for
from repro.network.counters import synthesize_router_counters
from repro.network.engine import CongestionEngine
from repro.network.ldms import LDMSSampler
from repro.network.traffic import io_flows, router_alltoall_flows


@pytest.fixture(scope="module")
def setup(tiny_topo):
    engine = CongestionEngine(tiny_topo)
    rng = np.random.default_rng(2)
    ours = rng.choice(tiny_topo.compute_nodes, size=12, replace=False)
    others = np.setdiff1d(tiny_topo.compute_nodes, ours)[:40]
    flows = [
        engine.route(router_alltoall_flows(tiny_topo, ours, 5e9)),
        engine.route(router_alltoall_flows(tiny_topo, others, 2e10)),
        engine.route(io_flows(tiny_topo, others, 3e10)),
    ]
    state = engine.solve(flows)
    job_routers = np.unique(tiny_topo.node_router(ours))
    return state, job_routers


def test_sample_keys(tiny_topo, setup):
    state, job_routers = setup
    sampler = LDMSSampler(tiny_topo)
    out = sampler.sample(state, job_routers, duration=10.0)
    assert set(out) == {
        "IO_RT_FLIT_TOT",
        "IO_RT_RB_STL",
        "IO_PT_FLIT_TOT",
        "IO_PT_PKT_TOT",
        "SYS_RT_FLIT_TOT",
        "SYS_RT_RB_STL",
        "SYS_PT_FLIT_TOT",
        "SYS_PT_PKT_TOT",
    }
    assert all(v >= 0 for v in out.values())
    # I/O traffic exists, so io counters must be nonzero.
    assert out["IO_PT_FLIT_TOT"] > 0


def test_sys_excludes_job_and_io_routers(tiny_topo, setup):
    state, job_routers = setup
    sampler = LDMSSampler(tiny_topo)
    rates = synthesize_router_counters(state)
    out = sampler.sample(state, job_routers, 1.0, router_rates=rates)
    # Manual recomputation of the sys partition.
    sys_mask = np.ones(tiny_topo.num_routers, dtype=bool)
    sys_mask[job_routers] = False
    sys_mask[tiny_topo.io_routers] = False
    expect = rates["RT_FLIT_TOT"][sys_mask].sum()
    assert out["SYS_RT_FLIT_TOT"] == pytest.approx(expect)
    # io partition is exactly the io routers.
    expect_io = rates["RT_FLIT_TOT"][tiny_topo.io_routers].sum()
    assert out["IO_RT_FLIT_TOT"] == pytest.approx(expect_io)


def test_duration_scaling_and_noise(tiny_topo, setup):
    state, job_routers = setup
    sampler = LDMSSampler(tiny_topo)
    one = sampler.sample(state, job_routers, 1.0)
    five = sampler.sample(state, job_routers, 5.0)
    for k in one:
        assert five[k] == pytest.approx(5 * one[k])
    noisy1 = sampler.sample(state, job_routers, 1.0, rng=rng_for("ldms"), noise=0.1)
    noisy2 = sampler.sample(state, job_routers, 1.0, rng=rng_for("ldms"), noise=0.1)
    assert noisy1 == noisy2


def test_more_io_traffic_raises_io_counters(tiny_topo):
    engine = CongestionEngine(tiny_topo)
    rng = np.random.default_rng(9)
    others = rng.choice(tiny_topo.compute_nodes, size=30, replace=False)
    sampler = LDMSSampler(tiny_topo)
    job_routers = np.array([0])
    lo = engine.solve([engine.route(io_flows(tiny_topo, others, 1e9))])
    hi = engine.solve([engine.route(io_flows(tiny_topo, others, 5e10))])
    s_lo = sampler.sample(lo, job_routers, 1.0)
    s_hi = sampler.sample(hi, job_routers, 1.0)
    assert s_hi["IO_PT_FLIT_TOT"] > s_lo["IO_PT_FLIT_TOT"]
    assert s_hi["IO_RT_RB_STL"] >= s_lo["IO_RT_RB_STL"]
