"""Mutual information and recursive feature elimination."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.gbr import GradientBoostedRegressor
from repro.ml.mi import (
    columnwise_mi,
    mutual_information_binary,
    mutual_information_discrete,
    mutual_information_histogram,
)
from repro.ml.rfe import RFE, relevance_scores


# --------------------------------------------------------------------- #
# MI
# --------------------------------------------------------------------- #


def test_mi_identical_binary():
    x = np.array([0, 1, 0, 1, 1, 0] * 10)
    # I(X; X) = H(X) = ln 2 for a fair coin.
    assert mutual_information_binary(x, x) == pytest.approx(np.log(2), rel=1e-6)


def test_mi_independent_near_zero():
    rng = np.random.default_rng(0)
    x = rng.integers(0, 2, size=20_000)
    y = rng.integers(0, 2, size=20_000)
    assert mutual_information_binary(x, y) < 5e-4


def test_mi_anticorrelation_is_informative():
    x = np.array([0, 1] * 50)
    assert mutual_information_binary(x, 1 - x) == pytest.approx(np.log(2), rel=1e-6)


def test_mi_nonnegative_random():
    rng = np.random.default_rng(1)
    for _ in range(20):
        x = rng.integers(0, 3, size=200)
        y = rng.integers(0, 4, size=200)
        assert mutual_information_discrete(x, y) >= -1e-12


def test_mi_validation():
    with pytest.raises(ValueError):
        mutual_information_discrete(np.ones(3), np.ones(4))
    with pytest.raises(ValueError):
        mutual_information_discrete(np.empty(0), np.empty(0))


def test_columnwise_mi_ranks_informative_user():
    """The paper's use: aggressor presence predicts non-optimality."""
    rng = np.random.default_rng(2)
    n, u = 400, 6
    m = rng.integers(0, 2, size=(n, u)).astype(np.int8)
    # Optimal iff user 3 absent (plus noise).
    p = (1 - m[:, 3]).astype(np.int8)
    flip = rng.random(n) < 0.1
    p[flip] = 1 - p[flip]
    mi = columnwise_mi(m, p)
    assert np.argmax(mi) == 3
    with pytest.raises(ValueError):
        columnwise_mi(m, p[:-1])


def test_mi_histogram_continuous():
    rng = np.random.default_rng(3)
    x = rng.normal(size=5000)
    y = x + 0.1 * rng.normal(size=5000)
    z = rng.normal(size=5000)
    assert mutual_information_histogram(x, y) > 5 * mutual_information_histogram(x, z)


# --------------------------------------------------------------------- #
# RFE
# --------------------------------------------------------------------- #


def _fast_gbr():
    return GradientBoostedRegressor(n_estimators=25, max_depth=2, random_state=0)


@pytest.fixture(scope="module")
def informative_problem():
    rng = np.random.default_rng(4)
    n, h = 600, 8
    x = rng.normal(size=(n, h))
    # Features 1 and 5 carry the signal.
    y = 3 * x[:, 1] + 2 * x[:, 5] + 0.3 * rng.normal(size=n)
    return x, y


def test_rfe_ranking_keeps_signal_last(informative_problem):
    x, y = informative_problem
    rfe = RFE(_fast_gbr).fit(x, y)
    ranking = rfe.ranking_
    assert sorted(ranking.tolist()) == list(range(1, 9))
    # The two informative features survive longest.
    assert set(np.argsort(ranking)[:2]) == {1, 5}
    # Elimination order lists the noise features first.
    assert set(rfe.elimination_order_[:3]).isdisjoint({1, 5})


def test_rfe_step_validation():
    with pytest.raises(ValueError):
        RFE(step=0)


def test_relevance_scores_structure(informative_problem):
    x, y = informative_problem
    names = [f"f{i}" for i in range(8)]
    res = relevance_scores(
        x, y, names, estimator_factory=_fast_gbr, n_splits=4, seed=0
    )
    assert res.scores.shape == (8,)
    assert (res.scores >= 0).all() and (res.scores <= 1).all()
    # Signal features get (near-)max relevance.
    assert res.scores[1] >= 0.75
    assert res.scores[5] >= 0.75
    assert set(res.top_features(2)) == {"f1", "f5"}
    assert len(res.chosen_subsets) == 4
    assert res.prediction_mape >= 0


def test_relevance_scores_subsampling(informative_problem):
    x, y = informative_problem
    names = [f"f{i}" for i in range(8)]
    res = relevance_scores(
        x, y, names, estimator_factory=_fast_gbr, n_splits=3, max_samples=200
    )
    assert res.scores.shape == (8,)


def test_relevance_scores_validation(informative_problem):
    x, y = informative_problem
    with pytest.raises(ValueError):
        relevance_scores(x, y, ["too", "few"], n_splits=3)


def test_relevance_mape_offset(informative_problem):
    """With a mean-trend offset, MAPE is computed on absolute values."""
    x, y = informative_problem
    names = [f"f{i}" for i in range(8)]
    offset = np.full(len(y), 100.0)
    res = relevance_scores(
        x,
        y,
        names,
        estimator_factory=_fast_gbr,
        n_splits=3,
        mape_offset=offset,
        max_samples=None,
    )
    # Offsetting to ~100 makes percentage errors small (paper: <5%).
    assert res.prediction_mape < 5.0
