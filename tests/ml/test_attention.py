"""Attention forecaster: gradient correctness, learning, importances."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.attention import AttentionForecaster, permutation_importance
from repro.ml.metrics import mape, r2_score
from repro.ml.nn import Adam, glorot, relu, relu_grad, softmax, softmax_backward


# --------------------------------------------------------------------- #
# nn primitives
# --------------------------------------------------------------------- #


def test_softmax_rows_sum_to_one():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(4, 5, 5)) * 50  # large values: stability check
    a = softmax(x, axis=-1)
    np.testing.assert_allclose(a.sum(axis=-1), 1.0, atol=1e-12)
    assert np.isfinite(a).all()


def test_softmax_backward_matches_numeric():
    rng = np.random.default_rng(1)
    x = rng.normal(size=(3, 4))
    g = rng.normal(size=(3, 4))
    a = softmax(x, axis=-1)
    grad = softmax_backward(a, g, axis=-1)
    eps = 1e-6
    num = np.zeros_like(x)
    for i in range(3):
        for j in range(4):
            xp = x.copy()
            xp[i, j] += eps
            xm = x.copy()
            xm[i, j] -= eps
            num[i, j] = ((softmax(xp, -1) * g).sum(axis=-1)[i] -
                         (softmax(xm, -1) * g).sum(axis=-1)[i]) / (2 * eps)
    np.testing.assert_allclose(grad, num, atol=1e-6)


def test_relu_and_grad():
    x = np.array([-1.0, 0.0, 2.0])
    np.testing.assert_array_equal(relu(x), [0, 0, 2])
    np.testing.assert_array_equal(relu_grad(x), [0, 0, 1])


def test_adam_minimises_quadratic():
    params = {"w": np.array([5.0])}
    opt = Adam(params, lr=0.1)
    for _ in range(200):
        opt.step({"w": 2 * params["w"]})  # d/dw w^2
    assert abs(params["w"][0]) < 1e-2
    with pytest.raises(ValueError):
        Adam(params, lr=0)


def test_glorot_shape_and_scale():
    rng = np.random.default_rng(2)
    w = glorot(rng, (100, 50))
    limit = np.sqrt(6 / 150)
    assert w.shape == (100, 50)
    assert abs(w).max() <= limit


# --------------------------------------------------------------------- #
# forecaster
# --------------------------------------------------------------------- #


def test_attention_gradients_match_numeric():
    """Full end-to-end gradient check of the hand-written backward pass."""
    rng = np.random.default_rng(3)
    b, m, h = 5, 4, 3
    model = AttentionForecaster(d_model=4, hidden=6, seed=0)
    model._init_params(h, rng)
    x = rng.normal(size=(b, m, h))
    y = rng.normal(size=b)

    def loss() -> float:
        yhat = model._forward(x)
        return float(np.mean((yhat - y) ** 2))

    yhat, cache = model._forward(x, need_cache=True)
    grads = model._backward(2.0 * (yhat - y) / b, cache)

    eps = 1e-6
    for name, p in model.params.items():
        it = np.nditer(p, flags=["multi_index"])
        # Check a handful of coordinates per tensor.
        checked = 0
        while not it.finished and checked < 5:
            idx = it.multi_index
            orig = p[idx]
            p[idx] = orig + eps
            lp = loss()
            p[idx] = orig - eps
            lm = loss()
            p[idx] = orig
            num = (lp - lm) / (2 * eps)
            assert grads[name][idx] == pytest.approx(num, rel=1e-4, abs=1e-6), name
            checked += 1
            for _ in range(max(p.size // 5, 1)):
                if it.finished:
                    break
                it.iternext()


def test_attention_learns_weighted_sum():
    """Target = weighted sum of a window channel: learnable to high R2."""
    rng = np.random.default_rng(4)
    n, m, h = 600, 5, 4
    x = rng.normal(size=(n, m, h))
    w = np.array([0.1, 0.15, 0.2, 0.25, 0.3])
    y = (x[:, :, 1] * w).sum(axis=1) + 0.05 * rng.normal(size=n)
    model = AttentionForecaster(epochs=150, seed=1, lr=5e-3)
    model.fit(x[:500], y[:500])
    pred = model.predict(x[500:])
    assert r2_score(y[500:], pred) > 0.8


def test_attention_scaling_invariance():
    """Counter-magnitude inputs (1e10) train as well as unit inputs."""
    rng = np.random.default_rng(5)
    n, m, h = 400, 4, 3
    x = rng.normal(size=(n, m, h))
    y = x[:, -1, 0] * 3 + 100.0
    big = x * 1e10
    model = AttentionForecaster(epochs=120, seed=2)
    model.fit(big[:300], y[:300])
    pred = model.predict(big[300:])
    assert r2_score(y[300:], pred) > 0.7
    # Predictions come back in target units.
    assert 90 < pred.mean() < 110


def test_attention_early_stopping_and_history():
    rng = np.random.default_rng(6)
    x = rng.normal(size=(200, 3, 2))
    y = x[:, 0, 0]
    model = AttentionForecaster(epochs=500, patience=10, seed=3)
    model.fit(x, y)
    assert len(model.history_) <= 500
    assert len(model.history_) >= 10


def test_attention_validation_and_unfitted():
    model = AttentionForecaster()
    with pytest.raises(RuntimeError):
        model.predict(np.ones((2, 3, 4)))
    with pytest.raises(ValueError):
        model.fit(np.ones((5, 3)), np.ones(5))
    with pytest.raises(ValueError):
        AttentionForecaster(d_model=0)


def test_attention_map_shape():
    rng = np.random.default_rng(7)
    x = rng.normal(size=(50, 4, 3))
    y = x[:, -1, 0]
    model = AttentionForecaster(epochs=30, seed=4).fit(x, y)
    a = model.attention_map(x[:5])
    assert a.shape == (5, 4, 4)
    np.testing.assert_allclose(a.sum(axis=-1), 1.0, atol=1e-9)


def test_permutation_importance_finds_signal_channel():
    rng = np.random.default_rng(8)
    n, m, h = 500, 4, 5
    x = rng.normal(size=(n, m, h))
    y = 5 * x[:, :, 2].mean(axis=1) + 0.1 * rng.normal(size=n)
    model = AttentionForecaster(epochs=150, seed=5, lr=5e-3).fit(x, y)
    imp = permutation_importance(
        model, x, y, metric=mape, rng=np.random.default_rng(0)
    )
    assert imp.shape == (h,)
    assert np.argmax(imp) == 2
    assert (imp >= 0).all()


def test_attention_deterministic():
    rng = np.random.default_rng(9)
    x = rng.normal(size=(150, 3, 2))
    y = x[:, 0, 0]
    a = AttentionForecaster(epochs=40, seed=11).fit(x, y).predict(x[:10])
    b = AttentionForecaster(epochs=40, seed=11).fit(x, y).predict(x[:10])
    np.testing.assert_array_equal(a, b)
