"""Estimator protocol, pipeline composition, and the forecaster registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.gbr import GradientBoostedRegressor
from repro.ml.linear import RidgeRegressor
from repro.ml.pipeline import (
    Estimator,
    MeanTargetForecaster,
    Pipeline,
    ScalerStep,
    Transform,
    WindowFlattener,
    make_forecaster,
)


def _windows(n=40, m=3, h=5, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, m, h))
    y = x[:, :, 0].sum(axis=1) + 0.1 * rng.normal(size=n)
    return x, y


# --------------------------------------------------------------------- #
# WindowFlattener
# --------------------------------------------------------------------- #


def test_flattener_shapes_and_layout():
    x, _ = _windows()
    flat = WindowFlattener().fit(x).transform(x)
    assert flat.shape == (40, 15)
    np.testing.assert_array_equal(flat[0], x[0].ravel())


def test_flattener_rejects_flat_input():
    with pytest.raises(ValueError, match=r"\(n, m, H\)"):
        WindowFlattener().fit(np.zeros((10, 15)))


def test_flattener_folds_importances_per_channel():
    x, _ = _windows(m=3, h=5)
    fl = WindowFlattener().fit(x)
    imp = np.arange(15, dtype=float)  # (m*H,) as an estimator reports it
    folded = fl.fold_importances(imp)
    np.testing.assert_array_equal(folded, imp.reshape(3, 5).sum(axis=0))


def test_flattener_unfitted_fold_raises():
    with pytest.raises(RuntimeError):
        WindowFlattener().fold_importances(np.zeros(15))


# --------------------------------------------------------------------- #
# ScalerStep / Pipeline
# --------------------------------------------------------------------- #


def test_scaler_step_standardises():
    rng = np.random.default_rng(0)
    x = rng.normal(5.0, 3.0, size=(200, 4))
    z = ScalerStep().fit(x).transform(x)
    np.testing.assert_allclose(z.mean(axis=0), 0.0, atol=1e-9)
    np.testing.assert_allclose(z.std(axis=0), 1.0, atol=1e-9)


def test_pipeline_equals_manual_composition():
    x, y = _windows()
    pipe = Pipeline([WindowFlattener()], RidgeRegressor(alpha=1.0)).fit(x, y)
    manual = RidgeRegressor(alpha=1.0).fit(x.reshape(len(x), -1), y)
    np.testing.assert_allclose(
        pipe.predict(x), manual.predict(x.reshape(len(x), -1))
    )


def test_pipeline_importances_fold_to_channels():
    x, y = _windows(m=3, h=5)
    pipe = Pipeline(
        [WindowFlattener()],
        GradientBoostedRegressor(n_estimators=20, max_depth=2, random_state=0),
    ).fit(x, y)
    imp = pipe.feature_importances_
    assert imp.shape == (5,)
    assert imp.sum() == pytest.approx(1.0)
    # Channel 0 drives the target.
    assert int(np.argmax(imp)) == 0


def test_pipeline_without_importances_raises():
    x, y = _windows()
    pipe = Pipeline([WindowFlattener()], MeanTargetForecaster()).fit(x, y)
    with pytest.raises(AttributeError):
        pipe.feature_importances_


def test_protocol_runtime_checks():
    assert isinstance(Pipeline([], RidgeRegressor()), Estimator)
    assert isinstance(MeanTargetForecaster(), Estimator)
    assert isinstance(WindowFlattener(), Transform)
    assert isinstance(ScalerStep(), Transform)
    assert not isinstance(object(), Estimator)


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #


def test_make_forecaster_registry():
    x, y = _windows()
    for name in ("gbr", "forest", "ridge", "mean-target"):
        model = make_forecaster(name, seed=0)
        assert isinstance(model, Estimator)
        pred = model.fit(x, y).predict(x)
        assert pred.shape == (len(x),)


def test_make_forecaster_attention():
    from repro.ml.attention import AttentionForecaster

    model = make_forecaster("attention", seed=3, d_model=8, hidden=16, epochs=5)
    assert isinstance(model, AttentionForecaster)


def test_make_forecaster_unknown_name():
    with pytest.raises(ValueError, match="unknown forecaster"):
        make_forecaster("oracle")


def test_make_forecaster_is_deterministic():
    x, y = _windows()
    a = make_forecaster("gbr", seed=0).fit(x, y).predict(x)
    b = make_forecaster("gbr", seed=0).fit(x, y).predict(x)
    np.testing.assert_array_equal(a, b)


def test_mean_target_forecaster():
    x, y = _windows()
    pred = MeanTargetForecaster().fit(x, y).predict(x[:7])
    np.testing.assert_allclose(pred, y.mean())


# --------------------------------------------------------------------- #
# Pre-binned passthrough
# --------------------------------------------------------------------- #


def test_supports_binned_only_for_stepless_binned_estimator():
    gbr = GradientBoostedRegressor(n_estimators=5)
    assert Pipeline([], gbr).supports_binned
    assert not Pipeline([ScalerStep()], gbr).supports_binned
    assert not Pipeline([], RidgeRegressor()).supports_binned


def test_binned_passthrough_matches_plain_fit():
    from repro.ml.tree import Binner

    rng = np.random.default_rng(11)
    x = rng.normal(size=(150, 4))
    y = x[:, 0] + 0.1 * rng.normal(size=150)
    plain = Pipeline([], GradientBoostedRegressor(n_estimators=8, random_state=1))
    plain.fit(x, y)
    binner = Binner(64).fit(x)
    via = Pipeline([], GradientBoostedRegressor(n_estimators=8, random_state=1))
    via.fit_binned(binner.transform(x), y, binner)
    np.testing.assert_array_equal(
        plain.predict(x), via.predict_binned(binner.transform(x))
    )


def test_binned_passthrough_rejects_stepped_pipeline():
    rng = np.random.default_rng(12)
    x = rng.normal(size=(30, 3))
    y = rng.normal(size=30)
    p = Pipeline([ScalerStep()], GradientBoostedRegressor(n_estimators=3))
    with pytest.raises(RuntimeError, match="stepless"):
        p.fit_binned(x.astype(np.uint8), y, None)
    with pytest.raises(RuntimeError, match="stepless"):
        p.predict_binned(x.astype(np.uint8))
