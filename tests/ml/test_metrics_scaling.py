"""Metrics, scalers, CV splitters."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.metrics import mae, mape, r2_score, rmse
from repro.ml.model_selection import GroupKFold, KFold, train_test_split
from repro.ml.scaling import StandardScaler


def test_mape_basic():
    assert mape([100, 200], [110, 180]) == pytest.approx(10.0)
    assert mape([1, 1], [1, 1]) == 0.0


def test_mae_rmse():
    y = np.array([1.0, 2.0, 3.0])
    p = np.array([2.0, 2.0, 1.0])
    assert mae(y, p) == pytest.approx(1.0)
    assert rmse(y, p) == pytest.approx(np.sqrt(5 / 3))


def test_r2():
    y = np.array([1.0, 2.0, 3.0, 4.0])
    assert r2_score(y, y) == 1.0
    assert r2_score(y, np.full(4, y.mean())) == pytest.approx(0.0)
    assert r2_score(np.ones(3), np.ones(3)) == 1.0
    assert r2_score(np.ones(3), np.zeros(3)) == 0.0


def test_metric_validation():
    with pytest.raises(ValueError):
        mape([1, 2], [1])
    with pytest.raises(ValueError):
        mae([], [])


def test_standard_scaler_roundtrip():
    rng = np.random.default_rng(0)
    x = rng.normal(5, 3, size=(100, 4))
    x[:, 2] = 7.0  # constant feature
    sc = StandardScaler()
    z = sc.fit_transform(x)
    np.testing.assert_allclose(z.mean(axis=0), 0, atol=1e-12)
    np.testing.assert_allclose(z[:, [0, 1, 3]].std(axis=0), 1, atol=1e-12)
    np.testing.assert_allclose(z[:, 2], 0)
    np.testing.assert_allclose(sc.inverse_transform(z), x, atol=1e-9)


def test_standard_scaler_1d_and_unfitted():
    sc = StandardScaler()
    with pytest.raises(RuntimeError):
        sc.transform(np.ones(3))
    y = np.array([1.0, 3.0])
    z = sc.fit_transform(y)
    assert z.shape == (2,)
    np.testing.assert_allclose(sc.inverse_transform(z), y)


def test_kfold_partitions():
    kf = KFold(n_splits=5, seed=1)
    seen = []
    for train, test in kf.split(23):
        assert len(np.intersect1d(train, test)) == 0
        assert len(train) + len(test) == 23
        seen.extend(test.tolist())
    assert sorted(seen) == list(range(23))


def test_kfold_validation():
    with pytest.raises(ValueError):
        KFold(n_splits=1)
    with pytest.raises(ValueError):
        list(KFold(n_splits=10).split(5))


def test_group_kfold_keeps_groups_together():
    groups = np.repeat(np.arange(10), 7)
    gkf = GroupKFold(n_splits=5, seed=2)
    seen_groups = []
    for train, test in gkf.split(groups):
        tr_g = set(groups[train])
        te_g = set(groups[test])
        assert not tr_g & te_g
        seen_groups.extend(sorted(te_g))
    assert sorted(seen_groups) == list(range(10))


def test_group_kfold_validation():
    with pytest.raises(ValueError):
        list(GroupKFold(n_splits=5).split(np.array([0, 0, 1, 1])))


def test_train_test_split():
    train, test = train_test_split(50, 0.2, seed=3)
    assert len(test) == 10
    assert len(train) == 40
    assert len(np.intersect1d(train, test)) == 0
    with pytest.raises(ValueError):
        train_test_split(10, 1.5)


@given(st.integers(10, 200), st.integers(2, 8))
@settings(max_examples=20, deadline=None)
def test_property_kfold_covers_everything(n, k):
    if n < k:
        return
    seen = np.zeros(n, dtype=int)
    for _, test in KFold(n_splits=k, seed=0).split(n):
        seen[test] += 1
    assert (seen == 1).all()
