"""Model diagnostics utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.diagnostics import (
    interval_coverage,
    learning_curve,
    residual_report,
)
from repro.ml.linear import RidgeRegressor


def test_residual_report_perfect():
    y = np.linspace(1, 10, 50)
    rep = residual_report(y, y)
    assert rep.mae == 0.0
    assert rep.r2 == 1.0
    assert rep.is_unbiased()
    np.testing.assert_allclose(rep.quantiles, 0.0)


def test_residual_report_biased():
    y = np.linspace(10, 20, 50)
    rep = residual_report(y, y + 5.0)
    assert rep.mean_error == pytest.approx(5.0)
    assert not rep.is_unbiased()


def test_residual_heteroscedasticity_detected():
    rng = np.random.default_rng(0)
    y = np.linspace(1, 100, 500)
    pred = y + rng.normal(0, 1, 500) * (y / 20)  # errors grow with level
    rep = residual_report(y, pred)
    assert rep.error_vs_level > 0.3


def test_residual_validation():
    with pytest.raises(ValueError):
        residual_report(np.ones(3), np.ones(4))
    with pytest.raises(ValueError):
        residual_report(np.empty(0), np.empty(0))


def test_learning_curve_improves_with_data():
    rng = np.random.default_rng(1)
    x = rng.normal(size=(400, 5))
    y = x @ np.array([3, 0, -2, 0, 1.0]) + 0.3 * rng.normal(size=400)

    def factory(seed):
        return RidgeRegressor(alpha=1.0)

    curve = learning_curve(factory, x, y, fractions=(0.1, 1.0), seed=2)
    assert len(curve) == 2
    sizes = [c[0] for c in curve]
    assert sizes[1] > sizes[0]
    # More data should not make a well-specified model much worse.
    assert curve[1][1] <= curve[0][1] * 1.5


def test_learning_curve_validation():
    with pytest.raises(ValueError):
        learning_curve(lambda s: RidgeRegressor(), np.ones((4, 2)), np.ones(4))


def test_interval_coverage():
    y = np.array([100.0, 100.0, 100.0, 100.0])
    pred = np.array([100.0, 105.0, 120.0, 95.0])
    cov = interval_coverage(y, pred, width_fraction=0.10)
    # 100 within [90,110]; 105 -> [94.5,115.5] ok; 120 -> [108,132] miss;
    # 95 -> [85.5,104.5] ok.
    assert cov == pytest.approx(3 / 4)
    with pytest.raises(ValueError):
        interval_coverage(np.ones(2), np.ones(3))
