"""Decision trees and gradient boosting: accuracy and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.gbr import GradientBoostedRegressor
from repro.ml.metrics import r2_score
from repro.ml.tree import Binner, DecisionTreeRegressor


@pytest.fixture(scope="module")
def friedman():
    """A Friedman#1-style benchmark regression problem."""
    rng = np.random.default_rng(7)
    n = 1500
    x = rng.uniform(0, 1, size=(n, 8))
    y = (
        10 * np.sin(np.pi * x[:, 0] * x[:, 1])
        + 20 * (x[:, 2] - 0.5) ** 2
        + 10 * x[:, 3]
        + 5 * x[:, 4]
        + rng.normal(0, 0.5, n)
    )
    return x[:1000], y[:1000], x[1000:], y[1000:]


# --------------------------------------------------------------------- #
# Binner
# --------------------------------------------------------------------- #


def test_binner_monotone():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(500, 2))
    b = Binner(n_bins=16).fit(x)
    codes = b.transform(x)
    assert codes.dtype == np.uint8
    assert codes.max() < 16
    # Binning preserves order within a feature.
    order = np.argsort(x[:, 0])
    assert (np.diff(codes[order, 0].astype(int)) >= 0).all()


def test_binner_validation():
    with pytest.raises(ValueError):
        Binner(n_bins=1)
    with pytest.raises(RuntimeError):
        Binner().transform(np.ones((3, 2)))
    with pytest.raises(ValueError):
        Binner().fit(np.ones(5))


def test_binner_constant_feature():
    x = np.ones((50, 1))
    codes = Binner(8).fit(x).transform(x)
    assert len(np.unique(codes)) == 1


# --------------------------------------------------------------------- #
# Tree
# --------------------------------------------------------------------- #


def test_tree_fits_step_function():
    x = np.linspace(0, 1, 200)[:, None]
    y = (x[:, 0] > 0.5).astype(float) * 10
    tree = DecisionTreeRegressor(max_depth=2).fit(x, y)
    pred = tree.predict(x)
    assert r2_score(y, pred) > 0.99


def test_tree_depth_limit():
    rng = np.random.default_rng(1)
    x = rng.normal(size=(300, 3))
    y = rng.normal(size=300)
    t1 = DecisionTreeRegressor(max_depth=1).fit(x, y)
    t4 = DecisionTreeRegressor(max_depth=4).fit(x, y)
    assert t1.node_count <= 3
    assert t4.node_count > t1.node_count


def test_tree_min_samples_leaf():
    x = np.arange(20, dtype=float)[:, None]
    y = x[:, 0]
    tree = DecisionTreeRegressor(max_depth=10, min_samples_leaf=10).fit(x, y)
    # With min_leaf=10 over 20 samples only one split is possible.
    assert tree.node_count <= 3


def test_tree_constant_target_no_split():
    x = np.random.default_rng(2).normal(size=(100, 2))
    y = np.full(100, 3.0)
    tree = DecisionTreeRegressor().fit(x, y)
    np.testing.assert_allclose(tree.predict(x), 3.0)


def test_tree_importances_find_signal():
    rng = np.random.default_rng(3)
    x = rng.normal(size=(800, 5))
    y = 4 * x[:, 2] + 0.1 * rng.normal(size=800)
    tree = DecisionTreeRegressor(max_depth=3).fit(x, y)
    assert np.argmax(tree.feature_importances_) == 2
    assert tree.feature_importances_.sum() == pytest.approx(1.0)


def test_tree_validation():
    with pytest.raises(ValueError):
        DecisionTreeRegressor(max_depth=0)
    with pytest.raises(ValueError):
        DecisionTreeRegressor(min_samples_leaf=0)
    with pytest.raises(ValueError):
        DecisionTreeRegressor().fit(np.ones((5, 2)), np.ones(4))
    t = DecisionTreeRegressor()
    t.fit_binned(np.zeros((10, 2), dtype=np.uint8), np.ones(10))
    with pytest.raises(RuntimeError):
        t.predict(np.ones((3, 2)))  # fitted on binned data, no binner


# --------------------------------------------------------------------- #
# GBR
# --------------------------------------------------------------------- #


def test_gbr_beats_single_tree(friedman):
    xtr, ytr, xte, yte = friedman
    tree = DecisionTreeRegressor(max_depth=3).fit(xtr, ytr)
    gbr = GradientBoostedRegressor(n_estimators=150, random_state=0).fit(xtr, ytr)
    r2_tree = r2_score(yte, tree.predict(xte))
    r2_gbr = r2_score(yte, gbr.predict(xte))
    assert r2_gbr > r2_tree
    assert r2_gbr > 0.85


def test_gbr_training_loss_decreases(friedman):
    xtr, ytr, _, _ = friedman
    gbr = GradientBoostedRegressor(n_estimators=60).fit(xtr, ytr)
    assert gbr.train_score_[-1] < gbr.train_score_[0]


def test_gbr_importances_rank_signal():
    rng = np.random.default_rng(4)
    x = rng.normal(size=(1000, 6))
    y = 5 * x[:, 1] + 1 * x[:, 4] + 0.2 * rng.normal(size=1000)
    gbr = GradientBoostedRegressor(n_estimators=80).fit(x, y)
    imp = gbr.feature_importances_
    assert np.argmax(imp) == 1
    assert imp[4] > imp[0]
    assert imp.sum() == pytest.approx(1.0)


def test_gbr_staged_predict(friedman):
    xtr, ytr, xte, yte = friedman
    gbr = GradientBoostedRegressor(n_estimators=30).fit(xtr, ytr)
    stages = list(gbr.staged_predict(xte))
    assert len(stages) == 30
    np.testing.assert_allclose(stages[-1], gbr.predict(xte))
    # Test error generally improves over stages.
    first = r2_score(yte, stages[0])
    last = r2_score(yte, stages[-1])
    assert last > first


def test_gbr_deterministic(friedman):
    xtr, ytr, xte, _ = friedman
    a = GradientBoostedRegressor(n_estimators=20, random_state=5).fit(xtr, ytr)
    b = GradientBoostedRegressor(n_estimators=20, random_state=5).fit(xtr, ytr)
    np.testing.assert_array_equal(a.predict(xte), b.predict(xte))


def test_gbr_validation():
    with pytest.raises(ValueError):
        GradientBoostedRegressor(n_estimators=0)
    with pytest.raises(ValueError):
        GradientBoostedRegressor(learning_rate=0)
    with pytest.raises(ValueError):
        GradientBoostedRegressor(subsample=0)
    with pytest.raises(RuntimeError):
        GradientBoostedRegressor().predict(np.ones((3, 2)))


@given(seed=st.integers(0, 100))
@settings(max_examples=10, deadline=None)
def test_property_gbr_predictions_bounded_by_target_range(seed):
    """L2 boosting with shrinkage cannot wildly overshoot the target hull."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(200, 3))
    y = rng.uniform(-1, 1, size=200)
    gbr = GradientBoostedRegressor(n_estimators=30, random_state=seed).fit(x, y)
    pred = gbr.predict(x)
    margin = 0.5 * (y.max() - y.min() + 1e-9)
    assert pred.min() >= y.min() - margin
    assert pred.max() <= y.max() + margin


# --------------------------------------------------------------------- #
# Binner: vectorized transform and column subsetting
# --------------------------------------------------------------------- #


def _reference_transform(binner: Binner, x: np.ndarray) -> np.ndarray:
    """The per-feature searchsorted loop the fast path must reproduce."""
    out = np.empty(x.shape, dtype=np.uint8)
    for f, edges in enumerate(binner.edges_):
        out[:, f] = np.searchsorted(edges, x[:, f], side="right")
    return out


def test_binner_vectorized_transform_matches_reference():
    rng = np.random.default_rng(3)
    x = rng.normal(size=(9000, 6))  # > one chunk of rows
    b = Binner(32).fit(x)
    np.testing.assert_array_equal(b.transform(x), _reference_transform(b, x))


def test_binner_transform_with_nan_takes_reference_path():
    rng = np.random.default_rng(4)
    x = rng.normal(size=(200, 3))
    b = Binner(16).fit(x)
    x[5, 1] = np.nan
    np.testing.assert_array_equal(b.transform(x), _reference_transform(b, x))


def test_binner_transform_uneven_edges_matches_reference():
    # A constant column dedupes to fewer edges than its neighbours, so
    # the stacked fast path is unavailable — the loop must still agree.
    rng = np.random.default_rng(5)
    x = np.column_stack([rng.normal(size=300), np.ones(300)])
    b = Binner(16).fit(x)
    assert len({len(e) for e in b.edges_}) > 1
    np.testing.assert_array_equal(b.transform(x), _reference_transform(b, x))


def test_binner_subset_equals_refit_on_columns():
    rng = np.random.default_rng(6)
    x = rng.normal(size=(400, 5))
    cols = [0, 2, 4]
    full = Binner(32).fit(x)
    refit = Binner(32).fit(x[:, cols])
    sub = full.subset(cols)
    for a, b in zip(sub.edges_, refit.edges_):
        np.testing.assert_array_equal(a, b)
    np.testing.assert_array_equal(sub.transform(x[:, cols]), refit.transform(x[:, cols]))


def test_binner_subset_requires_fit():
    with pytest.raises(RuntimeError):
        Binner(8).subset([0])


# --------------------------------------------------------------------- #
# GBR: pre-binned fits
# --------------------------------------------------------------------- #


def test_gbr_fit_binned_bit_identical_to_plain_fit(friedman):
    xtr, ytr, xte, _ = friedman
    cols = [1, 3, 5, 6]
    plain = GradientBoostedRegressor(n_estimators=15, random_state=2)
    plain.fit(xtr[:, cols], ytr)
    binner = Binner(plain.n_bins).fit(xtr)
    binned = GradientBoostedRegressor(n_estimators=15, random_state=2)
    binned.fit_binned(binner.transform(xtr)[:, cols], ytr, binner.subset(cols))
    np.testing.assert_array_equal(
        plain.predict(xte[:, cols]), binned.predict(xte[:, cols])
    )
    np.testing.assert_array_equal(
        plain.feature_importances_, binned.feature_importances_
    )
