"""Random forest regressor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.forest import RandomForestRegressor
from repro.ml.metrics import r2_score
from repro.ml.tree import DecisionTreeRegressor


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(0)
    n = 1200
    x = rng.uniform(-1, 1, size=(n, 6))
    y = (
        np.sin(3 * x[:, 0])
        + x[:, 1] ** 2
        + 0.5 * x[:, 3]
        + 0.1 * rng.normal(size=n)
    )
    return x[:900], y[:900], x[900:], y[900:]


def test_forest_beats_single_tree(problem):
    xtr, ytr, xte, yte = problem
    tree = DecisionTreeRegressor(max_depth=6).fit(xtr, ytr)
    forest = RandomForestRegressor(n_estimators=40, random_state=1).fit(xtr, ytr)
    assert r2_score(yte, forest.predict(xte)) > r2_score(yte, tree.predict(xte)) - 0.02
    assert r2_score(yte, forest.predict(xte)) > 0.8


def test_forest_importances_identify_signal(problem):
    xtr, ytr, _, _ = problem
    forest = RandomForestRegressor(n_estimators=40, random_state=2).fit(xtr, ytr)
    imp = forest.feature_importances_
    assert imp.sum() == pytest.approx(1.0)
    # Noise features (2, 4, 5) get less mass than signal features (0, 1, 3).
    assert imp[[0, 1, 3]].sum() > imp[[2, 4, 5]].sum()


def test_forest_deterministic(problem):
    xtr, ytr, xte, _ = problem
    a = RandomForestRegressor(n_estimators=10, random_state=7).fit(xtr, ytr)
    b = RandomForestRegressor(n_estimators=10, random_state=7).fit(xtr, ytr)
    np.testing.assert_array_equal(a.predict(xte), b.predict(xte))


def test_forest_validation():
    with pytest.raises(ValueError):
        RandomForestRegressor(n_estimators=0)
    with pytest.raises(ValueError):
        RandomForestRegressor(max_features=0)
    with pytest.raises(ValueError):
        RandomForestRegressor().fit(np.ones(5), np.ones(5))
    with pytest.raises(RuntimeError):
        RandomForestRegressor().predict(np.ones((3, 2)))


def test_forest_agrees_with_gbr_on_deviation_signal():
    """Robustness check for Fig. 9: an uncorrelated ensemble ranks the
    same counter on top as the boosted one."""
    from repro.ml.gbr import GradientBoostedRegressor

    rng = np.random.default_rng(3)
    x = rng.normal(size=(800, 13))
    y = 3 * x[:, 3] + 0.2 * rng.normal(size=800)  # counter #3 drives
    forest = RandomForestRegressor(n_estimators=30, random_state=4).fit(x, y)
    gbr = GradientBoostedRegressor(n_estimators=40).fit(x, y)
    assert int(np.argmax(forest.feature_importances_)) == 3
    assert int(np.argmax(gbr.feature_importances_)) == 3
