"""Ridge regression baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.linear import RidgeForecaster, RidgeRegressor
from repro.ml.metrics import r2_score


def test_ridge_recovers_linear_model():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(500, 4))
    y = 3 * x[:, 0] - 2 * x[:, 2] + 5 + 0.05 * rng.normal(size=500)
    model = RidgeRegressor(alpha=1e-6).fit(x, y)
    assert r2_score(y, model.predict(x)) > 0.99
    imp = model.feature_importances_
    assert imp.sum() == pytest.approx(1.0)
    assert np.argmax(imp) == 0
    assert imp[2] > imp[1]


def test_ridge_regularisation_shrinks():
    rng = np.random.default_rng(1)
    x = rng.normal(size=(50, 10))
    y = x[:, 0] + rng.normal(size=50)
    small = RidgeRegressor(alpha=1e-6).fit(x, y)
    big = RidgeRegressor(alpha=1e4).fit(x, y)
    assert np.abs(big.coef_).sum() < np.abs(small.coef_).sum()


def test_ridge_validation():
    with pytest.raises(ValueError):
        RidgeRegressor(alpha=-1)
    with pytest.raises(ValueError):
        RidgeRegressor().fit(np.ones(5), np.ones(5))
    with pytest.raises(RuntimeError):
        RidgeRegressor().predict(np.ones((2, 3)))


def test_ridge_constant_features_ok():
    x = np.ones((20, 3))
    x[:, 0] = np.arange(20)
    y = 2 * x[:, 0]
    model = RidgeRegressor(alpha=1e-6).fit(x, y)
    assert r2_score(y, model.predict(x)) > 0.99


def test_ridge_forecaster_windows():
    rng = np.random.default_rng(2)
    x = rng.normal(size=(300, 4, 3))
    y = x[:, -1, 1] * 2 + 1
    model = RidgeForecaster(alpha=1e-3).fit(x[:200], y[:200])
    assert r2_score(y[200:], model.predict(x[200:])) > 0.95
    with pytest.raises(ValueError):
        RidgeForecaster().fit(np.ones((5, 3)), np.ones(5))
