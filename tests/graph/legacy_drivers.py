"""Frozen pre-DAG experiment drivers, used as the golden reference.

These are verbatim copies of the ``run(campaign, fast)`` bodies the
experiment modules had before the stage-graph refactor (with
``forecast_grid`` inlined, since the refactor replaced it).  They pin
the byte-identity acceptance criterion: the DAG runners must reproduce
these payloads exactly, cold or warm, at any worker count.  Do not
"modernise" this module — its value is that it does not change.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.deviation import deviation_analysis
from repro.analysis.forecasting import (
    ablation_grid,
    forecasting_feature_importances,
    long_run_forecast,
)
from repro.analysis.neighborhood import correlated_users_table, recovery_rate
from repro.apps.registry import DATASET_KEYS, get_application
from repro.campaign.datasets import seconds_to_date
from repro.experiments._forecast_common import (
    bench_forecaster,
    fast_forecaster,
    grid_summary,
)
from repro.experiments._mpi_breakdown import run_breakdowns
from repro.experiments.context import get_campaign, long_run_key
from repro.experiments.report import (
    ExperimentResult,
    ascii_bars,
    ascii_heatmap,
    ascii_series,
    ascii_table,
)
from repro.features import FeatureSpec
from repro.network.counters import APP_COUNTERS, COUNTER_SPECS
from repro.parallel import parallel_map


def run_table01(campaign=None, fast: bool = False) -> ExperimentResult:
    rows = []
    for key in DATASET_KEYS:
        app = get_application(key)
        name, version, nodes, params = app.table1_row()
        rows.append([name, version, nodes, params])
    text = ascii_table(
        ["Application", "Version", "No. of Nodes", "Input Parameters"], rows
    )
    return ExperimentResult(
        exp_id="table01",
        title="Application versions and their inputs (Table I)",
        data={"rows": rows},
        text=text,
    )


def run_table02(campaign=None, fast: bool = False) -> ExperimentResult:
    rows = [
        [s.name, s.abbreviation, s.description]
        for s in COUNTER_SPECS
    ]
    text = ascii_table(["Counter name", "Abbreviation", "Description"], rows)
    return ExperimentResult(
        exp_id="table02",
        title="Network hardware performance counters (Table II)",
        data={"rows": rows},
        text=text,
    )


def run_table03(campaign=None, fast: bool = False) -> ExperimentResult:
    camp = get_campaign(campaign, fast)
    table = correlated_users_table(camp)
    rows = []
    for key, users in table.items():
        app, nodes = key.rsplit("-", 1)
        pretty = ", ".join(u.replace("User-", "") for u in users)
        rows.append([app, nodes, f"User-[{pretty}]"])
    rate = recovery_rate(table, camp.ground_truth_aggressors)
    counts: dict[str, int] = {}
    for users in table.values():
        for u in users:
            counts[u] = counts.get(u, 0) + 1
    multi = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    text = (
        ascii_table(["Application", "No. of nodes", "Highly correlated users"], rows)
        + "\n\nUsers in most lists: "
        + ", ".join(f"{u} ({c})" for u, c in multi[:6])
        + f"\nGround-truth aggressor recovery rate: {rate:.0%}"
    )
    return ExperimentResult(
        exp_id="table03",
        title="Highly correlated users per dataset (Table III)",
        data={"table": table, "recovery_rate": rate, "list_counts": counts},
        text=text,
    )


def run_fig01(campaign=None, fast: bool = False) -> ExperimentResult:
    apps = ["AMG-128", "MILC-128", "miniVite-128", "UMT-128"]
    camp = get_campaign(campaign, fast)
    series: dict[str, dict[str, np.ndarray]] = {}
    rows = []
    blocks = []
    for key in apps:
        ds = camp[key]
        if len(ds) < 2:
            continue
        order = np.argsort(ds.start_times)
        t = ds.start_times[order]
        rel = ds.relative_performance()[order]
        series[key] = {"time": t, "relative": rel}
        rows.append(
            [
                key,
                len(ds),
                f"{rel.max():.2f}x",
                f"{np.median(rel):.2f}x",
                seconds_to_date(t[int(np.argmax(rel))]).strftime("%b %d"),
            ]
        )
        blocks.append(ascii_series(t, rel, label=f"{key} relative performance"))
    text = (
        ascii_table(
            ["Dataset", "Runs", "Worst/best", "Median", "Worst run date"], rows
        )
        + "\n\n"
        + "\n\n".join(blocks)
    )
    return ExperimentResult(
        exp_id="fig01",
        title="Relative performance vs best run over the campaign (Fig. 1)",
        data={"series": series, "rows": rows},
        text=text,
    )


def run_fig03(campaign=None, fast: bool = False) -> ExperimentResult:
    camp = get_campaign(campaign, fast)
    trends: dict[str, np.ndarray] = {}
    rows = []
    blocks = []
    for key in DATASET_KEYS:
        ds = camp[key]
        if len(ds) == 0:
            continue
        _, ym = ds.mean_trends()
        trends[key] = ym
        rows.append(
            [
                key,
                len(ym),
                f"{ym.mean():.2f}",
                f"{ym.min():.2f}",
                f"{ym.max():.2f}",
            ]
        )
        blocks.append(
            ascii_series(np.arange(len(ym)), ym, label=f"{key} mean time/step (s)")
        )
    text = (
        ascii_table(["Dataset", "Steps", "Mean (s)", "Min (s)", "Max (s)"], rows)
        + "\n\n"
        + "\n\n".join(blocks)
    )
    return ExperimentResult(
        exp_id="fig03",
        title="Mean time-per-step behaviour (Fig. 3)",
        data={"trends": trends},
        text=text,
    )


def run_fig04(campaign=None, fast: bool = False) -> ExperimentResult:
    camp = get_campaign(campaign, fast)
    data, text = run_breakdowns(camp, ["AMG-512", "MILC-512"])
    return ExperimentResult(
        exp_id="fig04",
        title="Compute/MPI split and routine breakdown, AMG & MILC @512 (Fig. 4)",
        data=data,
        text=text,
    )


def run_fig05(campaign=None, fast: bool = False) -> ExperimentResult:
    camp = get_campaign(campaign, fast)
    data, text = run_breakdowns(camp, ["miniVite-128", "UMT-128"])
    return ExperimentResult(
        exp_id="fig05",
        title="Compute/MPI split and routine breakdown, miniVite & UMT @128 (Fig. 5)",
        data=data,
        text=text,
    )


def run_fig07(campaign=None, fast: bool = False, key: str = "AMG-128") -> ExperimentResult:
    camp = get_campaign(campaign, fast)
    ds = camp[key]
    xm, ym = ds.mean_trends()
    rows = []
    corr = {}
    for i, name in enumerate(APP_COUNTERS):
        c = xm[:, i]
        if c.std() > 0 and ym.std() > 0:
            r = float(np.corrcoef(c, ym)[0, 1])
        else:
            r = 0.0
        corr[name] = r
        rows.append([name, f"{r:+.2f}", f"{c.mean():.3g}"])
    steps = np.arange(len(ym))
    blocks = [
        ascii_series(steps, ym, label=f"{key} mean time/step (s)"),
        ascii_series(
            steps,
            xm[:, APP_COUNTERS.index("RT_FLIT_TOT")],
            label="mean RT_FLIT_TOT per step",
        ),
        ascii_series(
            steps,
            xm[:, APP_COUNTERS.index("RT_RB_STL")],
            label="mean RT_RB_STL per step",
        ),
    ]
    text = (
        ascii_table(["Counter", "corr(mean trend, mean time)", "mean value"], rows)
        + "\n\n"
        + "\n\n".join(blocks)
    )
    return ExperimentResult(
        exp_id="fig07",
        title=f"Mean counter trends vs mean time trend, {key} (Fig. 7)",
        data={"correlations": corr, "time_trend": ym, "counter_trends": xm},
        text=text,
    )


def _dataset_relevance(ds, n_splits: int, max_samples: int):
    return deviation_analysis(ds, n_splits=n_splits, max_samples=max_samples)


def run_fig09(
    campaign=None, fast: bool = False, workers: int | None = None
) -> ExperimentResult:
    camp = get_campaign(campaign, fast)
    keys = [k for k in DATASET_KEYS if k in camp.keys() and len(camp[k]) >= 4]
    n_splits = 4 if fast else 10
    max_samples = 600 if fast else 2500
    tasks = [
        (camp[key], min(n_splits, len(camp[key])), max_samples) for key in keys
    ]
    analyses = parallel_map(_dataset_relevance, tasks, workers=workers)
    matrix = []
    mape_rows = []
    results = {}
    for key, res in zip(keys, analyses):
        results[key] = res
        matrix.append(res.relevance.scores)
        mape_rows.append(
            [key, f"{res.prediction_mape:.2f}%", ", ".join(res.top_counters(3))]
        )
    matrix = np.asarray(matrix)
    text = (
        ascii_heatmap(keys, APP_COUNTERS, matrix)
        + "\n\n"
        + ascii_table(["Dataset", "Prediction MAPE", "Top counters"], mape_rows)
    )
    return ExperimentResult(
        exp_id="fig09",
        title="Counter relevance for deviation prediction (Fig. 9)",
        data={
            "keys": keys,
            "counters": APP_COUNTERS,
            "scores": matrix,
            "mape": {k: results[k].prediction_mape for k in keys},
            "top": {k: results[k].top_counters(4) for k in keys},
        },
        text=text,
    )


def _forecast_grid(camp, keys, ms, ks, tiers, fast, workers=None):
    factory = fast_forecaster if fast else bench_forecaster
    n_splits = 2
    tier_specs = [FeatureSpec.resolve(t) for t in tiers]
    data: dict[str, list] = {}
    blocks = []
    for key in keys:
        ds = camp[key]
        t = ds.num_steps
        ms_ok = [m for m in ms if m + min(ks) < t]
        ks_ok = [k for k in ks if min(ms_ok, default=t) + k < t] if ms_ok else []
        if not ms_ok or not ks_ok:
            continue
        results = ablation_grid(
            ds,
            ms_ok,
            ks_ok,
            tier_specs,
            n_splits=n_splits,
            model_factory=factory,
            workers=workers,
        )
        data[key] = results
        rows = []
        for k in ks_ok:
            for m in ms_ok:
                cells = [r for r in results if r.m == m and r.k == k]
                rows.append(
                    [f"k={k}", f"m={m}"]
                    + [f"{r.mape:.2f}" for r in cells]
                )
        blocks.append(
            f"{key} (MAPE %, grouped {n_splits}-fold CV)\n"
            + ascii_table(["", ""] + tiers, rows)
        )
    return data, "\n\n".join(blocks)


def run_fig08(campaign=None, fast: bool = False) -> ExperimentResult:
    camp = get_campaign(campaign, fast)
    data, text = _forecast_grid(
        camp,
        keys=["AMG-128", "AMG-512"],
        ms=[3, 8],
        ks=[5, 10],
        tiers=["app", "app+placement"],
        fast=fast,
    )
    summary = grid_summary(data)
    return ExperimentResult(
        exp_id="fig08",
        title="Forecasting MAPE for AMG datasets (Fig. 8)",
        data={"grid": data, "summary": summary},
        text=text,
    )


def run_fig10(campaign=None, fast: bool = False) -> ExperimentResult:
    camp = get_campaign(campaign, fast)
    data, text = _forecast_grid(
        camp,
        keys=["MILC-128", "MILC-512"],
        ms=[10, 30],
        ks=[20, 40],
        tiers=[
            "app",
            "app+placement",
            "app+placement+io",
            "app+placement+io+sys",
        ],
        fast=fast,
    )
    summary = grid_summary(data)
    return ExperimentResult(
        exp_id="fig10",
        title="Forecasting MAPE for MILC datasets (Fig. 10)",
        data={"grid": data, "summary": summary},
        text=text,
    )


def run_fig11(campaign=None, fast: bool = False) -> ExperimentResult:
    panels = [
        ("AMG-128", 8, 10, "app+placement"),
        ("AMG-512", 8, 10, "app+placement"),
        ("MILC-128", 30, 40, "app+placement+io+sys"),
        ("MILC-512", 30, 40, "app+placement+io+sys"),
    ]
    camp = get_campaign(campaign, fast)
    factory = fast_forecaster if fast else bench_forecaster
    data = {}
    blocks = []
    for key, m, k, tier in panels:
        ds = camp[key]
        if ds.num_steps <= m + k:
            continue
        names, imp = forecasting_feature_importances(
            ds, m=m, k=k, tier=tier, model_factory=factory
        )
        data[key] = {"names": names, "importances": imp, "m": m, "k": k}
        top = names[int(np.argmax(imp))]
        blocks.append(
            f"{key} (m={m}, k={k}, {tier}; top: {top})\n"
            + ascii_bars(names, imp, fmt="{:.3f}")
        )
    return ExperimentResult(
        exp_id="fig11",
        title="Forecasting-model feature importances (Fig. 11)",
        data=data,
        text="\n\n".join(blocks),
    )


def run_fig12(campaign=None, fast: bool = False) -> ExperimentResult:
    camp = get_campaign(campaign, fast)
    lkey = long_run_key(camp)
    if lkey is None:
        raise RuntimeError("campaign has no long MILC run")
    long_run = camp[lkey].runs[0]
    train = camp["MILC-128"]
    t = len(long_run.step_times)
    k = 40 if t >= 200 else max(10, t // 8)
    m = 30 if train.num_steps > 30 + k else max(5, train.num_steps - k - 1)
    tier = "app+placement+io+sys"
    factory = fast_forecaster if fast else bench_forecaster
    res = long_run_forecast(
        train, long_run, m=m, k=k, tier=tier, model_factory=factory
    )
    rows = [
        [int(s), f"{o:.1f}", f"{p:.1f}", f"{100 * abs(o - p) / o:.1f}%"]
        for s, o, p in zip(res.segment_starts, res.observed, res.predicted)
    ]
    mid = res.segment_starts + k / 2
    text = (
        f"long run: {lkey} ({t} steps), segments of k={k}, context m={m}\n"
        + ascii_table(["Segment start", "Observed (s)", "Predicted (s)", "APE"], rows)
        + f"\n\nSegment MAPE: {res.mape:.2f}%\n\n"
        + ascii_series(mid, res.observed, label="observed time per segment (s)")
        + "\n"
        + ascii_series(mid, res.predicted, label="predicted time per segment (s)")
    )
    return ExperimentResult(
        exp_id="fig12",
        title="Forecasting 40-step segments of a 620-step MILC run (Fig. 12)",
        data={
            "segment_starts": res.segment_starts,
            "observed": res.observed,
            "predicted": res.predicted,
            "mape": res.mape,
            "m": m,
            "k": k,
        },
        text=text,
    )


LEGACY_DRIVERS = {
    "table01": run_table01,
    "table02": run_table02,
    "table03": run_table03,
    "fig01": run_fig01,
    "fig03": run_fig03,
    "fig04": run_fig04,
    "fig05": run_fig05,
    "fig07": run_fig07,
    "fig08": run_fig08,
    "fig09": run_fig09,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12": run_fig12,
}
