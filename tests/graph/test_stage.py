"""Stage fingerprints: what invalidates what, and graph construction."""

from __future__ import annotations

import pytest

from repro.graph import Graph, fn_path, resolve_fn, stage_fn


@stage_fn(version=1)
def produce(ctx):
    return ctx.params["value"]


@stage_fn(version=1)
def consume(ctx):
    return ctx.inputs["up"] * ctx.params.get("scale", 1)


@stage_fn(version=2)
def produce_v2(ctx):
    return ctx.params["value"]


def _chain(value=1, scale=1, dataset=None):
    g = Graph()
    g.add("a", produce, params={"value": value})
    g.add(
        "b",
        consume,
        params={"scale": scale},
        inputs=[("up", "a")],
        dataset=dataset,
    )
    return g


def test_fn_path_roundtrip():
    path = fn_path(produce)
    assert path == "tests.graph.test_stage:produce"
    assert resolve_fn(path) is produce


def test_fingerprints_are_deterministic():
    assert _chain().fingerprints(None) == _chain().fingerprints(None)


def test_param_change_invalidates_stage_and_cascades():
    base = _chain(value=1).fingerprints(None)
    changed = _chain(value=2).fingerprints(None)
    assert base["a"] != changed["a"]
    assert base["b"] != changed["b"]  # downstream cone invalidated


def test_downstream_param_change_does_not_touch_upstream():
    base = _chain(scale=1).fingerprints(None)
    changed = _chain(scale=3).fingerprints(None)
    assert base["a"] == changed["a"]
    assert base["b"] != changed["b"]


def test_code_version_bump_invalidates():
    g1, g2 = Graph(), Graph()
    g1.add("a", produce, params={"value": 1})
    g2.add("a", produce_v2, params={"value": 1})
    assert g1.fingerprints(None)["a"] != g2.fingerprints(None)["a"]


def test_campaign_fingerprint_binds_dataset_stages_only():
    fp1 = _chain(dataset="MILC-128").fingerprints("campA")
    fp2 = _chain(dataset="MILC-128").fingerprints("campB")
    assert fp1["a"] == fp2["a"]  # campaign-free stage is campaign-blind
    assert fp1["b"] != fp2["b"]  # dataset-bound stage folds the campaign in


def test_different_dataset_different_fingerprint():
    fp1 = _chain(dataset="MILC-128").fingerprints("camp")
    fp2 = _chain(dataset="AMG-128").fingerprints("camp")
    assert fp1["b"] != fp2["b"]


def test_identical_readd_is_shared_conflicting_readd_raises():
    g = _chain()
    g.add("a", produce, params={"value": 1})  # no-op: same definition
    assert len(g.stages) == 2
    with pytest.raises(ValueError, match="conflicting definitions"):
        g.add("a", produce, params={"value": 99})


def test_unknown_input_rejected():
    g = Graph()
    with pytest.raises(ValueError, match="unknown"):
        g.add("b", consume, inputs=[("up", "ghost")])


def test_campaign_stages_run_locally():
    g = Graph()
    g.add("a", produce, params={"value": 1}, campaign=True)
    assert g.stages["a"].local
