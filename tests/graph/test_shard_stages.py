"""Shard-scoped stage addressing: fingerprints, counters, append reuse."""

from __future__ import annotations

from repro.graph import ArtifactStore, Graph, GraphRunner, render_plan, stage_fn
from repro.obs import METRICS


@stage_fn(version=1)
def shard_body(ctx):
    return ctx.params["value"]


@stage_fn(version=1)
def reduce_body(ctx):
    return sum(ctx.inputs.values())


def _graph(shards, campaign_fp="campaignfp000000"):
    g = Graph()
    names = []
    for i, fp in enumerate(shards):
        names.append(
            g.add(
                f"shard{i}",
                shard_body,
                params={"value": i},
                dataset="AMG-128",
                shard=fp,
            )
        )
    g.add("reduce", reduce_body, inputs=[(n, n) for n in names])
    return g


def test_shard_replaces_campaign_in_fingerprint():
    """Shard stages must not move when the stream fingerprint does."""
    g = _graph(["shardA000000000"])
    a = g.fingerprints("stream-one")
    b = g.fingerprints("stream-two")
    assert a["shard0"] == b["shard0"]
    # ... while an ordinary dataset-bound stage does move.
    g2 = Graph()
    g2.add("plain", shard_body, params={"value": 0}, dataset="AMG-128")
    assert (
        g2.fingerprints("stream-one")["plain"]
        != g2.fingerprints("stream-two")["plain"]
    )


def test_shardless_fingerprints_unchanged_by_the_field():
    """The shard field is absent from ordinary payloads: pre-streaming
    fingerprints (and every stored artifact) stay valid."""
    g = Graph()
    g.add("plain", shard_body, params={"value": 0}, dataset="AMG-128")
    fp = g.fingerprints("campaignfp000000")["plain"]
    # Golden value pinned at introduction of the shard field; a change
    # here means every pre-streaming artifact went stale.
    assert g.stages["plain"].shard == ()
    g2 = Graph()
    g2.add("plain", shard_body, params={"value": 0}, dataset="AMG-128",
           shard=None)
    assert g2.fingerprints("campaignfp000000")["plain"] == fp


def test_distinct_shards_get_distinct_fingerprints():
    g = _graph(["shardA000000000", "shardB000000000"])
    fps = g.fingerprints(None)
    assert fps["shard0"] != fps["shard1"]


def test_shard_accepts_string_or_tuple():
    g = Graph()
    a = g.add("a", shard_body, params={"value": 0}, shard="s1")
    b = g.add("b", shard_body, params={"value": 0}, shard=("s1", "s2"))
    assert g.stages[a].shard == ("s1",)
    assert g.stages[b].shard == ("s1", "s2")


def test_render_plan_tags_and_summarises_shards():
    g = _graph(["shardA000000000", "shardB000000000"])
    runner = GraphRunner(
        g, store=ArtifactStore(enabled=False), campaign_fingerprint=None
    )
    text = render_plan(runner.plan())
    assert "shard=shardA000000000" in text
    assert "2 shard-scoped:" in text
    g0 = Graph()
    g0.add("plain", shard_body, params={"value": 1})
    runner0 = GraphRunner(
        g0, store=ArtifactStore(enabled=False), campaign_fingerprint=None
    )
    assert "shard-scoped" not in render_plan(runner0.plan())


class _Camp:
    def __getitem__(self, key):
        return None


def test_append_hits_existing_shards_and_counts(tmp_path):
    """Simulated append: old shard stages hit, only the new one runs."""
    store = ArtifactStore(root=tmp_path, enabled=True)
    hit = METRICS.counter("graph.shard.hit")
    miss = METRICS.counter("graph.shard.miss")
    run = METRICS.counter("graph.shard.run")

    h0, m0, r0 = hit.value, miss.value, run.value
    g2 = _graph(["shardA000000000", "shardB000000000"])
    out = GraphRunner(
        g2, store=store, campaign_fingerprint="stream-two",
        campaign=lambda: _Camp(),
    ).run(["reduce"])
    assert out["reduce"] == 1
    assert (hit.value - h0, miss.value - m0, run.value - r0) == (0, 2, 2)

    h0, m0, r0 = hit.value, miss.value, run.value
    g3 = _graph(
        ["shardA000000000", "shardB000000000", "shardC000000000"]
    )
    out = GraphRunner(
        g3, store=store, campaign_fingerprint="stream-three",
        campaign=lambda: _Camp(),
    ).run(["reduce"])
    assert out["reduce"] == 3
    # Two stored shards load, the appended shard is the only miss/run.
    assert (hit.value - h0, miss.value - m0, run.value - r0) == (2, 1, 1)
