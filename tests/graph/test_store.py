"""ArtifactStore: roundtrip, corruption, concurrency, and the toggle."""

from __future__ import annotations

import subprocess
import sys

import numpy as np
import pytest

from repro.graph import MISS, ArtifactStore


@pytest.fixture()
def store(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_ARTIFACT_CACHE", "1")
    return ArtifactStore(root=tmp_path / "artifacts")


def test_roundtrip_preserves_bytes(store):
    payload = {"x": np.arange(12.0).reshape(3, 4), "names": ["a", "b"]}
    store.save("grp", "abc123", payload)
    assert store.has("grp", "abc123")
    loaded = store.load("grp", "abc123")
    assert loaded["x"].tobytes() == payload["x"].tobytes()
    assert loaded["names"] == payload["names"]


def test_none_is_a_value_not_a_miss(store):
    store.save("grp", "feedbeef", None)
    assert store.load("grp", "feedbeef") is None
    assert store.load("grp", "0000000000000000") is MISS


def test_corrupt_entry_is_warned_discarded_and_recomputed(store):
    store.save("grp", "abc123", [1, 2, 3])
    path = store.path("grp", "abc123")

    data = bytearray(path.read_bytes())
    data[-1] ^= 0xFF  # flip a payload bit: digest check must fail
    path.write_bytes(bytes(data))

    with pytest.warns(RuntimeWarning, match="discarding corrupt artifact"):
        assert store.load("grp", "abc123") is MISS
    assert not path.exists()  # discarded: the next save replaces it
    store.save("grp", "abc123", [1, 2, 3])
    assert store.load("grp", "abc123") == [1, 2, 3]


def test_truncated_entry_is_a_miss(store):
    store.save("grp", "abc123", list(range(100)))
    path = store.path("grp", "abc123")
    path.write_bytes(path.read_bytes()[:40])
    with pytest.warns(RuntimeWarning):
        assert store.load("grp", "abc123") is MISS


def test_garbage_header_is_a_miss(store):
    path = store.path("grp", "abc123")
    path.parent.mkdir(parents=True)
    path.write_bytes(b"not an artifact at all")
    with pytest.warns(RuntimeWarning):
        assert store.load("grp", "abc123") is MISS


def test_disabled_store_never_reads_or_writes(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_ARTIFACT_CACHE", "0")
    store = ArtifactStore(root=tmp_path / "artifacts")
    assert not store.enabled
    store.save("grp", "abc123", [1])
    assert not store.has("grp", "abc123")
    assert store.load("grp", "abc123") is MISS
    assert not (tmp_path / "artifacts").exists()

    # An entry written by an enabled store is invisible to a disabled one.
    enabled = ArtifactStore(root=tmp_path / "artifacts", enabled=True)
    enabled.save("grp", "abc123", [1])
    assert store.load("grp", "abc123") is MISS


_WRITER = """
import pickle, sys
from repro.graph import ArtifactStore

root, tag = sys.argv[1], sys.argv[2]
store = ArtifactStore(root=root, enabled=True)
for i in range(25):
    store.save("grp", "abc123", {"tag": tag, "i": i, "pad": list(range(500))})
"""


def test_concurrent_writers_never_corrupt(store, tmp_path):
    """Two processes hammering one entry: readers see complete values only."""
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", _WRITER, str(store.root), tag],
            stderr=subprocess.PIPE,
        )
        for tag in ("a", "b")
    ]
    # Read concurrently while both writers race.
    seen = []
    while any(p.poll() is None for p in procs):
        value = store.load("grp", "abc123")
        if value is not MISS:
            seen.append(value)
    for p in procs:
        assert p.wait() == 0, p.stderr.read().decode()

    final = store.load("grp", "abc123")
    for value in seen + [final]:
        assert value["tag"] in ("a", "b")
        assert value["pad"] == list(range(500))
    leftovers = [p for p in store.root.rglob("*.tmp*")]
    assert not leftovers


def test_write_failure_degrades_to_warning(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_ARTIFACT_CACHE", "1")
    root = tmp_path / "artifacts"
    root.write_text("a file where the store root should be")
    store = ArtifactStore(root=root)
    with pytest.warns(RuntimeWarning, match="artifact write failed"):
        assert store.save("grp", "abc123", [1]) is False
    assert store.load("grp", "abc123") is MISS
