"""Acceptance: the DAG runners reproduce the pre-refactor payloads.

Every experiment id is compared against its frozen legacy driver
(:mod:`tests.graph.legacy_drivers`) on the shared tiny campaign —
byte-identical ``ExperimentResult`` payloads cold, warm (served from the
artifact store, i.e. through a pickle roundtrip), and under a worker
pool.  The warm pass must execute zero stages.
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass

import numpy as np
import pytest

from repro.experiments import run_experiments
from repro.obs import METRICS
from tests.graph.legacy_drivers import LEGACY_DRIVERS

EXP_IDS = list(LEGACY_DRIVERS)

pytestmark = pytest.mark.artifact_cache


def deep_equal(a, b, path="") -> None:
    """Assert byte-identical payloads, recursing with a readable path."""
    assert type(a) is type(b) or (
        is_dataclass(a) and is_dataclass(b) and type(a).__name__ == type(b).__name__
    ), f"{path}: {type(a)} != {type(b)}"
    if isinstance(a, np.ndarray):
        assert a.dtype == b.dtype and a.shape == b.shape, path
        assert a.tobytes() == b.tobytes(), f"{path}: array bytes differ"
    elif is_dataclass(a) and not isinstance(a, type):
        for f in fields(a):
            deep_equal(getattr(a, f.name), getattr(b, f.name), f"{path}.{f.name}")
    elif isinstance(a, dict):
        assert list(a) == list(b), f"{path}: keys/order differ"
        for k in a:
            deep_equal(a[k], b[k], f"{path}[{k!r}]")
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), f"{path}: length differs"
        for i, (x, y) in enumerate(zip(a, b)):
            deep_equal(x, y, f"{path}[{i}]")
    else:
        assert a == b, f"{path}: {a!r} != {b!r}"


@pytest.fixture(scope="module")
def graph_env(tmp_path_factory):
    """Module-scoped: artifact cache ON against a private cache dir."""
    mp = pytest.MonkeyPatch()
    mp.setenv("REPRO_ARTIFACT_CACHE", "1")
    mp.setenv("REPRO_CACHE_DIR", str(tmp_path_factory.mktemp("graph_cache")))
    yield
    mp.undo()


@pytest.fixture(scope="module")
def legacy(graph_env, tiny_campaign):
    return {
        exp_id: fn(campaign=tiny_campaign, fast=True)
        for exp_id, fn in LEGACY_DRIVERS.items()
    }


@pytest.fixture(scope="module")
def cold(graph_env, tiny_campaign):
    return run_experiments(EXP_IDS, campaign=tiny_campaign, fast=True)


@pytest.mark.parametrize("exp_id", EXP_IDS)
def test_cold_run_matches_legacy_driver(cold, legacy, exp_id):
    deep_equal(cold[exp_id], legacy[exp_id], exp_id)


def test_warm_run_matches_and_executes_zero_stages(
    graph_env, tiny_campaign, cold, legacy
):
    ran_before = METRICS.counter("graph.stage.run").value
    warm = run_experiments(EXP_IDS, campaign=tiny_campaign, fast=True)
    assert METRICS.counter("graph.stage.run").value == ran_before, (
        "warm second pass recomputed a stage"
    )
    for exp_id in EXP_IDS:
        deep_equal(warm[exp_id], legacy[exp_id], f"warm:{exp_id}")


@pytest.mark.parametrize("workers", [0, 4])
def test_worker_pool_matches_legacy(graph_env, tiny_campaign, legacy, workers):
    """A forced parallel run (fresh compute, any fan-out) changes nothing."""
    results = run_experiments(
        ["fig09", "fig08"],
        campaign=tiny_campaign,
        fast=True,
        workers=workers,
        force=True,
    )
    deep_equal(results["fig09"], legacy["fig09"], f"w{workers}:fig09")
    deep_equal(results["fig08"], legacy["fig08"], f"w{workers}:fig08")
