"""GraphRunner: memoization, invalidation, planning, and worker parity.

The stage bodies below log executions to an on-disk journal (not a
global, so pool workers are counted too), which is what the warm-run
"zero recompute" assertions read.
"""

from __future__ import annotations

import os

import pytest

from repro.graph import ArtifactStore, Graph, GraphRunner, render_plan, stage_fn
from repro.obs import METRICS
from repro.parallel import shutdown_pool

_JOURNAL_ENV = "REPRO_TEST_STAGE_JOURNAL"


def _journal(name: str) -> None:
    path = os.environ.get(_JOURNAL_ENV)
    if path:
        with open(path, "a") as fh:
            fh.write(name + "\n")


@stage_fn(version=1)
def source(ctx):
    _journal(f"source:{ctx.params['value']}")
    return ctx.params["value"]


@stage_fn(version=1)
def double(ctx):
    _journal("double")
    return ctx.inputs["up"] * 2


@stage_fn(version=1)
def add(ctx):
    _journal("add")
    return ctx.inputs["left"] + ctx.inputs["right"]


def _graph(value=10):
    g = Graph()
    g.add("src", source, params={"value": value})
    g.add("dbl", double, inputs=[("up", "src")])
    g.add("sum", add, inputs=[("left", "src"), ("right", "dbl")])
    return g


@pytest.fixture()
def env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_ARTIFACT_CACHE", "1")
    journal = tmp_path / "journal.txt"
    monkeypatch.setenv(_JOURNAL_ENV, str(journal))

    def runs():
        return journal.read_text().splitlines() if journal.exists() else []

    store = ArtifactStore(root=tmp_path / "artifacts")
    # A pool left over from an earlier test predates the journal env var,
    # so its workers would execute stages invisibly; spawn fresh both ways.
    shutdown_pool()
    yield store, runs
    shutdown_pool()


def test_cold_run_computes_and_stores(env):
    store, runs = env
    runner = GraphRunner(_graph(), store=store, campaign_fingerprint=None)
    values = runner.run(["sum"])
    assert values == {"sum": 30}
    assert sorted(runs()) == ["add", "double", "source:10"]
    assert all(p.status == "hit" for p in runner.plan())


def test_warm_run_executes_nothing(env):
    store, runs = env
    GraphRunner(_graph(), store=store, campaign_fingerprint=None).run(["sum"])
    before = len(runs())
    run_counter = METRICS.counter("graph.stage.run").value

    values = GraphRunner(_graph(), store=store, campaign_fingerprint=None).run(
        ["sum"]
    )
    assert values == {"sum": 30}
    assert len(runs()) == before, "warm run re-executed a stage"
    assert METRICS.counter("graph.stage.run").value == run_counter


def test_upstream_config_change_invalidates_exactly_the_cone(env):
    store, runs = env
    GraphRunner(_graph(10), store=store, campaign_fingerprint=None).run(["sum"])
    before = len(runs())

    values = GraphRunner(_graph(11), store=store, campaign_fingerprint=None).run(
        ["sum"]
    )
    assert values == {"sum": 33}
    assert sorted(runs()[before:]) == ["add", "double", "source:11"]

    # And the old cone is still warm: flipping back recomputes nothing.
    GraphRunner(_graph(10), store=store, campaign_fingerprint=None).run(["sum"])
    assert len(runs()) == before + 3


def test_hit_stops_the_upstream_walk(env):
    store, runs = env
    GraphRunner(_graph(), store=store, campaign_fingerprint=None).run(["dbl"])
    os.remove(store.path("source", _fp(store, "src")))
    before = len(runs())
    # dbl is stored, so src's missing artifact must never be noticed.
    values = GraphRunner(_graph(), store=store, campaign_fingerprint=None).run(
        ["dbl"]
    )
    assert values == {"dbl": 20}
    assert len(runs()) == before


def test_corrupt_artifact_recomputes_through_the_walk(env):
    store, runs = env
    GraphRunner(_graph(), store=store, campaign_fingerprint=None).run(["sum"])
    path = store.path("add", _fp(store, "sum"))
    data = bytearray(path.read_bytes())
    data[-1] ^= 0xFF
    path.write_bytes(bytes(data))
    before = len(runs())

    with pytest.warns(RuntimeWarning, match="discarding corrupt artifact"):
        values = GraphRunner(
            _graph(), store=store, campaign_fingerprint=None
        ).run(["sum"])
    assert values == {"sum": 30}
    # Only the corrupted stage reran; its inputs were served from disk.
    assert runs()[before:] == ["add"]


def test_force_reruns_everything(env):
    store, runs = env
    GraphRunner(_graph(), store=store, campaign_fingerprint=None).run(["sum"])
    before = len(runs())
    GraphRunner(
        _graph(), store=store, campaign_fingerprint=None, force=True
    ).run(["sum"])
    assert sorted(runs()[before:]) == ["add", "double", "source:10"]


def test_disabled_store_runs_everything_every_time(env, monkeypatch):
    monkeypatch.setenv("REPRO_ARTIFACT_CACHE", "0")
    store, runs = env
    disabled = ArtifactStore(root=store.root)
    for _ in range(2):
        values = GraphRunner(
            _graph(), store=disabled, campaign_fingerprint=None
        ).run(["sum"])
        assert values == {"sum": 30}
    assert len(runs()) == 6
    assert all(p.status == "run" for p in _plan(disabled))


def test_unknown_target_rejected(env):
    store, _ = env
    runner = GraphRunner(_graph(), store=store, campaign_fingerprint=None)
    with pytest.raises(KeyError, match="unknown stage"):
        runner.run(["nope"])


def test_plan_rendering_shows_status_and_summary(env):
    store, _ = env
    runner = GraphRunner(_graph(), store=store, campaign_fingerprint=None)
    out = render_plan(runner.plan())
    assert "[miss]" in out
    assert "3 stages: 3 miss" in out

    runner.run(["sum"])
    out = render_plan(
        GraphRunner(_graph(), store=store, campaign_fingerprint=None).plan()
    )
    assert "[hit ]" in out
    assert "3 stages: 3 hit" in out


@pytest.mark.parametrize("workers", [1, 4])
def test_worker_count_never_changes_values(env, workers):
    store, runs = env
    values = GraphRunner(
        _graph(), store=store, campaign_fingerprint=None, workers=workers
    ).run(["sum", "dbl"])
    assert values == {"sum": 30, "dbl": 20}
    assert sorted(runs()) == ["add", "double", "source:10"]


def test_campaign_provider_only_called_when_needed(env):
    store, _ = env

    def provider():
        raise AssertionError("warm run materialised the campaign")

    g = _graph()
    GraphRunner(g, store=store, campaign_fingerprint="camp").run(["sum"])
    # Fully warm: the provider must never fire.
    values = GraphRunner(
        g, store=store, campaign_fingerprint="camp", campaign=provider
    ).run(["sum"])
    assert values == {"sum": 30}


def _fp(store, name):
    # Helper: recompute the graph's fingerprint table for path lookups.
    return _graph().fingerprints(None)[name]


def _plan(store):
    return GraphRunner(_graph(), store=store, campaign_fingerprint=None).plan()


def test_cell_qualified_counters(env):
    store, _ = env
    base_run = METRICS.counter("graph.stage.run").value
    cell_run = METRICS.counter("graph.stage.run[df+/valiant]").value
    GraphRunner(
        _graph(), store=store, campaign_fingerprint=None, cell="df+/valiant"
    ).run(["sum"])
    assert METRICS.counter("graph.stage.run").value == base_run + 3
    assert (
        METRICS.counter("graph.stage.run[df+/valiant]").value == cell_run + 3
    )

    # Warm: the target itself hits and stops the upstream walk.
    cell_hit = METRICS.counter("graph.stage.hit[df+/valiant]").value
    GraphRunner(
        _graph(), store=store, campaign_fingerprint=None, cell="df+/valiant"
    ).run(["sum"])
    assert (
        METRICS.counter("graph.stage.hit[df+/valiant]").value == cell_hit + 1
    )


def test_no_cell_counters_without_cell(env):
    store, _ = env
    before = {
        k: v for k, v in METRICS.snapshot().items() if "[" in k
    }
    GraphRunner(_graph(), store=store, campaign_fingerprint=None).run(["sum"])
    after = {k: v for k, v in METRICS.snapshot().items() if "[" in k}
    assert after == before
