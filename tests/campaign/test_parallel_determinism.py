"""Parallel campaign generation is bit-identical to serial, and fails clean.

The whole point of the worker pool (`repro.campaign.parallel`) is that it
is *invisible* in the data: every random draw is tied to a
``(job_id[, step])``-labelled stream, so worker count, chunking, and
completion order cannot perturb anything.  These tests enforce that
contract exactly (``assert_array_equal``, not ``allclose``), plus the
failure mode: a dying worker must surface as a clean
:class:`CampaignWorkerError`, never a hang or a silently partial campaign.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaign.parallel import CampaignWorkerError, chunked
from repro.campaign.runner import CampaignConfig, CampaignRunner
from repro.config import resolve_workers

#: Per-run arrays that must match bitwise between worker counts.
RUN_ARRAYS = ("step_times", "compute_times", "mpi_times", "counters", "ldms")


def _cfg(**overrides) -> CampaignConfig:
    return CampaignConfig.tiny(
        use_cache=False, days=2.0, long_runs=(), **overrides
    )


def _assert_identical(a, b) -> None:
    assert set(a.keys()) == set(b.keys())
    for key in a.keys():
        da, db = a[key], b[key]
        assert len(da) == len(db)
        for ra, rb in zip(da.runs, db.runs):
            for name in RUN_ARRAYS:
                np.testing.assert_array_equal(
                    getattr(ra, name), getattr(rb, name), err_msg=f"{key}.{name}"
                )
            assert ra.start_time == rb.start_time
            assert (ra.num_routers, ra.num_groups) == (rb.num_routers, rb.num_groups)
            assert ra.neighborhood == rb.neighborhood
            assert ra.routine_times == rb.routine_times
    assert a.ground_truth_aggressors == b.ground_truth_aggressors


@pytest.fixture(scope="module")
def serial_campaign():
    return CampaignRunner(_cfg(workers=1)).run()


def test_workers4_bit_identical(serial_campaign):
    parallel = CampaignRunner(_cfg(workers=4)).run()
    _assert_identical(serial_campaign, parallel)


def test_env_override_bit_identical(serial_campaign, monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "2")
    parallel = CampaignRunner(_cfg()).run()
    _assert_identical(serial_campaign, parallel)


def test_worker_crash_is_clean_error(monkeypatch):
    """A worker dying mid-solve raises CampaignWorkerError, not a hang."""
    monkeypatch.setenv("REPRO_TEST_WORKER_CRASH", "1")
    with pytest.raises(CampaignWorkerError):
        CampaignRunner(_cfg(workers=2)).run()


def test_crash_hook_ignored_in_process(monkeypatch):
    """The crash hook only fires in subprocess workers: workers=1 is the
    in-process reference path and must be unaffected."""
    monkeypatch.setenv("REPRO_TEST_WORKER_CRASH", "1")
    camp = CampaignRunner(_cfg(workers=1)).run()
    assert len(camp["MILC-128"]) >= 1


def test_workers_not_in_fingerprint():
    # Output is worker-independent, so the cache key must be too.
    assert _cfg(workers=1).fingerprint() == _cfg(workers=8).fingerprint()
    assert _cfg(workers=None).fingerprint() == _cfg(workers=4).fingerprint()


def test_resolve_workers(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert resolve_workers(None) == 1
    assert resolve_workers(3) == 3
    assert resolve_workers(0) >= 1  # "all cores"
    monkeypatch.setenv("REPRO_WORKERS", "5")
    assert resolve_workers(None) == 5
    assert resolve_workers(2) == 5  # env wins over config
    monkeypatch.setenv("REPRO_WORKERS", "not-a-number")
    with pytest.raises(ValueError):
        resolve_workers()


def test_chunked():
    assert chunked([], 4) == []
    assert chunked([1, 2, 3, 4, 5], 2) == [[1, 2, 3], [4, 5]]
    flat = [x for chunk in chunked(list(range(17)), 4) for x in chunk]
    assert flat == list(range(17))  # order preserved, nothing lost
    assert chunked([1], 0) == [[1]]
