"""The hardened ``.repro_cache`` layer: atomicity, corruption, locking.

The cache is hammered by concurrent users (parallel generation, pytest
and a benchmark run racing on one fingerprint), so the failure contract
is: a reader sees a complete entry or a miss — never a crash, never a
half-written campaign presented as data.
"""

from __future__ import annotations

import json
import multiprocessing
import warnings

import numpy as np
import pytest

from repro.campaign.datasets import (
    CACHE_FORMAT_VERSION,
    Campaign,
    FileLock,
    RunDataset,
    RunRecord,
)
from repro.campaign.runner import CampaignConfig, run_campaign


def _toy_campaign(scale: float = 1.0, n_runs: int = 3, n_steps: int = 5) -> Campaign:
    rng = np.random.default_rng(7)
    runs = []
    for i in range(n_runs):
        comp = scale * rng.uniform(1.0, 2.0, n_steps)
        mpi = scale * rng.uniform(0.5, 1.0, n_steps)
        runs.append(
            RunRecord(
                run_index=i,
                start_time=3600.0 * i,
                step_times=comp + mpi,
                compute_times=comp,
                mpi_times=mpi,
                counters=rng.uniform(size=(n_steps, 13)),
                ldms=rng.uniform(size=(n_steps, 8)),
                num_routers=32,
                num_groups=4,
                neighborhood=[f"User-{i}", "User-9"],
                routine_times={"MPI_Allreduce": float(mpi.sum())},
            )
        )
    return Campaign(
        datasets={"TOY-128": RunDataset(key="TOY-128", runs=runs)},
        ground_truth_aggressors=["User-9"],
    )


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    return tmp_path


def test_roundtrip(cache_dir):
    camp = _toy_campaign()
    camp.save("toyfp")
    loaded = Campaign.load("toyfp")
    assert loaded is not None
    assert loaded.keys() == ["TOY-128"]
    np.testing.assert_array_equal(loaded["TOY-128"].Y, camp["TOY-128"].Y)
    np.testing.assert_array_equal(loaded["TOY-128"].ldms, camp["TOY-128"].ldms)
    assert [r.neighborhood for r in loaded["TOY-128"].runs] == [
        r.neighborhood for r in camp["TOY-128"].runs
    ]
    assert loaded.ground_truth_aggressors == ["User-9"]


def test_no_temp_files_left_behind(cache_dir):
    _toy_campaign().save("toyfp")
    leftovers = [p for p in cache_dir.rglob("*") if ".tmp" in p.name]
    assert leftovers == []


def test_truncated_npz_is_a_warned_miss(cache_dir):
    _toy_campaign().save("toyfp")
    npz = cache_dir / "toyfp" / "TOY-128.npz"
    npz.write_bytes(npz.read_bytes()[: npz.stat().st_size // 2])
    with pytest.warns(RuntimeWarning, match="corrupt campaign cache entry"):
        assert Campaign.load("toyfp") is None


def test_garbled_meta_json_is_a_warned_miss(cache_dir):
    _toy_campaign().save("toyfp")
    (cache_dir / "toyfp" / "TOY-128.json").write_text("{not json")
    with pytest.warns(RuntimeWarning, match="corrupt campaign cache entry"):
        assert Campaign.load("toyfp") is None


def test_garbled_manifest_is_a_warned_miss(cache_dir):
    _toy_campaign().save("toyfp")
    (cache_dir / "toyfp" / "campaign.json").write_text("\x00garbage")
    with pytest.warns(RuntimeWarning):
        assert Campaign.load("toyfp") is None


def test_format_version_mismatch_is_a_silent_miss(cache_dir):
    _toy_campaign().save("toyfp")
    manifest = cache_dir / "toyfp" / "campaign.json"
    meta = json.loads(manifest.read_text())
    assert meta["format"] == CACHE_FORMAT_VERSION
    meta["format"] = 0
    manifest.write_text(json.dumps(meta))
    # An old-format entry is expected after an upgrade: miss, no warning.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert Campaign.load("toyfp") is None


def test_format_version_folded_into_fingerprint(monkeypatch):
    cfg = CampaignConfig.tiny()
    before = cfg.fingerprint()
    monkeypatch.setattr("repro.campaign.runner.CACHE_FORMAT_VERSION", 999)
    assert cfg.fingerprint() != before


def test_file_lock_excludes(tmp_path):
    path = tmp_path / "x.lock"
    first = FileLock(path)
    assert first.acquire()
    second = FileLock(path)
    assert second.acquire(blocking=False) is False
    first.release()
    assert second.acquire(blocking=False) is True
    second.release()


def _racing_saver(cache_dir: str, scale: float) -> None:
    import os

    os.environ["REPRO_CACHE_DIR"] = cache_dir
    _toy_campaign(scale=scale).save("racefp")


def test_concurrent_savers_leave_a_valid_entry(cache_dir):
    """Two processes saving the same fingerprint serialise on the lock:
    whatever wins, the entry loads cleanly and matches one of them."""
    ctx = multiprocessing.get_context("fork")
    procs = [
        ctx.Process(target=_racing_saver, args=(str(cache_dir), scale))
        for scale in (1.0, 2.0)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # a corrupt entry would warn
        loaded = Campaign.load("racefp")
    assert loaded is not None
    candidates = [_toy_campaign(scale=s)["TOY-128"].Y for s in (1.0, 2.0)]
    assert any(np.array_equal(loaded["TOY-128"].Y, c) for c in candidates)


def test_corrupt_entry_regenerates_via_run_campaign(cache_dir):
    cfg = CampaignConfig.tiny(days=2.0, long_runs=(), use_cache=True)
    first = run_campaign(cfg)
    root = cache_dir / cfg.fingerprint()
    assert (root / "campaign.json").exists()
    npz = root / "MILC-128.npz"
    npz.write_bytes(npz.read_bytes()[:64])
    with pytest.warns(RuntimeWarning, match="corrupt campaign cache entry"):
        second = run_campaign(cfg)
    np.testing.assert_array_equal(first["MILC-128"].Y, second["MILC-128"].Y)
    # The regeneration also repaired the cache entry.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert Campaign.load(cfg.fingerprint()) is not None
