"""The (topology, routing) campaign axis: config, fingerprints, engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaign.runner import CampaignConfig
from repro.campaign.validate import validate_axis
from repro.network.engine import CongestionEngine, RoutingPolicy
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.registry import DEFAULT_CELL
from repro.topology.routing import AdaptiveRouter


def test_validate_axis_canonicalises():
    assert validate_axis("df", "adaptive") == ("dragonfly", "ugal")
    assert validate_axis("dfplus", "val") == ("df+", "valiant")


def test_validate_axis_rejects_unknown_with_options():
    with pytest.raises(ValueError, match="registered topologies"):
        validate_axis("torus", "ugal")
    with pytest.raises(ValueError, match="registered policies"):
        validate_axis("dragonfly", "ecmp")


def test_config_canonicalises_cell():
    cfg = CampaignConfig.tiny(topology="XC", routing="Adaptive")
    assert cfg.cell == DEFAULT_CELL
    assert cfg.cell_id == "dragonfly/ugal"
    with pytest.raises(ValueError):
        CampaignConfig.tiny(topology="torus")
    with pytest.raises(ValueError):
        CampaignConfig.tiny(routing="ecmp")


def test_default_cell_fingerprint_unchanged_by_axis():
    """The axis must not invalidate pre-axis caches for the default cell."""
    base = CampaignConfig.tiny().fingerprint()
    assert CampaignConfig.tiny(topology="dragonfly", routing="ugal").fingerprint() == base
    assert CampaignConfig.tiny(topology="aries", routing="adaptive").fingerprint() == base


def test_non_default_cells_fingerprint_distinct():
    fps = {
        CampaignConfig.tiny(topology=t, routing=r).fingerprint()
        for t in ("dragonfly", "df+")
        for r in ("ugal", "minimal", "valiant")
    }
    assert len(fps) == 6
    # Aliases land on the canonical fingerprint.
    assert (
        CampaignConfig.tiny(topology="dfplus", routing="val").fingerprint()
        == CampaignConfig.tiny(topology="df+", routing="valiant").fingerprint()
    )


def test_engine_default_matches_legacy(tiny_topo):
    """Registry-driven construction reproduces the pre-axis engine."""
    eng = CongestionEngine(tiny_topo)
    assert eng.policy is RoutingPolicy.ADAPTIVE
    assert eng.policy_name == "ugal"
    assert not eng.pinned
    assert isinstance(eng.router, AdaptiveRouter)
    legacy = CongestionEngine(tiny_topo, router=AdaptiveRouter(tiny_topo))
    assert eng.alpha0 == legacy.alpha0
    assert eng.ugal_gain == legacy.ugal_gain
    assert eng.iterations == legacy.iterations


def test_engine_accepts_enum_and_name(tiny_topo):
    by_enum = CongestionEngine(tiny_topo, policy=RoutingPolicy.MINIMAL)
    by_name = CongestionEngine(tiny_topo, policy="minimal")
    by_alias = CongestionEngine(tiny_topo, policy="min")
    for eng in (by_enum, by_name, by_alias):
        assert eng.policy is RoutingPolicy.MINIMAL
        assert eng.pinned and eng.alpha0 == 1.0 and eng.ugal_gain == 0.0


def test_runner_builds_cell_topology():
    from repro.campaign.runner import CampaignRunner
    from repro.topology.dragonfly_plus import DragonflyPlusTopology

    runner = CampaignRunner(CampaignConfig.tiny(topology="df+", routing="valiant"))
    assert isinstance(runner.topology, DragonflyPlusTopology)
    assert runner.engine.policy is RoutingPolicy.VALIANT
    assert runner.engine.pinned and runner.engine.alpha0 == 0.0

    default = CampaignRunner(CampaignConfig.tiny())
    assert isinstance(default.topology, DragonflyTopology)
    assert default.engine.policy is RoutingPolicy.ADAPTIVE


def test_worker_env_rebuilds_cell():
    """Subprocess env reconstruction must route through the registry."""
    from repro.campaign.parallel import WorkerEnv
    from repro.topology.dragonfly_plus import DragonflyPlusTopology

    env = WorkerEnv(CampaignConfig.tiny(topology="df+", routing="minimal"))
    assert isinstance(env.topology, DragonflyPlusTopology)
    assert env.engine.policy is RoutingPolicy.MINIMAL
    assert env.engine.pinned and env.engine.alpha0 == 1.0


def test_pinned_alpha_not_clipped_into_ugal_band(tiny_topo):
    """A pinned solve uses alpha0 exactly (the UGAL clip band is
    [0.25, 0.98]; pure minimal/Valiant sit outside it)."""
    from repro.network.engine import RoutedTraffic
    from repro.network.traffic import FlowSet

    t = tiny_topo
    src = np.array([0, 1])
    dst = np.array([4 * t.routers_per_group, 5 * t.routers_per_group])
    flows = FlowSet(src=src, dst=dst, volume=np.array([2e8, 3e8]))
    routing = AdaptiveRouter(t).route(src, dst)
    for policy, a0 in (("minimal", 1.0), ("valiant", 0.0)):
        eng = CongestionEngine(t, policy=policy)
        state = eng.solve([RoutedTraffic(flows, routing)])
        expect = routing.link_loads(flows.volume, a0, t.num_links)
        np.testing.assert_allclose(state.link_loads, expect)
