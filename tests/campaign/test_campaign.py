"""Campaign generation: dataset shapes, determinism, caching, physics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.registry import get_application
from repro.campaign.datasets import (
    EPOCH,
    LDMS_FEATURES,
    Campaign,
    RunDataset,
    seconds_to_date,
)
from repro.campaign.runner import (
    CampaignConfig,
    CampaignRunner,
    _long_step_model,
    run_campaign,
)
from repro.network.counters import APP_COUNTERS


def test_all_datasets_generated(tiny_campaign):
    keys = set(tiny_campaign.keys())
    assert {
        "AMG-128",
        "AMG-512",
        "MILC-128",
        "MILC-512",
        "miniVite-128",
        "UMT-128",
    } <= keys
    assert "MILC-128-long160" in keys
    for key in (
        "AMG-128",
        "MILC-128",
        "miniVite-128",
        "UMT-128",
    ):
        assert len(tiny_campaign[key]) >= 3


def test_dataset_shapes(tiny_campaign):
    ds = tiny_campaign["MILC-128"]
    n, t = len(ds), ds.num_steps
    assert t == 80
    assert ds.X.shape == (n, t, len(APP_COUNTERS))
    assert ds.Y.shape == (n, t)
    assert ds.ldms.shape == (n, t, len(LDMS_FEATURES))
    assert ds.placement.shape == (n, 2)
    assert (ds.Y > 0).all()
    assert (ds.X >= 0).all()
    assert (ds.ldms >= 0).all()


def test_feature_tensor_tiers(tiny_campaign):
    ds = tiny_campaign["AMG-128"]
    base = ds.features()
    assert base.shape[2] == 13
    placed = ds.features(placement=True)
    assert placed.shape[2] == 15
    # Placement features are constant across steps within a run.
    assert (placed[:, 0, 13] == placed[:, -1, 13]).all()
    full = ds.features(placement=True, io=True, sys=True)
    assert full.shape[2] == 23
    assert ds.feature_names(placement=True, io=True, sys=True)[-1] == "SYS_PT_PKT_TOT"


def test_mean_centering(tiny_campaign):
    ds = tiny_campaign["MILC-128"]
    xh, yh = ds.mean_centered()
    np.testing.assert_allclose(
        xh.mean(axis=0), 0.0, atol=1e-10 * max(np.abs(ds.X).max(), 1.0)
    )
    np.testing.assert_allclose(yh.mean(axis=0), 0.0, atol=1e-9)


def test_milc_warmup_visible_in_data(tiny_campaign):
    """The paper's Fig. 3 structure survives the pipeline: warmup steps
    are much faster than regular steps."""
    ds = tiny_campaign["MILC-128"]
    _, ym = ds.mean_trends()
    assert ym[:20].mean() < 0.5 * ym[20:].mean()


def test_counter_trends_track_time_trends(tiny_campaign):
    """Fig. 7: mean counter trends correlate with the mean time trend."""
    ds = tiny_campaign["MILC-128"]
    xm, ym = ds.mean_trends()
    flit = xm[:, APP_COUNTERS.index("PT_FLIT_TOT")]
    r = np.corrcoef(flit, ym)[0, 1]
    assert r > 0.8


def test_optimality_and_relative_performance(tiny_campaign):
    ds = tiny_campaign["AMG-128"]
    p = ds.optimality()
    assert p.shape == (len(ds),)
    assert set(np.unique(p)) <= {0, 1}
    rel = ds.relative_performance()
    assert rel.min() == pytest.approx(1.0)
    assert rel.max() >= 1.0


def test_neighborhoods_recorded(tiny_campaign):
    runs = tiny_campaign["AMG-128"].runs
    all_users = {u for r in runs for u in r.neighborhood}
    # Large background jobs exist, so neighbourhoods are non-trivial.
    assert len(all_users) >= 3
    assert all(u.startswith("User-") for u in all_users)


def test_placements_fragmented(tiny_campaign):
    ds = tiny_campaign["AMG-128"]
    app = get_application("AMG-128")
    # NUM_ROUTERS within physical bounds.
    nr = ds.placement[:, 0]
    assert (nr >= np.ceil(app.num_nodes / 4)).all()
    assert (nr <= app.num_nodes).all()
    ng = ds.placement[:, 1]
    assert (ng >= 1).all()


def test_routine_breakdown_recorded(tiny_campaign):
    run = tiny_campaign["UMT-128"].runs[0]
    assert set(run.routine_times) == set(get_application("UMT-128").routine_mix())
    assert sum(run.routine_times.values()) == pytest.approx(
        run.mpi_times.sum(), rel=1e-6
    )


def test_long_run_generated(tiny_campaign):
    ds = tiny_campaign["MILC-128-long160"]
    assert len(ds) == 1
    assert ds.num_steps == 160
    # Long run keeps the warmup prefix then stays in the regular regime.
    y = ds.runs[0].step_times
    assert y[:20].mean() < y[20:].mean()


def test_long_step_model_tiling():
    app = get_application("MILC-128")
    sm = _long_step_model(app, 620)
    assert sm.num_steps == 620
    assert sm.mpi[0] == app.step_model().mpi[0]
    # Truncation path.
    sm10 = _long_step_model(app, 10)
    assert sm10.num_steps == 10


def test_dates(tiny_campaign):
    run = tiny_campaign["AMG-128"].runs[0]
    assert run.date >= EPOCH
    assert seconds_to_date(0.0) == EPOCH


def test_determinism():
    cfg = CampaignConfig.tiny(use_cache=False, days=2.0, long_runs=())
    a = CampaignRunner(cfg).run()
    b = CampaignRunner(cfg).run()
    for key in a.keys():
        if len(a[key]) == 0:
            continue
        np.testing.assert_array_equal(a[key].Y, b[key].Y)
        np.testing.assert_array_equal(a[key].X, b[key].X)


def test_cache_roundtrip(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cfg = CampaignConfig.tiny(days=2.0, long_runs=(), use_cache=True)
    first = run_campaign(cfg)
    # Second call loads from disk.
    second = run_campaign(cfg)
    for key in first.keys():
        np.testing.assert_allclose(first[key].Y, second[key].Y)
        np.testing.assert_allclose(first[key].ldms, second[key].ldms)
        assert [r.neighborhood for r in first[key].runs] == [
            r.neighborhood for r in second[key].runs
        ]
    assert second.ground_truth_aggressors == first.ground_truth_aggressors
    assert Campaign.load("not-a-fingerprint") is None


def test_fingerprint_sensitivity():
    a = CampaignConfig.tiny()
    b = CampaignConfig.tiny(days=7.0)
    c = CampaignConfig.tiny(background_intensity=2.0)
    assert a.fingerprint() == CampaignConfig.tiny().fingerprint()
    assert len({a.fingerprint(), b.fingerprint(), c.fingerprint()}) == 3


def test_variability_emerges(tiny_campaign):
    """Run-to-run variability exists and differs from pure noise: the
    worst run is measurably slower than the best."""
    spreads = {}
    for key in ("AMG-128", "MILC-128", "miniVite-128"):
        ds = tiny_campaign[key]
        if len(ds) >= 3:
            spreads[key] = ds.relative_performance().max()
    assert spreads and max(spreads.values()) > 1.1


def test_ground_truth_recorded(tiny_campaign):
    assert "User-2" in tiny_campaign.ground_truth_aggressors
