"""Streaming mode: shard identity, degenerate equivalence, append."""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaign.datasets import RunDataset
from repro.campaign.runner import CampaignConfig, run_campaign
from repro.campaign.streaming import (
    StreamConfig,
    StreamManifest,
    render_stream,
    run_stream,
    shard_fingerprint,
    shard_view,
    stream_fingerprint,
    window_seed,
)
from repro.features import get_store
from repro.obs import METRICS

from tests.features.test_store import _dataset


# --------------------------------------------------------------------- #
# identity model (pure, no generation)
# --------------------------------------------------------------------- #


def test_single_window_stream_is_the_base_config():
    base = CampaignConfig.tiny()
    sc = StreamConfig(base=base, windows=1)
    assert sc.window_config(0) is base
    assert sc.fingerprint() == base.fingerprint()


def test_window_fingerprints_are_append_stable():
    base = CampaignConfig.tiny()
    two = StreamConfig(base=base, windows=2, window_days=2.0)
    three = StreamConfig(base=base, windows=3, window_days=2.0)
    assert three.window_fingerprints()[:2] == two.window_fingerprints()
    assert three.fingerprint() != two.fingerprint()


def test_window_seed_stable_and_distinct():
    assert window_seed(42, 0) == 42
    seeds = [window_seed(42, w) for w in range(6)]
    assert len(set(seeds)) == len(seeds)
    assert seeds == [window_seed(42, w) for w in range(6)]
    # hash-derived, not offset: neighbouring base seeds don't collide
    assert window_seed(42, 1) != window_seed(43, 1) != 44


def test_windowed_streams_drop_long_runs():
    base = CampaignConfig.tiny()
    assert base.long_runs  # precondition: the tiny config has one
    sc = StreamConfig(base=base, windows=3, window_days=2.0)
    for w in range(3):
        cfg = sc.window_config(w)
        assert cfg.long_runs == ()
        assert cfg.days == 2.0


def test_stream_config_validation():
    base = CampaignConfig.tiny()
    with pytest.raises(ValueError):
        StreamConfig(base=base, windows=0)
    with pytest.raises(ValueError):
        StreamConfig(base=base, windows=2, window_days=-1.0)
    with pytest.raises(ValueError):
        StreamConfig(base=base, windows=2).window_config(5)


def test_shard_fingerprint_matches_feature_store_identity():
    """One identity: manifest shard fp == the shard's FeatureStore fp."""
    ds = _dataset(key="AMG-128")
    ds.campaign_fingerprint = "aaaabbbbccccdddd"
    assert (
        get_store(ds, persist=False).fingerprint()
        == shard_fingerprint("aaaabbbbccccdddd", "AMG-128")
    )


def test_stream_fingerprint_degenerates_to_window():
    assert stream_fingerprint(["abc"]) == "abc"
    two = stream_fingerprint(["abc", "def"])
    assert two != stream_fingerprint(["def", "abc"])  # order matters


def test_shard_view_of_plain_dataset_is_itself():
    ds = _dataset()
    assert shard_view(ds, 0) is ds
    with pytest.raises(IndexError):
        shard_view(ds, 1)


# --------------------------------------------------------------------- #
# provenance stamping on save/load (warm loads must not re-key caches)
# --------------------------------------------------------------------- #


def test_dataset_load_restores_campaign_fingerprint(tmp_path):
    ds = _dataset(key="AMG-128")
    ds.save(tmp_path / "AMG-128", campaign_fingerprint="feedfacefeedface")
    loaded = RunDataset.load(tmp_path / "AMG-128")
    assert loaded.campaign_fingerprint == "feedfacefeedface"
    # Same feature-cache identity as the freshly generated dataset.
    ds.campaign_fingerprint = "feedfacefeedface"
    assert (
        get_store(loaded, persist=False).fingerprint()
        == get_store(ds, persist=False).fingerprint()
    )


def test_dataset_save_without_stamp_loads_unstamped(tmp_path):
    ds = _dataset(key="SYN-64")
    ds.save(tmp_path / "SYN-64")
    assert RunDataset.load(tmp_path / "SYN-64").campaign_fingerprint is None


# --------------------------------------------------------------------- #
# real generation: degenerate equivalence and incremental append
# --------------------------------------------------------------------- #


@pytest.fixture()
def _stream_cache(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    return tmp_path


def test_single_window_stream_reproduces_one_shot(_stream_cache):
    """Degenerate case: same fingerprints, byte-identical datasets."""
    base = CampaignConfig.tiny()
    camp = run_stream(StreamConfig(base=base, windows=1))
    one_shot = run_campaign(base)  # loads the very same cache entry
    assert camp.stream.fingerprint == base.fingerprint()
    for key in one_shot.keys():
        a, b = camp[key], one_shot[key]
        assert a.campaign_fingerprint == b.campaign_fingerprint
        assert np.array_equal(a.Y, b.Y)
        assert len(a.shard_views) == 1
        assert a.shard_fingerprints == [
            shard_fingerprint(base.fingerprint(), key)
        ]


def test_append_generates_only_the_new_window(_stream_cache):
    base = CampaignConfig.tiny()
    sc2 = StreamConfig(base=base, windows=2, window_days=2.0)
    camp2 = run_stream(sc2)

    hits = METRICS.counter("campaign.cache.hits")
    misses = METRICS.counter("campaign.cache.misses")
    h0, m0 = hits.value, misses.value
    camp3 = run_stream(StreamConfig(base=base, windows=3, window_days=2.0))
    # Appending window 2 loads windows 0-1 from disk and generates one.
    assert hits.value - h0 == 2
    assert misses.value - m0 == 1

    # Prefix stability is exact: the common windows are byte-identical.
    for key in camp2.keys():
        a, b = camp2[key], camp3[key]
        assert a.shard_fingerprints == b.shard_fingerprints[:2]
        for va, vb in zip(a.shard_views, b.shard_views):
            assert np.array_equal(va.Y, vb.Y)
    # Combined runs concatenate in window order with offset start times.
    ds = camp3["AMG-128"]
    assert len(ds) == sum(len(v) for v in ds.shard_views)
    assert [r.run_index for r in ds.runs] == list(range(len(ds)))
    starts = ds.start_times
    per_window = len(ds) // 3
    assert starts[per_window] > starts[:per_window].max()

    # The manifest persisted and round-trips.
    man = StreamManifest.load(camp3.stream.fingerprint)
    assert man is not None
    assert man.window_fingerprints() == camp3.stream.window_fingerprints()
    assert man.shard("AMG-128", 2) == ds.shard_fingerprints[2]
    assert "window 2" in render_stream(man)
