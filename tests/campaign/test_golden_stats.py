"""Golden aggregate statistics of the seeded test-scale campaign.

These values pin the *science* of the generation pipeline: a performance
refactor (parallelisation, caching, vectorisation) must reproduce them
bit-for-bit modulo the 1e-6 relative tolerance, which only absorbs
cross-platform BLAS reduction-order differences.

If a change is *intentional* (physics fix, new noise term, schedule
change), bump ``_PIPELINE_VERSION`` in ``repro/campaign/runner.py`` and
regenerate this table:

    PYTHONPATH=src python - <<'EOF'
    from repro.campaign.runner import CampaignConfig, run_campaign
    camp = run_campaign(CampaignConfig.tiny(use_cache=False))
    for k in sorted(camp.keys()):
        ds = camp[k]
        _, yh = ds.mean_centered()
        print(f'    "{k}": dict(n={len(ds)}, mean_step={ds.Y.mean()!r}, '
              f'dev_spread={yh.std()!r}, total_mean={ds.totals.mean()!r}, '
              f'rel_max={ds.relative_performance().max()!r}),')
    EOF
"""

from __future__ import annotations

import pytest

#: Aggregates of ``CampaignConfig.tiny()`` at the default seed.
GOLDEN = {
    "AMG-128": dict(
        n=6,
        mean_step=14.648967048211261,
        dev_spread=2.6445649433872678,
        total_mean=292.97934096422523,
        rel_max=1.386341412907054,
    ),
    "AMG-512": dict(
        n=6,
        mean_step=42.51747537827302,
        dev_spread=5.777582821411728,
        total_mean=850.3495075654605,
        rel_max=1.3716132133739554,
    ),
    "MILC-128": dict(
        n=6,
        mean_step=6.5675451647904515,
        dev_spread=0.9369764390831963,
        total_mean=525.4036131832362,
        rel_max=1.3072706784404153,
    ),
    "MILC-128-long160": dict(
        n=1,
        mean_step=6.764249360045939,
        dev_spread=0.0,
        total_mean=1082.2798976073502,
        rel_max=1.0,
    ),
    "MILC-512": dict(
        n=6,
        mean_step=7.841913998848531,
        dev_spread=0.7111363808590649,
        total_mean=627.3531199078824,
        rel_max=1.1299743433900313,
    ),
    "UMT-128": dict(
        n=6,
        mean_step=67.81304636765859,
        dev_spread=7.434096939632183,
        total_mean=474.6913245736101,
        rel_max=1.2724421325525623,
    ),
    "miniVite-128": dict(
        n=6,
        mean_step=195.79672047173457,
        dev_spread=58.34921548287129,
        total_mean=1174.7803228304076,
        rel_max=1.5768506124213753,
    ),
}


@pytest.mark.parametrize("key", sorted(GOLDEN))
def test_golden_aggregates(tiny_campaign, key):
    golden = GOLDEN[key]
    ds = tiny_campaign[key]
    _, yh = ds.mean_centered()
    assert len(ds) == golden["n"]
    assert float(ds.Y.mean()) == pytest.approx(golden["mean_step"], rel=1e-6)
    assert float(yh.std()) == pytest.approx(golden["dev_spread"], rel=1e-6, abs=1e-12)
    assert float(ds.totals.mean()) == pytest.approx(golden["total_mean"], rel=1e-6)
    assert float(ds.relative_performance().max()) == pytest.approx(
        golden["rel_max"], rel=1e-6
    )


def test_golden_covers_every_dataset(tiny_campaign):
    """New dataset keys must be pinned here too, not slip by unpinned."""
    assert set(tiny_campaign.keys()) == set(GOLDEN)
