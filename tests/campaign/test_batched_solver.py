"""The batched step-block solver is bit-identical to the per-step reference.

The campaign cold path solves each probe run's steps in memory-bounded
blocks (``REPRO_STEP_BLOCK``); ``REPRO_SOLVER=reference`` selects the
frozen per-step loop instead (:func:`repro.campaign.parallel
._solve_one_run_reference`).  These tests enforce the contract the
refactor was built on: both solvers produce *byte-identical* run arrays
(``assert_array_equal``, not ``allclose``) for every cell, worker count,
and block size — including a long (620-step) run whose steps span many
background windows, and the degenerate empty-flow placement.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.base import Application, StepModel
from repro.campaign.runner import (
    CampaignConfig,
    CampaignRunner,
    ProbeRunContext,
)
from repro.config import DEFAULT_STEP_BLOCK, resolve_step_block
from repro.network.engine import BaseLoad, CongestionEngine
from repro.network.traffic import FlowSet
from repro.parallel import shutdown_pool
from repro.topology.dragonfly import DragonflyTopology

#: Per-run arrays that must match bitwise between the two solvers.
RUN_ARRAYS = ("step_times", "compute_times", "mpi_times", "counters", "ldms")


def _cfg(**overrides) -> CampaignConfig:
    return CampaignConfig.tiny(
        use_cache=False, days=2.0, long_runs=(), **overrides
    )


def _assert_identical(a, b) -> None:
    assert set(a.keys()) == set(b.keys())
    for key in a.keys():
        da, db = a[key], b[key]
        assert len(da) == len(db)
        for ra, rb in zip(da.runs, db.runs):
            for name in RUN_ARRAYS:
                np.testing.assert_array_equal(
                    getattr(ra, name), getattr(rb, name), err_msg=f"{key}.{name}"
                )
            assert ra.start_time == rb.start_time


@pytest.fixture(scope="module")
def batched_serial():
    """The default (batched) solver at workers=1 on the default cell."""
    return CampaignRunner(_cfg(workers=1)).run()


def test_reference_solver_bit_identical(batched_serial, monkeypatch):
    monkeypatch.setenv("REPRO_SOLVER", "reference")
    reference = CampaignRunner(_cfg(workers=1)).run()
    _assert_identical(batched_serial, reference)


def test_reference_solver_bit_identical_parallel(batched_serial, monkeypatch):
    # A fresh pool so the subprocess workers inherit the env override.
    shutdown_pool()
    monkeypatch.setenv("REPRO_SOLVER", "reference")
    try:
        reference = CampaignRunner(_cfg(workers=4)).run()
    finally:
        shutdown_pool()  # don't leak reference-solver workers to other tests
    _assert_identical(batched_serial, reference)


def test_reference_solver_bit_identical_dfplus_cell(monkeypatch):
    """The non-default bench cell (Dragonfly+ geometry, pinned Valiant)."""
    cfg = _cfg(workers=1, topology="df+", routing="valiant")
    batched = CampaignRunner(cfg).run()
    monkeypatch.setenv("REPRO_SOLVER", "reference")
    reference = CampaignRunner(cfg).run()
    _assert_identical(batched, reference)


def test_block_size_invariance_long_run(monkeypatch):
    """A 620-step long run solved at block sizes 1/7/64 is bit-identical.

    Block size 1 degenerates to one step per block (the batched code on
    per-step shapes), 7 exercises ragged final blocks, 64 the default.
    The long run spans many background windows, so this also covers the
    window-grouped block splitting.
    """
    cfg = CampaignConfig.tiny(
        use_cache=False, days=2.0, long_runs=(("MILC-128", 620),), workers=1
    )
    results = {}
    for block in (1, 7, 64):
        monkeypatch.setenv("REPRO_STEP_BLOCK", str(block))
        results[block] = CampaignRunner(cfg).run()
    assert any(
        len(run.step_times) == 620
        for run in results[1]["MILC-128-long620"].runs
    )
    _assert_identical(results[1], results[7])
    _assert_identical(results[1], results[64])


# --------------------------------------------------------------------------- #
# Unit surface: solve_steps on a degenerate placement, config plumbing.
# --------------------------------------------------------------------------- #


class _SilentApp(Application):
    """An app that never communicates: the empty-flow degenerate case."""

    name = "SILENT"
    version = "0"

    def step_model(self) -> StepModel:
        n = 4
        return StepModel(np.full(n, 1.0), np.full(n, 0.5), np.ones(n))

    def flow_geometry(self, topology, nodes) -> FlowSet:
        empty = np.empty(0, dtype=np.int64)
        return FlowSet(empty, empty, np.empty(0), 0.1)

    def routine_mix(self) -> dict[str, float]:
        return {"MPI_Wait": 1.0}

    def input_summary(self) -> str:
        return "silent"


def test_solve_steps_empty_flows():
    """solve_steps must handle a flowless placement and match solve_step."""
    topo = DragonflyTopology.from_preset("tiny")
    engine = CongestionEngine(topo)
    app = _SilentApp(2)
    ctx = ProbeRunContext(
        app, topo, engine, np.array([0, 1]), app.step_model()
    )
    n, r = 3, topo.num_routers
    block_base = BaseLoad(
        link_loads=np.zeros((n, topo.num_links)),
        inj=np.zeros((n, r)),
        ej=np.zeros((n, r)),
        vc4=np.zeros((n, r)),
    )
    loads, inj, ej, vc4, fabric, endpoint = ctx.solve_steps(
        block_base, np.ones(n)
    )
    assert loads.shape == (n, topo.num_links)
    step_base = BaseLoad.zeros(topo)
    for i in range(n):
        state, fab, ep = ctx.solve_step(step_base, 1.0)
        np.testing.assert_array_equal(loads[i], state.link_loads)
        np.testing.assert_array_equal(inj[i], state.inj)
        assert fabric[i] == fab == 1.0  # no flows -> no slowdown
        assert endpoint[i] == ep == 1.0


def test_resolve_step_block(monkeypatch):
    monkeypatch.delenv("REPRO_STEP_BLOCK", raising=False)
    assert resolve_step_block(None) == DEFAULT_STEP_BLOCK
    assert resolve_step_block(7) == 7
    with pytest.raises(ValueError):
        resolve_step_block(0)
    monkeypatch.setenv("REPRO_STEP_BLOCK", "9")
    assert resolve_step_block(None) == 9
    assert resolve_step_block(2) == 9  # env wins over config
    monkeypatch.setenv("REPRO_STEP_BLOCK", "not-a-number")
    with pytest.raises(ValueError):
        resolve_step_block()
    monkeypatch.setenv("REPRO_STEP_BLOCK", "-3")
    with pytest.raises(ValueError):
        resolve_step_block()


def test_router_link_sums_batched_matches_per_row():
    """The (steps, links) form of router_link_sums equals per-row bincounts."""
    topo = DragonflyTopology.from_preset("tiny")
    rng = np.random.default_rng(42)
    per_link = rng.random((5, topo.num_links))
    batched = topo.router_link_sums(per_link)
    assert batched.shape == (5, topo.num_routers)
    for i in range(5):
        np.testing.assert_array_equal(
            batched[i], topo.router_link_sums(per_link[i])
        )
    # Non-contiguous input (a strided block view) must not change bits.
    view = per_link[::2]
    np.testing.assert_array_equal(
        topo.router_link_sums(view), batched[::2]
    )
