"""Campaign data-contract validation."""

from __future__ import annotations

import numpy as np

from repro.campaign.validate import validate_campaign, validate_dataset
from tests.campaign.test_datasets_properties import _dataset


def test_clean_dataset_passes():
    ds = _dataset(6, 8, seed=0)
    # The synthetic helper sets routine_times = {'Wait': total}, which does
    # not equal the MPI time; patch it to satisfy the contract.
    for r in ds.runs:
        r.routine_times = {"Wait": float(r.mpi_times.sum())}
    rep = validate_dataset(ds)
    assert rep.ok, rep.messages
    assert rep.failed() == []


def test_violations_detected():
    ds = _dataset(6, 8, seed=1)
    for r in ds.runs:
        r.routine_times = {"Wait": float(r.mpi_times.sum())}
    # Break several invariants.
    ds.runs[0].step_times[2] = -1.0
    ds.runs[1].counters[0, 0] = np.nan
    ds.runs[2].num_groups = 999
    ds.runs[3].neighborhood = ["eve@example.com"]
    rep = validate_dataset(ds)
    assert not rep.ok
    failed = set(rep.failed())
    assert "positive-times" in failed
    assert "counters-finite" in failed
    assert "groups-le-routers" in failed
    assert "neighborhood-anonymised" in failed


def test_split_consistency_check():
    ds = _dataset(5, 6, seed=2)
    for r in ds.runs:
        r.routine_times = {"Wait": float(r.mpi_times.sum())}
    ds.runs[0].compute_times = ds.runs[0].compute_times * 2
    rep = validate_dataset(ds)
    assert "split-consistent" in rep.failed()


def test_min_runs():
    ds = _dataset(2, 4, seed=3)
    for r in ds.runs:
        r.routine_times = {"Wait": float(r.mpi_times.sum())}
    rep = validate_dataset(ds, min_runs=3)
    assert "has-runs" in rep.failed()


def test_real_campaign_validates(tiny_campaign):
    reports = validate_campaign(tiny_campaign)
    assert len(reports) >= 6
    for key, rep in reports.items():
        assert rep.ok, f"{key}: {rep.messages}"
